//! # optimal-nd
//!
//! Umbrella crate for the reproduction of *On Optimal Neighbor Discovery*
//! (Kindt & Chakraborty, SIGCOMM 2019). It re-exports the member crates so
//! examples and downstream users can depend on a single package:
//!
//! * [`core`] (`nd-core`) — time base, schedules, coverage maps and every
//!   fundamental bound derived in the paper.
//! * [`sim`] (`nd-sim`) — discrete-event wireless simulator (radio model,
//!   collision channel, fault injection).
//! * [`netsim`] (`nd-netsim`) — the N-node cohort simulator on top of the
//!   same channel model: join/leave churn, per-node drift and RNG
//!   streams, first/median/full-cohort discovery metrics.
//! * [`protocols`] (`nd-protocols`) — the paper-optimal schedule
//!   constructions plus every protocol the paper classifies (Disco,
//!   U-Connect, Searchlight, difference codes, BLE-like PI, …).
//! * [`analysis`] (`nd-analysis`) — exact worst-case latency engine and
//!   Monte-Carlo harnesses.
//! * [`sweep`] (`nd-sweep`) — declarative, parallel, cached scenario
//!   sweeps over all of the above (and the `nd-sweep` CLI).
//! * [`opt`] (`nd-opt`) — per-protocol Pareto fronts over (duty cycle,
//!   latency) with gap-to-bound reporting (and the `nd-opt` CLI).
//! * [`serve`] (`nd-serve`) — the always-on planning daemon: front/best/
//!   gap queries over HTTP/JSON behind the versioned `nd-serve-api/v1`
//!   envelope, with response memoization, request coalescing and a
//!   background ingest→execute→prune pipeline.
//! * [`obs`] (`nd-obs`) — zero-dependency observability spine: structured
//!   tracing spans with a JSONL sink, the atomic metrics registry, and
//!   stderr progress lines. Off by default; `ND_TRACE`/`--trace-out`
//!   and the report/stats subcommands turn it on.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use nd_analysis as analysis;
pub use nd_core as core;
pub use nd_netsim as netsim;
pub use nd_obs as obs;
pub use nd_opt as opt;
pub use nd_protocols as protocols;
pub use nd_serve as serve;
pub use nd_sim as sim;
pub use nd_sweep as sweep;
