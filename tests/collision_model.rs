//! Integration: the simulator's channel reproduces the paper's collision
//! model (Eq. 12) statistically, and the Appendix A.5 self-blocking
//! phenomenon appears at the predicted magnitude.

use optimal_nd::core::bounds::collision_probability;
use optimal_nd::core::{BeaconSeq, Schedule, Tick};
use optimal_nd::protocols::optimal::{self, OptimalParams};
use optimal_nd::protocols::Jittered;
use optimal_nd::sim::{ScheduleBehavior, SimConfig, Simulator, Topology};

/// Jittered advertisers against a full-time listener: each beacon is sent
/// at an effectively uniform random instant, so the fraction lost to
/// collisions must match ALOHA's 1 − e^{−2(S−1)β}.
#[test]
fn aloha_collision_rate_matches_eq12() {
    let omega = Tick::from_micros(36);
    let s: usize = 6;
    let period = Tick::from_millis(2); // β = 1.8 % per advertiser
    let mut cfg = SimConfig::paper_baseline(Tick::from_secs(4), 71);
    cfg.half_duplex = false; // pure listener; advertisers never listen
    let mut sim = Simulator::new(cfg, Topology::full(s + 1));
    // device 0: always-on listener
    let listener = Schedule::rx_only(
        optimal_nd::core::ReceptionWindows::single(
            Tick::ZERO,
            Tick::from_secs(1),
            Tick::from_secs(1),
        )
        .unwrap(),
    );
    sim.add_device(Box::new(ScheduleBehavior::new(listener)));
    for i in 0..s {
        let b = BeaconSeq::uniform(1, period, omega, Tick::from_micros(i as u64 * 53)).unwrap();
        let adv = ScheduleBehavior::new(Schedule::tx_only(b));
        // jitter by a full period: the Poisson-field idealization of Eq. 12
        sim.add_device(Box::new(Jittered::new(adv, period)));
    }
    let report = sim.run();
    let beta = omega.as_nanos() as f64 / period.as_nanos() as f64;
    // Collisions at the listener involve any pair of the s advertisers:
    // a beacon collides if any of the other s−1 overlap it.
    let predicted = collision_probability(s as u32, beta);
    let receivable = report.packets.received + report.packets.lost_collision;
    let measured = report.packets.lost_collision as f64 / receivable as f64;
    assert!(receivable > 5000, "need statistics, got {receivable}");
    assert!(
        (measured - predicted).abs() < predicted * 0.35,
        "measured {measured:.4} vs Eq.12 {predicted:.4}"
    );
}

/// With collisions disabled the same setup loses nothing.
#[test]
fn no_losses_without_collisions() {
    let omega = Tick::from_micros(36);
    let mut cfg = SimConfig::paper_baseline(Tick::from_millis(500), 13);
    cfg.collisions = false;
    cfg.half_duplex = false;
    let mut sim = Simulator::new(cfg, Topology::full(3));
    let listener = Schedule::rx_only(
        optimal_nd::core::ReceptionWindows::single(
            Tick::ZERO,
            Tick::from_millis(100),
            Tick::from_millis(100),
        )
        .unwrap(),
    );
    sim.add_device(Box::new(ScheduleBehavior::new(listener)));
    for i in 0..2 {
        let b =
            BeaconSeq::uniform(1, Tick::from_millis(1), omega, Tick::from_micros(i * 17)).unwrap();
        sim.add_device(Box::new(ScheduleBehavior::new(Schedule::tx_only(b))));
    }
    let report = sim.run();
    assert_eq!(report.packets.lost_collision, 0);
    assert!(report.packets.received > 0);
}

/// Appendix A.5: with identical sequences on both devices, one beacon per
/// worst-case period blanks the own window; the measured self-blocking
/// loss matches `Schedule::self_blocking_fraction`.
#[test]
fn self_blocking_measured_at_predicted_magnitude() {
    let opt = optimal::symmetric(OptimalParams::paper_default(), 0.1).unwrap();
    // phase-align both devices so beacons land in the peer's window at the
    // same instants the own beacon blanks it: run many phases and count
    let mut blocked_phases = 0;
    let mut total = 0;
    for i in 0..40 {
        let phase = Tick(opt.schedule.windows.as_ref().unwrap().period().as_nanos() * i / 40);
        let cfg = SimConfig::paper_baseline(Tick(opt.predicted_latency.as_nanos() * 2), 5);
        let mut sim = Simulator::new(cfg, Topology::full(2));
        sim.add_device(Box::new(ScheduleBehavior::new(opt.schedule.clone())));
        sim.add_device(Box::new(ScheduleBehavior::with_phase(
            opt.schedule.clone(),
            phase,
        )));
        let report = sim.run();
        total += 1;
        if report.packets.lost_self_blocking > 0 {
            blocked_phases += 1;
        }
    }
    // the per-beacon blanking probability is ~ω/Σd ≈ 1 % per period at
    // η = 10 % — across two worst-case periods and two devices some phases
    // must see it, but most must not
    assert!(blocked_phases > 0, "blanking never observed");
    assert!(
        blocked_phases < total,
        "blanking observed at every phase — too frequent"
    );
}

/// Fault injection behaves like an independent thinning: with drop
/// probability p the reception count scales by ≈ (1−p).
#[test]
fn drop_probability_thins_receptions() {
    let omega = Tick::from_micros(36);
    let run = |p: f64| -> u64 {
        let cfg = SimConfig::paper_baseline(Tick::from_secs(1), 9).with_drop_probability(p);
        let mut sim = Simulator::new(cfg, Topology::full(2));
        let listener = Schedule::rx_only(
            optimal_nd::core::ReceptionWindows::single(
                Tick::ZERO,
                Tick::from_millis(10),
                Tick::from_millis(10),
            )
            .unwrap(),
        );
        sim.add_device(Box::new(ScheduleBehavior::new(listener)));
        let b = BeaconSeq::uniform(1, Tick::from_millis(1), omega, Tick::ZERO).unwrap();
        sim.add_device(Box::new(ScheduleBehavior::new(Schedule::tx_only(b))));
        sim.run().packets.received
    };
    let full = run(0.0);
    let half = run(0.5);
    assert!(full > 900, "baseline {full}");
    let ratio = half as f64 / full as f64;
    assert!((ratio - 0.5).abs() < 0.08, "thinning ratio {ratio}");
}
