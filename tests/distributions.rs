//! Integration: exact latency distributions vs. Monte-Carlo simulation,
//! and energy accounting across the stack.

use optimal_nd::analysis::montecarlo::{pair_trials, LatencySummary, PairMetric};
use optimal_nd::analysis::{AnalysisConfig, LatencyDistribution};
use optimal_nd::core::Tick;
use optimal_nd::protocols::optimal::{symmetric, OptimalParams};
use optimal_nd::sim::{ScheduleBehavior, SimConfig, Simulator, Topology};

#[test]
fn exact_cdf_matches_simulation_quantiles() {
    let opt = symmetric(OptimalParams::paper_default(), 0.08).unwrap();
    let dist = LatencyDistribution::build(
        opt.schedule.beacons.as_ref().unwrap(),
        opt.schedule.windows.as_ref().unwrap(),
        &AnalysisConfig::paper_default(),
        false,
    )
    .unwrap();
    let worst = dist.worst().unwrap();
    let mut cfg = SimConfig::paper_baseline(Tick(worst.as_nanos() * 2), 77);
    cfg.collisions = false;
    cfg.half_duplex = false;
    let lat = pair_trials(&opt.schedule, &opt.schedule, PairMetric::OneWay, &cfg, 200);
    let s = LatencySummary::from_latencies(&lat);
    assert_eq!(s.failures, 0);
    // simulated quantiles land near the exact ones (200 samples → ~7 %
    // Monte-Carlo error at the median)
    assert!(
        (s.p50 - dist.quantile(0.5)).abs() / dist.quantile(0.5) < 0.15,
        "p50 sim {} vs exact {}",
        s.p50,
        dist.quantile(0.5)
    );
    assert!(s.max <= worst.as_secs_f64() * (1.0 + 1e-9));
    // mean within a few percent
    assert!(
        (s.mean - dist.mean()).abs() / dist.mean() < 0.10,
        "mean sim {} vs exact {}",
        s.mean,
        dist.mean()
    );
}

#[test]
fn distribution_mean_is_half_worst_for_tilings() {
    for eta in [0.02, 0.05, 0.1] {
        let opt = symmetric(OptimalParams::paper_default(), eta).unwrap();
        let dist = LatencyDistribution::build(
            opt.schedule.beacons.as_ref().unwrap(),
            opt.schedule.windows.as_ref().unwrap(),
            &AnalysisConfig::paper_default(),
            false,
        )
        .unwrap();
        let ratio = dist.mean() / dist.worst().unwrap().as_secs_f64();
        assert!((ratio - 0.5).abs() < 0.03, "η {eta}: mean/worst {ratio}");
    }
}

#[test]
fn measured_energy_tracks_duty_cycle() {
    // a device at η = 5 % with P_rx = 10 mW must burn ≈ 0.5 mW average
    let opt = symmetric(OptimalParams::paper_default(), 0.05).unwrap();
    let horizon = Tick::from_secs(2);
    let cfg = SimConfig::paper_baseline(horizon, 3);
    let mut sim = Simulator::new(cfg, Topology::full(2));
    sim.add_device(Box::new(ScheduleBehavior::new(opt.schedule.clone())));
    sim.add_device(Box::new(ScheduleBehavior::with_phase(
        opt.schedule.clone(),
        Tick::from_micros(321),
    )));
    let report = sim.run();
    let radio = optimal_nd::core::RadioParams::paper_default();
    let energy = report.devices[0].energy_joules(&radio, 0.010);
    let avg_power = energy / report.elapsed.as_secs_f64();
    let expected = 0.010 * 0.05; // P_rx · η
    assert!(
        (avg_power - expected).abs() / expected < 0.05,
        "avg power {avg_power} vs {expected}"
    );
}

#[test]
fn energy_latency_tradeoff_is_monotone() {
    // doubling the budget quadruples speed but only doubles power: the
    // energy *per discovery* drops — the paper's core economics
    let radio = optimal_nd::core::RadioParams::paper_default();
    let mut last_energy_to_discover = f64::INFINITY;
    for eta in [0.02, 0.04, 0.08] {
        let opt = symmetric(OptimalParams::paper_default(), eta).unwrap();
        let l = opt.predicted_latency.as_secs_f64();
        // energy spent by one device until the worst-case discovery
        let energy = 0.010 * eta * l * radio.alpha;
        assert!(
            energy < last_energy_to_discover,
            "η {eta}: {energy} not below {last_energy_to_discover}"
        );
        last_energy_to_discover = energy;
    }
}
