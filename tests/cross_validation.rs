//! Integration: three independent implementations — coverage-map engine,
//! naive oracle, event simulator — agree on every probed phase for every
//! protocol family.

use optimal_nd::analysis::{cross_validate, AnalysisConfig};
use optimal_nd::core::Tick;
use optimal_nd::protocols::optimal::{self, OptimalParams};
use optimal_nd::protocols::{CodeBased, DiffCode, Disco, PiProtocol, Searchlight, UConnect};

fn cfg() -> AnalysisConfig {
    AnalysisConfig::paper_default()
}

const SLOT: Tick = Tick::from_millis(1);
const OMEGA: Tick = Tick(36_000);

#[test]
fn optimal_unidirectional_consistent() {
    let (tx, rx) = optimal::unidirectional(OptimalParams::paper_default(), 0.02, 0.05).unwrap();
    let v = cross_validate(&tx.schedule, &rx.schedule, &cfg(), 41).unwrap();
    assert!(v.consistent(), "{v:?}");
}

#[test]
fn optimal_symmetric_consistent() {
    let opt = optimal::symmetric(OptimalParams::paper_default(), 0.06).unwrap();
    let v = cross_validate(&opt.schedule, &opt.schedule, &cfg(), 37).unwrap();
    assert!(v.consistent(), "{v:?}");
}

#[test]
fn disco_consistent() {
    let sched = Disco::new(5, 7, SLOT, OMEGA).unwrap().schedule().unwrap();
    let v = cross_validate(&sched, &sched, &cfg(), 29).unwrap();
    assert!(v.consistent(), "{v:?}");
}

#[test]
fn searchlight_consistent() {
    let sched = Searchlight::new(6, SLOT, OMEGA)
        .unwrap()
        .schedule()
        .unwrap();
    let v = cross_validate(&sched, &sched, &cfg(), 23).unwrap();
    assert!(v.consistent(), "{v:?}");
}

#[test]
fn uconnect_consistent() {
    let sched = UConnect::new(5, SLOT, OMEGA).unwrap().schedule().unwrap();
    let v = cross_validate(&sched, &sched, &cfg(), 23).unwrap();
    assert!(v.consistent(), "{v:?}");
}

#[test]
fn diffcode_and_codebased_consistent() {
    let dc = DiffCode::new(13, vec![0, 1, 3, 9], SLOT, OMEGA).unwrap();
    let sched = dc.schedule().unwrap();
    let v = cross_validate(&sched, &sched, &cfg(), 19).unwrap();
    assert!(v.consistent(), "diffcode: {v:?}");

    let cb = CodeBased::new(DiffCode::new(13, vec![0, 1, 3, 9], SLOT, OMEGA).unwrap());
    let sched = cb.schedule().unwrap();
    let v = cross_validate(&sched, &sched, &cfg(), 19).unwrap();
    assert!(v.consistent(), "codebased: {v:?}");
}

#[test]
fn pi_protocol_consistent() {
    // an optimal PI parametrization (tiling relation T_a = T_s + d_s)
    let pi = PiProtocol::optimal(0.06, 1.0, OMEGA, 1).unwrap();
    let sched = pi.schedule().unwrap();
    let v = cross_validate(&sched, &sched, &cfg(), 31).unwrap();
    assert!(v.consistent(), "{v:?}");
}
