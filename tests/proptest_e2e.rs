//! End-to-end property tests: for *random* duty-cycle targets, the whole
//! pipeline holds — constructions are deterministic and disjoint, the
//! exact engine matches the closed-form bound, and simulated discoveries
//! never exceed the analytical worst case.

use optimal_nd::analysis::{
    naive_first_discovery, one_way_worst_case, two_way_worst_case, AnalysisConfig,
};
use optimal_nd::core::bounds;
use optimal_nd::core::coverage::{min_beacons, CoverageMap, OverlapModel};
use optimal_nd::core::Tick;
use optimal_nd::protocols::optimal::{self, OptimalParams};
use proptest::prelude::*;

const OMEGA_S: f64 = 36e-6;

fn params() -> OptimalParams {
    OptimalParams::paper_default()
}

fn cfg() -> AnalysisConfig {
    AnalysisConfig::paper_default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 5.4 end-to-end for random (β, γ).
    #[test]
    fn unidirectional_pipeline(
        beta_pm in 2u32..60,   // β ∈ [0.2 %, 6 %]
        gamma_pm in 5u32..200, // γ ∈ [0.5 %, 20 %]
    ) {
        let beta = beta_pm as f64 / 1000.0;
        let gamma = gamma_pm as f64 / 1000.0;
        let (tx, rx) = optimal::unidirectional(params(), beta, gamma).unwrap();
        let b = tx.schedule.beacons.as_ref().unwrap();
        let c = rx.schedule.windows.as_ref().unwrap();

        // the construction is deterministic and disjoint with exactly M beacons
        let m = min_beacons(c.period(), c.sum_d());
        let map = CoverageMap::build(
            &b.relative_instants(m as usize),
            c,
            Tick::from_micros(36),
            OverlapModel::Start,
        );
        prop_assert!(map.is_deterministic());
        prop_assert!(map.is_disjoint());

        // the exact worst case equals the bound at the achieved duty cycles
        let wc = one_way_worst_case(b, c, &cfg()).unwrap();
        let bound = bounds::unidirectional_bound(OMEGA_S, tx.achieved.beta, rx.achieved.gamma);
        let ratio = wc.latency.as_secs_f64() / bound;
        prop_assert!((ratio - 1.0).abs() < 1e-6, "ratio {ratio}");
    }

    /// Theorem 5.5 end-to-end plus oracle agreement for a random phase.
    #[test]
    fn symmetric_pipeline(
        eta_pm in 5u32..150, // η ∈ [0.5 %, 15 %]
        phase_frac in 0u64..997,
    ) {
        let eta = eta_pm as f64 / 1000.0;
        let opt = optimal::symmetric(params(), eta).unwrap();
        let exact = two_way_worst_case(&opt.schedule, &opt.schedule, &cfg()).unwrap();
        // tight at the achieved duty cycles (γ is quantized to 1/k)
        let exact_bound =
            bounds::unidirectional_bound(OMEGA_S, opt.achieved.beta, opt.achieved.gamma);
        let ratio = exact.as_secs_f64() / exact_bound;
        prop_assert!((ratio - 1.0).abs() < 1e-6, "η {eta}: achieved ratio {ratio}");
        // and within the quantization error of the requested budget
        let bound = bounds::symmetric_bound(1.0, OMEGA_S, eta);
        let ratio = exact.as_secs_f64() / bound;
        prop_assert!((ratio - 1.0).abs() < 0.08, "η {eta}: requested ratio {ratio}");

        // the oracle discovers within the worst case at an arbitrary phase
        let b = opt.schedule.beacons.as_ref().unwrap();
        let c = opt.schedule.windows.as_ref().unwrap();
        let phase = Tick(c.period().as_nanos() * phase_frac / 997);
        let t = naive_first_discovery(b, c, phase, Tick(exact.as_nanos() * 2), &cfg());
        prop_assert!(t.is_some());
        prop_assert!(t.unwrap() <= exact);
    }

    /// Theorem 5.7: asymmetric pairs stay within 3 % of the bound.
    #[test]
    fn asymmetric_pipeline(
        e_pm in 10u32..150,
        f_pm in 10u32..150,
    ) {
        let (ee, ff) = (e_pm as f64 / 1000.0, f_pm as f64 / 1000.0);
        let (e, f) = optimal::asymmetric(params(), ee, ff).unwrap();
        let exact = two_way_worst_case(&e.schedule, &f.schedule, &cfg()).unwrap();
        // tight at the achieved duty cycles: the worst direction's exact
        // latency equals ω/(βγ) of that direction
        let l_fe = bounds::unidirectional_bound(OMEGA_S, e.achieved.beta, f.achieved.gamma);
        let l_ef = bounds::unidirectional_bound(OMEGA_S, f.achieved.beta, e.achieved.gamma);
        let ratio = exact.as_secs_f64() / l_fe.max(l_ef);
        prop_assert!((ratio - 1.0).abs() < 1e-6, "η ({ee},{ff}): achieved ratio {ratio}");
        // and within quantization error of the requested budgets
        let bound = bounds::asymmetric_bound(1.0, OMEGA_S, ee, ff);
        let ratio = exact.as_secs_f64() / bound;
        prop_assert!((ratio - 1.0).abs() < 0.08, "η ({ee},{ff}): requested ratio {ratio}");
    }

    /// Monotonicity: more budget never hurts (bound and construction).
    #[test]
    fn latency_monotone_in_budget(eta_pm in 5u32..70) {
        let eta_lo = eta_pm as f64 / 1000.0;
        let eta_hi = eta_lo * 2.0;
        let lo = optimal::symmetric(params(), eta_lo).unwrap();
        let hi = optimal::symmetric(params(), eta_hi).unwrap();
        prop_assert!(hi.predicted_latency <= lo.predicted_latency);
        prop_assert!(
            bounds::symmetric_bound(1.0, OMEGA_S, eta_hi)
                <= bounds::symmetric_bound(1.0, OMEGA_S, eta_lo)
        );
    }
}
