//! Integration: the paper's bounds are achieved by the constructed
//! schedules — Theorems 5.4, 5.5, 5.6, 5.7 and C.1 are *tight*.
//!
//! These tests span all four crates: constructions from `nd-protocols`,
//! exact verification from `nd-analysis`, bounds from `nd-core`, and a
//! simulation spot-check through `nd-sim`.

use optimal_nd::analysis::montecarlo::{pair_trials, LatencySummary, PairMetric};
use optimal_nd::analysis::{one_way_worst_case, two_way_worst_case, AnalysisConfig};
use optimal_nd::core::bounds;
use optimal_nd::core::Tick;
use optimal_nd::protocols::correlated::{correlated_oneway, verify_oneway_determinism};
use optimal_nd::protocols::optimal::{self, OptimalParams};
use optimal_nd::sim::SimConfig;

const OMEGA_S: f64 = 36e-6;

fn params() -> OptimalParams {
    OptimalParams::paper_default()
}

fn cfg() -> AnalysisConfig {
    AnalysisConfig::paper_default()
}

#[test]
fn theorem_5_4_unidirectional_tight() {
    for (beta, gamma) in [(0.01, 0.02), (0.005, 0.05), (0.02, 0.1)] {
        let (tx, rx) = optimal::unidirectional(params(), beta, gamma).unwrap();
        let wc = one_way_worst_case(
            tx.schedule.beacons.as_ref().unwrap(),
            rx.schedule.windows.as_ref().unwrap(),
            &cfg(),
        )
        .unwrap();
        let bound = bounds::unidirectional_bound(OMEGA_S, tx.achieved.beta, rx.achieved.gamma);
        let ratio = wc.latency.as_secs_f64() / bound;
        assert!(
            (ratio - 1.0).abs() < 1e-6,
            "β {beta} γ {gamma}: ratio {ratio}"
        );
    }
}

#[test]
fn theorem_5_5_symmetric_tight_across_duty_cycles() {
    for eta in [0.005, 0.01, 0.02, 0.05, 0.1] {
        let opt = optimal::symmetric(params(), eta).unwrap();
        let exact = two_way_worst_case(&opt.schedule, &opt.schedule, &cfg()).unwrap();
        let bound = bounds::symmetric_bound(1.0, OMEGA_S, eta);
        let ratio = exact.as_secs_f64() / bound;
        assert!(
            (ratio - 1.0).abs() < 0.02,
            "η {eta}: ratio {ratio} (integer rounding only)"
        );
    }
}

#[test]
fn theorem_5_6_constrained_tight() {
    for (eta, beta_m) in [(0.05, 0.01), (0.1, 0.02), (0.04, 0.005)] {
        let opt = optimal::constrained(params(), eta, beta_m).unwrap();
        let exact = two_way_worst_case(&opt.schedule, &opt.schedule, &cfg()).unwrap();
        // exact vs. the bound at the *achieved* duty cycles: equality up
        // to nanosecond rounding (γ = 1/k quantization shifts both the
        // same way)
        let exact_bound =
            bounds::unidirectional_bound(OMEGA_S, opt.achieved.beta, opt.achieved.gamma);
        let ratio = exact.as_secs_f64() / exact_bound;
        assert!((ratio - 1.0).abs() < 1e-6, "η {eta} β_m {beta_m}: {ratio}");
        // vs. the bound at the *requested* parameters: within the γ = 1/k
        // quantization error
        let req_bound = bounds::constrained_bound(1.0, OMEGA_S, eta, beta_m);
        let req_ratio = exact.as_secs_f64() / req_bound;
        assert!(
            (req_ratio - 1.0).abs() < 0.05,
            "η {eta} β_m {beta_m}: {req_ratio}"
        );
        // and the cap is respected
        assert!(opt.achieved.beta <= beta_m * 1.01);
    }
}

#[test]
fn theorem_5_7_asymmetric_tight() {
    for (ee, ff) in [(0.08, 0.02), (0.1, 0.01), (0.04, 0.04)] {
        let (e, f) = optimal::asymmetric(params(), ee, ff).unwrap();
        let exact = two_way_worst_case(&e.schedule, &f.schedule, &cfg()).unwrap();
        let bound = bounds::asymmetric_bound(1.0, OMEGA_S, ee, ff);
        let ratio = exact.as_secs_f64() / bound;
        assert!((ratio - 1.0).abs() < 0.02, "η ({ee},{ff}): ratio {ratio}");
    }
}

#[test]
fn theorem_c1_oneway_tight_and_half_of_symmetric() {
    for eta in [0.02, 0.05] {
        let proto = correlated_oneway(Tick::from_micros(36), 1.0, eta).unwrap();
        let bound = bounds::oneway_bound(1.0, OMEGA_S, eta);
        let ratio = proto.predicted_latency.as_secs_f64() / bound;
        assert!((ratio - 1.0).abs() < 0.02, "η {eta}: ratio {ratio}");
        // machine-check one-way determinism over a fine phase grid
        let d1 = proto.schedule.windows.as_ref().unwrap().sum_d();
        let worst = verify_oneway_determinism(&proto.schedule, d1 / 5).expect("deterministic");
        assert!(worst <= proto.predicted_latency + d1 * 2);
    }
}

#[test]
fn no_construction_beats_its_bound() {
    // sanity direction: the exact worst case can never be *below* the
    // fundamental bound (that would disprove the paper)
    for eta in [0.01, 0.05] {
        let opt = optimal::symmetric(params(), eta).unwrap();
        let exact = two_way_worst_case(&opt.schedule, &opt.schedule, &cfg()).unwrap();
        // compare against the bound at the *achieved* duty cycle
        let achieved_eta = opt.achieved.eta(1.0);
        let bound = bounds::symmetric_bound(1.0, OMEGA_S, achieved_eta);
        assert!(
            exact.as_secs_f64() >= bound * 0.999,
            "η {eta}: exact {} below bound {bound}",
            exact.as_secs_f64()
        );
    }
}

#[test]
fn simulated_trials_never_exceed_worst_case() {
    let opt = optimal::symmetric(params(), 0.08).unwrap();
    let exact = two_way_worst_case(&opt.schedule, &opt.schedule, &cfg()).unwrap();
    let mut sim = SimConfig::paper_baseline(Tick(exact.as_nanos() * 2), 3);
    sim.collisions = false; // paper's pair-analysis assumptions (A.5)
    sim.half_duplex = false;
    let lat = pair_trials(&opt.schedule, &opt.schedule, PairMetric::TwoWay, &sim, 40);
    let s = LatencySummary::from_latencies(&lat);
    assert_eq!(s.failures, 0);
    assert!(
        s.max <= exact.as_secs_f64() * (1.0 + 1e-9),
        "sim max {} vs exact {}",
        s.max,
        exact
    );
}
