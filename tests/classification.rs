//! Integration: the Section 6 classification — the ordering of protocols
//! against the fundamental bounds holds for our from-scratch
//! implementations, measured by the exact engine.

use optimal_nd::analysis::{one_way_coverage, AnalysisConfig};
use optimal_nd::core::bounds::{constrained_bound, symmetric_bound};
use optimal_nd::core::{Schedule, Tick};
use optimal_nd::protocols::{DiffCode, Disco, ProtocolKind, Searchlight};

const SLOT: Tick = Tick::from_millis(1);
const OMEGA: Tick = Tick(36_000);
const OMEGA_S: f64 = 36e-6;

fn worst(sched: &Schedule) -> (f64, f64, f64) {
    let cfg = AnalysisConfig::paper_default();
    let cc = one_way_coverage(
        sched.beacons.as_ref().unwrap(),
        sched.windows.as_ref().unwrap(),
        &cfg,
    )
    .unwrap();
    let dc = sched.duty_cycle();
    (cc.worst_covered.as_secs_f64(), dc.eta(1.0), dc.beta)
}

#[test]
fn slotless_optimum_beats_every_slotted_protocol() {
    let eta = 0.12;
    let (l_opt, eta_opt, _) = worst(
        &ProtocolKind::OptimalSlotless
            .schedule_for_eta(eta, SLOT, OMEGA)
            .unwrap(),
    );
    // the optimum tracks its bound
    let bound = symmetric_bound(1.0, OMEGA_S, eta_opt);
    assert!(l_opt / bound < 1.02);
    for kind in [
        ProtocolKind::DiffCodes,
        ProtocolKind::Searchlight,
        ProtocolKind::Disco,
        ProtocolKind::UConnect,
    ] {
        let (l, _, _) = worst(&kind.schedule_for_eta(eta, SLOT, OMEGA).unwrap());
        assert!(
            l > l_opt * 2.0,
            "{}: {l} not clearly above the slotless optimum {l_opt}",
            kind.name()
        );
    }
}

#[test]
fn diffcodes_track_the_constrained_bound() {
    // Table 1: diff-codes are the optimal slotted family — in the
    // latency/duty-cycle/channel-utilization metric they sit within the
    // two-packets-per-slot convention factor (≈2) of Theorem 5.6, while
    // Disco is ~8x off.
    let d = DiffCode::new(31, vec![1, 5, 11, 24, 25, 27], SLOT, OMEGA).unwrap();
    let (l, eta, beta) = worst(&d.schedule().unwrap());
    let bound = constrained_bound(1.0, OMEGA_S, eta, beta);
    let factor = l / bound;
    assert!(factor < 2.5, "diff-codes factor {factor}");

    let disco = Disco::new(5, 7, SLOT, OMEGA).unwrap();
    let (l, eta, beta) = worst(&disco.schedule().unwrap());
    let bound = constrained_bound(1.0, OMEGA_S, eta, beta);
    let disco_factor = l / bound;
    assert!(
        disco_factor > factor * 1.5,
        "disco factor {disco_factor} vs diff-codes {factor}"
    );
}

#[test]
fn searchlight_between_diffcodes_and_disco() {
    let eta = 0.1;
    let normalized = |sched: &Schedule| {
        let (l, eta, beta) = worst(sched);
        l / constrained_bound(1.0, OMEGA_S, eta, beta)
    };
    let dc = normalized(
        &DiffCode::best_known_for_duty_cycle(eta, SLOT, OMEGA)
            .unwrap()
            .schedule()
            .unwrap(),
    );
    let sl = normalized(
        &Searchlight::for_duty_cycle(eta, SLOT, OMEGA)
            .unwrap()
            .schedule()
            .unwrap(),
    );
    let di = normalized(
        &Disco::balanced_for_duty_cycle(eta, SLOT, OMEGA)
            .unwrap()
            .schedule()
            .unwrap(),
    );
    assert!(dc < sl, "diff-codes {dc} < searchlight {sl}");
    assert!(sl < di, "searchlight {sl} < disco {di}");
}

#[test]
fn published_slot_domain_worst_cases_hold() {
    // measured worst case (in slots) never exceeds the published guarantee
    // (+1 slot of arrival slack) for the covered offsets
    let slots = |sched: &Schedule| worst(sched).0 / SLOT.as_secs_f64();

    let d = Disco::new(5, 7, SLOT, OMEGA).unwrap();
    assert!(slots(&d.schedule().unwrap()) <= (5 * 7 + 1) as f64);

    let s = Searchlight::new(8, SLOT, OMEGA).unwrap();
    assert!(slots(&s.schedule().unwrap()) <= (s.worst_case_slots() + 1) as f64);

    let dc = DiffCode::new(21, vec![3, 6, 7, 12, 14], SLOT, OMEGA).unwrap();
    assert!(slots(&dc.schedule().unwrap()) <= 22.0);
}
