//! Turning tracing on must not change *what* a sweep computes: spec and
//! job content hashes feed the result cache and the optimizer's
//! provenance lines, so instrumentation that perturbed them would
//! invalidate caches (or worse, silently fork result identities), and
//! exports are byte-for-byte deterministic by contract.
//!
//! Single test in its own file: the trace sink is process-global.

use nd_sweep::{expand, run_sweep, ScenarioSpec, SweepOptions};
use std::io::Write;
use std::sync::{Arc, Mutex};

const SPEC: &str = r#"
name = "trace-noninterference"
backend = "exact"

[grid]
protocol = ["optimal-slotless", "disco"]
eta = [0.15]
"#;

/// A trace sink the test can read back.
#[derive(Clone)]
struct Shared(Arc<Mutex<Vec<u8>>>);

impl Write for Shared {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

struct Fingerprint {
    spec_hash: String,
    job_hashes: Vec<String>,
    csv: String,
    json: String,
}

fn fingerprint() -> Fingerprint {
    let spec = ScenarioSpec::from_toml_str(SPEC).unwrap();
    let job_hashes = expand(&spec)
        .iter()
        .map(|j| j.content_hash(&spec))
        .collect();
    let outcome = run_sweep(&spec, &SweepOptions::uncached()).unwrap();
    Fingerprint {
        spec_hash: spec.content_hash(),
        job_hashes,
        csv: nd_sweep::to_csv(&outcome),
        json: nd_sweep::to_json(&outcome),
    }
}

#[test]
fn nd_trace_changes_no_hashes_and_no_exports() {
    let baseline = fingerprint();

    let buf = Shared(Arc::new(Mutex::new(Vec::new())));
    nd_obs::trace::init_writer(Box::new(buf.clone()));
    let traced = fingerprint();
    nd_obs::trace::shutdown();

    assert_eq!(
        baseline.spec_hash, traced.spec_hash,
        "tracing changed the spec content hash"
    );
    assert_eq!(
        baseline.job_hashes, traced.job_hashes,
        "tracing changed job content hashes"
    );
    assert_eq!(baseline.csv, traced.csv, "tracing changed the CSV export");
    assert_eq!(
        baseline.json, traced.json,
        "tracing changed the JSON export"
    );

    // and the trace itself is well-formed: parses as JSONL, spans nest,
    // and every job got a span
    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let report = nd_sweep::tracecheck::check_trace(&text).expect("trace must validate");
    assert_eq!(report.by_name["sweep.run"], 1);
    assert_eq!(report.by_name["sweep.job"], 2);
    assert_eq!(report.by_name["backend.exact"], 2);
}
