//! Backward-compatibility regression: every symmetric scenario spec that
//! predates the role-typed pipeline must keep its content hashes — spec
//! hash and per-job hashes — byte for byte. The role-B axes enter a hash
//! only when a spec actually uses them, so the entire pre-role cache
//! stays valid with no ENGINE_VERSION bump.
//!
//! The pinned values below were captured from `nd-sweep hash` /
//! `nd-sweep expand` on the commit immediately before the role axes
//! landed (`fb563df`). If this test fails, symmetric users just lost
//! their cache: either restore hash equality or bump ENGINE_VERSION and
//! re-pin deliberately.

use nd_sweep::{expand, ScenarioSpec};
use std::path::PathBuf;

fn scenario(name: &str) -> ScenarioSpec {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../scenarios")
        .join(name);
    ScenarioSpec::from_file(&path).unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// `(spec file, pinned spec hash, pinned 12-hex job hash prefixes)`.
const PINNED: &[(&str, &str, &[&str])] = &[
    (
        "drift-strip-rescue.toml",
        "a99e39d086c1b0851149f883949c3fd04c5e6dc678d4a46cf9892fdfe5c50a92",
        &[
            "480bdd510472",
            "cf6fccf74b76",
            "62e0ba33fa64",
            "07a47c23bff4",
        ],
    ),
    (
        "fig5-slot-boundary-strips.toml",
        "492127b617d01a8c62be558812dcd7289e38c911ec603f5c8cbec833259ba1dd",
        &[
            "264e92b31979",
            "246cb2dc646c",
            "6af00312af57",
            "1bbd698d7b78",
            "8d2bb7f69cb8",
        ],
    ),
    (
        "fig6-asymmetry-cost.toml",
        "3f484c6b1d9619a0153756b0ca4ce9585758333b6d53cacc304ad90f9ecee384",
        &[
            "f97d3c60f831",
            "7358a8750759",
            "208fea5e843c",
            "56bbdecf26f5",
            "c8dc6d1207ea",
        ],
    ),
    (
        "netsim-churn-resilience.toml",
        "fc6796cf87fb58f896c1018077ab6015eaca1e0b8308fa7d47a4cfc41a9ef790",
        &[
            "0e86b38eca8b",
            "9f9e9aae60ea",
            "9ddb042510c5",
            "bfaad19e56bc",
            "6b808761556b",
        ],
    ),
    (
        "netsim-cohort-scaling.toml",
        "82a95558d4962f5896ab16491ec3de70b3c945d38fe8063c87181dd573f9c09c",
        &[
            "c8bc56cf3795",
            "5528ac006d46",
            "dc5120c52a80",
            "79bdc8ffc380",
            "8b35f66f2e33",
            "445ffb6d9a66",
        ],
    ),
    (
        "pfail-self-blocking.toml",
        "3b9fc900f2fb435ac9ddb4fbbe6e447f46f95e42a1280a8fc9f7884b1e117763",
        &["9944f27489c8", "253f84859b1d"],
    ),
    (
        "protocol-shootout.toml",
        "85f05f386bfae5ffb0e26bdc50155243ebdc7956316e1ac55555500bc9a27a16",
        &[
            "e97354136e75",
            "880778ccf0aa",
            "445c8ed9cd02",
            "d319a249f916",
        ],
    ),
];

#[test]
fn pre_role_scenario_specs_hash_identically_to_main() {
    for (file, spec_hash, job_prefixes) in PINNED {
        let spec = scenario(file);
        assert_eq!(
            &spec.content_hash(),
            spec_hash,
            "{file}: spec content hash changed — symmetric cache invalidated"
        );
        let jobs = expand(&spec);
        assert!(
            jobs.len() >= job_prefixes.len(),
            "{file}: fewer jobs than pinned"
        );
        for (job, pinned) in jobs.iter().zip(*job_prefixes) {
            assert_eq!(
                &job.content_hash(&spec)[..12],
                *pinned,
                "{file} job {}: content hash changed — symmetric cache invalidated",
                job.index
            );
        }
    }
}

/// The same property, spec-level: a symmetric grid encodes no role-B
/// bytes at all, while any role-B departure changes both the spec hash
/// and the affected job hashes.
#[test]
fn role_axes_only_hash_when_used() {
    let sym = ScenarioSpec::from_toml_str(
        "backend = \"exact\"\n[grid]\nprotocol = [\"optimal-slotless\"]\neta = [0.05]\n",
    )
    .unwrap();
    let sym_job = &expand(&sym)[0];
    assert!(!sym.grid.has_role_axes());
    assert!(!sym_job.has_role_b());

    let asym = ScenarioSpec::from_toml_str(
        "backend = \"exact\"\n[grid]\nprotocol = [\"optimal-slotless\"]\neta = [0.05]\neta_b = [0.02]\n",
    )
    .unwrap();
    assert!(asym.grid.has_role_axes());
    assert_ne!(sym.content_hash(), asym.content_hash());
    let asym_job = &expand(&asym)[0];
    assert!(asym_job.has_role_b());
    assert_ne!(sym_job.content_hash(&sym), asym_job.content_hash(&asym));
}
