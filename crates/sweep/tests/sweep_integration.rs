//! End-to-end tests of the sweep subsystem: determinism, cache-hit
//! equivalence, overlapping-grid reuse, and the CLI binary.

use nd_sweep::{run_sweep, to_csv, to_json, ScenarioSpec, SweepOptions};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nd-sweep-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const MC_SPEC: &str = r#"
name = "it-mc"
backend = "montecarlo"
metric = "two-way"

[grid]
protocol = ["optimal-slotless"]
eta = [0.05, 0.10]
drop_probability = [0.0, 0.2]

[sim]
trials = 6
seed = 13
horizon_predicted_x = 4.0
collisions = false
half_duplex = false
"#;

#[test]
fn same_spec_and_seed_byte_identical_results() {
    let spec = ScenarioSpec::from_toml_str(MC_SPEC).unwrap();
    let a = run_sweep(&spec, &SweepOptions::uncached()).unwrap();
    let b = run_sweep(
        &spec,
        &SweepOptions {
            threads: Some(1),
            ..SweepOptions::uncached()
        },
    )
    .unwrap();
    assert_eq!(to_csv(&a), to_csv(&b), "parallel == serial, run to run");

    // a different seed must actually change something (no accidental
    // constant results)
    let mut reseeded = spec.clone();
    reseeded.sim.seed = 14;
    let c = run_sweep(&reseeded, &SweepOptions::uncached()).unwrap();
    assert_ne!(to_csv(&a), to_csv(&c), "seed feeds the trials");
}

#[test]
fn cached_run_equals_fresh_run() {
    let cache_dir = temp_dir("cache-equiv");
    let spec = ScenarioSpec::from_toml_str(MC_SPEC).unwrap();
    let opts = SweepOptions {
        cache_dir: Some(cache_dir.clone()),
        ..SweepOptions::default()
    };

    let fresh = run_sweep(&spec, &opts).unwrap();
    assert_eq!(fresh.cache_hits, 0);
    assert_eq!(fresh.executed, 4);
    assert!(fresh.rows.iter().all(|r| !r.from_cache));

    let cached = run_sweep(&spec, &opts).unwrap();
    assert_eq!(cached.cache_hits, 4);
    assert_eq!(cached.executed, 0);
    assert!(cached.rows.iter().all(|r| r.from_cache));

    assert_eq!(to_csv(&fresh), to_csv(&cached), "cache is transparent");
    // JSON differs only in the from_cache flags
    assert_eq!(
        to_json(&fresh).replace("\"from_cache\": false", "x"),
        to_json(&cached).replace("\"from_cache\": true", "x"),
    );
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn overlapping_grids_reuse_cache_entries() {
    let cache_dir = temp_dir("overlap");
    let opts = SweepOptions {
        cache_dir: Some(cache_dir.clone()),
        ..SweepOptions::default()
    };
    let narrow = ScenarioSpec::from_toml_str(
        "backend = \"bounds\"\n[grid]\neta = [0.05]\nratio = [1.0, 2.0]\n",
    )
    .unwrap();
    let wide = ScenarioSpec::from_toml_str(
        "backend = \"bounds\"\n[grid]\neta = [0.05, 0.10]\nratio = [1.0, 2.0]\n",
    )
    .unwrap();

    let first = run_sweep(&narrow, &opts).unwrap();
    assert_eq!(first.executed, 2);

    // the wide grid shares the two already-computed points
    let second = run_sweep(&wide, &opts).unwrap();
    assert_eq!(second.rows.len(), 4);
    assert_eq!(second.cache_hits, 2, "overlap served from cache");
    assert_eq!(second.executed, 2);
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn failed_jobs_are_rows_and_cached() {
    let cache_dir = temp_dir("failed");
    let opts = SweepOptions {
        cache_dir: Some(cache_dir.clone()),
        ..SweepOptions::default()
    };
    let spec = ScenarioSpec::from_toml_str(
        "[grid]\nprotocol = [\"optimal-slotless\", \"does-not-exist\"]\neta = [0.05]\n",
    )
    .unwrap();
    let first = run_sweep(&spec, &opts).unwrap();
    assert!(first.rows[0].error.is_none());
    assert!(first.rows[1].error.is_some());
    let second = run_sweep(&spec, &opts).unwrap();
    assert_eq!(second.cache_hits, 2, "errors cached too");
    assert_eq!(second.rows[1].error, first.rows[1].error);
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// The netsim backend at N = 2, zero churn, collisions off must agree
/// with the pairwise montecarlo backend: both sample the same process
/// (two optimal schedules at independent uniform phases), so their mean
/// one-way latencies differ only by Monte-Carlo noise.
#[test]
fn netsim_n2_matches_pairwise_montecarlo_within_tolerance() {
    let shared = "metric = \"one-way\"\n\
         [grid]\nprotocol = [\"optimal-slotless\"]\neta = [0.10]\n";
    let sim = "[sim]\ntrials = 60\nseed = 21\nhorizon_predicted_x = 4.0\nhalf_duplex = false\n";
    let mc = ScenarioSpec::from_toml_str(&format!(
        "backend = \"montecarlo\"\n{shared}{sim}collisions = false\n"
    ))
    .unwrap();
    let net = ScenarioSpec::from_toml_str(&format!(
        "backend = \"netsim\"\n{shared}nodes = [2]\ncollision = [false]\n{sim}"
    ))
    .unwrap();

    let mc_out = run_sweep(&mc, &SweepOptions::uncached()).unwrap();
    let net_out = run_sweep(&net, &SweepOptions::uncached()).unwrap();
    let mc_row = &mc_out.rows[0];
    let net_row = &net_out.rows[0];
    assert!(mc_row.error.is_none(), "{:?}", mc_row.error);
    assert!(net_row.error.is_none(), "{:?}", net_row.error);

    // no failures on either engine within 4× the guarantee
    assert_eq!(mc_row.metric("failure_rate"), Some(0.0));
    assert_eq!(net_row.metric("pair_discovered_frac"), Some(1.0));

    // the worst case is bounded by the same guarantee on both engines
    let predicted = mc_row.metric("predicted_s").unwrap();
    assert!(mc_row.metric("max_s").unwrap() <= predicted * 1.001);
    assert!(net_row.metric("pair_max_s").unwrap() <= predicted * 1.001);

    // and the mean latencies agree within Monte-Carlo tolerance: both
    // means sit near predicted/2 with σ ≈ predicted/√(12·n); 60 + 120
    // samples put 5σ of the difference well under 0.2 × predicted
    let mc_mean = mc_row.metric("mean_s").unwrap();
    let net_mean = net_row.metric("pair_mean_s").unwrap();
    assert!(
        (mc_mean - net_mean).abs() < 0.2 * predicted,
        "montecarlo mean {mc_mean} vs netsim pair mean {net_mean} (predicted {predicted})"
    );
}

/// Event ordering inside netsim — and therefore every metric — is
/// deterministic regardless of how many worker threads execute the sweep.
#[test]
fn netsim_results_identical_across_thread_counts() {
    let spec = ScenarioSpec::from_toml_str(
        "backend = \"netsim\"\nmetric = \"two-way\"\n\
         [grid]\nprotocol = [\"optimal-slotless\", \"disco\"]\neta = [0.05, 0.10]\nnodes = [4]\nchurn = [0.0, 0.4]\n\
         [sim]\ntrials = 3\nseed = 5\nhorizon_ms = 150\n",
    )
    .unwrap();
    let serial = run_sweep(
        &spec,
        &SweepOptions {
            threads: Some(1),
            ..SweepOptions::uncached()
        },
    )
    .unwrap();
    let parallel = run_sweep(
        &spec,
        &SweepOptions {
            threads: Some(8),
            ..SweepOptions::uncached()
        },
    )
    .unwrap();
    assert_eq!(serial.rows.len(), 8);
    assert_eq!(to_csv(&serial), to_csv(&parallel), "1 thread == 8 threads");
}

/// `nd-sweep run` must exit non-zero when *any* job errored — including
/// on a second invocation where the errors replay from the cache.
#[test]
fn cli_exits_nonzero_when_any_job_fails() {
    let dir = temp_dir("cli-fail");
    let spec_path = dir.join("spec.toml");
    std::fs::write(
        &spec_path,
        "name = \"partial\"\n[grid]\nprotocol = [\"optimal-slotless\", \"warp-drive\"]\neta = [0.05]\n",
    )
    .unwrap();
    let bin = env!("CARGO_BIN_EXE_nd-sweep");
    let run = || {
        std::process::Command::new(bin)
            .arg("run")
            .arg(&spec_path)
            .arg("--out-dir")
            .arg(dir.join("out"))
            .arg("--cache-dir")
            .arg(dir.join("cache"))
            .output()
            .unwrap()
    };

    let first = run();
    assert!(!first.status.success(), "one of two jobs failed");
    let stderr = String::from_utf8_lossy(&first.stderr);
    assert!(stderr.contains("1 of 2 job(s) failed"), "{stderr}");
    // exports are still written so the error column can be inspected
    let csv = std::fs::read_to_string(dir.join("out").join("partial.csv")).unwrap();
    assert!(csv.contains("warp-drive"));

    // cached errors fail the run too
    let second = run();
    assert!(!second.status.success(), "cached errors must still fail");
    let stdout = String::from_utf8_lossy(&second.stdout);
    assert!(stdout.contains("2 cached"), "{stdout}");

    // an all-green spec still exits zero
    std::fs::write(
        &spec_path,
        "name = \"green\"\n[grid]\nprotocol = [\"optimal-slotless\"]\neta = [0.05]\n",
    )
    .unwrap();
    assert!(run().status.success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_run_expand_hash_roundtrip() {
    let dir = temp_dir("cli");
    let spec_path = dir.join("spec.toml");
    std::fs::write(
        &spec_path,
        "name = \"cli-demo\"\nbackend = \"bounds\"\n[grid]\neta = [0.05, 0.10]\nratio = [1.0, 2.0]\n",
    )
    .unwrap();
    let bin = env!("CARGO_BIN_EXE_nd-sweep");
    let cache_dir = dir.join("cache");
    let out_dir = dir.join("out");

    let run = |extra: &[&str]| {
        let mut cmd = std::process::Command::new(bin);
        cmd.arg("run")
            .arg(&spec_path)
            .arg("--out-dir")
            .arg(&out_dir)
            .arg("--cache-dir")
            .arg(&cache_dir);
        for a in extra {
            cmd.arg(a);
        }
        let out = cmd.output().unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };

    let first = run(&[]);
    assert!(first.contains("4 jobs (0 cached, 4 executed"), "{first}");
    let csv = std::fs::read_to_string(out_dir.join("cli-demo.csv")).unwrap();
    assert_eq!(csv.lines().next(), Some("# nd-export/v1"));
    assert_eq!(csv.lines().count(), 6); // schema tag + header + 4 rows
    assert!(out_dir.join("cli-demo.json").exists());

    // repeated invocation is served from cache
    let second = run(&[]);
    assert!(second.contains("4 jobs (4 cached, 0 executed"), "{second}");
    let csv2 = std::fs::read_to_string(out_dir.join("cli-demo.csv")).unwrap();
    assert_eq!(csv, csv2, "cached invocation produces identical output");

    // expand and hash subcommands
    let expand = std::process::Command::new(bin)
        .arg("expand")
        .arg(&spec_path)
        .output()
        .unwrap();
    assert!(expand.status.success());
    let expand = String::from_utf8(expand.stdout).unwrap();
    assert!(expand.contains("4 job(s)"), "{expand}");

    let hash = std::process::Command::new(bin)
        .arg("hash")
        .arg(&spec_path)
        .output()
        .unwrap();
    let hash = String::from_utf8(hash.stdout).unwrap();
    assert_eq!(hash.trim().len(), 64, "sha-256 hex: {hash}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--version` prints one stable provenance line (version + engine/cache
/// ABI) so scripted runs can record which binary produced their data, and
/// `--help` documents every subcommand including `--version` itself.
#[test]
fn cli_version_and_help_record_provenance() {
    let bin = env!("CARGO_BIN_EXE_nd-sweep");
    for flag in ["--version", "-V", "version"] {
        let out = std::process::Command::new(bin).arg(flag).output().unwrap();
        assert!(out.status.success(), "{flag}");
        let text = String::from_utf8(out.stdout).unwrap();
        assert_eq!(text.lines().count(), 1, "one parseable line: {text}");
        assert!(
            text.starts_with(&format!("nd-sweep {}", env!("CARGO_PKG_VERSION"))),
            "{text}"
        );
        assert!(
            text.contains(nd_sweep::ENGINE_VERSION),
            "engine/cache ABI in provenance: {text}"
        );
    }

    let help = std::process::Command::new(bin)
        .arg("--help")
        .output()
        .unwrap();
    assert!(help.status.success());
    let help = String::from_utf8(help.stdout).unwrap();
    for needle in [
        "run",
        "expand",
        "hash",
        "protocols",
        "--version",
        "--cache-dir",
        "netsim",
        "EXIT STATUS",
    ] {
        assert!(
            help.contains(needle),
            "help must mention `{needle}`:\n{help}"
        );
    }
}

/// `nd-sweep cache stats` / `cache gc`: size accounting, dry-run
/// reporting, and LRU eviction — the cache shrinks to the byte budget
/// and a subsequent run of the surviving spec still hits.
#[test]
fn cli_cache_stats_and_gc() {
    let dir = temp_dir("cache-gc");
    let cache_dir = dir.join("cache");
    let out_dir = dir.join("out");
    let spec_path = dir.join("spec.toml");
    std::fs::write(
        &spec_path,
        "name = \"gc-spec\"\nbackend = \"bounds\"\n[grid]\neta = [0.05, 0.10]\nratio = [1.0, 2.0]\n",
    )
    .unwrap();
    let bin = env!("CARGO_BIN_EXE_nd-sweep");
    let run = |args: &[&str]| {
        let out = std::process::Command::new(bin).args(args).output().unwrap();
        (
            out.status.success(),
            String::from_utf8_lossy(&out.stdout).to_string(),
            String::from_utf8_lossy(&out.stderr).to_string(),
        )
    };
    let cache_str = cache_dir.to_str().unwrap();

    // populate 4 entries
    let (ok, _, stderr) = run(&[
        "run",
        spec_path.to_str().unwrap(),
        "--cache-dir",
        cache_str,
        "--out-dir",
        out_dir.to_str().unwrap(),
        "--quiet",
    ]);
    assert!(ok, "{stderr}");

    let (ok, stdout, _) = run(&["cache", "stats", "--cache-dir", cache_str]);
    assert!(ok);
    assert!(stdout.contains("4 entries"), "{stdout}");

    // dry run reports reclaimable bytes, deletes nothing
    let (ok, stdout, _) = run(&[
        "cache",
        "gc",
        "--max-bytes",
        "0",
        "--dry-run",
        "--cache-dir",
        cache_str,
    ]);
    assert!(ok);
    assert!(stdout.contains("4 entries / "), "{stdout}");
    assert!(stdout.contains("reclaimable"), "{stdout}");
    assert!(stdout.contains("dry run"), "{stdout}");
    let (_, stdout, _) = run(&["cache", "stats", "--cache-dir", cache_str]);
    assert!(
        stdout.contains("4 entries"),
        "dry run must not delete: {stdout}"
    );

    // a real gc to ~half the size evicts the least recently used half
    let (ok, stdout, _) = run(&["cache", "gc", "--max-bytes", "1", "--cache-dir", cache_str]);
    assert!(ok);
    assert!(stdout.contains("evicted 4 of 4 entries"), "{stdout}");
    let (_, stdout, _) = run(&["cache", "stats", "--cache-dir", cache_str]);
    assert!(stdout.contains("0 entries"), "{stdout}");

    // bad invocations fail loudly
    for bad in [
        vec!["cache"],
        vec!["cache", "gc"],                        // missing --max-bytes
        vec!["cache", "gc", "--max-bytes", "lots"], // not a byte count
        vec!["cache", "stats", "--dry-run"],        // stats takes no gc flags
        vec!["cache", "frobnicate"],
    ] {
        let out = std::process::Command::new(bin).args(&bad).output().unwrap();
        assert!(!out.status.success(), "{bad:?} must fail");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Role-typed sweep end to end through the CLI: the BLE advertiser vs.
/// scanner scenario exercises the `eta_b` axis and the per-role energy
/// columns, and re-runs hit the cache like any other sweep.
#[test]
fn cli_runs_role_typed_scenarios() {
    let dir = temp_dir("roles-cli");
    let cache_dir = dir.join("cache");
    let out_dir = dir.join("out");
    let spec_path = dir.join("asym.toml");
    std::fs::write(
        &spec_path,
        "name = \"asym-cli\"\nbackend = \"exact\"\nmetric = \"two-way\"\npercentiles = false\n\
         [grid]\nprotocol = [\"optimal-slotless\"]\neta = [0.08]\neta_b = [0.02]\n",
    )
    .unwrap();
    let bin = env!("CARGO_BIN_EXE_nd-sweep");
    let args = [
        "run",
        spec_path.to_str().unwrap(),
        "--cache-dir",
        cache_dir.to_str().unwrap(),
        "--out-dir",
        out_dir.to_str().unwrap(),
    ];
    let first = std::process::Command::new(bin).args(args).output().unwrap();
    assert!(
        first.status.success(),
        "{}",
        String::from_utf8_lossy(&first.stderr)
    );
    let csv = std::fs::read_to_string(out_dir.join("asym-cli.csv")).unwrap();
    let header = csv.lines().nth(1).unwrap(); // line 0 is the schema tag
    for col in ["protocol_b", "eta_b", "slot_us_b", "mix", "asym_bound_s"] {
        assert!(header.contains(col), "missing `{col}` in {header}");
    }
    let second = std::process::Command::new(bin).args(args).output().unwrap();
    assert!(second.status.success());
    let stdout = String::from_utf8_lossy(&second.stdout);
    assert!(stdout.contains("0 executed"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_progress_never_interleaves_with_summary() {
    // With ND_PROGRESS=1 forcing progress repaints and --stats moving
    // the summary onto stderr (the stream progress paints on), the
    // summary must always start at column zero: at the start of stderr
    // or right after a newline / carriage return, never appended to a
    // half-painted progress line.
    let dir = temp_dir("progress");
    let spec_path = dir.join("spec.toml");
    std::fs::write(
        &spec_path,
        "name = \"prog-demo\"\nbackend = \"bounds\"\n[grid]\neta = [0.02, 0.05, 0.08, 0.10]\nratio = [1.0, 2.0]\n",
    )
    .unwrap();
    let bin = env!("CARGO_BIN_EXE_nd-sweep");
    let out = std::process::Command::new(bin)
        .arg("run")
        .arg(&spec_path)
        .arg("--stats")
        .arg("--no-cache")
        .env("ND_PROGRESS", "1")
        .output()
        .unwrap();
    assert!(out.status.success());

    // stdout is the metrics snapshot: valid JSON, no progress bytes
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(!stdout.contains('\r'), "progress leaked onto stdout");
    nd_sweep::value::parse_json(&stdout).expect("stats snapshot parses");

    let stderr = String::from_utf8(out.stderr).unwrap();
    let needle = "prog-demo: 8 jobs";
    for (pos, _) in stderr.match_indices(needle) {
        let before = &stderr[..pos];
        assert!(
            before.is_empty() || before.ends_with('\n') || before.ends_with('\r'),
            "summary glued to progress residue: {:?}",
            &stderr[pos.saturating_sub(40)..pos + needle.len()]
        );
    }
    assert!(stderr.contains(needle), "summary missing: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}
