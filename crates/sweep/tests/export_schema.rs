//! Regression pin for the `nd-export/v1` envelope: the exact bytes of a
//! small, fully deterministic (closed-form bounds backend) sweep export.
//! Any change to the envelope, column layout, float rendering or document
//! shape trips this test — which is the point: existing exports must stay
//! byte-stable within a schema version, and intentional format changes
//! must bump `EXPORT_SCHEMA`.

use nd_sweep::{run_sweep, to_csv, to_json, ScenarioSpec, SweepOptions, EXPORT_SCHEMA};

fn outcome() -> nd_sweep::SweepOutcome {
    let spec = ScenarioSpec::from_toml_str(
        "name = \"golden\"\nbackend = \"bounds\"\n[grid]\neta = [0.05, 0.1]\nratio = [1.0]\n",
    )
    .unwrap();
    run_sweep(&spec, &SweepOptions::uncached()).unwrap()
}

#[test]
fn schema_tag_is_v1() {
    assert_eq!(EXPORT_SCHEMA, "nd-export/v1");
}

#[test]
fn golden_csv_bytes() {
    let expected = "\
# nd-export/v1
protocol,eta,slot_us,protocol_b,eta_b,slot_us_b,mix,nodes,churn,collision,drift_ppm,drop_probability,turnaround_us,phase_us,ratio,bound_s,penalty,product,error
optimal-slotless,0.05,1000,,,,0,2,0,true,0,0,0,random,1,0.23039999999999997,1,0.011519999999999999,
optimal-slotless,0.1,1000,,,,0,2,0,true,0,0,0,random,1,0.05759999999999999,1,0.0057599999999999995,
";
    assert_eq!(to_csv(&outcome()), expected);
}

#[test]
fn golden_json_bytes() {
    let expected = r#"{
  "name": "golden",
  "rows": [
    {
      "error": null,
      "from_cache": false,
      "metrics": {
        "bound_s": 0.23039999999999997,
        "penalty": 1.0,
        "product": 0.011519999999999999
      },
      "params": {
        "churn": 0.0,
        "collision": true,
        "drift_ppm": 0,
        "drop_probability": 0.0,
        "eta": 0.05,
        "eta_b": null,
        "mix": 0.0,
        "nodes": 2,
        "phase_us": "random",
        "protocol": "optimal-slotless",
        "protocol_b": null,
        "ratio": 1.0,
        "slot_us": 1000.0,
        "slot_us_b": null,
        "turnaround_us": 0.0
      }
    },
    {
      "error": null,
      "from_cache": false,
      "metrics": {
        "bound_s": 0.05759999999999999,
        "penalty": 1.0,
        "product": 0.0057599999999999995
      },
      "params": {
        "churn": 0.0,
        "collision": true,
        "drift_ppm": 0,
        "drop_probability": 0.0,
        "eta": 0.1,
        "eta_b": null,
        "mix": 0.0,
        "nodes": 2,
        "phase_us": "random",
        "protocol": "optimal-slotless",
        "protocol_b": null,
        "ratio": 1.0,
        "slot_us": 1000.0,
        "slot_us_b": null,
        "turnaround_us": 0.0
      }
    }
  ],
  "schema": "nd-export/v1",
  "spec_hash": "0adf7c7afab83f92b9a96cbea43431b30563c3c9d548a624893e43e46e56ac77"
}
"#;
    assert_eq!(to_json(&outcome()), expected);
}
