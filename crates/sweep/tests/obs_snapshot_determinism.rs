//! Metric snapshots must be byte-identical across thread counts once
//! wall-clock/scheduling-dependent series are excluded.
//!
//! The convention (documented in the README's Observability section):
//! names ending `_us`/`_ns`/`_per_sec` and everything under `pool.` carry
//! timing or scheduling state and are expected to vary run to run; every
//! other metric is a deterministic function of the work performed, so a
//! 1-thread and a 4-thread run of the same spec must agree exactly.
//!
//! This file holds a single test on purpose: the metrics registry is
//! process-global, and a sibling test mutating it concurrently would make
//! the comparison meaningless. A dedicated integration-test binary gives
//! it a process of its own.

use nd_sweep::{run_sweep, ScenarioSpec, SweepOptions};

const SPEC: &str = r#"
name = "obs-determinism"
backend = "netsim"

[grid]
protocol = ["optimal-slotless"]
eta = [0.05]
nodes = [2, 4]
collision = [true, false]

[sim]
trials = 2
horizon_ms = 40
"#;

/// Drop every metric that legitimately depends on timing or scheduling.
fn deterministic_part() -> nd_obs::Snapshot {
    let mut snap = nd_obs::metrics::snapshot();
    snap.retain(|name| {
        !name.ends_with("_us")
            && !name.ends_with("_ns")
            && !name.ends_with("_per_sec")
            && !name.starts_with("pool.")
    });
    snap
}

fn snapshot_for(threads: usize) -> String {
    nd_obs::metrics::reset();
    let spec = ScenarioSpec::from_toml_str(SPEC).unwrap();
    let opts = SweepOptions {
        threads: Some(threads),
        ..SweepOptions::uncached()
    };
    let outcome = run_sweep(&spec, &opts).unwrap();
    assert_eq!(outcome.rows.len(), 4);
    deterministic_part().to_json()
}

#[test]
fn snapshots_are_byte_identical_across_thread_counts() {
    nd_obs::metrics::set_enabled(true);
    let serial = snapshot_for(1);
    let parallel = snapshot_for(4);
    let again = snapshot_for(4);

    // the filtered snapshot still carries real content: job accounting
    // and netsim event totals
    assert!(
        serial.contains("\"sweep.jobs\": 4"),
        "filtered snapshot lost sweep accounting:\n{serial}"
    );
    assert!(
        serial.contains("netsim.events"),
        "filtered snapshot lost netsim counters:\n{serial}"
    );

    assert_eq!(
        serial, parallel,
        "1-thread vs 4-thread snapshots differ after filtering"
    );
    assert_eq!(parallel, again, "4-thread snapshot is not reproducible");
}
