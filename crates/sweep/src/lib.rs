//! # nd-sweep — the parallel scenario-sweep orchestrator
//!
//! The experiment modules of `nd-bench` each hand-roll a parameter loop
//! over the exact analysis or the simulator. This crate turns that pattern
//! into one declarative, parallel, cached operation:
//!
//! 1. **Scenario specs** ([`spec`]) — TOML/JSON descriptions of a sweep: a
//!    protocol axis (registry names or parametrized difference codes),
//!    grids over duty cycle, slot length, drift, turnaround overheads and
//!    fault injection, and the evaluation backend (exact coverage-map
//!    analysis, Monte-Carlo simulation, or closed-form bounds).
//! 2. **The engine** ([`engine`]) — expands the grid into jobs
//!    ([`grid`]), executes them across all cores ([`pool`]) with
//!    deterministic per-job seeds derived from job *content*, and
//!    aggregates latency/energy metrics from `nd-analysis` and `nd-sim`.
//! 3. **A content-addressed result cache** ([`cache`]) — every job result
//!    is stored under a SHA-256 of its resolved parameters and the engine
//!    version, so re-runs and overlapping grids are near-free.
//! 4. **Exporters** ([`export`]) and the `nd-sweep` CLI binary — CSV and
//!    JSON, deterministic byte-for-byte.
//!
//! ```
//! use nd_sweep::{run_sweep, ScenarioSpec, SweepOptions};
//!
//! let spec = ScenarioSpec::from_toml_str(r#"
//!     name = "quick"
//!     backend = "exact"
//!     [grid]
//!     protocol = ["optimal-slotless", "disco"]
//!     eta = [0.05]
//! "#).unwrap();
//! let outcome = run_sweep(&spec, &SweepOptions::uncached()).unwrap();
//! assert_eq!(outcome.rows.len(), 2);
//! let csv = nd_sweep::to_csv(&outcome);
//! // schema comment + header + one line per job
//! assert!(csv.lines().count() == 4);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod engine;
pub mod export;
pub mod grid;
pub mod hash;
pub mod pool;
pub mod spec;
pub mod tracecheck;
pub mod value;

pub use cache::{CacheError, CacheStats, CachedResult, GcReport, ResultCache};
pub use engine::{run_sweep, Row, SweepError, SweepOptions, SweepOutcome};
pub use export::{to_csv, to_json, EXPORT_SCHEMA};
pub use grid::{expand, Job};
pub use spec::{Backend, Metric, ScenarioSpec, SpecError, ENGINE_VERSION};
pub use value::Value;
