//! The sweep engine: expand a spec into jobs, serve what the cache
//! already knows, execute the rest across all cores, aggregate rows.
//!
//! Execution is deterministic end to end: per-job RNG seeds derive from
//! the job's content hash ([`Job::seed`]), the worker pool writes results
//! into index-ordered slots, and every backend is itself deterministic
//! given its seed — so the same spec produces byte-identical exports
//! whether it ran on 1 thread or 64, fresh or from cache.

use crate::cache::{CachedResult, ResultCache};
use crate::grid::{expand, Job};
use crate::pool::{default_threads, run_parallel};
use crate::spec::{Backend, Deadline, Horizon, Metric, ScenarioSpec};
use crate::value::Value;
use nd_analysis::{
    one_way_coverage, two_way_worst_case, AnalysisConfig, LatencyDistribution, LatencySummary,
};
use nd_core::bounds::asymmetric::{asymmetry_penalty, product_vs_joint_budget};
use nd_core::error::NdError;
use nd_core::schedule::Schedule;
use nd_core::time::Tick;
use nd_netsim::{ChurnPlan, NetSimulator, NodeSpec, PairMetric};
use nd_sim::{Behavior, Drifting, ScheduleBehavior, Simulator, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt;
use std::time::{Duration, Instant};

/// Options orthogonal to the spec: where to cache, how parallel to run.
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Worker threads; `None` = all cores.
    pub threads: Option<usize>,
    /// Consult/populate the result cache.
    pub use_cache: bool,
    /// Cache location; `None` = [`ResultCache::default_dir`].
    pub cache_dir: Option<std::path::PathBuf>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            threads: None,
            use_cache: true,
            cache_dir: None,
        }
    }
}

impl SweepOptions {
    /// Options for hermetic in-process use (experiments, tests): no disk
    /// cache.
    pub fn uncached() -> Self {
        SweepOptions {
            use_cache: false,
            ..Self::default()
        }
    }
}

/// One result row: the job's resolved parameters plus its metrics (or
/// error).
#[derive(Clone, Debug)]
pub struct Row {
    /// Parameter columns in presentation order.
    pub params: Vec<(&'static str, Value)>,
    /// Metric name → value (empty if the job failed).
    pub metrics: BTreeMap<String, f64>,
    /// The job's failure, if any.
    pub error: Option<String>,
    /// Whether this row was served from the cache.
    pub from_cache: bool,
}

impl Row {
    /// Look a metric up by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.get(name).copied()
    }

    /// Look a parameter up by name.
    pub fn param(&self, name: &str) -> Option<&Value> {
        self.params.iter().find(|(k, _)| *k == name).map(|(_, v)| v)
    }
}

/// A completed sweep.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The spec's human-readable name.
    pub name: String,
    /// The spec's content hash.
    pub spec_hash: String,
    /// One row per job, in grid-expansion order.
    pub rows: Vec<Row>,
    /// Jobs actually executed this run.
    pub executed: usize,
    /// Jobs served from the cache.
    pub cache_hits: usize,
    /// Wall-clock duration of the sweep.
    pub wall: Duration,
}

/// Engine-level error (spec or I/O; individual job failures live in rows).
#[derive(Debug)]
pub struct SweepError(pub String);

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sweep failed: {}", self.0)
    }
}

impl std::error::Error for SweepError {}

/// Run a sweep: expand, consult the cache, execute misses in parallel,
/// store, aggregate.
pub fn run_sweep(spec: &ScenarioSpec, opts: &SweepOptions) -> Result<SweepOutcome, SweepError> {
    spec.validate().map_err(|e| SweepError(e.to_string()))?;
    let _run_span = nd_obs::span!("sweep.run", name = spec.name.as_str());
    let start = Instant::now();
    let jobs = {
        let _span = nd_obs::span!("sweep.expand");
        expand(spec)
    };
    nd_obs::metrics::add("sweep.jobs", jobs.len() as u64);
    let cache = opts.use_cache.then(|| {
        ResultCache::at(
            opts.cache_dir
                .clone()
                .unwrap_or_else(ResultCache::default_dir),
        )
    });

    // cache pass: split into hits and misses
    let mut results: Vec<Option<CachedResult>> = Vec::with_capacity(jobs.len());
    let mut hit_flags: Vec<bool> = Vec::with_capacity(jobs.len());
    let mut misses: Vec<&Job> = Vec::new();
    {
        let _span = nd_obs::span!("sweep.cache_probe", jobs = jobs.len());
        for job in &jobs {
            // corrupt entries (`Err`) degrade to misses here: a sweep can
            // always recompute, and the overwriting store heals the entry
            let hit = cache
                .as_ref()
                .and_then(|c| c.load(&job.content_hash(spec)).unwrap_or(None));
            hit_flags.push(hit.is_some());
            if hit.is_none() {
                misses.push(job);
            }
            results.push(hit);
        }
    }
    let cache_hits = jobs.len() - misses.len();
    nd_obs::metrics::add("sweep.cache_hits", cache_hits as u64);

    // execute the misses across all cores
    let threads = opts.threads.unwrap_or_else(default_threads);
    let executed = run_parallel(&misses, threads, |_, job| {
        let _span = nd_obs::span!("sweep.job", job = job.index);
        let outcome = execute_job(job, spec);
        let result = match outcome {
            Ok(metrics) => CachedResult {
                metrics,
                error: None,
            },
            Err(e) => CachedResult {
                metrics: BTreeMap::new(),
                error: Some(e),
            },
        };
        if let Some(c) = &cache {
            c.store(&job.content_hash(spec), &result);
        }
        (job.index, result)
    });
    let executed_count = executed.len();
    nd_obs::metrics::add("sweep.executed", executed_count as u64);
    for (index, result) in executed {
        results[index] = Some(result);
    }

    let rows: Vec<Row> = jobs
        .iter()
        .zip(results)
        .zip(&hit_flags)
        .map(|((job, result), &from_cache)| {
            let result = result.expect("every job resolved");
            Row {
                params: job.params(),
                metrics: result.metrics,
                error: result.error,
                from_cache,
            }
        })
        .collect();
    nd_obs::metrics::add(
        "sweep.errors",
        rows.iter().filter(|r| r.error.is_some()).count() as u64,
    );

    Ok(SweepOutcome {
        name: spec.name.clone(),
        spec_hash: spec.content_hash(),
        rows,
        executed: executed_count,
        cache_hits,
        wall: start.elapsed(),
    })
}

/// Execute one job on the spec's backend.
pub fn execute_job(job: &Job, spec: &ScenarioSpec) -> Result<BTreeMap<String, f64>, String> {
    match spec.backend {
        Backend::Bounds => {
            let _span = nd_obs::span!("backend.bounds", job = job.index);
            exec_bounds(job, spec)
        }
        Backend::Exact => {
            let _span = nd_obs::span!("backend.exact", job = job.index);
            exec_exact(job, spec)
        }
        Backend::MonteCarlo => {
            let _span = nd_obs::span!("backend.montecarlo", job = job.index);
            exec_montecarlo(job, spec)
        }
        Backend::Netsim => {
            let _span = nd_obs::span!("backend.netsim", job = job.index);
            exec_netsim(job, spec)
        }
    }
}

// ---------------------------------------------------------------------------
// protocol construction
// ---------------------------------------------------------------------------

/// Build role A's per-device schedule for a job's protocol selector.
///
/// Selectors are registry names (`ProtocolKind::from_name`) built for the
/// job's η/slot, or the parametrized form `diff-code:<v>:<m1>,<m2>,…`
/// building an explicit difference-set schedule (η is then implied by the
/// set and the slot length). Parsing lives in
/// [`nd_protocols::schedule_for_selector`] so the cohort simulator and any
/// future frontends share one grammar.
pub fn build_schedule(job: &Job, spec: &ScenarioSpec) -> Result<Schedule, String> {
    job.role_a()
        .schedule(spec.radio.omega)
        .map_err(|e: NdError| e.to_string())
}

/// Build both role schedules of a job's pair (role B reuses role A's
/// schedule when the pair is symmetric).
pub fn build_role_schedules(
    job: &Job,
    spec: &ScenarioSpec,
) -> Result<(Schedule, Schedule), String> {
    job.role_pair()
        .schedules(spec.radio.omega)
        .map_err(|e: NdError| e.to_string())
}

fn analysis_config(spec: &ScenarioSpec) -> AnalysisConfig {
    let mut cfg = AnalysisConfig::with_omega(spec.radio.omega);
    cfg.model = spec.overlap;
    cfg
}

/// The schedule pair's nominal guarantee: the exact worst-case two-way
/// latency (used for `horizon_predicted_x` and `deadline = "predicted"`).
fn predicted_worst(a: &Schedule, b: &Schedule, spec: &ScenarioSpec) -> Result<Tick, String> {
    two_way_worst_case(a, b, &analysis_config(spec))
        .map_err(|e| format!("cannot derive predicted latency (needed for horizon/deadline): {e}"))
}

// ---------------------------------------------------------------------------
// backends
// ---------------------------------------------------------------------------

fn exec_bounds(job: &Job, spec: &ScenarioSpec) -> Result<BTreeMap<String, f64>, String> {
    let omega = spec.radio.omega.as_secs_f64();
    let alpha = spec.radio.alpha;
    // explicit (η_E, η_F) pair: Theorem 5.7 evaluated directly on the
    // per-device duty cycles (`eta` = η_E, `eta_b` = η_F)
    if let Some(eta_f) = job.eta_b {
        let eta_e = job.eta;
        if !(eta_e > 0.0 && eta_e <= 1.0) {
            return Err(format!("η_E = {eta_e} out of (0, 1]"));
        }
        let bound = nd_core::bounds::asymmetric_bound(alpha, omega, eta_e, eta_f);
        let sum = eta_e + eta_f;
        let ratio = eta_e.max(eta_f) / eta_e.min(eta_f);
        let mut m = BTreeMap::new();
        m.insert("bound_s".to_string(), bound);
        m.insert("product".to_string(), bound * sum);
        m.insert("penalty".to_string(), asymmetry_penalty(ratio));
        m.insert("eta_sum".to_string(), sum);
        return Ok(m);
    }
    // legacy joint-budget parametrization: `eta` = η_E + η_F, split by
    // the `ratio` axis
    if job.ratio < 1.0 {
        return Err(format!("ratio {} must be ≥ 1 (η_E/η_F)", job.ratio));
    }
    let sum = job.eta;
    if !(sum > 0.0 && sum <= 2.0) {
        return Err(format!("joint budget η_E+η_F = {sum} out of (0, 2]"));
    }
    let product = product_vs_joint_budget(alpha, omega, sum, job.ratio);
    let mut m = BTreeMap::new();
    m.insert("product".to_string(), product);
    m.insert("bound_s".to_string(), product / sum);
    m.insert("penalty".to_string(), asymmetry_penalty(job.ratio));
    Ok(m)
}

fn exec_exact(job: &Job, spec: &ScenarioSpec) -> Result<BTreeMap<String, f64>, String> {
    let (sched_a, sched_b) = build_role_schedules(job, spec)?;
    // the one-way metric is "device 1 (role B) discovers device 0
    // (role A)": role A's beacons against role B's listening windows
    let beacons = sched_a
        .beacons
        .as_ref()
        .ok_or("role A never transmits; exact one-way analysis needs beacons")?;
    let windows = sched_b
        .windows
        .as_ref()
        .ok_or("role B never listens; exact one-way analysis needs windows")?;
    let cfg = analysis_config(spec);

    let cov = one_way_coverage(beacons, windows, &cfg).map_err(|e| e.to_string())?;
    let mut m = BTreeMap::new();
    m.insert("worst_s".to_string(), cov.worst_covered.as_secs_f64());
    m.insert("mean_s".to_string(), cov.mean_covered);
    m.insert(
        "packet_to_packet_s".to_string(),
        cov.packet_to_packet.as_secs_f64(),
    );
    m.insert(
        "undiscovered_prob".to_string(),
        cov.undiscovered_probability,
    );
    m.insert("beacons_needed".to_string(), cov.beacons_needed as f64);

    if spec.percentiles {
        let dist =
            LatencyDistribution::build(beacons, windows, &cfg, true).map_err(|e| e.to_string())?;
        for (name, q) in [("p50_s", 0.50), ("p95_s", 0.95), ("p99_s", 0.99)] {
            m.insert(name.to_string(), dist.quantile(q));
        }
    }

    if spec.metric == Metric::TwoWay {
        let two = two_way_worst_case(&sched_a, &sched_b, &cfg).map_err(|e| e.to_string())?;
        m.insert("two_way_worst_s".to_string(), two.as_secs_f64());
    }
    if job.has_role_b() {
        // heterogeneous pairs annotate their achieved per-role duty
        // cycles and the Theorem 5.7 reference (new metric columns only
        // on role-typed jobs: symmetric rows — and their cached entries —
        // stay byte-identical)
        let (dc_a, dc_b) = (sched_a.eta(spec.radio.alpha), sched_b.eta(spec.radio.alpha));
        m.insert("duty_cycle_a".to_string(), dc_a);
        m.insert("duty_cycle_b".to_string(), dc_b);
        if dc_a > 0.0 && dc_b > 0.0 {
            m.insert(
                "asym_bound_s".to_string(),
                nd_core::bounds::asymmetric_bound(
                    spec.radio.alpha,
                    spec.radio.omega.as_secs_f64(),
                    dc_a,
                    dc_b,
                ),
            );
        }
    }
    Ok(m)
}

/// Resolve the trial horizon and optional deadline for a simulation
/// backend; the `predicted` guarantee is computed only when either needs
/// it. `pairs` lists the schedule pair classes the run actually
/// simulates (one (A, B) entry for the pairwise backends; the present
/// classes of (A-A, A-B, B-B) for a mixed cohort): the prediction is
/// the worst over the classes with a defined exact worst case, so no
/// simulated pair class is silently censored by a horizon anchored to a
/// faster class. Classes *without* a worst-case guarantee (e.g. the
/// same-role pairs of a coupled Theorem 5.7 construction, which only
/// guarantees cross discovery) do not extend the horizon; only if no
/// class resolves is that an error. Returns
/// `(predicted, horizon, deadline)`.
fn resolve_horizon(
    pairs: &[(&Schedule, &Schedule)],
    spec: &ScenarioSpec,
) -> Result<(Option<Tick>, Tick, Option<Tick>), String> {
    let predicted = match (spec.sim.horizon, spec.sim.deadline) {
        (Horizon::PredictedTimes(_), _) | (_, Some(Deadline::Predicted)) => {
            let mut worst: Option<Tick> = None;
            let mut last_err = String::new();
            for (a, b) in pairs {
                match predicted_worst(a, b, spec) {
                    Ok(t) => worst = Some(worst.map_or(t, |w| w.max(t))),
                    Err(e) => last_err = e,
                }
            }
            Some(worst.ok_or(last_err)?)
        }
        _ => None,
    };
    let horizon = match spec.sim.horizon {
        Horizon::Fixed(t) => t,
        Horizon::PredictedTimes(x) => {
            Tick::from_secs_f64(predicted.expect("resolved above").as_secs_f64() * x)
        }
    };
    if horizon.is_zero() {
        return Err("horizon resolves to zero".into());
    }
    let deadline = match spec.sim.deadline {
        None => None,
        Some(Deadline::Predicted) => predicted,
        Some(Deadline::Fixed(t)) => Some(t),
    };
    Ok((predicted, horizon, deadline))
}

fn exec_montecarlo(job: &Job, spec: &ScenarioSpec) -> Result<BTreeMap<String, f64>, String> {
    let (sched_a, sched_b) = build_role_schedules(job, spec)?;
    let job_seed = job.seed(spec);
    let (predicted, horizon, deadline) = resolve_horizon(&[(&sched_a, &sched_b)], spec)?;

    let base_cfg = job.base_sim_config(spec);
    let radio = base_cfg.radio;

    let period_a = schedule_period(&sched_a);
    let period_b = schedule_period(&sched_b);
    let mut rng = StdRng::seed_from_u64(job_seed);
    let mut latencies: Vec<Option<Tick>> = Vec::with_capacity(spec.sim.trials);
    let mut eta_acc = 0.0;
    let mut eta_b_acc = 0.0;
    let mut energy_acc = 0.0;
    let mut energy_b_acc = 0.0;
    let mut collision_acc = 0.0;

    for trial in 0..spec.sim.trials {
        let mut cfg = base_cfg.clone();
        cfg.t_end = horizon;
        cfg.seed = nd_core::seed::stream_seed(job_seed, trial as u64);
        let (phase_a, phase_b) = match job.phase {
            Some(p) => (Tick::ZERO, p),
            None => (
                random_phase(period_a, &mut rng),
                random_phase(period_b, &mut rng),
            ),
        };
        let mut sim = Simulator::new(cfg, Topology::full(2));
        sim.add_device(Box::new(Drifting::ppm(
            ScheduleBehavior::with_phase(sched_a.clone(), phase_a),
            0,
        )));
        sim.add_device(Box::new(Drifting::ppm(
            ScheduleBehavior::with_phase(sched_b.clone(), phase_b),
            job.drift_ppm,
        )));
        sim.stop_when_all_discovered(spec.metric == Metric::TwoWay);
        let report = sim.run();
        latencies.push(match spec.metric {
            Metric::OneWay => report.discovery.one_way(1, 0),
            Metric::EitherWay => report.discovery.either_way(0, 1),
            Metric::TwoWay => report.discovery.two_way(0, 1),
        });
        let elapsed = report.elapsed.max(Tick(1));
        eta_acc += report.devices[0].eta_with_overheads(elapsed, &radio);
        energy_acc += report.devices[0].energy_joules(&radio, spec.radio.prx_mw * 1e-3);
        if job.has_role_b() {
            // only role-typed jobs report per-role columns
            eta_b_acc += report.devices[1].eta_with_overheads(elapsed, &radio);
            energy_b_acc += report.devices[1].energy_joules(&radio, spec.radio.prx_mw * 1e-3);
        }
        collision_acc += report.packets.collision_rate();
    }

    let summary = LatencySummary::from_latencies(&latencies);
    let trials = spec.sim.trials.max(1) as f64;
    let mut m = BTreeMap::new();
    m.insert("trials".to_string(), spec.sim.trials as f64);
    m.insert("failure_rate".to_string(), summary.failure_rate());
    m.insert("mean_s".to_string(), summary.mean);
    m.insert("p50_s".to_string(), summary.p50);
    m.insert("p95_s".to_string(), summary.p95);
    m.insert("p99_s".to_string(), summary.p99);
    m.insert("max_s".to_string(), summary.max);
    m.insert("measured_eta".to_string(), eta_acc / trials);
    m.insert("energy_mj".to_string(), energy_acc * 1e3 / trials);
    m.insert("collision_rate".to_string(), collision_acc / trials);
    if job.has_role_b() {
        // per-role energy accounting (role-typed jobs only, so symmetric
        // metric rows — and their cached entries — stay byte-identical)
        m.insert("measured_eta_b".to_string(), eta_b_acc / trials);
        m.insert("energy_b_mj".to_string(), energy_b_acc * 1e3 / trials);
    }
    if let Some(d) = deadline {
        let over = latencies.iter().filter(|l| l.is_none_or(|t| t > d)).count();
        m.insert(
            "over_deadline_frac".to_string(),
            over as f64 / latencies.len().max(1) as f64,
        );
        m.insert("deadline_s".to_string(), d.as_secs_f64());
    }
    if let Some(p) = predicted {
        m.insert("predicted_s".to_string(), p.as_secs_f64());
    }
    Ok(m)
}

/// The netsim backend: N nodes running the job's role configurations
/// concurrently on one collision channel, with staggered join/leave churn
/// and per-node drift. A `mix` of m puts `round(m·N)` role-B nodes (the
/// highest node ids) among the role-A majority. All randomness (phases,
/// drift draws, churn plans, fault rolls) derives from the job's
/// content-hash seed, so results are reproducible across hosts and
/// thread counts.
fn exec_netsim(job: &Job, spec: &ScenarioSpec) -> Result<BTreeMap<String, f64>, String> {
    let pair = job.role_pair();
    let (sched_a, sched_b) = build_role_schedules(job, spec)?;
    let n = job.nodes as usize;
    if n < 2 {
        return Err(format!("nodes {n} below 2 (discovery needs a pair)"));
    }
    let count_b = (job.mix * n as f64).round() as usize;
    let is_role_b = |i: usize| i >= n - count_b;
    let job_seed = job.seed(spec);
    // the horizon must accommodate every pair class the cohort actually
    // contains, not just the cross-role one
    let mut classes: Vec<(&Schedule, &Schedule)> = Vec::new();
    if count_b < n {
        classes.push((&sched_a, &sched_a));
    }
    if count_b > 0 {
        classes.push((&sched_b, &sched_b));
        if count_b < n {
            classes.push((&sched_a, &sched_b));
        }
    }
    let (predicted, horizon, deadline) = resolve_horizon(&classes, spec)?;
    let base_cfg = job.base_sim_config(spec);
    let radio = base_cfg.radio;
    let period_a = schedule_period(&sched_a);
    let period_b = schedule_period(&sched_b);
    let metric = match spec.metric {
        Metric::OneWay => PairMetric::OneWay,
        Metric::TwoWay => PairMetric::TwoWay,
        Metric::EitherWay => PairMetric::EitherWay,
    };

    let mut rng = StdRng::seed_from_u64(job_seed ^ 0xd6e8_feb8_6659_fd93);
    let mut pair_latencies: Vec<Option<Tick>> = Vec::new();
    let mut cross_latencies: Vec<Option<Tick>> = Vec::new();
    let mut first_contacts: Vec<Option<Tick>> = Vec::new();
    let mut complete_trials = 0usize;
    let mut cohort_acc = 0.0;
    let mut discovered_acc = 0.0;
    let mut eta_acc = 0.0;
    let mut collision_acc = 0.0;

    for trial in 0..spec.sim.trials {
        let mut cfg = base_cfg.clone();
        cfg.t_end = horizon;
        cfg.seed = nd_core::seed::stream_seed(job_seed, trial as u64);
        let plan = if job.churn > 0.0 {
            ChurnPlan::staggered(n, job.churn, horizon, &mut rng)
        } else {
            ChurnPlan::stable(n)
        };
        let mut sim = NetSimulator::new(cfg, Topology::full(n));
        for i in 0..n {
            let (sched, period, role) = if is_role_b(i) {
                (&sched_b, period_b, &pair.b)
            } else {
                (&sched_a, period_a, &pair.a)
            };
            let phase = random_phase(period, &mut rng);
            let behavior = ScheduleBehavior::with_phase(sched.clone(), phase).labeled(role.label());
            let behavior: Box<dyn Behavior> = if job.drift_ppm == 0 {
                Box::new(behavior)
            } else {
                // every node drifts independently within ±drift_ppm
                let span = job.drift_ppm.unsigned_abs() as i64 * 1000;
                let ppb = rng.gen_range(-span..=span);
                Box::new(Drifting::new(Box::new(behavior) as Box<dyn Behavior>, ppb))
            };
            sim.add_node(NodeSpec::windowed(behavior, plan.joins[i], plan.leaves[i]));
        }
        sim.stop_when_all_discovered(true);
        let report = sim.run();
        let entries = report.pair_latency_entries(metric);
        let lats: Vec<Option<Tick>> = entries.iter().map(|&(_, _, l)| l).collect();
        if lats.is_empty() {
            discovered_acc += 1.0; // nothing was possible, nothing was missed
        } else {
            let done = lats.iter().filter(|l| l.is_some()).count();
            discovered_acc += done as f64 / lats.len() as f64;
            if done == lats.len() {
                complete_trials += 1;
                cohort_acc += lats
                    .iter()
                    .flatten()
                    .max()
                    .expect("non-empty")
                    .as_secs_f64();
            }
        }
        cross_latencies.extend(
            entries
                .iter()
                .filter(|&&(a, b, _)| is_role_b(a) != is_role_b(b))
                .map(|&(_, _, l)| l),
        );
        pair_latencies.extend(lats);
        first_contacts.extend(report.first_contacts());
        eta_acc += report.mean_eta(&radio);
        collision_acc += report.packets.collision_rate();
    }

    let pair = LatencySummary::from_latencies(&pair_latencies);
    let first = LatencySummary::from_latencies(&first_contacts);
    let trials = spec.sim.trials.max(1) as f64;
    let mut m = BTreeMap::new();
    m.insert("trials".to_string(), spec.sim.trials as f64);
    m.insert("pair_mean_s".to_string(), pair.mean);
    m.insert("pair_p50_s".to_string(), pair.p50);
    m.insert("pair_p95_s".to_string(), pair.p95);
    m.insert("pair_max_s".to_string(), pair.max);
    m.insert("pair_discovered_frac".to_string(), discovered_acc / trials);
    m.insert("first_mean_s".to_string(), first.mean);
    m.insert("first_p50_s".to_string(), first.p50);
    m.insert(
        "cohort_complete_frac".to_string(),
        complete_trials as f64 / trials,
    );
    m.insert(
        "cohort_worst_s".to_string(),
        if complete_trials > 0 {
            cohort_acc / complete_trials as f64
        } else {
            f64::NAN
        },
    );
    m.insert("measured_eta".to_string(), eta_acc / trials);
    m.insert("collision_rate".to_string(), collision_acc / trials);
    if job.has_role_b() {
        // the cross-role slice of the pair distribution — the latencies a
        // mixed deployment (tags vs. anchors, advertisers vs. scanners)
        // actually cares about. Role-typed jobs only, so symmetric metric
        // rows — and their cached entries — stay byte-identical.
        let cross = LatencySummary::from_latencies(&cross_latencies);
        m.insert("cross_pairs".to_string(), cross_latencies.len() as f64);
        m.insert("cross_mean_s".to_string(), cross.mean);
        m.insert("cross_p50_s".to_string(), cross.p50);
        m.insert("cross_p95_s".to_string(), cross.p95);
        m.insert("cross_max_s".to_string(), cross.max);
        m.insert(
            "cross_discovered_frac".to_string(),
            if cross_latencies.is_empty() {
                1.0
            } else {
                cross_latencies.iter().filter(|l| l.is_some()).count() as f64
                    / cross_latencies.len() as f64
            },
        );
    }
    if let Some(d) = deadline {
        let over = pair_latencies
            .iter()
            .filter(|l| l.is_none_or(|t| t > d))
            .count();
        m.insert(
            "over_deadline_frac".to_string(),
            over as f64 / pair_latencies.len().max(1) as f64,
        );
        m.insert("deadline_s".to_string(), d.as_secs_f64());
    }
    if let Some(p) = predicted {
        m.insert("predicted_s".to_string(), p.as_secs_f64());
    }
    Ok(m)
}

fn schedule_period(sched: &Schedule) -> Tick {
    sched
        .beacons
        .as_ref()
        .map(|b| b.period())
        .into_iter()
        .chain(sched.windows.as_ref().map(|w| w.period()))
        .max()
        .unwrap_or(Tick(1))
}

fn random_phase(period: Tick, rng: &mut StdRng) -> Tick {
    Tick(rng.gen_range(0..period.as_nanos().max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(toml: &str) -> ScenarioSpec {
        ScenarioSpec::from_toml_str(toml).unwrap()
    }

    #[test]
    fn bounds_backend_matches_closed_forms() {
        let s = spec("backend = \"bounds\"\n[grid]\neta = [0.05, 0.10]\nratio = [1.0, 2.0]\n");
        let out = run_sweep(&s, &SweepOptions::uncached()).unwrap();
        assert_eq!(out.rows.len(), 4);
        for row in &out.rows {
            assert!(row.error.is_none());
            let ratio = row.param("ratio").unwrap().as_f64().unwrap();
            let penalty = row.metric("penalty").unwrap();
            assert!((penalty - asymmetry_penalty(ratio)).abs() < 1e-12);
        }
        // the headline scaling: the product varies as 1/(η_E+η_F)
        let p = |eta: f64, ratio: f64| {
            out.rows
                .iter()
                .find(|r| {
                    r.param("eta").unwrap().as_f64() == Some(eta)
                        && r.param("ratio").unwrap().as_f64() == Some(ratio)
                })
                .unwrap()
                .metric("product")
                .unwrap()
        };
        assert!((p(0.05, 1.0) / p(0.10, 1.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn exact_backend_recovers_optimal_bound() {
        let s = spec(
            "backend = \"exact\"\nmetric = \"two-way\"\n[grid]\nprotocol = [\"optimal-slotless\"]\neta = [0.05]\n",
        );
        let out = run_sweep(&s, &SweepOptions::uncached()).unwrap();
        assert_eq!(out.rows.len(), 1);
        let row = &out.rows[0];
        assert!(row.error.is_none(), "{:?}", row.error);
        let bound = nd_core::bounds::symmetric_bound(1.0, 36e-6, 0.05);
        let two = row.metric("two_way_worst_s").unwrap();
        assert!(
            (two - bound).abs() / bound < 0.02,
            "two-way {two} vs bound {bound}"
        );
        assert_eq!(row.metric("undiscovered_prob"), Some(0.0));
        assert!(row.metric("p50_s").unwrap() <= row.metric("p95_s").unwrap());
    }

    #[test]
    fn bounds_backend_takes_explicit_eta_pairs() {
        let s = spec("backend = \"bounds\"\n[grid]\neta = [0.08]\neta_b = [0.02]\n");
        let out = run_sweep(&s, &SweepOptions::uncached()).unwrap();
        let row = &out.rows[0];
        assert!(row.error.is_none(), "{:?}", row.error);
        let bound = nd_core::bounds::asymmetric_bound(1.0, 36e-6, 0.08, 0.02);
        assert!((row.metric("bound_s").unwrap() - bound).abs() < 1e-12);
        assert!((row.metric("eta_sum").unwrap() - 0.10).abs() < 1e-12);
        // ratio r = 4 → penalty (1+4)²/16
        assert!((row.metric("penalty").unwrap() - 25.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn exact_asymmetric_pair_achieves_theorem_5_7() {
        let s = spec(
            "backend = \"exact\"\nmetric = \"two-way\"\npercentiles = false\n\
             [grid]\nprotocol = [\"optimal-slotless\"]\neta = [0.08]\neta_b = [0.02]\n",
        );
        let out = run_sweep(&s, &SweepOptions::uncached()).unwrap();
        let row = &out.rows[0];
        assert!(row.error.is_none(), "{:?}", row.error);
        // the coupled construction's exact two-way worst case tracks the
        // Theorem 5.7 bound at the achieved per-role duty cycles
        let two = row.metric("two_way_worst_s").unwrap();
        let asym_bound = row.metric("asym_bound_s").unwrap();
        assert!(
            (two - asym_bound) / asym_bound < 0.01 && two >= asym_bound * (1.0 - 1e-9),
            "two-way {two} vs Theorem 5.7 bound {asym_bound}"
        );
        // the per-role duty cycles land near their budgets
        assert!((row.metric("duty_cycle_a").unwrap() - 0.08).abs() < 0.005);
        assert!((row.metric("duty_cycle_b").unwrap() - 0.02).abs() < 0.005);
    }

    #[test]
    fn montecarlo_heterogeneous_pair_respects_roles() {
        let s = spec(
            "backend = \"montecarlo\"\nmetric = \"two-way\"\n\
             [grid]\nprotocol = [\"optimal-slotless\"]\neta = [0.10]\neta_b = [0.02]\n\
             [sim]\ntrials = 6\nseed = 9\nhorizon_predicted_x = 3.0\ncollisions = false\nhalf_duplex = false\n",
        );
        let out = run_sweep(&s, &SweepOptions::uncached()).unwrap();
        let row = &out.rows[0];
        assert!(row.error.is_none(), "{:?}", row.error);
        // the deterministic coupled pair completes within its guarantee
        assert_eq!(row.metric("failure_rate"), Some(0.0));
        assert!(row.metric("max_s").unwrap() <= row.metric("predicted_s").unwrap() * 1.001);
        // per-role energy accounting: role A (η 0.10) spends ~5x role B
        let eta_a = row.metric("measured_eta").unwrap();
        let eta_b = row.metric("measured_eta_b").unwrap();
        assert!(eta_a > 3.0 * eta_b, "advertiser {eta_a} vs scanner {eta_b}");
    }

    #[test]
    fn netsim_mixed_cohort_reports_cross_role_pairs() {
        let s = spec(
            "backend = \"netsim\"\nmetric = \"one-way\"\n\
             [grid]\nprotocol = [\"optimal-slotless\"]\neta = [0.10]\neta_b = [0.05]\n\
             nodes = [4]\nmix = [0.0, 0.5]\ncollision = [false]\n\
             [sim]\ntrials = 3\nseed = 21\nhorizon_predicted_x = 4.0\n",
        );
        let out = run_sweep(&s, &SweepOptions::uncached()).unwrap();
        assert_eq!(out.rows.len(), 2);
        let pure = &out.rows[0];
        let mixed = &out.rows[1];
        assert!(pure.error.is_none(), "{:?}", pure.error);
        assert!(mixed.error.is_none(), "{:?}", mixed.error);
        // mix 0.0: all nodes role A → no cross-role pairs at all
        assert_eq!(pure.metric("cross_pairs"), Some(0.0));
        // mix 0.5 on 4 nodes: 2 role-B nodes → 2·2·2 ordered cross pairs
        // (one-way counts both directions) per trial, 3 trials
        assert_eq!(mixed.metric("cross_pairs"), Some(24.0));
        let frac = mixed.metric("cross_discovered_frac").unwrap();
        assert!((0.0..=1.0).contains(&frac));
        // both rows are deterministic (Debug-compare: NaN-valued metrics
        // like an incomplete cohort's worst must also match)
        let again = run_sweep(&s, &SweepOptions::uncached()).unwrap();
        assert_eq!(
            format!("{:?}", mixed.metrics),
            format!("{:?}", again.rows[1].metrics)
        );
    }

    #[test]
    fn unknown_protocol_is_a_row_error_not_a_crash() {
        let s = spec("[grid]\nprotocol = [\"warp-drive\"]\n");
        let out = run_sweep(&s, &SweepOptions::uncached()).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert!(out.rows[0].error.as_ref().unwrap().contains("warp-drive"));
    }

    #[test]
    fn montecarlo_backend_is_deterministic() {
        let s = spec(
            "backend = \"montecarlo\"\nmetric = \"two-way\"\n\
             [grid]\nprotocol = [\"optimal-slotless\"]\neta = [0.10]\n\
             [sim]\ntrials = 8\nseed = 5\nhorizon_predicted_x = 3.0\ncollisions = false\nhalf_duplex = false\n",
        );
        let a = run_sweep(&s, &SweepOptions::uncached()).unwrap();
        let b = run_sweep(&s, &SweepOptions::uncached()).unwrap();
        assert_eq!(a.rows.len(), 1);
        assert_eq!(
            a.rows[0].metrics, b.rows[0].metrics,
            "same spec → same results"
        );
        // the deterministic optimal protocol under pair-ideal conditions
        // never fails within 3x its predicted latency
        assert_eq!(a.rows[0].metric("failure_rate"), Some(0.0));
        assert!(
            a.rows[0].metric("max_s").unwrap() <= a.rows[0].metric("predicted_s").unwrap() * 1.001
        );
    }

    #[test]
    fn netsim_backend_is_deterministic_and_scales_down_to_a_pair() {
        let s = spec(
            "backend = \"netsim\"\n\
             [grid]\nprotocol = [\"optimal-slotless\"]\neta = [0.10]\nnodes = [2, 4]\ncollision = [false, true]\n\
             [sim]\ntrials = 4\nseed = 11\nhorizon_predicted_x = 3.0\n",
        );
        let a = run_sweep(&s, &SweepOptions::uncached()).unwrap();
        let b = run_sweep(&s, &SweepOptions::uncached()).unwrap();
        assert_eq!(a.rows.len(), 4);
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert!(ra.error.is_none(), "{:?}", ra.error);
            assert_eq!(ra.metrics, rb.metrics, "same spec → same results");
        }
        // a collision-free pair of optimal schedules always completes,
        // within the protocol's nominal guarantee (deterministically —
        // with the collision channel on, an unlucky zero-drift phase can
        // make two identical periodic schedules collide forever)
        let pair = &a.rows[0];
        assert_eq!(pair.param("nodes").unwrap().as_i64(), Some(2));
        assert_eq!(pair.param("collision").unwrap().as_bool(), Some(false));
        assert_eq!(pair.metric("pair_discovered_frac"), Some(1.0));
        assert_eq!(pair.metric("cohort_complete_frac"), Some(1.0));
        assert!(pair.metric("pair_max_s").unwrap() <= pair.metric("predicted_s").unwrap() * 1.001);
        // larger cohorts contend: the collision channel starts to bite
        let pair_c = &a.rows[1];
        let quad_c = &a.rows[3];
        assert_eq!(quad_c.param("nodes").unwrap().as_i64(), Some(4));
        assert_eq!(quad_c.param("collision").unwrap().as_bool(), Some(true));
        assert!(
            quad_c.metric("collision_rate").unwrap() >= pair_c.metric("collision_rate").unwrap()
        );
    }

    #[test]
    fn netsim_churn_limits_discovery_to_copresence() {
        let s = spec(
            "backend = \"netsim\"\n\
             [grid]\nprotocol = [\"optimal-slotless\"]\neta = [0.10]\nnodes = [4]\nchurn = [0.5]\n\
             [sim]\ntrials = 4\nseed = 3\nhorizon_predicted_x = 4.0\n",
        );
        let out = run_sweep(&s, &SweepOptions::uncached()).unwrap();
        let row = &out.rows[0];
        assert!(row.error.is_none(), "{:?}", row.error);
        // churners co-reside during the middle third; pairs remain
        // discoverable (mostly) but a late joiner can't have heard anyone
        // before its join — the metric stays finite and sane
        let frac = row.metric("pair_discovered_frac").unwrap();
        assert!((0.0..=1.0).contains(&frac));
        assert!(row.metric("pair_mean_s").unwrap() >= 0.0);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let s = spec(
            "backend = \"exact\"\npercentiles = false\n\
             [grid]\nprotocol = [\"optimal-slotless\", \"disco\", \"searchlight\"]\neta = [0.05, 0.10]\n",
        );
        let serial = run_sweep(
            &s,
            &SweepOptions {
                threads: Some(1),
                ..SweepOptions::uncached()
            },
        )
        .unwrap();
        let parallel = run_sweep(
            &s,
            &SweepOptions {
                threads: Some(8),
                ..SweepOptions::uncached()
            },
        )
        .unwrap();
        assert_eq!(serial.rows.len(), parallel.rows.len());
        for (a, b) in serial.rows.iter().zip(&parallel.rows) {
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.params, b.params);
        }
    }
}
