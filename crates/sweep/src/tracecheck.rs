//! Validation for `nd-obs` JSONL span traces (the `nd-sweep trace-check`
//! subcommand, and the CI `obs-smoke` job's assertion).
//!
//! A trace is valid when every line parses as a span record and, per
//! thread, the spans form a proper nesting: ordered by start time, each
//! span's `depth` equals the number of enclosing spans still open, and
//! every span's interval lies inside its parent's. The checker also
//! measures *job cover* — the fraction of `sweep.run` wall-clock spent
//! inside `sweep.job` spans — which the acceptance gate bounds: on a
//! single-threaded sweep of real jobs, per-job durations must account
//! for the run's wall-clock to within tolerance.

use crate::value::{parse_json, Value};
use std::collections::BTreeMap;

/// One parsed span record.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Span name (`sweep.job`, `backend.netsim`, …).
    pub name: String,
    /// Per-process thread ordinal.
    pub tid: u64,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Open spans on this thread when this one started.
    pub depth: u64,
}

/// What [`check_trace`] found in a valid trace.
#[derive(Clone, Debug)]
pub struct TraceReport {
    /// Total span records.
    pub spans: usize,
    /// Distinct thread ordinals seen.
    pub threads: usize,
    /// Span count per name.
    pub by_name: BTreeMap<String, usize>,
    /// Σ `dur_ns` per name.
    pub dur_by_name: BTreeMap<String, u64>,
    /// Σ dur(`sweep.job`) / Σ dur(`sweep.run`); `None` when the trace
    /// has no `sweep.run` span.
    pub job_cover: Option<f64>,
}

/// Parse and validate a JSONL trace. Returns the report, or a
/// description of the first problem (bad line, missing field, or a
/// nesting violation).
pub fn check_trace(text: &str) -> Result<TraceReport, String> {
    let mut spans = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        spans.push(parse_line(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    if spans.is_empty() {
        return Err("trace contains no span records".into());
    }

    // group per thread; nesting is a per-thread property
    let mut per_tid: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    for s in &spans {
        per_tid.entry(s.tid).or_default().push(s);
    }
    for (tid, mut thread_spans) in per_tid.clone() {
        // parents start no later than children; at equal starts the
        // shallower span is the parent
        thread_spans.sort_by_key(|s| (s.start_ns, s.depth));
        let mut stack: Vec<&SpanRecord> = Vec::new();
        for s in thread_spans {
            while let Some(top) = stack.last() {
                if s.start_ns >= top.start_ns + top.dur_ns {
                    stack.pop();
                } else {
                    break;
                }
            }
            if s.depth as usize != stack.len() {
                return Err(format!(
                    "tid {tid}: span `{}` at {} ns has depth {} but {} enclosing span(s) open",
                    s.name,
                    s.start_ns,
                    s.depth,
                    stack.len()
                ));
            }
            if let Some(top) = stack.last() {
                if s.start_ns + s.dur_ns > top.start_ns + top.dur_ns {
                    return Err(format!(
                        "tid {tid}: span `{}` [{}, {}] ns extends past its parent `{}` [{}, {}] ns",
                        s.name,
                        s.start_ns,
                        s.start_ns + s.dur_ns,
                        top.name,
                        top.start_ns,
                        top.start_ns + top.dur_ns
                    ));
                }
            }
            stack.push(s);
        }
    }

    let mut by_name: BTreeMap<String, usize> = BTreeMap::new();
    let mut dur_by_name: BTreeMap<String, u64> = BTreeMap::new();
    for s in &spans {
        *by_name.entry(s.name.clone()).or_insert(0) += 1;
        *dur_by_name.entry(s.name.clone()).or_insert(0) += s.dur_ns;
    }
    let job_cover = match (dur_by_name.get("sweep.job"), dur_by_name.get("sweep.run")) {
        (Some(&job), Some(&run)) if run > 0 => Some(job as f64 / run as f64),
        (None, Some(&run)) if run > 0 => Some(0.0),
        _ => None,
    };

    Ok(TraceReport {
        spans: spans.len(),
        threads: per_tid.len(),
        by_name,
        dur_by_name,
        job_cover,
    })
}

fn parse_line(line: &str) -> Result<SpanRecord, String> {
    let v = parse_json(line).map_err(|e| format!("not valid JSON: {e}"))?;
    let table = v.as_table().ok_or("not a JSON object")?;
    let str_field = |key: &str| -> Result<&str, String> {
        table
            .get(key)
            .and_then(Value::as_str)
            .ok_or_else(|| format!("missing string field `{key}`"))
    };
    let u64_field = |key: &str| -> Result<u64, String> {
        table
            .get(key)
            .and_then(Value::as_f64)
            .filter(|x| *x >= 0.0)
            .map(|x| x as u64)
            .ok_or_else(|| format!("missing numeric field `{key}`"))
    };
    let t = str_field("t")?;
    if t != "span" {
        return Err(format!("unknown record type `{t}`"));
    }
    Ok(SpanRecord {
        name: str_field("name")?.to_string(),
        tid: u64_field("tid")?,
        start_ns: u64_field("start_ns")?,
        dur_ns: u64_field("dur_ns")?,
        depth: u64_field("depth")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(name: &str, tid: u64, start: u64, dur: u64, depth: u64) -> String {
        format!(
            "{{\"t\": \"span\", \"name\": \"{name}\", \"tid\": {tid}, \
             \"start_ns\": {start}, \"dur_ns\": {dur}, \"depth\": {depth}}}"
        )
    }

    #[test]
    fn accepts_a_well_nested_trace() {
        let trace = [
            line("sweep.expand", 0, 10, 5, 1),
            line("sweep.job", 0, 20, 30, 1),
            line("sweep.job", 0, 55, 40, 1),
            line("sweep.run", 0, 0, 100, 0),
        ]
        .join("\n");
        let report = check_trace(&trace).unwrap();
        assert_eq!(report.spans, 4);
        assert_eq!(report.threads, 1);
        assert_eq!(report.by_name["sweep.job"], 2);
        assert_eq!(report.job_cover, Some(0.7));
    }

    #[test]
    fn rejects_wrong_depth() {
        let trace = [line("a", 0, 0, 100, 0), line("b", 0, 10, 20, 2)].join("\n");
        let err = check_trace(&trace).unwrap_err();
        assert!(err.contains("depth 2"), "{err}");
    }

    #[test]
    fn rejects_child_escaping_parent() {
        let trace = [line("a", 0, 0, 100, 0), line("b", 0, 90, 50, 1)].join("\n");
        let err = check_trace(&trace).unwrap_err();
        assert!(err.contains("extends past"), "{err}");
    }

    #[test]
    fn rejects_garbage_and_missing_fields() {
        assert!(check_trace("not json\n").is_err());
        assert!(check_trace("{\"t\": \"span\"}\n").is_err());
        assert!(check_trace("").is_err());
    }

    #[test]
    fn threads_nest_independently() {
        // identical intervals on different threads are unrelated
        let trace = [
            line("a", 0, 0, 100, 0),
            line("a", 1, 0, 100, 0),
            line("b", 1, 10, 20, 1),
        ]
        .join("\n");
        let report = check_trace(&trace).unwrap();
        assert_eq!(report.threads, 2);
        assert_eq!(report.job_cover, None, "no sweep.run span");
    }
}
