//! Content-addressed result cache.
//!
//! Every job's result is stored in one JSON file named by the job's
//! content hash (see [`crate::grid::Job::canonical_bytes`] for what the
//! hash covers — resolved parameters, sweep-level settings and the engine
//! version). Because the address *is* the content key:
//!
//! * re-running the same spec is served entirely from cache;
//! * a sweep whose grid merely overlaps an earlier one reuses the
//!   overlapping points and computes only the new ones;
//! * results produced by a different engine version can never be served
//!   (the version is hashed in), so stale entries die silently.
//!
//! Corrupt entries are *reported* ([`CacheError`]) rather than silently
//! conflated with misses: batch callers (sweeps, searches) treat them as
//! misses and recompute — the cache is an accelerator, never a
//! correctness dependency — while serving callers (`nd-serve`) surface
//! them as an internal error instead of quietly rewriting history.

use crate::value::{parse_json, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A cached job result: metric values, or the error the job produced.
#[derive(Clone, Debug, PartialEq)]
pub struct CachedResult {
    /// Metric name → value.
    pub metrics: BTreeMap<String, f64>,
    /// The job's error, if it failed (failed jobs are cached too: a job
    /// that deterministically errors will deterministically error again).
    pub error: Option<String>,
}

/// A present-but-unparseable cache entry (see [`ResultCache::load`]).
///
/// Distinct from a miss so callers can choose a policy: batch pipelines
/// recompute (`load(h).unwrap_or(None)`), a serving read path refuses to
/// answer. The entry stays on disk — `gc` or an overwriting `store` are
/// the remedies — so repeated loads keep failing deterministically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheError {
    /// The job content hash whose entry is corrupt.
    pub hash: String,
    /// Path of the offending file.
    pub path: PathBuf,
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "corrupt cache entry {} ({})",
            self.hash,
            self.path.display()
        )
    }
}

impl std::error::Error for CacheError {}

/// The on-disk cache.
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Open (lazily — the directory is created on first store) a cache
    /// rooted at `dir`.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        ResultCache { dir: dir.into() }
    }

    /// The default cache location: `$ND_SWEEP_CACHE` or
    /// `target/nd-sweep-cache` under the current directory.
    pub fn default_dir() -> PathBuf {
        std::env::var_os("ND_SWEEP_CACHE")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target/nd-sweep-cache"))
    }

    /// Where this cache lives.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, hash: &str) -> PathBuf {
        // shard by the first byte to keep directories small at scale
        self.dir.join(&hash[..2]).join(format!("{hash}.json"))
    }

    /// Look a job hash up: `Ok(Some(_))` on a hit, `Ok(None)` on a miss
    /// (absent or unreadable file), `Err(CacheError)` when the entry is
    /// present but unparseable. A hit refreshes the entry's modification
    /// time, which is the recency the LRU sweep ([`ResultCache::gc`])
    /// evicts by — entries no sweep or search has touched lately go
    /// first.
    ///
    /// Callers that only want acceleration treat corruption as a miss
    /// (`load(h).unwrap_or(None)` — the sweep engine and the optimizer
    /// do); callers that *serve* cached answers propagate the error.
    ///
    /// Outcomes feed the metrics registry: `cache.hit`, `cache.miss`
    /// (absent entry), and `cache.corrupt` (present but unparseable —
    /// also counted as a miss, since batch callers recompute).
    pub fn load(&self, hash: &str) -> Result<Option<CachedResult>, CacheError> {
        let path = self.path_for(hash);
        let Ok(text) = std::fs::read_to_string(&path) else {
            nd_obs::metrics::inc("cache.miss");
            return Ok(None);
        };
        // touch for LRU; failure (read-only cache) costs recency, not
        // correctness
        let _ = std::fs::File::options()
            .append(true)
            .open(&path)
            .and_then(|f| f.set_modified(std::time::SystemTime::now()));
        match Self::parse_entry(&text) {
            Some(result) => {
                nd_obs::metrics::inc("cache.hit");
                Ok(Some(result))
            }
            None => {
                nd_obs::metrics::inc("cache.corrupt");
                nd_obs::metrics::inc("cache.miss");
                Err(CacheError {
                    hash: hash.to_string(),
                    path,
                })
            }
        }
    }

    /// Decode one on-disk entry; `None` when the file is not a valid
    /// entry (the corruption-is-a-miss path).
    fn parse_entry(text: &str) -> Option<CachedResult> {
        let v = parse_json(text).ok()?;
        let table = v.as_table()?;
        let metrics = table
            .get("metrics")?
            .as_table()?
            .iter()
            .map(|(k, v)| match v {
                // NaN metrics (e.g. a mean over zero successes) serialize
                // as JSON null; map them back
                Value::Null => Some((k.clone(), f64::NAN)),
                _ => Some((k.clone(), v.as_f64()?)),
            })
            .collect::<Option<BTreeMap<_, _>>>()?;
        let error = match table.get("error") {
            None | Some(Value::Null) => None,
            Some(v) => Some(v.as_str()?.to_string()),
        };
        Some(CachedResult { metrics, error })
    }

    /// Store a job result under its hash. Atomic (write + rename), so a
    /// concurrent reader never sees a torn entry; errors are swallowed —
    /// an unwritable cache degrades to a slower sweep, not a failed one.
    pub fn store(&self, hash: &str, result: &CachedResult) {
        let path = self.path_for(hash);
        let Some(parent) = path.parent() else { return };
        if std::fs::create_dir_all(parent).is_err() {
            return;
        }
        let mut table = BTreeMap::new();
        table.insert(
            "metrics".to_string(),
            Value::Table(
                result
                    .metrics
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::Float(*v)))
                    .collect(),
            ),
        );
        table.insert(
            "error".to_string(),
            match &result.error {
                None => Value::Null,
                Some(e) => Value::Str(e.clone()),
            },
        );
        let body = Value::Table(table).to_json_pretty();
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let write = std::fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(body.as_bytes()))
            .and_then(|()| std::fs::rename(&tmp, &path));
        match write {
            Ok(()) => nd_obs::metrics::inc("cache.store"),
            Err(_) => {
                let _ = std::fs::remove_file(&tmp);
            }
        }
    }

    /// Every file in the two-level shard layout (entries *and* leftover
    /// temp files). The single walk both accountings share.
    fn files(&self) -> Vec<std::fs::DirEntry> {
        let mut out = Vec::new();
        if let Ok(shards) = std::fs::read_dir(&self.dir) {
            for shard in shards.flatten() {
                if let Ok(files) = std::fs::read_dir(shard.path()) {
                    out.extend(files.flatten());
                }
            }
        }
        out
    }

    /// Every entry on disk: `(hash path, size in bytes, last use)`.
    /// Unreadable metadata is skipped — consistent with load's
    /// corruption-is-a-miss stance.
    fn entries(&self) -> Vec<(PathBuf, u64, std::time::SystemTime)> {
        self.files()
            .into_iter()
            .filter_map(|file| {
                let path = file.path();
                if path.extension().is_none_or(|e| e != "json") {
                    return None; // leftover .tmp.* from a killed writer
                }
                let meta = file.metadata().ok()?;
                let used = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                Some((path, meta.len(), used))
            })
            .collect()
    }

    /// Entry count and total size in bytes.
    pub fn stats(&self) -> CacheStats {
        let entries = self.entries();
        CacheStats {
            entries: entries.len(),
            bytes: entries.iter().map(|(_, b, _)| b).sum(),
        }
    }

    /// Shrink the cache to at most `max_bytes`, evicting least-recently
    /// used entries first (recency = mtime, refreshed on every cache
    /// hit). With `dry_run` nothing is deleted — the report says what
    /// *would* go. Also sweeps temp files left behind by killed writers.
    pub fn gc(&self, max_bytes: u64, dry_run: bool) -> GcReport {
        let mut entries = self.entries();
        // oldest first; ties broken by path for determinism
        entries.sort_by(|a, b| a.2.cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
        let total: u64 = entries.iter().map(|(_, b, _)| b).sum();
        let mut report = GcReport {
            entries: entries.len(),
            bytes: total,
            evicted_entries: 0,
            evicted_bytes: 0,
        };
        let mut live = total;
        for (path, bytes, _) in &entries {
            if live <= max_bytes {
                break;
            }
            if dry_run || std::fs::remove_file(path).is_ok() {
                report.evicted_entries += 1;
                report.evicted_bytes += bytes;
                live -= bytes;
            }
        }
        if !dry_run {
            self.sweep_temp_files();
        }
        report
    }

    /// Remove orphaned `*.tmp.<pid>` files (a writer killed between
    /// create and rename leaves one behind; they are never read). Only
    /// *stale* temp files go: a concurrent sweep's in-flight write is
    /// seconds old at most, so an age threshold keeps gc from racing
    /// live writers (whose rename would silently fail, costing a
    /// recompute).
    fn sweep_temp_files(&self) {
        const ORPHAN_AGE: std::time::Duration = std::time::Duration::from_secs(600);
        for file in self.files() {
            let path = file.path();
            let is_temp = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains(".tmp."));
            let is_stale = file
                .metadata()
                .and_then(|m| m.modified())
                .map(|t| t.elapsed().unwrap_or_default() >= ORPHAN_AGE)
                .unwrap_or(false);
            if is_temp && is_stale {
                let _ = std::fs::remove_file(&path);
            }
        }
    }
}

/// Cache size accounting (see [`ResultCache::stats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of stored results.
    pub entries: usize,
    /// Total size in bytes.
    pub bytes: u64,
}

/// What a [`ResultCache::gc`] pass did (or, dry-run, would do).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GcReport {
    /// Entries present before the sweep.
    pub entries: usize,
    /// Bytes present before the sweep.
    pub bytes: u64,
    /// Entries evicted (or reclaimable, on a dry run).
    pub evicted_entries: usize,
    /// Bytes evicted (or reclaimable, on a dry run).
    pub evicted_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nd-sweep-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_load_roundtrips() {
        let dir = temp_dir("roundtrip");
        let cache = ResultCache::at(&dir);
        let hash = "ab".to_string() + &"0".repeat(62);
        assert_eq!(cache.load(&hash), Ok(None), "absent entry is a miss");

        let result = CachedResult {
            metrics: BTreeMap::from([
                ("worst_s".to_string(), 0.0576),
                ("undiscovered_prob".to_string(), 0.0),
            ]),
            error: None,
        };
        cache.store(&hash, &result);
        assert_eq!(cache.load(&hash), Ok(Some(result)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_are_cached_and_corruption_is_reported() {
        let dir = temp_dir("corrupt");
        let cache = ResultCache::at(&dir);
        let hash = "cd".to_string() + &"1".repeat(62);
        let failed = CachedResult {
            metrics: BTreeMap::new(),
            error: Some("no such protocol".into()),
        };
        cache.store(&hash, &failed);
        assert_eq!(cache.load(&hash), Ok(Some(failed)));

        // corrupt the entry: load must report it — distinguishable from a
        // miss — and never panic; batch callers map this back to a miss
        let path = dir.join(&hash[..2]).join(format!("{hash}.json"));
        std::fs::write(&path, "{ not json").unwrap();
        let err = cache.load(&hash).unwrap_err();
        assert_eq!(err.hash, hash);
        assert_eq!(err.path, path);
        assert!(err.to_string().contains("corrupt cache entry"));
        // a fresh store over the corrupt entry heals it
        cache.store(
            &hash,
            &CachedResult {
                metrics: BTreeMap::new(),
                error: None,
            },
        );
        assert!(cache.load(&hash).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_evicts_least_recently_used_first() {
        let dir = temp_dir("gc");
        let cache = ResultCache::at(&dir);
        let result = CachedResult {
            metrics: BTreeMap::from([("worst_s".to_string(), 1.0)]),
            error: None,
        };
        let hashes: Vec<String> = (0..4)
            .map(|i| format!("{i}{i}") + &"0".repeat(62))
            .collect();
        for (i, h) in hashes.iter().enumerate() {
            cache.store(h, &result);
            // stagger mtimes well beyond filesystem timestamp granularity
            let t = std::time::SystemTime::UNIX_EPOCH
                + std::time::Duration::from_secs(1_000_000 + i as u64 * 1000);
            std::fs::File::options()
                .append(true)
                .open(dir.join(&h[..2]).join(format!("{h}.json")))
                .unwrap()
                .set_modified(t)
                .unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 4);
        let per_entry = stats.bytes / 4;

        // dry run reports reclaimable bytes but deletes nothing
        let dry = cache.gc(per_entry * 2, true);
        assert_eq!(dry.evicted_entries, 2);
        assert_eq!(dry.evicted_bytes, per_entry * 2);
        assert_eq!(cache.stats().entries, 4);

        // a real pass evicts the two oldest, keeps the two newest
        let real = cache.gc(per_entry * 2, false);
        assert_eq!(real.evicted_entries, 2);
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.load(&hashes[0]), Ok(None), "oldest evicted");
        assert!(cache.load(&hashes[3]).unwrap().is_some(), "newest kept");

        // a cache-hit refreshes recency: loading the older survivor
        // makes the newer one the eviction candidate
        assert!(cache.load(&hashes[2]).unwrap().is_some());
        let lru = cache.gc(per_entry, false);
        assert_eq!(lru.evicted_entries, 1);
        assert!(
            cache.load(&hashes[2]).unwrap().is_some(),
            "recently hit entry kept"
        );
        assert_eq!(cache.load(&hashes[3]), Ok(None));

        // gc to zero clears everything
        cache.gc(0, false);
        assert_eq!(
            cache.stats(),
            CacheStats {
                entries: 0,
                bytes: 0
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_sweeps_orphaned_temp_files() {
        let dir = temp_dir("gc-tmp");
        let cache = ResultCache::at(&dir);
        let hash = "ab".to_string() + &"3".repeat(62);
        cache.store(
            &hash,
            &CachedResult {
                metrics: BTreeMap::new(),
                error: None,
            },
        );
        let orphan = dir.join("ab").join(format!("{hash}.tmp.999"));
        std::fs::write(&orphan, "torn write").unwrap();
        // temp files are invisible to stats…
        assert_eq!(cache.stats().entries, 1);
        // …but a *fresh* temp file survives gc: it may belong to a
        // concurrent writer about to rename it into place
        let report = cache.gc(u64::MAX, false);
        assert_eq!(report.evicted_entries, 0);
        assert!(orphan.exists(), "fresh temp file kept (live-writer race)");
        // backdated past the orphan age threshold, gc sweeps it
        std::fs::File::options()
            .append(true)
            .open(&orphan)
            .unwrap()
            .set_modified(std::time::SystemTime::now() - std::time::Duration::from_secs(3600))
            .unwrap();
        cache.gc(u64::MAX, false);
        assert!(!orphan.exists(), "stale orphan swept");
        assert!(cache.load(&hash).unwrap().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_cache_is_silent() {
        // a cache rooted inside a file path cannot create directories;
        // store must not panic
        let file = std::env::temp_dir().join(format!("nd-sweep-flat-{}", std::process::id()));
        std::fs::write(&file, "x").unwrap();
        let cache = ResultCache::at(file.join("sub"));
        cache.store(
            &("ef".to_string() + &"2".repeat(62)),
            &CachedResult {
                metrics: BTreeMap::new(),
                error: None,
            },
        );
        let _ = std::fs::remove_file(
            std::env::temp_dir().join(format!("nd-sweep-flat-{}", std::process::id())),
        );
    }
}
