//! Content-addressed result cache.
//!
//! Every job's result is stored in one JSON file named by the job's
//! content hash (see [`crate::grid::Job::canonical_bytes`] for what the
//! hash covers — resolved parameters, sweep-level settings and the engine
//! version). Because the address *is* the content key:
//!
//! * re-running the same spec is served entirely from cache;
//! * a sweep whose grid merely overlaps an earlier one reuses the
//!   overlapping points and computes only the new ones;
//! * results produced by a different engine version can never be served
//!   (the version is hashed in), so stale entries die silently.
//!
//! Corrupt or unreadable entries are treated as misses — the cache is an
//! accelerator, never a correctness dependency.

use crate::value::{parse_json, Value};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A cached job result: metric values, or the error the job produced.
#[derive(Clone, Debug, PartialEq)]
pub struct CachedResult {
    /// Metric name → value.
    pub metrics: BTreeMap<String, f64>,
    /// The job's error, if it failed (failed jobs are cached too: a job
    /// that deterministically errors will deterministically error again).
    pub error: Option<String>,
}

/// The on-disk cache.
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Open (lazily — the directory is created on first store) a cache
    /// rooted at `dir`.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        ResultCache { dir: dir.into() }
    }

    /// The default cache location: `$ND_SWEEP_CACHE` or
    /// `target/nd-sweep-cache` under the current directory.
    pub fn default_dir() -> PathBuf {
        std::env::var_os("ND_SWEEP_CACHE")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target/nd-sweep-cache"))
    }

    /// Where this cache lives.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, hash: &str) -> PathBuf {
        // shard by the first byte to keep directories small at scale
        self.dir.join(&hash[..2]).join(format!("{hash}.json"))
    }

    /// Look a job hash up; `None` on miss or unreadable entry.
    pub fn load(&self, hash: &str) -> Option<CachedResult> {
        let text = std::fs::read_to_string(self.path_for(hash)).ok()?;
        let v = parse_json(&text).ok()?;
        let table = v.as_table()?;
        let metrics = table
            .get("metrics")?
            .as_table()?
            .iter()
            .map(|(k, v)| match v {
                // NaN metrics (e.g. a mean over zero successes) serialize
                // as JSON null; map them back
                Value::Null => Some((k.clone(), f64::NAN)),
                _ => Some((k.clone(), v.as_f64()?)),
            })
            .collect::<Option<BTreeMap<_, _>>>()?;
        let error = match table.get("error") {
            None | Some(Value::Null) => None,
            Some(v) => Some(v.as_str()?.to_string()),
        };
        Some(CachedResult { metrics, error })
    }

    /// Store a job result under its hash. Atomic (write + rename), so a
    /// concurrent reader never sees a torn entry; errors are swallowed —
    /// an unwritable cache degrades to a slower sweep, not a failed one.
    pub fn store(&self, hash: &str, result: &CachedResult) {
        let path = self.path_for(hash);
        let Some(parent) = path.parent() else { return };
        if std::fs::create_dir_all(parent).is_err() {
            return;
        }
        let mut table = BTreeMap::new();
        table.insert(
            "metrics".to_string(),
            Value::Table(
                result
                    .metrics
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::Float(*v)))
                    .collect(),
            ),
        );
        table.insert(
            "error".to_string(),
            match &result.error {
                None => Value::Null,
                Some(e) => Value::Str(e.clone()),
            },
        );
        let body = Value::Table(table).to_json_pretty();
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let write = std::fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(body.as_bytes()))
            .and_then(|()| std::fs::rename(&tmp, &path));
        if write.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nd-sweep-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_load_roundtrips() {
        let dir = temp_dir("roundtrip");
        let cache = ResultCache::at(&dir);
        let hash = "ab".to_string() + &"0".repeat(62);
        assert!(cache.load(&hash).is_none());

        let result = CachedResult {
            metrics: BTreeMap::from([
                ("worst_s".to_string(), 0.0576),
                ("undiscovered_prob".to_string(), 0.0),
            ]),
            error: None,
        };
        cache.store(&hash, &result);
        assert_eq!(cache.load(&hash), Some(result));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_are_cached_and_corruption_is_a_miss() {
        let dir = temp_dir("corrupt");
        let cache = ResultCache::at(&dir);
        let hash = "cd".to_string() + &"1".repeat(62);
        let failed = CachedResult {
            metrics: BTreeMap::new(),
            error: Some("no such protocol".into()),
        };
        cache.store(&hash, &failed);
        assert_eq!(cache.load(&hash), Some(failed));

        // corrupt the entry: load must degrade to a miss, not a panic
        let path = dir.join(&hash[..2]).join(format!("{hash}.json"));
        std::fs::write(&path, "{ not json").unwrap();
        assert!(cache.load(&hash).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_cache_is_silent() {
        // a cache rooted inside a file path cannot create directories;
        // store must not panic
        let file = std::env::temp_dir().join(format!("nd-sweep-flat-{}", std::process::id()));
        std::fs::write(&file, "x").unwrap();
        let cache = ResultCache::at(file.join("sub"));
        cache.store(
            &("ef".to_string() + &"2".repeat(62)),
            &CachedResult {
                metrics: BTreeMap::new(),
                error: None,
            },
        );
        let _ = std::fs::remove_file(
            std::env::temp_dir().join(format!("nd-sweep-flat-{}", std::process::id())),
        );
    }
}
