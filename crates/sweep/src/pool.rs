//! A small scoped worker pool (the `rayon` role, hand-rolled on
//! `std::thread::scope` since the build environment has no crates.io
//! access).
//!
//! Work is distributed by an atomic next-index counter, so threads
//! self-balance across jobs of wildly different cost (a Monte-Carlo job
//! with 1000 trials next to a closed-form bound evaluation). Results land
//! in their job's slot, so the output order is deterministic regardless of
//! scheduling.
//!
//! The pool is an instrumentation point for the observability spine:
//! per-task latency goes to the `pool.task_us` histogram, the not-yet-
//! started backlog to the `pool.queue_depth` gauge, and completion counts
//! drive the stderr progress line (all no-ops unless enabled; results and
//! their order are never affected).

use nd_obs::Progress;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `f(index, &items[index])` for every item, on up to `threads` OS
/// threads, returning results in item order.
///
/// Panics in `f` are contained per thread and re-raised after the scope
/// joins (standard `std::thread::scope` behavior).
pub fn run_parallel<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    let progress = Progress::new("jobs", n as u64);

    if threads == 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| {
                nd_obs::metrics::gauge_set("pool.queue_depth", (n - i) as f64);
                let r = {
                    let _t = nd_obs::metrics::time("pool.task_us");
                    f(i, t)
                };
                progress.update(i as u64 + 1);
                r
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // Workers inherit the caller's trace context (request id), so spans
    // from pooled evaluations attribute to the request that caused them.
    let ctx = nd_obs::trace::current_context();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let _ctx = nd_obs::trace::set_context(ctx.clone());
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    nd_obs::metrics::gauge_set("pool.queue_depth", n.saturating_sub(i + 1) as f64);
                    let r = {
                        let _t = nd_obs::metrics::time("pool.task_us");
                        f(i, &items[i])
                    };
                    *slots[i].lock().unwrap() = Some(r);
                    progress.update(done.fetch_add(1, Ordering::Relaxed) as u64 + 1);
                }
            });
        }
    });
    progress.finish();
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

/// The number of worker threads to default to: all available cores.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_order_and_runs_everything() {
        let items: Vec<u64> = (0..257).collect();
        let out = run_parallel(&items, 8, |i, &x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_and_empty() {
        let out: Vec<u64> = run_parallel(&[] as &[u64], 4, |_, &x| x);
        assert!(out.is_empty());
        let out = run_parallel(&[7u64], 4, |_, &x| x + 1);
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn work_is_actually_distributed() {
        // with uneven job costs, the counter hands short jobs to whoever is
        // free; just verify every item ran exactly once
        let calls = AtomicUsize::new(0);
        let items: Vec<usize> = (0..100).collect();
        run_parallel(&items, 4, |_, i| {
            if i % 10 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn instrumentation_records_task_latency() {
        nd_obs::metrics::set_enabled(true);
        nd_obs::metrics::reset();
        let items: Vec<u64> = (0..20).collect();
        let out = run_parallel(&items, 4, |_, &x| x);
        assert_eq!(out.len(), 20);
        let snap = nd_obs::metrics::snapshot();
        // ≥, not ==: sibling tests sharing the global registry may also
        // record while metrics are enabled here.
        assert!(snap.histograms["pool.task_us"].count >= 20);
        nd_obs::metrics::set_enabled(false);
        nd_obs::metrics::reset();
    }
}
