//! The `nd-sweep` CLI: run declarative scenario sweeps from the shell.
//!
//! ```text
//! nd-sweep run <spec.toml> [--out-dir DIR] [--format csv|json|both]
//!              [--threads N] [--no-cache] [--cache-dir DIR] [--quiet]
//!              [--stats] [--trace-out FILE]
//! nd-sweep report <spec.toml> [...]   # legacy spelling of `run --stats`
//! nd-sweep expand <spec.toml>      # list the jobs a spec would run
//! nd-sweep hash <spec.toml>        # print the spec's content hash
//! nd-sweep protocols               # list registry protocol names
//! nd-sweep trace-check <t.jsonl>   # validate a span trace
//! ```

use nd_sweep::{expand, run_sweep, ResultCache, ScenarioSpec, SweepOptions, ENGINE_VERSION};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    if let Err(e) = nd_obs::trace::init_from_env() {
        eprintln!("nd-sweep: cannot open $ND_TRACE: {e}");
        return ExitCode::FAILURE;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..], false),
        Some("report") => {
            // old spelling of `run --stats`; keep it working, say so once
            eprintln!("nd-sweep: note: `report` is now `run --stats` (behavior unchanged)");
            cmd_run(&args[1..], true)
        }
        Some("expand") => cmd_expand(&args[1..]),
        Some("hash") => cmd_hash(&args[1..]),
        Some("protocols") => cmd_protocols(),
        Some("cache") => cmd_cache(&args[1..]),
        Some("trace-check") => cmd_trace_check(&args[1..]),
        Some("--version" | "-V" | "version") => {
            // one stable provenance line so scripted runs can record which
            // binary (and which cache ABI) produced their data
            println!(
                "nd-sweep {} (engine {ENGINE_VERSION})",
                env!("CARGO_PKG_VERSION")
            );
            ExitCode::SUCCESS
        }
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            ExitCode::FAILURE
        }
    };
    nd_obs::trace::shutdown(); // flush any --trace-out / ND_TRACE sink
    code
}

const USAGE: &str = "\
nd-sweep — parallel scenario sweeps over neighbor-discovery protocols

A sweep is described by a declarative TOML/JSON scenario spec: a protocol
axis (registry names or `diff-code:<v>:<m1>,<m2>,…`), parameter grids
(`eta`, `slot_us`, `drift_ppm`, `drop_probability`, `turnaround_us`,
`phase_us`, `ratio`, `nodes`, `churn`, `collision`) and an evaluation
backend. Heterogeneous device pairs add role-B axes (`protocol_b`,
`eta_b`, `slot_us_b`; device 1 runs role B) and netsim cohorts a `mix`
axis (fraction of nodes running role B). Results are cached
content-addressed: re-runs and overlapping grids are near-free.

Backends:
    exact        coverage-map analysis — exact worst case, mean,
                 percentiles, undiscovered probability
    montecarlo   pairwise simulation — collisions, drift, faults, energy
    netsim       N-node cohorts — contention, join/leave churn, per-node
                 drift (grid axes `nodes`, `churn`, `collision`)
    bounds       closed-form fundamental bounds (no schedules built)

USAGE:
    nd-sweep run <spec.toml|spec.json> [OPTIONS]
    nd-sweep report <spec> [OPTIONS]
                                legacy spelling of `run --stats` (still
                                works; prints a one-line notice on stderr)
    nd-sweep expand <spec>      list the jobs the spec expands to
    nd-sweep hash <spec>        print the spec's content hash
    nd-sweep protocols          list protocol registry names
    nd-sweep cache stats [--json]
                                entry count + total size of the result cache
                                (--json: machine-readable, via the metrics
                                registry)
    nd-sweep cache gc --max-bytes N [--dry-run]
                                LRU-evict down to N bytes (suffixes K/M/G;
                                recency = last cache hit; --dry-run only
                                prints the reclaimable bytes)
    nd-sweep trace-check <trace.jsonl> [--expect-cover FRAC]
                                validate a JSONL span trace: every line must
                                parse, spans must nest properly per thread;
                                with --expect-cover, Σ dur(sweep.job) must be
                                within [FRAC, 2−FRAC] of dur(sweep.run)
    nd-sweep --version          print version + engine/cache ABI, then exit
    nd-sweep --help             print this help, then exit

OPTIONS (run, report):
    --stats            run with metrics collection on and print a
                       deterministic JSON snapshot of the registry (cache
                       hit/miss, per-backend work, pool latency) to
                       stdout; the run summary moves to stderr, and
                       exports are written only with an explicit --format
                       (the flag is spelled the same across nd-sweep,
                       nd-opt and nd-serve)
    --out-dir DIR      write <name>.csv/.json here (default: .)
    --format FMT       csv | json | both (default: both; --stats: none)
    --threads N        worker threads (default: all cores)
    --no-cache         skip the content-addressed result cache
    --cache-dir DIR    cache location (default: $ND_SWEEP_CACHE or
                       target/nd-sweep-cache)
    --quiet            suppress the progress summary
    --trace-out FILE   write a JSONL span trace of the run (overrides
                       $ND_TRACE; see the README's Observability section
                       for the line schema)

EXIT STATUS:
    0 on success; non-zero if the spec is invalid or *any* job errored
    (cached error rows included), so pipelines cannot silently ship a
    sweep with error rows in it. The one-line summary (jobs, cached,
    executed, failed, elapsed) is printed on failure paths too.
";

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("nd-sweep: {msg}");
    ExitCode::FAILURE
}

fn load_spec(path: Option<&String>) -> Result<ScenarioSpec, String> {
    let path = path.ok_or("missing <spec> argument")?;
    ScenarioSpec::from_file(std::path::Path::new(path)).map_err(|e| e.to_string())
}

/// The positional (spec-path) argument of a flagless subcommand.
fn positional(args: &[String]) -> Option<&String> {
    args.iter().find(|a| !a.starts_with("--"))
}

/// `run` and `run --stats` share everything but metrics collection and
/// where the summary goes: `--stats` (canonical across nd-sweep, nd-opt
/// and nd-serve; `report` is the legacy spelling) turns the registry on,
/// keeps stdout clean for the JSON snapshot (summary → stderr), and
/// exports nothing unless a `--format` is given explicitly.
fn cmd_run(args: &[String], stats: bool) -> ExitCode {
    // single pass: flags consume their values, the remaining positional is
    // the spec path (so `run --threads 4 spec.toml` parses correctly)
    let mut report = stats;
    let mut opts = SweepOptions::default();
    let mut out_dir = PathBuf::from(".");
    let mut format: Option<String> = None;
    let mut quiet = false;
    let mut spec_path: Option<&String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--no-cache" => opts.use_cache = false,
            "--stats" => report = true,
            "--quiet" => quiet = true,
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => opts.threads = Some(n),
                _ => return fail("--threads needs a positive integer"),
            },
            "--out-dir" => match it.next() {
                Some(d) => out_dir = PathBuf::from(d),
                None => return fail("--out-dir needs a value"),
            },
            "--cache-dir" => match it.next() {
                Some(d) => opts.cache_dir = Some(PathBuf::from(d)),
                None => return fail("--cache-dir needs a value"),
            },
            "--format" => match it.next().map(String::as_str) {
                Some(f @ ("csv" | "json" | "both" | "none")) => format = Some(f.to_string()),
                _ => return fail("--format needs csv|json|both|none"),
            },
            "--trace-out" => match it.next() {
                Some(p) => {
                    if let Err(e) = nd_obs::trace::init_file(std::path::Path::new(p)) {
                        return fail(format!("--trace-out: {e}"));
                    }
                }
                None => return fail("--trace-out needs a value"),
            },
            other if other.starts_with("--") => return fail(format!("unknown flag `{other}`")),
            _ if spec_path.is_none() => spec_path = Some(arg),
            other => return fail(format!("unexpected argument `{other}`")),
        }
    }
    let format = format.unwrap_or_else(|| if report { "none" } else { "both" }.to_string());
    let spec = match load_spec(spec_path) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    if report {
        nd_obs::metrics::set_enabled(true);
        nd_obs::metrics::reset();
    }

    let start = std::time::Instant::now();
    let outcome = match run_sweep(&spec, &opts) {
        Ok(o) => o,
        Err(e) => {
            // the summary line appears on every post-spec path, so
            // pipelines always see what (if anything) ran and for how long
            summary_line(report, quiet, &spec.name, 0, 0, 0, 0, start.elapsed(), None);
            return fail(e);
        }
    };
    let failures = outcome.rows.iter().filter(|r| r.error.is_some()).count();
    // print the summary *before* attempting exports: an export failure
    // must not eat the run accounting
    summary_line(
        report,
        quiet,
        &outcome.name,
        outcome.rows.len(),
        outcome.cache_hits,
        outcome.executed,
        failures,
        outcome.wall,
        Some(&outcome.spec_hash),
    );

    let mut export_failure: Option<String> = None;
    if format != "none" {
        if std::fs::create_dir_all(&out_dir).is_err() {
            export_failure = Some(format!("cannot create {}", out_dir.display()));
        } else {
            let stem = out_dir.join(&outcome.name);
            type Render = fn(&nd_sweep::SweepOutcome) -> String;
            let writes: &[(&str, Render)] = &[
                ("csv", |o| nd_sweep::to_csv(o)),
                ("json", |o| nd_sweep::to_json(o)),
            ];
            for (ext, render) in writes {
                if format == *ext || format == "both" {
                    let path = stem.with_extension(ext);
                    match std::fs::write(&path, render(&outcome)) {
                        Ok(()) => {
                            if !quiet {
                                println!("wrote {}", path.display());
                            }
                        }
                        Err(e) => {
                            export_failure = Some(format!("writing {}: {e}", path.display()));
                            break;
                        }
                    }
                }
            }
        }
    }
    if report {
        // the machine-readable payload: stdout carries only this JSON
        print!("{}", nd_obs::metrics::snapshot().to_json());
    }
    if let Some(e) = export_failure {
        return fail(e);
    }
    if failures > 0 {
        // any failed job — executed now or replayed from the cache — makes
        // the run non-zero, so CI pipelines can't silently ship a sweep
        // with error rows in it
        return fail(format!(
            "{failures} of {} job(s) failed (see the error column)",
            outcome.rows.len()
        ));
    }
    ExitCode::SUCCESS
}

/// The final one-line run summary. In `report` mode it goes to stderr
/// (stdout is reserved for the metrics snapshot); `--quiet` suppresses
/// it entirely.
#[allow(clippy::too_many_arguments)]
fn summary_line(
    report: bool,
    quiet: bool,
    name: &str,
    jobs: usize,
    cached: usize,
    executed: usize,
    failed: usize,
    wall: std::time::Duration,
    spec_hash: Option<&str>,
) {
    if quiet {
        return;
    }
    // On fast runs the pool's last progress repaint can race this write;
    // erase any residue so the summary starts at column zero.
    nd_obs::progress::clear_line();
    let provenance = match spec_hash {
        Some(h) => format!("[spec {}]", &h[..12]),
        None => "[sweep failed]".to_string(),
    };
    let line = format!(
        "{name}: {jobs} jobs ({cached} cached, {executed} executed, {failed} failed) in {wall:.2?}  {provenance}",
    );
    if report {
        eprintln!("{line}");
    } else {
        println!("{line}");
    }
}

fn cmd_expand(args: &[String]) -> ExitCode {
    let spec = match load_spec(positional(args)) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let jobs = expand(&spec);
    println!(
        "{}: backend={} metric={} → {} job(s)",
        spec.name,
        spec.backend.name(),
        spec.metric.name(),
        jobs.len()
    );
    for job in &jobs {
        let params: Vec<String> = job
            .params()
            .iter()
            .map(|(k, v)| format!("{k}={}", v.to_json()))
            .collect();
        println!(
            "  [{:>4}] {}  {}",
            job.index,
            &job.content_hash(&spec)[..12],
            params.join(" ")
        );
    }
    ExitCode::SUCCESS
}

fn cmd_hash(args: &[String]) -> ExitCode {
    match load_spec(positional(args)) {
        Ok(s) => {
            println!("{}", s.content_hash());
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

/// `cache stats` / `cache gc`: size accounting and LRU eviction for the
/// content-addressed result cache.
fn cmd_cache(args: &[String]) -> ExitCode {
    let mut max_bytes: Option<u64> = None;
    let mut dry_run = false;
    let mut json = false;
    let mut cache_dir: Option<PathBuf> = None;
    let mut sub: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "stats" | "gc" if sub.is_none() => sub = Some(arg),
            "--dry-run" => dry_run = true,
            "--json" => json = true,
            "--max-bytes" => match it.next().and_then(|v| parse_bytes(v)) {
                Some(n) => max_bytes = Some(n),
                None => return fail("--max-bytes needs a byte count (suffixes K/M/G allowed)"),
            },
            "--cache-dir" => match it.next() {
                Some(d) => cache_dir = Some(PathBuf::from(d)),
                None => return fail("--cache-dir needs a value"),
            },
            other => return fail(format!("unknown cache argument `{other}`")),
        }
    }
    let cache = ResultCache::at(cache_dir.unwrap_or_else(ResultCache::default_dir));
    match sub {
        Some("stats") => {
            if max_bytes.is_some() || dry_run {
                return fail("--max-bytes/--dry-run only apply to `cache gc`");
            }
            let stats = cache.stats();
            if json {
                // route through the metrics registry so the snapshot shape
                // matches `nd-sweep report` / `nd-opt --stats` output
                nd_obs::metrics::set_enabled(true);
                nd_obs::metrics::reset();
                nd_obs::metrics::gauge_set("cache.entries", stats.entries as f64);
                nd_obs::metrics::gauge_set("cache.bytes", stats.bytes as f64);
                let mut snap = nd_obs::metrics::snapshot();
                snap.retain(|name| name.starts_with("cache."));
                print!("{}", snap.to_json());
            } else {
                println!(
                    "{}: {} entries, {} bytes",
                    cache.dir().display(),
                    stats.entries,
                    stats.bytes
                );
            }
            ExitCode::SUCCESS
        }
        Some("gc") => {
            if json {
                return fail("--json only applies to `cache stats`");
            }
            let Some(max) = max_bytes else {
                return fail("cache gc needs --max-bytes N");
            };
            let report = cache.gc(max, dry_run);
            if dry_run {
                println!(
                    "{}: {} entries, {} bytes; {} entries / {} bytes reclaimable (dry run, nothing deleted)",
                    cache.dir().display(),
                    report.entries,
                    report.bytes,
                    report.evicted_entries,
                    report.evicted_bytes,
                );
            } else {
                println!(
                    "{}: evicted {} of {} entries ({} of {} bytes), {} bytes kept",
                    cache.dir().display(),
                    report.evicted_entries,
                    report.entries,
                    report.evicted_bytes,
                    report.bytes,
                    report.bytes - report.evicted_bytes,
                );
            }
            ExitCode::SUCCESS
        }
        _ => fail("cache needs a subcommand: stats | gc"),
    }
}

/// Parse a byte count with optional K/M/G suffix (powers of 1024).
fn parse_bytes(s: &str) -> Option<u64> {
    let (digits, mult) = match s.to_ascii_uppercase() {
        ref u if u.ends_with('K') => (&s[..s.len() - 1], 1024u64),
        ref u if u.ends_with('M') => (&s[..s.len() - 1], 1024 * 1024),
        ref u if u.ends_with('G') => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        _ => (s, 1),
    };
    digits.parse::<u64>().ok().and_then(|n| n.checked_mul(mult))
}

/// `trace-check`: validate a JSONL span trace and (optionally) bound the
/// fraction of `sweep.run` wall-clock covered by `sweep.job` spans.
fn cmd_trace_check(args: &[String]) -> ExitCode {
    let mut expect_cover: Option<f64> = None;
    let mut trace_path: Option<&String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--expect-cover" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(f) if (0.0..=1.0).contains(&f) => expect_cover = Some(f),
                _ => return fail("--expect-cover needs a fraction in [0, 1]"),
            },
            other if other.starts_with("--") => return fail(format!("unknown flag `{other}`")),
            _ if trace_path.is_none() => trace_path = Some(arg),
            other => return fail(format!("unexpected argument `{other}`")),
        }
    }
    let Some(path) = trace_path else {
        return fail("missing <trace.jsonl> argument");
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return fail(format!("reading {path}: {e}")),
    };
    let report = match nd_sweep::tracecheck::check_trace(&text) {
        Ok(r) => r,
        Err(e) => return fail(format!("{path}: {e}")),
    };
    let cover_text = match report.job_cover {
        Some(c) => format!("job cover {:.1}%", c * 100.0),
        None => "no sweep.run span".to_string(),
    };
    println!(
        "{path}: {} span(s) across {} thread(s), {} name(s); {cover_text}",
        report.spans,
        report.threads,
        report.by_name.len(),
    );
    for (name, count) in &report.by_name {
        println!(
            "  {name}: {count} span(s), {} ns total",
            report.dur_by_name[name]
        );
    }
    if let Some(frac) = expect_cover {
        // symmetric tolerance: cover must land within [frac, 2 − frac],
        // so --expect-cover 0.9 means "within 10% of wall-clock"
        let Some(cover) = report.job_cover else {
            return fail("--expect-cover given, but the trace has no sweep.run span");
        };
        if cover < frac || cover > 2.0 - frac {
            return fail(format!(
                "job cover {cover:.4} outside the accepted window [{frac}, {:.4}]",
                2.0 - frac
            ));
        }
    }
    ExitCode::SUCCESS
}

fn cmd_protocols() -> ExitCode {
    println!("protocol registry (grid.protocol values):");
    for kind in nd_protocols::ProtocolKind::all() {
        println!("  {}", kind.name());
    }
    println!("  diff-code:<v>:<m1>,<m2>,…   (explicit difference set)");
    ExitCode::SUCCESS
}
