//! The `nd-sweep` CLI: run declarative scenario sweeps from the shell.
//!
//! ```text
//! nd-sweep run <spec.toml> [--out-dir DIR] [--format csv|json|both]
//!              [--threads N] [--no-cache] [--cache-dir DIR] [--quiet]
//! nd-sweep expand <spec.toml>      # list the jobs a spec would run
//! nd-sweep hash <spec.toml>        # print the spec's content hash
//! nd-sweep protocols               # list registry protocol names
//! ```

use nd_sweep::{expand, run_sweep, ResultCache, ScenarioSpec, SweepOptions, ENGINE_VERSION};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("expand") => cmd_expand(&args[1..]),
        Some("hash") => cmd_hash(&args[1..]),
        Some("protocols") => cmd_protocols(),
        Some("cache") => cmd_cache(&args[1..]),
        Some("--version" | "-V" | "version") => {
            // one stable provenance line so scripted runs can record which
            // binary (and which cache ABI) produced their data
            println!(
                "nd-sweep {} (engine {ENGINE_VERSION})",
                env!("CARGO_PKG_VERSION")
            );
            ExitCode::SUCCESS
        }
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
nd-sweep — parallel scenario sweeps over neighbor-discovery protocols

A sweep is described by a declarative TOML/JSON scenario spec: a protocol
axis (registry names or `diff-code:<v>:<m1>,<m2>,…`), parameter grids
(`eta`, `slot_us`, `drift_ppm`, `drop_probability`, `turnaround_us`,
`phase_us`, `ratio`, `nodes`, `churn`, `collision`) and an evaluation
backend. Heterogeneous device pairs add role-B axes (`protocol_b`,
`eta_b`, `slot_us_b`; device 1 runs role B) and netsim cohorts a `mix`
axis (fraction of nodes running role B). Results are cached
content-addressed: re-runs and overlapping grids are near-free.

Backends:
    exact        coverage-map analysis — exact worst case, mean,
                 percentiles, undiscovered probability
    montecarlo   pairwise simulation — collisions, drift, faults, energy
    netsim       N-node cohorts — contention, join/leave churn, per-node
                 drift (grid axes `nodes`, `churn`, `collision`)
    bounds       closed-form fundamental bounds (no schedules built)

USAGE:
    nd-sweep run <spec.toml|spec.json> [OPTIONS]
    nd-sweep expand <spec>      list the jobs the spec expands to
    nd-sweep hash <spec>        print the spec's content hash
    nd-sweep protocols          list protocol registry names
    nd-sweep cache stats        entry count + total size of the result cache
    nd-sweep cache gc --max-bytes N [--dry-run]
                                LRU-evict down to N bytes (suffixes K/M/G;
                                recency = last cache hit; --dry-run only
                                prints the reclaimable bytes)
    nd-sweep --version          print version + engine/cache ABI, then exit
    nd-sweep --help             print this help, then exit

OPTIONS (run):
    --out-dir DIR      write <name>.csv/.json here (default: .)
    --format FMT       csv | json | both (default: both)
    --threads N        worker threads (default: all cores)
    --no-cache         skip the content-addressed result cache
    --cache-dir DIR    cache location (default: $ND_SWEEP_CACHE or
                       target/nd-sweep-cache)
    --quiet            suppress the progress summary

EXIT STATUS:
    0 on success; non-zero if the spec is invalid or *any* job errored
    (cached error rows included), so pipelines cannot silently ship a
    sweep with error rows in it.
";

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("nd-sweep: {msg}");
    ExitCode::FAILURE
}

fn load_spec(path: Option<&String>) -> Result<ScenarioSpec, String> {
    let path = path.ok_or("missing <spec> argument")?;
    ScenarioSpec::from_file(std::path::Path::new(path)).map_err(|e| e.to_string())
}

/// The positional (spec-path) argument of a flagless subcommand.
fn positional(args: &[String]) -> Option<&String> {
    args.iter().find(|a| !a.starts_with("--"))
}

fn cmd_run(args: &[String]) -> ExitCode {
    // single pass: flags consume their values, the remaining positional is
    // the spec path (so `run --threads 4 spec.toml` parses correctly)
    let mut opts = SweepOptions::default();
    let mut out_dir = PathBuf::from(".");
    let mut format = "both".to_string();
    let mut quiet = false;
    let mut spec_path: Option<&String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--no-cache" => opts.use_cache = false,
            "--quiet" => quiet = true,
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => opts.threads = Some(n),
                _ => return fail("--threads needs a positive integer"),
            },
            "--out-dir" => match it.next() {
                Some(d) => out_dir = PathBuf::from(d),
                None => return fail("--out-dir needs a value"),
            },
            "--cache-dir" => match it.next() {
                Some(d) => opts.cache_dir = Some(PathBuf::from(d)),
                None => return fail("--cache-dir needs a value"),
            },
            "--format" => match it.next().map(String::as_str) {
                Some(f @ ("csv" | "json" | "both")) => format = f.to_string(),
                _ => return fail("--format needs csv|json|both"),
            },
            other if other.starts_with("--") => return fail(format!("unknown flag `{other}`")),
            _ if spec_path.is_none() => spec_path = Some(arg),
            other => return fail(format!("unexpected argument `{other}`")),
        }
    }
    let spec = match load_spec(spec_path) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };

    let outcome = match run_sweep(&spec, &opts) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };

    if std::fs::create_dir_all(&out_dir).is_err() {
        return fail(format!("cannot create {}", out_dir.display()));
    }
    let stem = out_dir.join(&outcome.name);
    if format == "csv" || format == "both" {
        let path = stem.with_extension("csv");
        if let Err(e) = std::fs::write(&path, nd_sweep::to_csv(&outcome)) {
            return fail(format!("writing {}: {e}", path.display()));
        }
        if !quiet {
            println!("wrote {}", path.display());
        }
    }
    if format == "json" || format == "both" {
        let path = stem.with_extension("json");
        if let Err(e) = std::fs::write(&path, nd_sweep::to_json(&outcome)) {
            return fail(format!("writing {}: {e}", path.display()));
        }
        if !quiet {
            println!("wrote {}", path.display());
        }
    }

    let failures = outcome.rows.iter().filter(|r| r.error.is_some()).count();
    if !quiet {
        println!(
            "{}: {} jobs ({} cached, {} executed, {} failed) in {:.2?}  [spec {}]",
            outcome.name,
            outcome.rows.len(),
            outcome.cache_hits,
            outcome.executed,
            failures,
            outcome.wall,
            &outcome.spec_hash[..12],
        );
    }
    if failures > 0 {
        // any failed job — executed now or replayed from the cache — makes
        // the run non-zero, so CI pipelines can't silently ship a sweep
        // with error rows in it
        return fail(format!(
            "{failures} of {} job(s) failed (see the error column)",
            outcome.rows.len()
        ));
    }
    ExitCode::SUCCESS
}

fn cmd_expand(args: &[String]) -> ExitCode {
    let spec = match load_spec(positional(args)) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let jobs = expand(&spec);
    println!(
        "{}: backend={} metric={} → {} job(s)",
        spec.name,
        spec.backend.name(),
        spec.metric.name(),
        jobs.len()
    );
    for job in &jobs {
        let params: Vec<String> = job
            .params()
            .iter()
            .map(|(k, v)| format!("{k}={}", v.to_json()))
            .collect();
        println!(
            "  [{:>4}] {}  {}",
            job.index,
            &job.content_hash(&spec)[..12],
            params.join(" ")
        );
    }
    ExitCode::SUCCESS
}

fn cmd_hash(args: &[String]) -> ExitCode {
    match load_spec(positional(args)) {
        Ok(s) => {
            println!("{}", s.content_hash());
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

/// `cache stats` / `cache gc`: size accounting and LRU eviction for the
/// content-addressed result cache.
fn cmd_cache(args: &[String]) -> ExitCode {
    let mut max_bytes: Option<u64> = None;
    let mut dry_run = false;
    let mut cache_dir: Option<PathBuf> = None;
    let mut sub: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "stats" | "gc" if sub.is_none() => sub = Some(arg),
            "--dry-run" => dry_run = true,
            "--max-bytes" => match it.next().and_then(|v| parse_bytes(v)) {
                Some(n) => max_bytes = Some(n),
                None => return fail("--max-bytes needs a byte count (suffixes K/M/G allowed)"),
            },
            "--cache-dir" => match it.next() {
                Some(d) => cache_dir = Some(PathBuf::from(d)),
                None => return fail("--cache-dir needs a value"),
            },
            other => return fail(format!("unknown cache argument `{other}`")),
        }
    }
    let cache = ResultCache::at(cache_dir.unwrap_or_else(ResultCache::default_dir));
    match sub {
        Some("stats") => {
            if max_bytes.is_some() || dry_run {
                return fail("--max-bytes/--dry-run only apply to `cache gc`");
            }
            let stats = cache.stats();
            println!(
                "{}: {} entries, {} bytes",
                cache.dir().display(),
                stats.entries,
                stats.bytes
            );
            ExitCode::SUCCESS
        }
        Some("gc") => {
            let Some(max) = max_bytes else {
                return fail("cache gc needs --max-bytes N");
            };
            let report = cache.gc(max, dry_run);
            if dry_run {
                println!(
                    "{}: {} entries, {} bytes; {} entries / {} bytes reclaimable (dry run, nothing deleted)",
                    cache.dir().display(),
                    report.entries,
                    report.bytes,
                    report.evicted_entries,
                    report.evicted_bytes,
                );
            } else {
                println!(
                    "{}: evicted {} of {} entries ({} of {} bytes), {} bytes kept",
                    cache.dir().display(),
                    report.evicted_entries,
                    report.entries,
                    report.evicted_bytes,
                    report.bytes,
                    report.bytes - report.evicted_bytes,
                );
            }
            ExitCode::SUCCESS
        }
        _ => fail("cache needs a subcommand: stats | gc"),
    }
}

/// Parse a byte count with optional K/M/G suffix (powers of 1024).
fn parse_bytes(s: &str) -> Option<u64> {
    let (digits, mult) = match s.to_ascii_uppercase() {
        ref u if u.ends_with('K') => (&s[..s.len() - 1], 1024u64),
        ref u if u.ends_with('M') => (&s[..s.len() - 1], 1024 * 1024),
        ref u if u.ends_with('G') => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        _ => (s, 1),
    };
    digits.parse::<u64>().ok().and_then(|n| n.checked_mul(mult))
}

fn cmd_protocols() -> ExitCode {
    println!("protocol registry (grid.protocol values):");
    for kind in nd_protocols::ProtocolKind::all() {
        println!("  {}", kind.name());
    }
    println!("  diff-code:<v>:<m1>,<m2>,…   (explicit difference set)");
    ExitCode::SUCCESS
}
