//! Result exporters: CSV and JSON.
//!
//! Both formats are deterministic for a given sweep (stable parameter
//! order, alphabetically sorted metric columns, shortest-roundtrip float
//! rendering), which makes them diff-friendly and lets the cache-hit
//! equivalence tests compare exports byte for byte.
//!
//! Both carry the [`EXPORT_SCHEMA`] tag (mirroring the bench crate's
//! `nd-bench-summary/v1` convention): JSON documents have a top-level
//! `"schema"` key, CSV files open with a `# nd-export/v1` comment line.
//! Downstream consumers should check the tag and refuse envelopes they
//! don't know; any future change to column layout or document shape bumps
//! the version.

use crate::engine::SweepOutcome;
use crate::value::Value;
use std::collections::BTreeSet;

/// The export envelope version carried by every CSV/JSON export (sweep
/// *and* opt fronts — both exporters share the envelope convention).
pub const EXPORT_SCHEMA: &str = "nd-export/v1";

/// Render the outcome as CSV: a `# nd-export/v1` schema comment, then
/// parameter columns (grid order), then metric columns (sorted union
/// across rows), then `error`.
pub fn to_csv(outcome: &SweepOutcome) -> String {
    let param_names: Vec<&str> = outcome
        .rows
        .first()
        .map(|r| r.params.iter().map(|(k, _)| *k).collect())
        .unwrap_or_default();
    let metric_names: BTreeSet<&str> = outcome
        .rows
        .iter()
        .flat_map(|r| r.metrics.keys().map(|s| s.as_str()))
        .collect();

    let mut out = format!("# {EXPORT_SCHEMA}\n");
    for (i, name) in param_names
        .iter()
        .chain(metric_names.iter())
        .chain(std::iter::once(&"error"))
        .enumerate()
    {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&csv_escape(name));
    }
    out.push('\n');

    for row in &outcome.rows {
        for (i, (_, v)) in row.params.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&csv_value(v));
        }
        for name in &metric_names {
            out.push(',');
            if let Some(x) = row.metrics.get(*name) {
                out.push_str(&float_cell(*x));
            }
        }
        out.push(',');
        if let Some(e) = &row.error {
            out.push_str(&csv_escape(e));
        }
        out.push('\n');
    }
    out
}

/// Render the outcome as a self-describing JSON document.
pub fn to_json(outcome: &SweepOutcome) -> String {
    use std::collections::BTreeMap;
    let rows: Vec<Value> = outcome
        .rows
        .iter()
        .map(|row| {
            let mut t = BTreeMap::new();
            t.insert(
                "params".to_string(),
                Value::Table(
                    row.params
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.clone()))
                        .collect(),
                ),
            );
            t.insert(
                "metrics".to_string(),
                Value::Table(
                    row.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Float(*v)))
                        .collect(),
                ),
            );
            t.insert(
                "error".to_string(),
                row.error
                    .as_ref()
                    .map(|e| Value::Str(e.clone()))
                    .unwrap_or(Value::Null),
            );
            t.insert("from_cache".to_string(), Value::Bool(row.from_cache));
            Value::Table(t)
        })
        .collect();

    let mut doc = BTreeMap::new();
    doc.insert("schema".to_string(), Value::Str(EXPORT_SCHEMA.to_string()));
    doc.insert("name".to_string(), Value::Str(outcome.name.clone()));
    doc.insert(
        "spec_hash".to_string(),
        Value::Str(outcome.spec_hash.clone()),
    );
    doc.insert("rows".to_string(), Value::Array(rows));
    Value::Table(doc).to_json_pretty()
}

fn csv_value(v: &Value) -> String {
    match v {
        Value::Str(s) => csv_escape(s),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => float_cell(*f),
        Value::Bool(b) => b.to_string(),
        Value::Null => String::new(),
        other => csv_escape(&other.to_json()),
    }
}

fn float_cell(f: f64) -> String {
    if f.is_nan() {
        "NaN".to_string()
    } else {
        format!("{f}")
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_sweep, SweepOptions};
    use crate::spec::ScenarioSpec;
    use crate::value::parse_json;

    fn outcome() -> SweepOutcome {
        let s = ScenarioSpec::from_toml_str(
            "name = \"exp\"\nbackend = \"bounds\"\n[grid]\neta = [0.05, 0.1]\nratio = [1.0]\n",
        )
        .unwrap();
        run_sweep(&s, &SweepOptions::uncached()).unwrap()
    }

    #[test]
    fn csv_has_schema_header_rows_and_stable_shape() {
        let out = outcome();
        let csv = to_csv(&out);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2 + out.rows.len());
        assert_eq!(lines[0], "# nd-export/v1");
        assert!(lines[1].starts_with("protocol,eta,"));
        assert!(lines[1].ends_with(",error"));
        assert!(lines[1].contains("product"));
        // byte-identical on re-render
        assert_eq!(csv, to_csv(&out));
    }

    #[test]
    fn empty_sweep_exports_headers_only() {
        let s = ScenarioSpec::from_toml_str("backend = \"bounds\"\n[grid]\neta = []\n").unwrap();
        let out = run_sweep(&s, &SweepOptions::uncached()).unwrap();
        let csv = to_csv(&out);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines, vec!["# nd-export/v1", "error"]);
    }

    #[test]
    fn json_export_is_valid_and_complete() {
        let out = outcome();
        let doc = parse_json(&to_json(&out)).unwrap();
        let t = doc.as_table().unwrap();
        assert_eq!(t["schema"].as_str(), Some(EXPORT_SCHEMA));
        assert_eq!(t["name"].as_str(), Some("exp"));
        assert_eq!(t["rows"].as_array().unwrap().len(), out.rows.len());
        let row0 = t["rows"].as_array().unwrap()[0].as_table().unwrap();
        assert!(row0["metrics"].as_table().unwrap().contains_key("product"));
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
