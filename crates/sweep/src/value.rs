//! A dynamic value tree plus TOML-subset and JSON parsers/writers.
//!
//! Scenario specs are declarative TOML or JSON files. With no crates.io
//! access (no `serde`/`toml`), this module carries a small, strict parser
//! for the subset of TOML a scenario spec needs — top-level key/values,
//! `[table]` / `[table.sub]` headers, single- and multi-line arrays,
//! strings, numbers, booleans, comments — and a complete JSON
//! reader/writer (the cache and export format).
//!
//! Everything parses into [`Value`]; `spec.rs` maps that onto the typed
//! [`crate::spec::ScenarioSpec`] with field validation.

use std::collections::BTreeMap;
use std::fmt;

/// A dynamically typed value: the common denominator of TOML and JSON.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A UTF-8 string.
    Str(String),
    /// An integer (TOML distinguishes these from floats).
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An ordered list.
    Array(Vec<Value>),
    /// A string-keyed table; `BTreeMap` keeps iteration (and therefore
    /// serialization) order deterministic.
    Table(BTreeMap<String, Value>),
    /// JSON `null` (no TOML spelling).
    Null,
}

impl Value {
    /// The table fields, if this is a table.
    pub fn as_table(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value (int or float), widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer value, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render as compact JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s, None);
        s
    }

    /// Render as indented JSON.
    pub fn to_json_pretty(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s, Some(0));
        s.push('\n');
        s
    }

    fn write_json(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => out.push_str(&json_number(*f)),
            Value::Str(s) => write_json_string(out, s),
            Value::Array(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        if indent.is_none() {
                            out.push(' ');
                        }
                    }
                    if let Some(level) = indent {
                        newline_indent(out, level + 1);
                        v.write_json(out, Some(level + 1));
                    } else {
                        v.write_json(out, None);
                    }
                }
                if let Some(level) = indent {
                    if !a.is_empty() {
                        newline_indent(out, level);
                    }
                }
                out.push(']');
            }
            Value::Table(t) => {
                out.push('{');
                for (i, (k, v)) in t.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        if indent.is_none() {
                            out.push(' ');
                        }
                    }
                    if let Some(level) = indent {
                        newline_indent(out, level + 1);
                        write_json_string(out, k);
                        out.push_str(": ");
                        v.write_json(out, Some(level + 1));
                    } else {
                        write_json_string(out, k);
                        out.push_str(": ");
                        v.write_json(out, None);
                    }
                }
                if let Some(level) = indent {
                    if !t.is_empty() {
                        newline_indent(out, level);
                    }
                }
                out.push('}');
            }
        }
    }
}

/// Shortest-roundtrip float rendering that stays valid JSON (no `NaN`/
/// `inf` — those become `null`, the only JSON-representable option).
fn json_number(f: f64) -> String {
    if !f.is_finite() {
        return "null".into();
    }
    let s = format!("{f}");
    // ensure floats stay floats on reparse (JSON has one number type, but
    // our Value distinguishes Int and the cache roundtrip test compares)
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn newline_indent(out: &mut String, level: usize) {
    out.push('\n');
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse error with 1-based line information.
#[derive(Debug, Clone)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based line of the offending input.
    pub line: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

// ---------------------------------------------------------------------------
// TOML subset
// ---------------------------------------------------------------------------

/// Parse the TOML subset scenario specs use. See the module docs for what
/// is supported; anything else is a hard error (strict by design — a typo
/// in a spec should fail loudly, not silently produce a default sweep).
pub fn parse_toml(input: &str) -> Result<Value, ParseError> {
    let mut root = BTreeMap::new();
    let mut current_path: Vec<String> = Vec::new();

    let mut lines = input.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header
                .strip_suffix(']')
                .ok_or_else(|| err(line_no, "unterminated table header"))?
                .trim();
            if header.is_empty() || header.starts_with('[') {
                return Err(err(
                    line_no,
                    "empty or array-of-tables header (unsupported)",
                ));
            }
            current_path = header.split('.').map(|s| s.trim().to_string()).collect();
            if current_path.iter().any(|s| s.is_empty()) {
                return Err(err(line_no, "empty segment in table header"));
            }
            // materialize the table path
            table_at(&mut root, &current_path, line_no)?;
            continue;
        }
        let (key, rest) = line
            .split_once('=')
            .ok_or_else(|| err(line_no, "expected `key = value`"))?;
        let key = parse_key(key.trim(), line_no)?;
        let mut value_text = rest.trim().to_string();
        // multi-line arrays: keep consuming lines until brackets balance
        // outside strings
        while unbalanced_brackets(&value_text) {
            let (cont_idx, cont) = lines
                .next()
                .ok_or_else(|| err(line_no, "unterminated array"))?;
            let _ = cont_idx;
            value_text.push(' ');
            value_text.push_str(strip_comment(cont).trim());
        }
        let value = parse_toml_value(&value_text, line_no)?;
        let table = table_at(&mut root, &current_path, line_no)?;
        if table.insert(key.clone(), value).is_some() {
            return Err(err(line_no, &format!("duplicate key `{key}`")));
        }
    }
    Ok(Value::Table(root))
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn unbalanced_brackets(text: &str) -> bool {
    let mut depth = 0i64;
    let mut in_str = false;
    for c in text.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth > 0
}

fn parse_key(raw: &str, line: usize) -> Result<String, ParseError> {
    let raw = raw.trim();
    if let Some(q) = raw.strip_prefix('"') {
        return q
            .strip_suffix('"')
            .map(|s| s.to_string())
            .ok_or_else(|| err(line, "unterminated quoted key"));
    }
    if raw.is_empty()
        || !raw
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Err(err(line, &format!("invalid key `{raw}`")));
    }
    Ok(raw.to_string())
}

fn table_at<'a>(
    root: &'a mut BTreeMap<String, Value>,
    path: &[String],
    line: usize,
) -> Result<&'a mut BTreeMap<String, Value>, ParseError> {
    let mut cur = root;
    for seg in path {
        let entry = cur
            .entry(seg.clone())
            .or_insert_with(|| Value::Table(BTreeMap::new()));
        cur = match entry {
            Value::Table(t) => t,
            _ => return Err(err(line, &format!("`{seg}` is not a table"))),
        };
    }
    Ok(cur)
}

fn parse_toml_value(text: &str, line: usize) -> Result<Value, ParseError> {
    let text = text.trim();
    if text.is_empty() {
        return Err(err(line, "missing value"));
    }
    if let Some(inner) = text.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| err(line, "unterminated array"))?;
        let mut out = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue; // trailing comma
            }
            out.push(parse_toml_value(part, line)?);
        }
        return Ok(Value::Array(out));
    }
    if let Some(q) = text.strip_prefix('"') {
        let body = q
            .strip_suffix('"')
            .ok_or_else(|| err(line, "unterminated string"))?;
        return Ok(Value::Str(unescape(body, line)?));
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let cleaned = text.replace('_', "");
    if let Ok(i) = cleaned.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = cleaned.parse::<f64>() {
        return Ok(Value::Float(f));
    }
    Err(err(line, &format!("cannot parse value `{text}`")))
}

/// Split on commas that are not inside strings or nested brackets.
fn split_top_level(text: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0i64;
    let mut in_str = false;
    let mut start = 0;
    for (i, c) in text.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            ',' if !in_str && depth == 0 => {
                parts.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&text[start..]);
    parts
}

fn unescape(s: &str, line: usize) -> Result<String, ParseError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let cp =
                    u32::from_str_radix(&hex, 16).map_err(|_| err(line, "invalid \\u escape"))?;
                out.push(char::from_u32(cp).ok_or_else(|| err(line, "invalid codepoint"))?);
            }
            other => return Err(err(line, &format!("invalid escape `\\{other:?}`"))),
        }
    }
    Ok(out)
}

fn err(line: usize, message: &str) -> ParseError {
    ParseError {
        message: message.to_string(),
        line,
    }
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

/// Parse a complete JSON document.
pub fn parse_json(input: &str) -> Result<Value, ParseError> {
    let mut p = JsonParser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(err(p.line(), "trailing characters after JSON value"));
    }
    Ok(v)
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn line(&self) -> usize {
        1 + self.bytes[..self.pos]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(err(self.line(), &format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
            None => Err(err(self.line(), "unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(err(self.line(), &format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut table = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Table(table));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            table.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Table(table));
                }
                _ => return Err(err(self.line(), "expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(err(self.line(), "expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let start = self.pos;
        let mut has_escape = false;
        loop {
            match self.peek() {
                Some(b'"') => break,
                Some(b'\\') => {
                    has_escape = true;
                    self.pos += 2;
                }
                Some(_) => self.pos += 1,
                None => return Err(err(self.line(), "unterminated string")),
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| err(self.line(), "invalid UTF-8 in string"))?;
        self.pos += 1; // closing quote
        if has_escape {
            unescape(raw, self.line())
        } else {
            Ok(raw.to_string())
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| err(self.line(), &format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toml_tables_arrays_scalars() {
        let v = parse_toml(
            r#"
            # a scenario
            name = "demo"
            count = 3
            scale = 1.5e-2
            on = true

            [grid]
            eta = [0.01, 0.02, 0.05]  # axis
            protocol = ["disco", "u-connect"]

            [sim]
            seed = 42

            [sim.extra]
            nested = "yes"
            "#,
        )
        .unwrap();
        let t = v.as_table().unwrap();
        assert_eq!(t["name"].as_str(), Some("demo"));
        assert_eq!(t["count"].as_i64(), Some(3));
        assert_eq!(t["scale"].as_f64(), Some(0.015));
        assert_eq!(t["on"].as_bool(), Some(true));
        let grid = t["grid"].as_table().unwrap();
        assert_eq!(grid["eta"].as_array().unwrap().len(), 3);
        assert_eq!(
            grid["protocol"].as_array().unwrap()[1].as_str(),
            Some("u-connect")
        );
        let extra = t["sim"].as_table().unwrap()["extra"].as_table().unwrap();
        assert_eq!(extra["nested"].as_str(), Some("yes"));
    }

    #[test]
    fn toml_multiline_array() {
        let v = parse_toml("xs = [\n  1,\n  2,\n  3,\n]\n").unwrap();
        assert_eq!(
            v.as_table().unwrap()["xs"],
            Value::Array(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
    }

    #[test]
    fn toml_empty_array_and_strings_with_hash() {
        let v = parse_toml("a = []\nb = \"has # inside\"\n").unwrap();
        let t = v.as_table().unwrap();
        assert_eq!(t["a"], Value::Array(vec![]));
        assert_eq!(t["b"].as_str(), Some("has # inside"));
    }

    #[test]
    fn toml_rejects_garbage() {
        assert!(parse_toml("key").is_err());
        assert!(parse_toml("k = ").is_err());
        assert!(parse_toml("k = what").is_err());
        assert!(parse_toml("[unclosed\n").is_err());
        assert!(parse_toml("k = 1\nk = 2\n").is_err());
    }

    #[test]
    fn json_roundtrip() {
        let v = Value::Table(BTreeMap::from([
            ("s".to_string(), Value::Str("a\"b\n".into())),
            ("i".to_string(), Value::Int(-3)),
            ("f".to_string(), Value::Float(0.25)),
            (
                "a".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("t".to_string(), Value::Table(BTreeMap::new())),
        ]));
        let compact = v.to_json();
        let pretty = v.to_json_pretty();
        assert_eq!(parse_json(&compact).unwrap(), v);
        assert_eq!(parse_json(&pretty).unwrap(), v);
    }

    #[test]
    fn json_number_types_survive() {
        let v = parse_json("{\"i\": 5, \"f\": 5.0}").unwrap();
        let t = v.as_table().unwrap();
        assert_eq!(t["i"], Value::Int(5));
        assert_eq!(t["f"], Value::Float(5.0));
        // and floats that happen to be integral still reparse as floats
        assert_eq!(parse_json(&t["f"].to_json()).unwrap(), Value::Float(5.0));
    }

    #[test]
    fn json_errors_carry_lines() {
        let e = parse_json("{\n  \"a\": nope\n}").unwrap_err();
        assert_eq!(e.line, 2);
    }
}
