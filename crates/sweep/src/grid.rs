//! Grid expansion: a [`ScenarioSpec`]'s axes, crossed into concrete jobs.
//!
//! Each job is one fully resolved evaluation point. Jobs carry their own
//! *content hash* — a digest of every input that influences the job's
//! result (resolved parameters, backend, metric, radio, sim settings,
//! engine version) and **not** of the surrounding grid — so two sweeps
//! whose grids overlap share cache entries for the overlapping points, and
//! per-job RNG seeds derived from the hash are reproducible everywhere.

use crate::hash::{sha256_hex, sha256_prefix_u64};
use crate::spec::{Deadline, Horizon, ScenarioSpec, ENGINE_VERSION};
use crate::value::Value;
use nd_core::stable::StableEncode;
use nd_core::time::Tick;

/// One fully resolved evaluation point.
#[derive(Clone, Debug, PartialEq)]
pub struct Job {
    /// Position in the expansion order (row order of the results).
    pub index: usize,
    /// Role A's protocol selector string (registry name or parametrized
    /// form).
    pub protocol: String,
    /// Role A's total duty-cycle target η.
    pub eta: f64,
    /// Role A's slot length for slotted protocols.
    pub slot: Tick,
    /// Role B's protocol selector; `None` = role A's.
    pub protocol_b: Option<String>,
    /// Role B's duty-cycle target; `None` = role A's.
    pub eta_b: Option<f64>,
    /// Role B's slot length; `None` = role A's.
    pub slot_b: Option<Tick>,
    /// Fraction of the cohort running role B (netsim backend; the
    /// pairwise backends put role B on device 1 whenever a role-B axis
    /// is set, regardless of `mix`).
    pub mix: f64,
    /// Relative drift of device B (ppm).
    pub drift_ppm: i64,
    /// I.i.d. reception-drop probability.
    pub drop_probability: f64,
    /// Total turnaround overhead (split evenly between TxRx and RxTx).
    pub turnaround: Tick,
    /// Fixed phase of device B; `None` = random per trial.
    pub phase: Option<Tick>,
    /// Duty-cycle asymmetry ratio (bounds backend).
    pub ratio: f64,
    /// Cohort size (netsim backend).
    pub nodes: u32,
    /// Churn fraction (netsim backend).
    pub churn: f64,
    /// Collision channel on/off (netsim backend; montecarlo uses
    /// `sim.collisions`).
    pub collision: bool,
}

impl Job {
    /// Whether this job carries any role-B departure from the symmetric
    /// default. Only then do the role fields enter the content hash, so
    /// every symmetric job keeps its pre-role hash (and cache entry).
    pub fn has_role_b(&self) -> bool {
        self.protocol_b.is_some()
            || self.eta_b.is_some()
            || self.slot_b.is_some()
            || self.mix != 0.0
    }

    /// Role A's configuration (device 0; the whole cohort minus the
    /// role-B share).
    pub fn role_a(&self) -> nd_protocols::RoleConfig {
        nd_protocols::RoleConfig {
            protocol: self.protocol.clone(),
            eta: self.eta,
            slot: self.slot,
        }
    }

    /// Role B's configuration (device 1; the role-B share of a cohort),
    /// with unset fields inherited from role A.
    pub fn role_b(&self) -> nd_protocols::RoleConfig {
        nd_protocols::RoleConfig {
            protocol: self
                .protocol_b
                .clone()
                .unwrap_or_else(|| self.protocol.clone()),
            eta: self.eta_b.unwrap_or(self.eta),
            slot: self.slot_b.unwrap_or(self.slot),
        }
    }

    /// The job's full role pair.
    pub fn role_pair(&self) -> nd_protocols::RolePair {
        nd_protocols::RolePair {
            a: self.role_a(),
            b: self.role_b(),
        }
    }

    /// The radio this job simulates with: the spec's ideal radio plus the
    /// job's turnaround overhead, split evenly between TxRx and RxTx (the
    /// Appendix A.5 convention). Shared by the engine and the content hash
    /// so the two can never disagree.
    pub fn resolved_radio(&self, spec: &ScenarioSpec) -> nd_core::params::RadioParams {
        let mut radio = nd_core::params::RadioParams::ideal(spec.radio.omega, spec.radio.alpha);
        radio.do_tx_rx = self.turnaround / 2;
        radio.do_rx_tx = self.turnaround / 2;
        radio
    }

    /// The base `SimConfig` this job's trials derive from (per-trial seeds
    /// are mixed in by the engine; a `PredictedTimes` horizon is resolved
    /// there too and encoded separately in [`Job::canonical_bytes`]).
    pub fn base_sim_config(&self, spec: &ScenarioSpec) -> nd_sim::SimConfig {
        nd_sim::SimConfig {
            radio: self.resolved_radio(spec),
            overlap: spec.overlap,
            t_end: match spec.sim.horizon {
                Horizon::Fixed(t) => t,
                Horizon::PredictedTimes(_) => Tick::ZERO,
            },
            seed: spec.sim.seed,
            half_duplex: spec.sim.half_duplex,
            // the netsim backend sweeps the collision channel as a grid
            // axis; the pairwise backends use the spec-wide switch
            collisions: if spec.backend == crate::spec::Backend::Netsim {
                self.collision
            } else {
                spec.sim.collisions
            },
            drop_probability: self.drop_probability,
            trace: false,
        }
    }

    /// The job's canonical byte encoding: everything that determines its
    /// result. Includes the sweep-level settings that apply to every job
    /// (backend, metric, radio, sim) but not the other grid points. The
    /// whole resolved `SimConfig` is encoded through its `StableEncode`
    /// impl, so a result-affecting field added to `SimConfig` enters the
    /// cache key the moment `base_sim_config` constructs it.
    pub fn canonical_bytes(&self, spec: &ScenarioSpec) -> Vec<u8> {
        let mut out = Vec::new();
        ENGINE_VERSION.encode(&mut out);
        spec.backend.name().encode(&mut out);
        spec.metric.name().encode(&mut out);
        spec.percentiles.encode(&mut out);
        spec.radio.prx_mw.encode(&mut out);
        self.base_sim_config(spec).encode(&mut out);
        spec.sim.trials.encode(&mut out);
        match spec.sim.horizon {
            Horizon::Fixed(t) => {
                "fixed".encode(&mut out);
                t.encode(&mut out);
            }
            Horizon::PredictedTimes(x) => {
                "predicted".encode(&mut out);
                x.encode(&mut out);
            }
        }
        match spec.sim.deadline {
            None => "none".encode(&mut out),
            Some(Deadline::Predicted) => "predicted".encode(&mut out),
            Some(Deadline::Fixed(t)) => {
                "fixed".encode(&mut out);
                t.encode(&mut out);
            }
        }
        self.protocol.encode(&mut out);
        self.eta.encode(&mut out);
        self.slot.encode(&mut out);
        self.drift_ppm.encode(&mut out);
        self.drop_probability.encode(&mut out);
        self.turnaround.encode(&mut out);
        self.phase.encode(&mut out);
        self.ratio.encode(&mut out);
        (self.nodes as u64).encode(&mut out);
        self.churn.encode(&mut out);
        self.collision.encode(&mut out);
        // role-B fields are appended only for asymmetric jobs, so every
        // symmetric job (the entire pre-role universe) keeps its hash —
        // and its cache entries — byte for byte
        if self.has_role_b() {
            "role-b".encode(&mut out);
            self.protocol_b.encode(&mut out);
            self.eta_b.encode(&mut out);
            self.slot_b.encode(&mut out);
            self.mix.encode(&mut out);
        }
        out
    }

    /// The job's content hash (cache key), as lowercase hex.
    pub fn content_hash(&self, spec: &ScenarioSpec) -> String {
        sha256_hex(&self.canonical_bytes(spec))
    }

    /// The job's deterministic RNG seed, derived from its content (and so
    /// identical for the same point across different sweeps).
    pub fn seed(&self, spec: &ScenarioSpec) -> u64 {
        let mut bytes = self.canonical_bytes(spec);
        bytes.extend_from_slice(b"/seed");
        sha256_prefix_u64(&bytes)
    }

    /// The job's parameter columns, in stable presentation order. The
    /// role-B columns render as null/empty for symmetric jobs.
    pub fn params(&self) -> Vec<(&'static str, Value)> {
        vec![
            ("protocol", Value::Str(self.protocol.clone())),
            ("eta", Value::Float(self.eta)),
            ("slot_us", Value::Float(self.slot.as_micros_f64())),
            (
                "protocol_b",
                match &self.protocol_b {
                    Some(p) => Value::Str(p.clone()),
                    None => Value::Null,
                },
            ),
            ("eta_b", self.eta_b.map(Value::Float).unwrap_or(Value::Null)),
            (
                "slot_us_b",
                self.slot_b
                    .map(|s| Value::Float(s.as_micros_f64()))
                    .unwrap_or(Value::Null),
            ),
            ("mix", Value::Float(self.mix)),
            ("nodes", Value::Int(self.nodes as i64)),
            ("churn", Value::Float(self.churn)),
            ("collision", Value::Bool(self.collision)),
            ("drift_ppm", Value::Int(self.drift_ppm)),
            ("drop_probability", Value::Float(self.drop_probability)),
            (
                "turnaround_us",
                Value::Float(self.turnaround.as_micros_f64()),
            ),
            (
                "phase_us",
                match self.phase {
                    Some(p) => Value::Float(p.as_micros_f64()),
                    None => Value::Str("random".into()),
                },
            ),
            ("ratio", Value::Float(self.ratio)),
        ]
    }
}

/// Expand the spec's grid into jobs (cartesian product, row-major with the
/// protocol axis outermost). An empty axis yields an empty job list.
pub fn expand(spec: &ScenarioSpec) -> Vec<Job> {
    let g = &spec.grid;
    let phases: Vec<Option<Tick>> = match &g.phase {
        None => vec![None],
        Some(p) => p.iter().copied().map(Some).collect(),
    };
    // optional role-B axes expand to the single symmetric default when
    // unset, so they add no loop levels to pre-role specs
    let protocols_b: Vec<Option<String>> = match &g.protocol_b {
        None => vec![None],
        Some(p) => p.iter().cloned().map(Some).collect(),
    };
    let etas_b: Vec<Option<f64>> = match &g.eta_b {
        None => vec![None],
        Some(e) => e.iter().copied().map(Some).collect(),
    };
    let slots_b: Vec<Option<Tick>> = match &g.slot_b {
        None => vec![None],
        Some(s) => s.iter().copied().map(Some).collect(),
    };
    let mut jobs = Vec::new();
    let mut index = 0;
    for protocol in &g.protocol {
        for protocol_b in &protocols_b {
            for &eta in &g.eta {
                for &eta_b in &etas_b {
                    for &slot in &g.slot {
                        for &slot_b in &slots_b {
                            for &nodes in &g.nodes {
                                for &mix in &g.mix {
                                    for &churn in &g.churn {
                                        for &collision in &g.collision {
                                            for &drift_ppm in &g.drift_ppm {
                                                for &drop_probability in &g.drop_probability {
                                                    for &turnaround in &g.turnaround {
                                                        for &phase in &phases {
                                                            for &ratio in &g.ratio {
                                                                jobs.push(Job {
                                                                    index,
                                                                    protocol: protocol.clone(),
                                                                    eta,
                                                                    slot,
                                                                    protocol_b: protocol_b.clone(),
                                                                    eta_b,
                                                                    slot_b,
                                                                    mix,
                                                                    drift_ppm,
                                                                    drop_probability,
                                                                    turnaround,
                                                                    phase,
                                                                    ratio,
                                                                    nodes,
                                                                    churn,
                                                                    collision,
                                                                });
                                                                index += 1;
                                                            }
                                                        }
                                                    }
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;

    fn spec(toml: &str) -> ScenarioSpec {
        ScenarioSpec::from_toml_str(toml).unwrap()
    }

    #[test]
    fn cartesian_product_size_and_order() {
        let s = spec(
            "backend = \"montecarlo\"\n[grid]\nprotocol = [\"disco\", \"u-connect\"]\n\
             eta = [0.01, 0.02, 0.05]\ndrift_ppm = [0, 40]\n",
        );
        let jobs = expand(&s);
        assert_eq!(jobs.len(), 2 * 3 * 2);
        // protocol outermost, drift innermost of the varying axes
        assert_eq!(jobs[0].protocol, "disco");
        assert_eq!((jobs[0].eta, jobs[0].drift_ppm), (0.01, 0));
        assert_eq!((jobs[1].eta, jobs[1].drift_ppm), (0.01, 40));
        assert_eq!((jobs[2].eta, jobs[2].drift_ppm), (0.02, 0));
        assert_eq!(jobs[6].protocol, "u-connect");
        assert!(jobs.iter().enumerate().all(|(i, j)| j.index == i));
    }

    #[test]
    fn empty_axis_empty_sweep() {
        let s = spec("[grid]\neta = []\n");
        assert!(expand(&s).is_empty());
    }

    #[test]
    fn single_point_single_job() {
        let s = spec("[grid]\nprotocol = [\"disco\"]\neta = [0.05]\n");
        let jobs = expand(&s);
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].index, 0);
    }

    #[test]
    fn job_hash_independent_of_surrounding_grid() {
        let narrow = spec("[grid]\nprotocol = [\"disco\"]\neta = [0.05]\n");
        let wide = spec("[grid]\nprotocol = [\"disco\", \"u-connect\"]\neta = [0.01, 0.05]\n");
        let j_narrow = &expand(&narrow)[0];
        let j_wide = expand(&wide)
            .into_iter()
            .find(|j| j.protocol == "disco" && j.eta == 0.05)
            .unwrap();
        assert_eq!(
            j_narrow.content_hash(&narrow),
            j_wide.content_hash(&wide),
            "overlapping grid points share cache entries"
        );
        assert_eq!(j_narrow.seed(&narrow), j_wide.seed(&wide));
    }

    #[test]
    fn job_hash_sensitive_to_every_sweep_level_knob() {
        let base = spec("[grid]\nprotocol = [\"disco\"]\neta = [0.05]\n");
        let job = &expand(&base)[0];
        let h = job.content_hash(&base);

        let mut m = base.clone();
        m.sim.seed = 99;
        assert_ne!(job.content_hash(&m), h);
        let mut m = base.clone();
        m.radio.alpha = 2.0;
        assert_ne!(job.content_hash(&m), h);
        let mut m = base.clone();
        m.metric = crate::spec::Metric::TwoWay;
        assert_ne!(job.content_hash(&m), h);
    }
}
