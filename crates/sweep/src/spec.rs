//! Declarative scenario specifications.
//!
//! A *scenario spec* describes a whole family of experiments as data: which
//! protocols to evaluate, the parameter grids to cross (duty cycle, slot
//! length, drift, fault injection, …), which evaluation backend to use
//! (exact coverage-map analysis, Monte-Carlo simulation, or closed-form
//! bounds) and the simulation knobs. Specs are written in TOML or JSON
//! (parsed by [`crate::value`]) and validated strictly: unknown keys and
//! backend/axis mismatches are hard errors.
//!
//! ```toml
//! name = "strip-rescue"
//! backend = "montecarlo"
//! metric = "one-way"
//!
//! [radio]
//! omega_us = 36
//!
//! [grid]
//! protocol = ["diff-code:7:1,2,4"]
//! slot_us = [1000]
//! drift_ppm = [0, 10, 50, 100]
//! phase_us = [18]
//!
//! [sim]
//! trials = 1
//! horizon_ms = 20000
//! seed = 77
//! ```

use crate::value::{parse_json, parse_toml, Value};
use nd_core::coverage::OverlapModel;
use nd_core::stable::StableEncode;
use nd_core::time::Tick;
use std::collections::BTreeMap;
use std::fmt;

/// Version salt for every content hash: bump the final `abiN` component
/// whenever the engine's result semantics change (new backend behavior,
/// changed seed derivation, changed metric definitions), so stale cache
/// entries can never be served for new semantics. History: abi1 = initial
/// engine, abi2 = netsim backend + cohort axes, abi3 = per-trial seeds
/// derived via the audited `nd_core::seed::stream_seed` (SplitMix64).
pub const ENGINE_VERSION: &str = concat!("nd-sweep/", env!("CARGO_PKG_VERSION"), "/abi3");

/// Spec loading/validation error.
#[derive(Debug)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid scenario spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn invalid<T>(msg: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError(msg.into()))
}

/// Which engine evaluates each grid point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Exact coverage-map analysis (`nd-analysis::exact`/`dist`): worst
    /// case, mean, percentiles and undiscovered probability, all to the
    /// nanosecond, no sampling error.
    Exact,
    /// Monte-Carlo campaigns on the discrete-event simulator (`nd-sim`):
    /// collisions, drift, fault injection, measured energy.
    MonteCarlo,
    /// Closed-form fundamental bounds (`nd-core::bounds`): no schedules
    /// are built at all.
    Bounds,
    /// N-node cohort simulation (`nd-netsim`): contending nodes, packet
    /// collisions, join/leave churn, per-node drift, cohort discovery
    /// metrics.
    Netsim,
}

impl Backend {
    fn parse(s: &str) -> Result<Self, SpecError> {
        match s {
            "exact" => Ok(Backend::Exact),
            "montecarlo" => Ok(Backend::MonteCarlo),
            "bounds" => Ok(Backend::Bounds),
            "netsim" => Ok(Backend::Netsim),
            other => invalid(format!(
                "unknown backend `{other}` (expected exact|montecarlo|bounds|netsim)"
            )),
        }
    }

    /// The spec spelling.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Exact => "exact",
            Backend::MonteCarlo => "montecarlo",
            Backend::Bounds => "bounds",
            Backend::Netsim => "netsim",
        }
    }

    /// Whether this backend runs a stochastic simulator (and so honors the
    /// drift/fault axes and the `[sim]` table).
    pub fn is_simulation(&self) -> bool {
        matches!(self, Backend::MonteCarlo | Backend::Netsim)
    }
}

/// Which discovery completion a job evaluates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Device 1 discovers device 0.
    OneWay,
    /// Both directions complete (Theorem 5.5/5.7 metric).
    TwoWay,
    /// Either direction completes (Appendix C metric).
    EitherWay,
}

impl Metric {
    fn parse(s: &str) -> Result<Self, SpecError> {
        match s {
            "one-way" => Ok(Metric::OneWay),
            "two-way" => Ok(Metric::TwoWay),
            "either-way" => Ok(Metric::EitherWay),
            other => invalid(format!(
                "unknown metric `{other}` (expected one-way|two-way|either-way)"
            )),
        }
    }

    /// The spec spelling.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::OneWay => "one-way",
            Metric::TwoWay => "two-way",
            Metric::EitherWay => "either-way",
        }
    }
}

/// Radio model shared by every job of the sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RadioSpec {
    /// Packet airtime ω.
    pub omega: Tick,
    /// TX/RX power ratio α.
    pub alpha: f64,
    /// Reception power draw in milliwatts (energy metrics only).
    pub prx_mw: f64,
}

impl Default for RadioSpec {
    fn default() -> Self {
        RadioSpec {
            omega: Tick::from_micros(36),
            alpha: 1.0,
            prx_mw: 10.0,
        }
    }
}

/// The parameter grid: every listed axis is crossed with every other
/// (cartesian product). An explicitly empty axis (`eta = []`) produces an
/// empty sweep — zero jobs — by design.
#[derive(Clone, Debug, PartialEq)]
pub struct Grid {
    /// Protocol axis: registry names (`nd-protocols::registry`, e.g.
    /// `"disco"`, `"optimal-slotless"`) or the parametrized form
    /// `"diff-code:<v>:<m1>,<m2>,…"` for an explicit difference set.
    /// This is *role A*'s protocol; device 1 (and the role-B share of a
    /// netsim cohort) runs role B, which defaults to role A.
    pub protocol: Vec<String>,
    /// Total duty-cycle targets η (ignored by parametrized protocols and
    /// interpreted as the *joint* budget η_E+η_F by the bounds backend —
    /// unless `eta_b` makes the pair explicitly asymmetric, in which case
    /// `eta` is η_E).
    pub eta: Vec<f64>,
    /// Slot lengths for slotted protocols.
    pub slot: Vec<Tick>,
    /// Role-B protocol axis; `None` = role B runs role A's protocol
    /// (the symmetric default every pre-existing spec uses).
    pub protocol_b: Option<Vec<String>>,
    /// Role-B duty-cycle targets η_F; `None` = role A's η. On the bounds
    /// backend this switches `eta`/`eta_b` to the explicit (η_E, η_F)
    /// parametrization of Theorem 5.7 (mutually exclusive with `ratio`).
    pub eta_b: Option<Vec<f64>>,
    /// Role-B slot lengths; `None` = role A's slot.
    pub slot_b: Option<Vec<Tick>>,
    /// Fraction of the cohort running role B (netsim only): `0.0` = all
    /// nodes are role A, `0.5` = an even split, `1.0` = all role B. The
    /// role-B node count is `round(mix · nodes)`, assigned to the
    /// highest node ids.
    pub mix: Vec<f64>,
    /// Relative clock drift of device B in ppm (montecarlo only).
    pub drift_ppm: Vec<i64>,
    /// I.i.d. reception-drop probability (montecarlo only).
    pub drop_probability: Vec<f64>,
    /// Total turnaround overhead d_oTxRx + d_oRxTx, split evenly
    /// (montecarlo only).
    pub turnaround: Vec<Tick>,
    /// Fixed initial phase of device B; `None` = independently random
    /// phases per trial (montecarlo only).
    pub phase: Option<Vec<Tick>>,
    /// Duty-cycle asymmetry ratio η_E/η_F (bounds backend only).
    pub ratio: Vec<f64>,
    /// Cohort sizes (netsim only).
    pub nodes: Vec<u32>,
    /// Churn fractions: the share of the cohort that joins late and leaves
    /// early, staggered over the horizon (netsim only).
    pub churn: Vec<f64>,
    /// Collision-channel toggle per grid point (netsim only; the pairwise
    /// montecarlo backend uses the single `sim.collisions` switch).
    pub collision: Vec<bool>,
}

impl Default for Grid {
    fn default() -> Self {
        Grid {
            protocol: vec!["optimal-slotless".to_string()],
            eta: vec![0.05],
            slot: vec![Tick::from_millis(1)],
            protocol_b: None,
            eta_b: None,
            slot_b: None,
            mix: vec![0.0],
            drift_ppm: vec![0],
            drop_probability: vec![0.0],
            turnaround: vec![Tick::ZERO],
            phase: None,
            ratio: vec![1.0],
            nodes: vec![2],
            churn: vec![0.0],
            collision: vec![true],
        }
    }
}

impl Grid {
    /// Whether any role-B axis departs from the symmetric default. Only
    /// then do the role axes enter content hashes — symmetric specs keep
    /// their pre-role hashes byte for byte.
    pub fn has_role_axes(&self) -> bool {
        self.protocol_b.is_some()
            || self.eta_b.is_some()
            || self.slot_b.is_some()
            || self.mix != vec![0.0]
    }
}

/// How long each Monte-Carlo trial may run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Horizon {
    /// A fixed wall-clock horizon.
    Fixed(Tick),
    /// A multiple of the schedule pair's exact worst-case two-way latency
    /// (the protocol's nominal guarantee), computed per job.
    PredictedTimes(f64),
}

/// Deadline for the `over_deadline_frac` metric.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Deadline {
    /// The exact worst-case two-way latency (nominal guarantee).
    Predicted,
    /// A fixed deadline.
    Fixed(Tick),
}

/// Monte-Carlo settings (ignored by the exact/bounds backends).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimSpec {
    /// Trials per grid point.
    pub trials: usize,
    /// Base seed; per-job seeds are derived from it and the job's content
    /// hash, so every job is deterministic and independent.
    pub seed: u64,
    /// Half-duplex radios (Appendix A.5 self-blocking).
    pub half_duplex: bool,
    /// ALOHA collisions (Eq. 12).
    pub collisions: bool,
    /// Trial horizon.
    pub horizon: Horizon,
    /// Optional deadline metric.
    pub deadline: Option<Deadline>,
}

impl Default for SimSpec {
    fn default() -> Self {
        SimSpec {
            trials: 100,
            seed: 0,
            half_duplex: true,
            collisions: true,
            horizon: Horizon::PredictedTimes(3.0),
            deadline: None,
        }
    }
}

/// A complete, validated scenario specification.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Human-readable name (not part of the content hash).
    pub name: String,
    /// Evaluation backend.
    pub backend: Backend,
    /// Discovery metric.
    pub metric: Metric,
    /// Reception overlap model.
    pub overlap: OverlapModel,
    /// Radio model.
    pub radio: RadioSpec,
    /// Parameter grid.
    pub grid: Grid,
    /// Monte-Carlo settings.
    pub sim: SimSpec,
    /// Exact backend: also compute the latency distribution percentiles
    /// (p50/p95/p99). Exact, but expensive for slotted schedules with many
    /// distinct beacon gaps — large grids over such protocols usually want
    /// `percentiles = false`.
    pub percentiles: bool,
}

impl ScenarioSpec {
    /// Parse a TOML scenario spec.
    pub fn from_toml_str(input: &str) -> Result<Self, SpecError> {
        let v = parse_toml(input).map_err(|e| SpecError(e.to_string()))?;
        Self::from_value(&v)
    }

    /// Parse a JSON scenario spec.
    pub fn from_json_str(input: &str) -> Result<Self, SpecError> {
        let v = parse_json(input).map_err(|e| SpecError(e.to_string()))?;
        Self::from_value(&v)
    }

    /// Load from a file, dispatching on the `.json` extension (anything
    /// else parses as TOML).
    pub fn from_file(path: &std::path::Path) -> Result<Self, SpecError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SpecError(format!("cannot read {}: {e}", path.display())))?;
        if path.extension().is_some_and(|e| e == "json") {
            Self::from_json_str(&text)
        } else {
            Self::from_toml_str(&text)
        }
    }

    /// Build from a parsed [`Value`] tree, validating strictly.
    pub fn from_value(v: &Value) -> Result<Self, SpecError> {
        let top = v
            .as_table()
            .ok_or_else(|| SpecError("spec root must be a table".into()))?;
        check_keys(
            top,
            &[
                "name",
                "backend",
                "metric",
                "overlap",
                "percentiles",
                "radio",
                "grid",
                "sim",
            ],
            "top level",
        )?;

        let name = match top.get("name") {
            Some(v) => req_str(v, "name")?.to_string(),
            None => "unnamed".to_string(),
        };
        let backend = match top.get("backend") {
            Some(v) => Backend::parse(req_str(v, "backend")?)?,
            None => Backend::Exact,
        };
        let metric = match top.get("metric") {
            Some(v) => Metric::parse(req_str(v, "metric")?)?,
            None => Metric::OneWay,
        };
        let overlap = match top.get("overlap") {
            Some(v) => match req_str(v, "overlap")? {
                "start" => OverlapModel::Start,
                "any-overlap" => OverlapModel::AnyOverlap,
                "full-packet" => OverlapModel::FullPacket,
                other => {
                    return invalid(format!(
                        "unknown overlap model `{other}` (expected start|any-overlap|full-packet)"
                    ))
                }
            },
            None => OverlapModel::Start,
        };

        let radio = match top.get("radio") {
            Some(v) => parse_radio(v)?,
            None => RadioSpec::default(),
        };
        let grid = match top.get("grid") {
            Some(v) => parse_grid(v)?,
            None => Grid::default(),
        };
        let sim = match top.get("sim") {
            Some(v) => parse_sim(v)?,
            None => SimSpec::default(),
        };

        let percentiles = match top.get("percentiles") {
            Some(v) => v
                .as_bool()
                .ok_or_else(|| SpecError("`percentiles` must be a boolean".into()))?,
            None => true,
        };

        let spec = ScenarioSpec {
            name,
            backend,
            metric,
            overlap,
            radio,
            grid,
            sim,
            percentiles,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// A copy of this spec with the Monte-Carlo trial budget replaced.
    ///
    /// `sim.trials` is part of every job's canonical bytes, so the
    /// partial-budget clone's jobs hash — and therefore cache and seed —
    /// independently of the full-budget spec's: a low-trial screening
    /// pass can never collide with (or poison) full-budget results, and
    /// its RNG streams are derived from its own content hash.
    pub fn with_trials(&self, trials: usize) -> ScenarioSpec {
        let mut spec = self.clone();
        spec.sim.trials = trials;
        spec
    }

    /// Cross-field validation: axes that only one backend honors are
    /// rejected elsewhere instead of being silently ignored.
    pub fn validate(&self) -> Result<(), SpecError> {
        let g = &self.grid;
        if !self.backend.is_simulation() {
            if g.drift_ppm != vec![0] {
                return invalid("drift_ppm axis requires backend = \"montecarlo\" or \"netsim\"");
            }
            if g.drop_probability != vec![0.0] {
                return invalid(
                    "drop_probability axis requires backend = \"montecarlo\" or \"netsim\"",
                );
            }
            if g.turnaround != vec![Tick::ZERO] {
                return invalid(
                    "turnaround_us axis requires backend = \"montecarlo\" or \"netsim\"",
                );
            }
        }
        if self.backend != Backend::MonteCarlo && g.phase.is_some() {
            return invalid("phase_us axis requires backend = \"montecarlo\"");
        }
        if self.backend != Backend::Netsim {
            if g.nodes != vec![2] {
                return invalid("nodes axis requires backend = \"netsim\"");
            }
            if g.churn != vec![0.0] {
                return invalid("churn axis requires backend = \"netsim\"");
            }
            if g.collision != vec![true] {
                return invalid("collision axis requires backend = \"netsim\"");
            }
        }
        if self.backend != Backend::Bounds && g.ratio != vec![1.0] {
            return invalid("ratio axis requires backend = \"bounds\"");
        }
        if self.backend == Backend::Bounds {
            if g.protocol_b.is_some() || g.slot_b.is_some() {
                return invalid(
                    "protocol_b/slot_us_b axes are meaningless on the bounds backend \
                     (no schedules are built; use eta_b for the Theorem 5.7 pair)",
                );
            }
            if g.eta_b.is_some() && g.ratio != vec![1.0] {
                return invalid(
                    "eta_b and ratio are mutually exclusive on the bounds backend \
                     (eta_b switches to the explicit (η_E, η_F) parametrization)",
                );
            }
        }
        if self.backend != Backend::Netsim && g.mix != vec![0.0] {
            return invalid("mix axis requires backend = \"netsim\"");
        }
        // the registry/selector constructions (and the coupled Theorem
        // 5.7 pair) are built for α = 1; a schedule-building backend with
        // role axes at a different α would be measured against a bound it
        // was not constructed for — reject instead of silently missing it
        if self.backend != Backend::Bounds && g.has_role_axes() && self.radio.alpha != 1.0 {
            return invalid(format!(
                "role-B axes with radio.alpha = {} are not supported: the pair \
                 constructions assume α = 1 (the bounds backend takes any α)",
                self.radio.alpha
            ));
        }
        let has_b_axis = g.protocol_b.is_some() || g.eta_b.is_some() || g.slot_b.is_some();
        if g.mix != vec![0.0] && !has_b_axis {
            return invalid(
                "mix axis without a role-B axis (protocol_b/eta_b/slot_us_b) has no effect",
            );
        }
        if self.backend == Backend::Netsim && has_b_axis && g.mix == vec![0.0] {
            return invalid(
                "role-B axes on the netsim backend need a mix axis (mix = [0.0] \
                 keeps the whole cohort on role A, so role B would be ignored)",
            );
        }
        for &m in &g.mix {
            if !(0.0..=1.0).contains(&m) {
                return invalid(format!("mix {m} out of [0, 1]"));
            }
        }
        if let Some(etas) = &g.eta_b {
            for &eta in etas {
                if !(eta > 0.0 && eta <= 1.0) {
                    return invalid(format!("eta_b {eta} out of (0, 1]"));
                }
            }
        }
        for &n in &g.nodes {
            if n < 2 {
                return invalid(format!("nodes {n} below 2 (discovery needs a pair)"));
            }
        }
        for &c in &g.churn {
            if !(0.0..=1.0).contains(&c) {
                return invalid(format!("churn {c} out of [0, 1]"));
            }
        }
        if self.backend == Backend::Exact && self.metric == Metric::EitherWay {
            return invalid("metric \"either-way\" is not supported by the exact backend");
        }
        for &p in &[self.radio.alpha, self.radio.prx_mw] {
            if !p.is_finite() || p <= 0.0 {
                return invalid("radio alpha/prx_mw must be positive and finite");
            }
        }
        for &eta in &g.eta {
            if !(eta > 0.0 && eta <= 1.0) && self.backend != Backend::Bounds {
                return invalid(format!("eta {eta} out of (0, 1]"));
            }
        }
        for &p in &g.drop_probability {
            if !(0.0..=1.0).contains(&p) {
                return invalid(format!("drop_probability {p} out of [0, 1]"));
            }
        }
        for &r in &g.ratio {
            if !(r.is_finite() && r > 0.0) {
                return invalid(format!("ratio {r} must be positive"));
            }
        }
        Ok(())
    }

    /// The spec's content hash: every semantic field (not the name), salted
    /// with [`ENGINE_VERSION`]. Two specs with the same hash produce
    /// byte-identical results.
    pub fn content_hash(&self) -> String {
        let mut bytes = Vec::new();
        ENGINE_VERSION.encode(&mut bytes);
        self.encode(&mut bytes);
        crate::hash::sha256_hex(&bytes)
    }
}

impl StableEncode for ScenarioSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        // the name is cosmetic and deliberately excluded
        self.backend.name().encode(out);
        self.metric.name().encode(out);
        self.overlap.encode(out);
        self.percentiles.encode(out);
        self.radio.omega.encode(out);
        self.radio.alpha.encode(out);
        self.radio.prx_mw.encode(out);
        self.grid.protocol.encode(out);
        self.grid.eta.encode(out);
        self.grid.slot.encode(out);
        let drift: Vec<i64> = self.grid.drift_ppm.clone();
        drift.encode(out);
        self.grid.drop_probability.encode(out);
        self.grid.turnaround.encode(out);
        self.grid.phase.as_ref().map(|p| p.to_vec()).encode(out);
        self.grid.ratio.encode(out);
        let nodes: Vec<u64> = self.grid.nodes.iter().map(|&n| n as u64).collect();
        nodes.encode(out);
        self.grid.churn.encode(out);
        self.grid.collision.encode(out);
        self.sim.trials.encode(out);
        self.sim.seed.encode(out);
        self.sim.half_duplex.encode(out);
        self.sim.collisions.encode(out);
        match self.sim.horizon {
            Horizon::Fixed(t) => {
                "fixed".encode(out);
                t.encode(out);
            }
            Horizon::PredictedTimes(x) => {
                "predicted".encode(out);
                x.encode(out);
            }
        }
        match self.sim.deadline {
            None => "none".encode(out),
            Some(Deadline::Predicted) => "predicted".encode(out),
            Some(Deadline::Fixed(t)) => {
                "fixed".encode(out);
                t.encode(out);
            }
        }
        // the role-B axes entered the grammar after abi3; they are
        // appended only when asymmetric so every pre-existing symmetric
        // spec keeps its content hash byte for byte (no cache
        // invalidation, no ENGINE_VERSION bump)
        if self.grid.has_role_axes() {
            "role-b".encode(out);
            self.grid.protocol_b.encode(out);
            self.grid.eta_b.encode(out);
            self.grid.slot_b.encode(out);
            self.grid.mix.encode(out);
        }
    }
}

fn check_keys(
    table: &BTreeMap<String, Value>,
    allowed: &[&str],
    ctx: &str,
) -> Result<(), SpecError> {
    for key in table.keys() {
        if !allowed.contains(&key.as_str()) {
            return invalid(format!(
                "unknown key `{key}` in {ctx} (allowed: {})",
                allowed.join(", ")
            ));
        }
    }
    Ok(())
}

fn req_str<'a>(v: &'a Value, what: &str) -> Result<&'a str, SpecError> {
    v.as_str()
        .ok_or_else(|| SpecError(format!("`{what}` must be a string")))
}

fn req_f64(v: &Value, what: &str) -> Result<f64, SpecError> {
    v.as_f64()
        .ok_or_else(|| SpecError(format!("`{what}` must be a number")))
}

fn f64_list(v: &Value, what: &str) -> Result<Vec<f64>, SpecError> {
    let arr = v
        .as_array()
        .ok_or_else(|| SpecError(format!("`{what}` must be an array")))?;
    arr.iter().map(|x| req_f64(x, what)).collect()
}

fn ticks_from_us(v: &Value, what: &str) -> Result<Vec<Tick>, SpecError> {
    f64_list(v, what)?
        .into_iter()
        .map(|us| {
            if !(us.is_finite() && us >= 0.0) {
                invalid(format!("`{what}` entries must be non-negative, got {us}"))
            } else {
                Ok(Tick::from_secs_f64(us * 1e-6))
            }
        })
        .collect()
}

fn parse_radio(v: &Value) -> Result<RadioSpec, SpecError> {
    let t = v
        .as_table()
        .ok_or_else(|| SpecError("`radio` must be a table".into()))?;
    check_keys(t, &["omega_us", "alpha", "prx_mw"], "[radio]")?;
    let mut radio = RadioSpec::default();
    if let Some(v) = t.get("omega_us") {
        radio.omega = Tick::from_secs_f64(req_f64(v, "radio.omega_us")? * 1e-6);
    }
    if let Some(v) = t.get("alpha") {
        radio.alpha = req_f64(v, "radio.alpha")?;
    }
    if let Some(v) = t.get("prx_mw") {
        radio.prx_mw = req_f64(v, "radio.prx_mw")?;
    }
    Ok(radio)
}

fn parse_grid(v: &Value) -> Result<Grid, SpecError> {
    let t = v
        .as_table()
        .ok_or_else(|| SpecError("`grid` must be a table".into()))?;
    check_keys(
        t,
        &[
            "protocol",
            "eta",
            "slot_us",
            "protocol_b",
            "eta_b",
            "slot_us_b",
            "mix",
            "drift_ppm",
            "drop_probability",
            "turnaround_us",
            "phase_us",
            "ratio",
            "nodes",
            "churn",
            "collision",
        ],
        "[grid]",
    )?;
    let string_list = |v: &Value, what: &str| -> Result<Vec<String>, SpecError> {
        let arr = v
            .as_array()
            .ok_or_else(|| SpecError(format!("`{what}` must be an array")))?;
        arr.iter()
            .map(|x| req_str(x, what).map(str::to_string))
            .collect()
    };
    let mut grid = Grid::default();
    if let Some(v) = t.get("protocol") {
        grid.protocol = string_list(v, "grid.protocol")?;
    }
    if let Some(v) = t.get("eta") {
        grid.eta = f64_list(v, "grid.eta")?;
    }
    if let Some(v) = t.get("slot_us") {
        grid.slot = ticks_from_us(v, "grid.slot_us")?;
    }
    if let Some(v) = t.get("protocol_b") {
        grid.protocol_b = Some(string_list(v, "grid.protocol_b")?);
    }
    if let Some(v) = t.get("eta_b") {
        grid.eta_b = Some(f64_list(v, "grid.eta_b")?);
    }
    if let Some(v) = t.get("slot_us_b") {
        grid.slot_b = Some(ticks_from_us(v, "grid.slot_us_b")?);
    }
    if let Some(v) = t.get("mix") {
        grid.mix = f64_list(v, "grid.mix")?;
    }
    if let Some(v) = t.get("drift_ppm") {
        let arr = v
            .as_array()
            .ok_or_else(|| SpecError("`grid.drift_ppm` must be an array".into()))?;
        grid.drift_ppm = arr
            .iter()
            .map(|x| {
                x.as_i64()
                    .ok_or_else(|| SpecError("`grid.drift_ppm` entries must be integers".into()))
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(v) = t.get("drop_probability") {
        grid.drop_probability = f64_list(v, "grid.drop_probability")?;
    }
    if let Some(v) = t.get("turnaround_us") {
        grid.turnaround = ticks_from_us(v, "grid.turnaround_us")?;
    }
    if let Some(v) = t.get("phase_us") {
        grid.phase = Some(ticks_from_us(v, "grid.phase_us")?);
    }
    if let Some(v) = t.get("ratio") {
        grid.ratio = f64_list(v, "grid.ratio")?;
    }
    if let Some(v) = t.get("nodes") {
        let arr = v
            .as_array()
            .ok_or_else(|| SpecError("`grid.nodes` must be an array".into()))?;
        grid.nodes = arr
            .iter()
            .map(|x| match x.as_i64() {
                Some(n) if (0..=u32::MAX as i64).contains(&n) => Ok(n as u32),
                _ => invalid("`grid.nodes` entries must be non-negative integers"),
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(v) = t.get("churn") {
        grid.churn = f64_list(v, "grid.churn")?;
    }
    if let Some(v) = t.get("collision") {
        let arr = v
            .as_array()
            .ok_or_else(|| SpecError("`grid.collision` must be an array".into()))?;
        grid.collision = arr
            .iter()
            .map(|x| {
                x.as_bool()
                    .ok_or_else(|| SpecError("`grid.collision` entries must be booleans".into()))
            })
            .collect::<Result<_, _>>()?;
    }
    Ok(grid)
}

fn parse_sim(v: &Value) -> Result<SimSpec, SpecError> {
    let t = v
        .as_table()
        .ok_or_else(|| SpecError("`sim` must be a table".into()))?;
    check_keys(
        t,
        &[
            "trials",
            "seed",
            "half_duplex",
            "collisions",
            "horizon_ms",
            "horizon_predicted_x",
            "deadline_ms",
            "deadline",
        ],
        "[sim]",
    )?;
    let mut sim = SimSpec::default();
    if let Some(v) = t.get("trials") {
        let n = v
            .as_i64()
            .ok_or_else(|| SpecError("`sim.trials` must be an integer".into()))?;
        if n < 0 {
            return invalid("`sim.trials` must be non-negative");
        }
        sim.trials = n as usize;
    }
    if let Some(v) = t.get("seed") {
        let s = v
            .as_i64()
            .ok_or_else(|| SpecError("`sim.seed` must be an integer".into()))?;
        sim.seed = s as u64;
    }
    if let Some(v) = t.get("half_duplex") {
        sim.half_duplex = v
            .as_bool()
            .ok_or_else(|| SpecError("`sim.half_duplex` must be a boolean".into()))?;
    }
    if let Some(v) = t.get("collisions") {
        sim.collisions = v
            .as_bool()
            .ok_or_else(|| SpecError("`sim.collisions` must be a boolean".into()))?;
    }
    match (t.get("horizon_ms"), t.get("horizon_predicted_x")) {
        (Some(_), Some(_)) => {
            return invalid("`sim.horizon_ms` and `sim.horizon_predicted_x` are mutually exclusive")
        }
        (Some(v), None) => {
            sim.horizon = Horizon::Fixed(Tick::from_secs_f64(req_f64(v, "sim.horizon_ms")? * 1e-3));
        }
        (None, Some(v)) => {
            sim.horizon = Horizon::PredictedTimes(req_f64(v, "sim.horizon_predicted_x")?);
        }
        (None, None) => {}
    }
    match (t.get("deadline"), t.get("deadline_ms")) {
        (Some(_), Some(_)) => {
            return invalid("`sim.deadline` and `sim.deadline_ms` are mutually exclusive")
        }
        (Some(v), None) => {
            let s = req_str(v, "sim.deadline")?;
            if s != "predicted" {
                return invalid("`sim.deadline` only accepts \"predicted\" (or use deadline_ms)");
            }
            sim.deadline = Some(Deadline::Predicted);
        }
        (None, Some(v)) => {
            sim.deadline = Some(Deadline::Fixed(Tick::from_secs_f64(
                req_f64(v, "sim.deadline_ms")? * 1e-3,
            )));
        }
        (None, None) => {}
    }
    Ok(sim)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = r#"
name = "demo"
backend = "montecarlo"
metric = "two-way"

[radio]
omega_us = 36
alpha = 1.0

[grid]
protocol = ["optimal-slotless", "disco"]
eta = [0.01, 0.05]
slot_us = [1000]
drift_ppm = [0, 50]

[sim]
trials = 10
seed = 7
horizon_predicted_x = 2.5
deadline = "predicted"
"#;

    #[test]
    fn parses_full_spec() {
        let s = ScenarioSpec::from_toml_str(DEMO).unwrap();
        assert_eq!(s.name, "demo");
        assert_eq!(s.backend, Backend::MonteCarlo);
        assert_eq!(s.metric, Metric::TwoWay);
        assert_eq!(s.grid.protocol.len(), 2);
        assert_eq!(s.grid.drift_ppm, vec![0, 50]);
        assert_eq!(s.sim.trials, 10);
        assert_eq!(s.sim.horizon, Horizon::PredictedTimes(2.5));
        assert_eq!(s.sim.deadline, Some(Deadline::Predicted));
    }

    #[test]
    fn rejects_unknown_keys_and_mismatched_axes() {
        assert!(ScenarioSpec::from_toml_str("nome = \"typo\"")
            .unwrap_err()
            .to_string()
            .contains("unknown key"));
        // drift on the exact backend is an error, not silently ignored
        let bad = "backend = \"exact\"\n[grid]\ndrift_ppm = [10]\n";
        assert!(ScenarioSpec::from_toml_str(bad)
            .unwrap_err()
            .to_string()
            .contains("drift_ppm"));
        let bad = "backend = \"exact\"\nmetric = \"either-way\"\n";
        assert!(ScenarioSpec::from_toml_str(bad).is_err());
    }

    #[test]
    fn content_hash_ignores_name_but_not_semantics() {
        let a = ScenarioSpec::from_toml_str(DEMO).unwrap();
        let mut renamed = a.clone();
        renamed.name = "other".into();
        assert_eq!(a.content_hash(), renamed.content_hash());

        let mut tweaked = a.clone();
        tweaked.sim.seed = 8;
        assert_ne!(a.content_hash(), tweaked.content_hash());

        let mut axis = a.clone();
        axis.grid.eta.push(0.10);
        assert_ne!(a.content_hash(), axis.content_hash());
    }

    #[test]
    fn partial_budget_jobs_hash_and_seed_independently() {
        // the adaptive screening contract: a reduced-trials clone of a
        // spec produces jobs with distinct cache keys AND distinct RNG
        // seeds, so screening results can never collide with — or leak
        // into — the full-budget universe
        let full = ScenarioSpec::from_toml_str(DEMO).unwrap();
        let screen = full.with_trials(3);
        assert_eq!(screen.sim.trials, 3);
        assert_eq!(full.sim.trials, 10, "with_trials must not mutate self");
        let full_jobs = crate::grid::expand(&full);
        let screen_jobs = crate::grid::expand(&screen);
        assert_eq!(full_jobs.len(), screen_jobs.len());
        for (f, s) in full_jobs.iter().zip(&screen_jobs) {
            assert_ne!(f.content_hash(&full), s.content_hash(&screen));
            assert_ne!(f.seed(&full), s.seed(&screen));
        }
        // and the same budget round-trips to the same hashes
        let same = full.with_trials(full.sim.trials);
        for (f, s) in full_jobs.iter().zip(crate::grid::expand(&same).iter()) {
            assert_eq!(f.content_hash(&full), s.content_hash(&same));
        }
    }

    #[test]
    fn netsim_axes_parse_and_are_fenced_to_the_backend() {
        let s = ScenarioSpec::from_toml_str(
            "backend = \"netsim\"\n[grid]\nnodes = [2, 8]\nchurn = [0.0, 0.3]\ncollision = [true, false]\ndrift_ppm = [0, 50]\n",
        )
        .unwrap();
        assert_eq!(s.backend, Backend::Netsim);
        assert_eq!(s.grid.nodes, vec![2, 8]);
        assert_eq!(s.grid.churn, vec![0.0, 0.3]);
        assert_eq!(s.grid.collision, vec![true, false]);

        // cohort axes on a pairwise backend are errors, not ignored
        for bad in [
            "backend = \"exact\"\n[grid]\nnodes = [4]\n",
            "backend = \"montecarlo\"\n[grid]\nchurn = [0.5]\n",
            "backend = \"montecarlo\"\n[grid]\ncollision = [false]\n",
            // and netsim rejects what it cannot honor
            "backend = \"netsim\"\n[grid]\nphase_us = [10]\n",
            "backend = \"netsim\"\n[grid]\nnodes = [1]\n",
            "backend = \"netsim\"\n[grid]\nchurn = [1.5]\n",
        ] {
            assert!(ScenarioSpec::from_toml_str(bad).is_err(), "{bad}");
        }
        // drift and faults are shared by both simulation backends
        assert!(ScenarioSpec::from_toml_str(
            "backend = \"netsim\"\n[grid]\ndrop_probability = [0.1]\n"
        )
        .is_ok());
    }

    #[test]
    fn netsim_axes_feed_the_content_hash() {
        let base =
            ScenarioSpec::from_toml_str("backend = \"netsim\"\n[grid]\nnodes = [4]\n").unwrap();
        let mut nodes = base.clone();
        nodes.grid.nodes = vec![8];
        assert_ne!(base.content_hash(), nodes.content_hash());
        let mut churn = base.clone();
        churn.grid.churn = vec![0.5];
        assert_ne!(base.content_hash(), churn.content_hash());
        let mut coll = base.clone();
        coll.grid.collision = vec![false];
        assert_ne!(base.content_hash(), coll.content_hash());
    }

    #[test]
    fn role_axes_parse_validate_and_gate_the_hash() {
        let s = ScenarioSpec::from_toml_str(
            "backend = \"montecarlo\"\n[grid]\nprotocol = [\"optimal-slotless\"]\n\
             eta = [0.02]\nprotocol_b = [\"disco\"]\neta_b = [0.10, 0.20]\nslot_us_b = [2000]\n",
        )
        .unwrap();
        assert_eq!(s.grid.protocol_b, Some(vec!["disco".to_string()]));
        assert_eq!(s.grid.eta_b, Some(vec![0.10, 0.20]));
        assert!(s.grid.has_role_axes());

        // a netsim mix axis needs a role-B axis to mix in
        let mixed = ScenarioSpec::from_toml_str(
            "backend = \"netsim\"\n[grid]\neta = [0.05]\neta_b = [0.2]\nmix = [0.0, 0.5]\n",
        )
        .unwrap();
        assert_eq!(mixed.grid.mix, vec![0.0, 0.5]);

        for (bad, needle) in [
            // mix is a cohort axis
            (
                "backend = \"montecarlo\"\n[grid]\neta_b = [0.1]\nmix = [0.5]\n",
                "netsim",
            ),
            // mix without a role-B axis has nothing to mix
            ("backend = \"netsim\"\n[grid]\nmix = [0.5]\n", "no effect"),
            // …and netsim role-B axes without a mix axis would be ignored
            (
                "backend = \"netsim\"\n[grid]\neta_b = [0.2]\n",
                "need a mix axis",
            ),
            (
                "backend = \"netsim\"\n[grid]\neta_b = [0.1]\nmix = [1.5]\n",
                "out of [0, 1]",
            ),
            ("[grid]\neta_b = [0.0]\n", "out of (0, 1]"),
            // bounds takes eta_b (Theorem 5.7 pairs) but not schedules
            (
                "backend = \"bounds\"\n[grid]\nprotocol_b = [\"disco\"]\n",
                "meaningless",
            ),
            (
                "backend = \"bounds\"\n[grid]\neta_b = [0.1]\nratio = [2.0]\n",
                "mutually exclusive",
            ),
            // role pairs are α = 1 constructions on schedule-building
            // backends (the closed-form bounds backend takes any α)
            (
                "backend = \"exact\"\n[radio]\nalpha = 2.0\n[grid]\neta_b = [0.1]\n",
                "alpha",
            ),
        ] {
            let err = ScenarioSpec::from_toml_str(bad).unwrap_err().to_string();
            assert!(err.contains(needle), "`{bad}` → `{err}`");
        }

        // hash gating: the symmetric spec's hash has no role-B bytes
        let sym = ScenarioSpec::from_toml_str("[grid]\neta = [0.05]\n").unwrap();
        let mut with_b = sym.clone();
        with_b.grid.eta_b = Some(vec![0.02]);
        assert_ne!(sym.content_hash(), with_b.content_hash());
        let mut with_mix = sym.clone();
        with_mix.backend = Backend::Netsim;
        let sym_netsim = {
            let mut s = sym.clone();
            s.backend = Backend::Netsim;
            s
        };
        with_mix.grid.eta_b = Some(vec![0.02]);
        with_mix.grid.mix = vec![0.5];
        assert_ne!(sym_netsim.content_hash(), with_mix.content_hash());
    }

    #[test]
    fn json_specs_parse_too() {
        let json = r#"{"name": "j", "backend": "bounds",
                       "grid": {"protocol": ["bound"], "eta": [0.05], "ratio": [1, 2]}}"#;
        let s = ScenarioSpec::from_json_str(json).unwrap();
        assert_eq!(s.backend, Backend::Bounds);
        assert_eq!(s.grid.ratio, vec![1.0, 2.0]);
    }

    #[test]
    fn defaults_are_sane() {
        let s = ScenarioSpec::from_toml_str("name = \"d\"").unwrap();
        assert_eq!(s.backend, Backend::Exact);
        assert_eq!(s.metric, Metric::OneWay);
        assert_eq!(s.radio.omega, Tick::from_micros(36));
        assert_eq!(s.grid.protocol, vec!["optimal-slotless".to_string()]);
    }
}
