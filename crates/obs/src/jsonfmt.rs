//! Minimal JSON value formatting shared by the trace sink and the
//! metrics snapshot (this crate is dependency-free by design, so it
//! carries its own escaping).

/// Append `s` as a JSON string literal (quotes included).
pub(crate) fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append an `f64` as a JSON number (`null` for non-finite values, which
/// JSON cannot represent). Uses the shortest round-trip representation,
/// so output is deterministic across platforms.
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: &str) -> String {
        let mut out = String::new();
        push_str(&mut out, x);
        out
    }

    #[test]
    fn escapes_specials() {
        assert_eq!(s("a\"b"), r#""a\"b""#);
        assert_eq!(s("a\\b"), r#""a\\b""#);
        assert_eq!(s("a\nb"), r#""a\nb""#);
        assert_eq!(s("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn floats_round_trip_or_null() {
        let mut out = String::new();
        push_f64(&mut out, 0.1);
        assert_eq!(out, "0.1");
        let mut out = String::new();
        push_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        let mut out = String::new();
        push_f64(&mut out, 3.0);
        assert_eq!(out, "3.0");
    }
}
