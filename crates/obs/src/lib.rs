//! `nd-obs` — the zero-dependency observability spine for the
//! optimal-nd workspace.
//!
//! Three pillars, all hand-rolled on the standard library (this crate
//! has no dependencies, vendored or otherwise):
//!
//! * [`trace`] — structured spans with monotonic timing, a thread-local
//!   span stack and a JSONL sink (`ND_TRACE=path` or the CLIs'
//!   `--trace-out`). The [`span!`] macro is the entry point.
//! * [`metrics`] — a global registry of atomic counters, gauges and
//!   log₂-scaled histograms, snapshot-able as deterministic-ordered
//!   JSON (`nd-sweep report`, `nd-opt front --stats`,
//!   `nd-sweep cache stats --json`).
//! * [`progress`] — a slot-guarded stderr progress line with ETA,
//!   driven by the sweep pool and the netsim event loop
//!   (`ND_PROGRESS=1|0` overrides the is-a-terminal default).
//!
//! # Cost model
//!
//! Everything is compiled in everywhere and **off by default**. Each
//! instrumentation site's fast path is a single relaxed atomic load:
//! `span!` does not evaluate its field expressions, `metrics::inc` does
//! not touch the registry, and `Progress::update` returns before any
//! formatting. Observability never feeds back into computation —
//! enabling any of it changes no content hashes, seeds, or exported
//! bytes (regression-tested in nd-sweep).
//!
//! ```
//! nd_obs::metrics::set_enabled(true);
//! {
//!     let _span = nd_obs::span!("demo.work", items = 3u64);
//!     nd_obs::metrics::add("demo.items", 3);
//! } // span closes here; with no sink configured the line is dropped
//! let snap = nd_obs::metrics::snapshot();
//! assert_eq!(snap.counters["demo.items"], 3);
//! nd_obs::metrics::reset();
//! nd_obs::metrics::set_enabled(false);
//! ```

#![warn(missing_docs)]

mod jsonfmt;
pub mod metrics;
pub mod progress;
pub mod trace;

pub use metrics::{HistogramData, Snapshot};
pub use progress::Progress;
pub use trace::{ContextGuard, FieldValue, Span};
