//! Structured tracing: lightweight spans with monotonic timing, a
//! thread-local span stack, and a JSONL sink.
//!
//! A span is opened with the [`span!`](crate::span!) macro (or
//! [`Span::enter`]) and closed when the guard drops; at close time one
//! JSON line is written to the configured sink. When tracing is
//! disabled (the default) opening a span is a single relaxed atomic
//! load — no allocation, no clock read, and the macro does not even
//! evaluate its field expressions.
//!
//! The sink is configured once per process, either explicitly
//! ([`init_file`] / [`init_writer`], which the CLIs wire to
//! `--trace-out`) or from the `ND_TRACE` environment variable
//! ([`init_from_env`]).
//!
//! # Line schema
//!
//! Each line is one JSON object:
//!
//! ```json
//! {"t": "span", "name": "sweep.job", "tid": 3, "start_ns": 81234,
//!  "dur_ns": 52100, "depth": 1, "fields": {"job": 4}}
//! ```
//!
//! * `t` — record type, always `"span"` today.
//! * `name` — the span name passed to `span!`.
//! * `tid` — a small per-process thread ordinal (first thread to open a
//!   span gets 0, and so on). Not the OS thread id.
//! * `start_ns` / `dur_ns` — integer nanoseconds; `start_ns` is measured
//!   from a process-wide monotonic epoch taken at first use, so spans
//!   from all threads share one timeline.
//! * `depth` — how many spans were already open on this thread when this
//!   one started (0 = top level). A parent always has a smaller `depth`
//!   and an enclosing `[start_ns, start_ns+dur_ns]` interval.
//! * `ctx` — the thread's trace context at open time (see
//!   [`push_context`]); omitted when none is installed. `nd-serve` puts
//!   each request's `X-ND-Trace-Id` here, so one id reconstructs the
//!   whole cross-thread story of a request.
//! * `fields` — the `key = value` pairs from the macro call; omitted
//!   when empty.
//!
//! Tracing records *timings about* the pipeline; it never feeds back
//! into it. Content hashes, seeds and exported rows are byte-identical
//! with tracing on or off (a regression test in nd-sweep pins this).

use crate::jsonfmt;
use std::cell::{Cell, RefCell};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether tracing is on (one relaxed atomic load — the check every
/// span site performs first).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The shared monotonic epoch. Set once on first use and never reset,
/// so timestamps stay monotone even if the sink is re-initialised.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);

/// Next per-process thread ordinal (`tid` in the line schema).
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: Cell<u64> = const { Cell::new(u64::MAX) };
    /// Open-span count on this thread (the next span's `depth`).
    static DEPTH: Cell<u64> = const { Cell::new(0) };
    /// The thread's trace context (e.g. a request id); stamped as `ctx`
    /// on every span opened while it is installed.
    static CONTEXT: RefCell<Option<Arc<str>>> = const { RefCell::new(None) };
}

fn tid() -> u64 {
    TID.with(|t| {
        if t.get() == u64::MAX {
            t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// The calling thread's current trace context, if one is installed.
///
/// Capture this before handing work to another thread and re-install it
/// there with [`set_context`] so spans emitted by the worker carry the
/// originating request's id (nd-sweep's worker pool does exactly this).
pub fn current_context() -> Option<Arc<str>> {
    CONTEXT.with(|c| c.borrow().clone())
}

/// Install `ctx` as this thread's trace context until the returned
/// guard drops; the previous context (if any) is restored on drop.
///
/// While installed, every span opened on this thread records
/// `"ctx": "<value>"` in its JSONL line. Installing a context is cheap
/// and independent of whether tracing is enabled, so request-scoped
/// code can set it unconditionally.
pub fn set_context(ctx: Option<Arc<str>>) -> ContextGuard {
    let prev = CONTEXT.with(|c| c.replace(ctx));
    ContextGuard {
        prev,
        _not_send: std::marker::PhantomData,
    }
}

/// Convenience wrapper over [`set_context`] for the common "stamp this
/// request id" case.
pub fn push_context(ctx: impl Into<Arc<str>>) -> ContextGuard {
    set_context(Some(ctx.into()))
}

/// Restores the previously installed trace context when dropped.
/// Returned by [`set_context`] / [`push_context`]; `!Send` because the
/// context is thread-local state.
#[must_use = "dropping the guard immediately uninstalls the context"]
pub struct ContextGuard {
    prev: Option<Arc<str>>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CONTEXT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Route trace output to `writer` and enable tracing. Replaces (and
/// flushes) any previous sink.
pub fn init_writer(writer: Box<dyn Write + Send>) {
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(old) = sink.as_mut() {
        let _ = old.flush();
    }
    epoch(); // pin the timeline origin before the first span
    *sink = Some(writer);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Create (truncate) `path` and route trace output to it.
pub fn init_file(path: &Path) -> std::io::Result<()> {
    let f = File::create(path)?;
    init_writer(Box::new(BufWriter::new(f)));
    Ok(())
}

/// Enable tracing if the `ND_TRACE` environment variable names a
/// writable path. Returns whether tracing was enabled. The CLIs call
/// this at startup; an explicit `--trace-out` flag takes precedence by
/// calling [`init_file`] afterwards.
pub fn init_from_env() -> std::io::Result<bool> {
    match std::env::var_os("ND_TRACE") {
        Some(p) if !p.is_empty() => {
            init_file(Path::new(&p))?;
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// Flush and drop the sink and disable tracing. Safe to call when
/// tracing was never enabled.
pub fn shutdown() {
    ENABLED.store(false, Ordering::Relaxed);
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(w) = sink.as_mut() {
        let _ = w.flush();
    }
    *sink = None;
}

/// A value attached to a span via `span!("name", key = value)`.
#[derive(Clone, Debug)]
pub enum FieldValue {
    /// A string (content-hash prefixes, censor reasons, …).
    Str(String),
    /// An unsigned integer (job indices, counts).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (rendered `null` if non-finite).
    F64(f64),
    /// A boolean.
    Bool(bool),
}

macro_rules! impl_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::$variant(v as $conv)
            }
        }
    )*};
}

impl_from! {
    u64 => U64 as u64, u32 => U64 as u64, usize => U64 as u64,
    i64 => I64 as i64, i32 => I64 as i64,
    f64 => F64 as f64,
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// An open span; dropping it closes the span and writes its JSONL line.
///
/// Prefer the [`span!`](crate::span!) macro, which skips all argument
/// evaluation when tracing is off. `Span` is `!Send` by construction
/// (it caches the thread ordinal), matching the thread-local stack.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
    start_ns: u64,
    depth: u64,
    tid: u64,
    ctx: Option<Arc<str>>,
    // Keep the guard thread-bound so depth bookkeeping stays coherent.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Span {
    /// Open a span. Returns an inert guard when tracing is disabled.
    pub fn enter(name: &'static str, fields: Vec<(&'static str, FieldValue)>) -> Span {
        if !enabled() {
            return Span { inner: None };
        }
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        Span {
            inner: Some(SpanInner {
                name,
                fields,
                start_ns: now_ns(),
                depth,
                tid: tid(),
                ctx: current_context(),
                _not_send: std::marker::PhantomData,
            }),
        }
    }

    /// Whether this guard is actually recording (false when tracing was
    /// off at open time).
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let end_ns = now_ns();
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));

        let mut line = String::with_capacity(128);
        line.push_str("{\"t\": \"span\", \"name\": ");
        jsonfmt::push_str(&mut line, inner.name);
        line.push_str(&format!(
            ", \"tid\": {}, \"start_ns\": {}, \"dur_ns\": {}, \"depth\": {}",
            inner.tid,
            inner.start_ns,
            end_ns.saturating_sub(inner.start_ns),
            inner.depth
        ));
        if let Some(ctx) = &inner.ctx {
            line.push_str(", \"ctx\": ");
            jsonfmt::push_str(&mut line, ctx);
        }
        if !inner.fields.is_empty() {
            line.push_str(", \"fields\": {");
            for (i, (k, v)) in inner.fields.iter().enumerate() {
                if i > 0 {
                    line.push_str(", ");
                }
                jsonfmt::push_str(&mut line, k);
                line.push_str(": ");
                match v {
                    FieldValue::Str(s) => jsonfmt::push_str(&mut line, s),
                    FieldValue::U64(n) => line.push_str(&n.to_string()),
                    FieldValue::I64(n) => line.push_str(&n.to_string()),
                    FieldValue::F64(f) => jsonfmt::push_f64(&mut line, *f),
                    FieldValue::Bool(b) => line.push_str(if *b { "true" } else { "false" }),
                }
            }
            line.push('}');
        }
        line.push_str("}\n");

        // One locked write per line keeps lines atomic across threads.
        let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(w) = sink.as_mut() {
            let _ = w.write_all(line.as_bytes());
        }
    }
}

/// Open a span that closes (and emits its JSONL line) when the bound
/// guard drops.
///
/// ```
/// # use nd_obs::span;
/// let _span = span!("backend.exact");
/// let job_index = 4usize;
/// let _span = span!("sweep.job", job = job_index, cached = false);
/// ```
///
/// Field values may be integers, floats, bools, `&str` or `String`
/// (anything `Into<`[`FieldValue`](crate::trace::FieldValue)`>`). When
/// tracing is disabled the field expressions are **not evaluated** —
/// the whole macro is one relaxed atomic load.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::Span::enter($name, ::std::vec::Vec::new())
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        if $crate::trace::enabled() {
            $crate::trace::Span::enter(
                $name,
                ::std::vec![$((stringify!($key), $crate::trace::FieldValue::from($value))),+],
            )
        } else {
            $crate::trace::Span::enter($name, ::std::vec::Vec::new())
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A Vec<u8> sink we can inspect after shutdown.
    #[derive(Clone, Default)]
    struct Shared(Arc<StdMutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: StdMutex<()> = StdMutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = serial();
        shutdown();
        // Field expressions must not run when tracing is off.
        let evaluate_panics = || -> u64 { panic!("field evaluated while disabled") };
        let s = span!("test.noop", never = evaluate_panics());
        assert!(!s.is_recording());
    }

    #[test]
    fn spans_emit_nested_jsonl() {
        let _g = serial();
        let buf = Shared::default();
        init_writer(Box::new(buf.clone()));
        {
            let _outer = span!("test.outer", label = "run");
            let _inner = span!("test.inner", job = 7u64, ok = true);
        }
        shutdown();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "got: {text}");
        // Inner closes first.
        assert!(lines[0].contains("\"name\": \"test.inner\""));
        assert!(lines[0].contains("\"depth\": 1"));
        assert!(lines[0].contains("\"job\": 7"));
        assert!(lines[0].contains("\"ok\": true"));
        assert!(lines[1].contains("\"name\": \"test.outer\""));
        assert!(lines[1].contains("\"depth\": 0"));
        assert!(lines[1].contains("\"label\": \"run\""));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn context_is_stamped_nested_and_restored() {
        let _g = serial();
        let buf = Shared::default();
        init_writer(Box::new(buf.clone()));
        {
            let _before = span!("test.ctx_before");
        }
        {
            let _ctx = push_context("req-42");
            let _outer = span!("test.ctx_outer");
            let _inner = span!("test.ctx_inner");
            // An inner scope can override, and the override unwinds.
            {
                let _ctx2 = push_context("req-43");
                let _deep = span!("test.ctx_deep");
            }
            let _tail = span!("test.ctx_tail");
        }
        {
            let _after = span!("test.ctx_after");
        }
        shutdown();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let line = |name: &str| -> String {
            text.lines()
                .find(|l| l.contains(&format!("\"name\": \"{name}\"")))
                .unwrap_or_else(|| panic!("missing span {name} in: {text}"))
                .to_string()
        };
        assert!(!line("test.ctx_before").contains("\"ctx\""));
        assert!(line("test.ctx_outer").contains("\"ctx\": \"req-42\""));
        assert!(line("test.ctx_inner").contains("\"ctx\": \"req-42\""));
        assert!(line("test.ctx_deep").contains("\"ctx\": \"req-43\""));
        assert!(line("test.ctx_tail").contains("\"ctx\": \"req-42\""));
        assert!(!line("test.ctx_after").contains("\"ctx\""));
        assert!(current_context().is_none());
    }

    #[test]
    fn context_transfers_across_threads_by_capture() {
        let _g = serial();
        let buf = Shared::default();
        init_writer(Box::new(buf.clone()));
        {
            let _ctx = push_context("req-x");
            let captured = current_context();
            std::thread::scope(|s| {
                s.spawn(move || {
                    let _g = set_context(captured);
                    let _span = span!("test.ctx_worker");
                });
            });
        }
        shutdown();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let worker = text
            .lines()
            .find(|l| l.contains("test.ctx_worker"))
            .unwrap();
        assert!(worker.contains("\"ctx\": \"req-x\""), "got: {worker}");
    }

    #[test]
    fn timestamps_are_monotone_and_nest() {
        let _g = serial();
        let buf = Shared::default();
        init_writer(Box::new(buf.clone()));
        {
            let _outer = span!("test.mono_outer");
            std::thread::sleep(std::time::Duration::from_millis(1));
            let _inner = span!("test.mono_inner");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        shutdown();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let grab = |line: &str, key: &str| -> u64 {
            let at = line.find(key).unwrap() + key.len() + 2;
            line[at..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse()
                .unwrap()
        };
        let lines: Vec<&str> = text.lines().collect();
        let (inner, outer) = (lines[0], lines[1]);
        let (is, id) = (grab(inner, "\"start_ns\""), grab(inner, "\"dur_ns\""));
        let (os, od) = (grab(outer, "\"start_ns\""), grab(outer, "\"dur_ns\""));
        assert!(os <= is, "outer starts first");
        assert!(is + id <= os + od, "inner interval inside outer");
        assert!(id >= 1_000_000, "inner slept ≥ 1 ms");
    }
}
