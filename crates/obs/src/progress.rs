//! Periodic progress lines on stderr (jobs done/total, percent, ETA).
//!
//! A [`Progress`] is a claim on the single per-process render slot: the
//! first component to construct one (the sweep pool, or a standalone
//! netsim run) renders; any nested constructor gets an inert handle, so
//! per-job simulations inside a sweep never interleave lines with the
//! pool's own display.
//!
//! Rendering is on by default only when stderr is a terminal; the
//! `ND_PROGRESS` environment variable forces it (`1`) or suppresses it
//! (`0`) regardless. Output goes to stderr only — stdout stays clean
//! for machine-readable exports — and is throttled to roughly one
//! repaint per 150 ms, so calling [`Progress::update`] from a hot loop
//! is cheap (one atomic load of the repaint deadline on most calls).

use std::io::{IsTerminal, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Only one progress line may render at a time.
static SLOT: AtomicBool = AtomicBool::new(false);

/// Minimum interval between repaints.
const THROTTLE_NS: u64 = 150_000_000;

/// Should progress render at all, per the environment?
fn env_enabled() -> bool {
    match std::env::var("ND_PROGRESS").ok().as_deref() {
        Some("1") => true,
        Some("0") => false,
        _ => std::io::stderr().is_terminal(),
    }
}

/// Defensively erase any progress residue from stderr and flush it.
///
/// Call this immediately before printing a final summary: on fast runs
/// the last repaint can race the summary write (stderr is unbuffered,
/// stdout often block-buffered when piped), leaving the carriage-return
/// line interleaved with the summary. A no-op when the environment
/// disables progress rendering, so piped runs with `ND_PROGRESS=0` see
/// no stray control bytes.
pub fn clear_line() {
    if !env_enabled() {
        return;
    }
    let mut err = std::io::stderr().lock();
    // Wide enough for any line a `Progress` may have painted.
    let _ = write!(err, "\r{:100}\r", "");
    let _ = err.flush();
}

/// A progress line over `total` units of work. Construct with
/// [`Progress::new`], feed it the running completion count with
/// [`update`](Progress::update), and let it drop (or call
/// [`finish`](Progress::finish)) to clear the line and free the render
/// slot. Shareable across threads by reference: worker threads can all
/// call `update` on the same handle.
pub struct Progress {
    inner: Option<Inner>,
}

struct Inner {
    label: String,
    total: u64,
    start: Instant,
    /// Nanoseconds (since `start`) before which repaints are skipped.
    next_render_ns: AtomicU64,
}

impl Progress {
    /// Claim the render slot for `total` units of work labelled `label`.
    /// Returns an inert handle (all methods no-ops) when rendering is
    /// disabled by the environment or another `Progress` is live.
    pub fn new(label: &str, total: u64) -> Progress {
        Self::with_enabled(label, total, env_enabled())
    }

    fn with_enabled(label: &str, total: u64, on: bool) -> Progress {
        if !on
            || SLOT
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
        {
            return Progress { inner: None };
        }
        Progress {
            inner: Some(Inner {
                label: label.to_string(),
                total,
                start: Instant::now(),
                next_render_ns: AtomicU64::new(0),
            }),
        }
    }

    /// Whether this handle owns the render slot and will paint.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Report that `done` of the total units are complete. Repaints at
    /// most ~every 150 ms; extra calls are one atomic load.
    pub fn update(&self, done: u64) {
        let Some(inner) = &self.inner else { return };
        let now_ns = inner.start.elapsed().as_nanos() as u64;
        let due = inner.next_render_ns.load(Ordering::Relaxed);
        if now_ns < due {
            return;
        }
        if inner
            .next_render_ns
            .compare_exchange(
                due,
                now_ns + THROTTLE_NS,
                Ordering::Relaxed,
                Ordering::Relaxed,
            )
            .is_err()
        {
            return; // another thread is painting this tick
        }
        inner.paint(done, now_ns);
    }

    /// Clear the line and release the render slot (also done on drop).
    pub fn finish(mut self) {
        self.clear();
    }

    fn clear(&mut self) {
        if let Some(inner) = self.inner.take() {
            let mut err = std::io::stderr().lock();
            let _ = write!(err, "\r{:width$}\r", "", width = inner.line_width());
            let _ = err.flush();
            SLOT.store(false, Ordering::Release);
        }
    }
}

impl Inner {
    /// A generous clear width for the longest line we may have painted.
    fn line_width(&self) -> usize {
        self.label.len() + 48
    }

    fn paint(&self, done: u64, now_ns: u64) {
        let done = done.min(self.total);
        let pct = (done * 100).checked_div(self.total).unwrap_or(100);
        let eta = if done == 0 || done >= self.total {
            String::new()
        } else {
            let remaining_ns = now_ns / done * (self.total - done);
            format!("  ETA {:.0}s", remaining_ns as f64 / 1e9)
        };
        let mut err = std::io::stderr().lock();
        let _ = write!(
            err,
            "\r{:width$}\r{}: {}/{} ({}%){}",
            "",
            self.label,
            done,
            self.total,
            pct,
            eta,
            width = self.line_width()
        );
        let _ = err.flush();
    }
}

impl Drop for Progress {
    fn drop(&mut self) {
        self.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_handles_are_inert() {
        let _g = serial();
        let p = Progress::with_enabled("test", 10, false);
        assert!(!p.is_active());
        p.update(5); // no-op, no panic
        p.finish();
    }

    #[test]
    fn slot_is_exclusive_and_released() {
        let _g = serial();
        let first = Progress::with_enabled("a", 10, true);
        assert!(first.is_active());
        let second = Progress::with_enabled("b", 10, true);
        assert!(!second.is_active(), "slot already held");
        drop(first);
        let third = Progress::with_enabled("c", 10, true);
        assert!(third.is_active(), "slot released on drop");
        third.finish();
    }

    #[test]
    fn update_is_safe_from_many_threads() {
        let _g = serial();
        let p = Progress::with_enabled("t", 1000, true);
        std::thread::scope(|s| {
            for t in 0..4 {
                let p = &p;
                s.spawn(move || {
                    for i in 0..250u64 {
                        p.update(t * 250 + i);
                    }
                });
            }
        });
        p.finish();
    }
}
