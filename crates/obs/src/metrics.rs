//! The metrics registry: named atomic counters, gauges and log-scaled
//! histograms, snapshot-able as deterministic-ordered JSON.
//!
//! All instrumentation is compiled in unconditionally but **off by
//! default**: every string-keyed helper ([`inc`], [`add`], [`gauge_set`],
//! [`observe`], …) starts with a single relaxed load of the global enable
//! flag and returns immediately when metrics are disabled, so hot paths
//! pay one predictable branch. Enable collection with
//! [`set_enabled`]`(true)` (the CLIs do this for `nd-sweep report`,
//! `nd-opt front --stats` and `cache stats --json`).
//!
//! Metric naming convention (see the README's Observability section for
//! the full catalog): dot-separated lowercase (`cache.hit`,
//! `pool.task_us`, `netsim.events`). Names ending in `_us`/`_ns` are
//! wall-clock timings and therefore not deterministic across runs; the
//! determinism tests filter them out with [`Snapshot::retain`].
//!
//! ```
//! nd_obs::metrics::set_enabled(true);
//! nd_obs::metrics::inc("cache.hit");
//! nd_obs::metrics::observe("pool.task_us", 1500);
//! let snap = nd_obs::metrics::snapshot();
//! assert_eq!(snap.counters["cache.hit"], 1);
//! nd_obs::metrics::reset();
//! nd_obs::metrics::set_enabled(false);
//! ```

use crate::jsonfmt;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)` — a log₂ scale covering all of `u64`.
pub const BUCKETS: usize = 65;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether metric collection is on (one relaxed atomic load — the fast
/// path every helper takes first).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn metric collection on or off globally.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Add `n` (relaxed; counters are merged at snapshot time).
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A last-writer-wins numeric level (stored as `f64` bits so byte counts
/// and rates share one type).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Set the level.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raise the level to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn max(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            if f64::from_bits(cur) >= v {
                return;
            }
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current level.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A concurrent log₂-scaled histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>, // BUCKETS entries
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// The bucket a value falls into: 0 for 0, else `floor(log2(v)) + 1`.
#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A plain-data copy of the current state.
    pub fn data(&self) -> HistogramData {
        let mut d = HistogramData::new();
        for (i, b) in self.buckets.iter().enumerate() {
            d.buckets[i] = b.load(Ordering::Relaxed);
        }
        d.count = self.count.load(Ordering::Relaxed);
        d.sum = self.sum.load(Ordering::Relaxed);
        d.min = self.min.load(Ordering::Relaxed);
        d.max = self.max.load(Ordering::Relaxed);
        d
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A plain (non-atomic) histogram state: what snapshots carry and what
/// [`HistogramData::merge`] combines. Merging is associative and
/// commutative (the property tests pin this), so per-shard histograms
/// can be folded in any order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramData {
    /// Per-bucket sample counts (see [`BUCKETS`] for the scale).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wrapping at `u64::MAX` like the atomics).
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl Default for HistogramData {
    fn default() -> Self {
        Self::new()
    }
}

impl HistogramData {
    /// An empty histogram.
    pub fn new() -> Self {
        HistogramData {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample (non-atomic twin of [`Histogram::record`]).
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Combine two histograms. Associative and commutative; the empty
    /// histogram is the identity.
    pub fn merge(&self, other: &HistogramData) -> HistogramData {
        let mut out = self.clone();
        for (a, b) in out.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        out.count += other.count;
        out.sum = out.sum.wrapping_add(other.sum);
        out.min = out.min.min(other.min);
        out.max = out.max.max(other.max);
        out
    }

    /// Mean sample value (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`q` clamped to `[0, 1]`) from the log₂
    /// buckets. NaN when empty.
    ///
    /// The rank-holding bucket is found by a cumulative walk, then the
    /// estimate interpolates linearly inside that bucket's value range
    /// and is clamped to the observed `[min, max]`. Because bucket `i`
    /// only brackets its samples to `[2^(i-1), 2^i)`, the estimate can
    /// be off by up to the bucket width (a factor of 2 at worst) — but
    /// it always lies within the closed bounds of the bucket holding the
    /// true quantile, and is monotone in `q`. Both properties, plus
    /// stability under [`merge`](Self::merge), are pinned by proptests.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the sample that holds the quantile.
        let rank = (q * self.count as f64).ceil().max(1.0);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let before = seen as f64;
            seen += c;
            if seen as f64 >= rank {
                let (lo, hi) = bucket_bounds(i);
                let frac = (rank - before) / c as f64;
                let est = lo + frac * (hi - lo);
                return est.clamp(self.min as f64, self.max as f64);
            }
        }
        self.max as f64
    }
}

/// The closed value range covered by bucket `i`: `(0, 0)` for bucket 0,
/// else `(2^(i-1), 2^i)`. Computed in `f64` (bucket 64's upper bound
/// does not fit in `u64`).
pub fn bucket_bounds(i: usize) -> (f64, f64) {
    if i == 0 {
        (0.0, 0.0)
    } else {
        (f64::exp2(i as f64 - 1.0), f64::exp2(i as f64))
    }
}

// ---------------------------------------------------------------------------
// registry
// ---------------------------------------------------------------------------

struct Registry {
    counters: RwLock<BTreeMap<String, &'static Counter>>,
    gauges: RwLock<BTreeMap<String, &'static Gauge>>,
    histograms: RwLock<BTreeMap<String, &'static Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: RwLock::new(BTreeMap::new()),
        gauges: RwLock::new(BTreeMap::new()),
        histograms: RwLock::new(BTreeMap::new()),
    })
}

/// Look a handle up (read lock), registering it on first use (write
/// lock). Handles are leaked intentionally: the name set is small and
/// static for the life of the process.
fn lookup<T: Default>(map: &RwLock<BTreeMap<String, &'static T>>, name: &str) -> &'static T {
    if let Some(h) = map.read().unwrap().get(name) {
        return h;
    }
    let mut w = map.write().unwrap();
    w.entry(name.to_string())
        .or_insert_with(|| Box::leak(Box::default()))
}

/// The counter registered under `name` (register-on-first-use). The
/// returned handle is *not* gated on [`enabled`]; cache it only for
/// paths that do their own gating.
pub fn counter(name: &str) -> &'static Counter {
    lookup(&registry().counters, name)
}

/// The gauge registered under `name` (register-on-first-use, ungated —
/// see [`counter`]).
pub fn gauge(name: &str) -> &'static Gauge {
    lookup(&registry().gauges, name)
}

/// The histogram registered under `name` (register-on-first-use, ungated
/// — see [`counter`]).
pub fn histogram(name: &str) -> &'static Histogram {
    lookup(&registry().histograms, name)
}

/// Increment the counter `name` by 1 (no-op when disabled).
#[inline]
pub fn inc(name: &str) {
    if enabled() {
        counter(name).add(1);
    }
}

/// Add `n` to the counter `name` (no-op when disabled).
#[inline]
pub fn add(name: &str, n: u64) {
    if enabled() {
        counter(name).add(n);
    }
}

/// Set the gauge `name` (no-op when disabled).
#[inline]
pub fn gauge_set(name: &str, v: f64) {
    if enabled() {
        gauge(name).set(v);
    }
}

/// Raise the gauge `name` to `v` if larger (no-op when disabled).
#[inline]
pub fn gauge_max(name: &str, v: f64) {
    if enabled() {
        gauge(name).max(v);
    }
}

/// Record a sample into the histogram `name` (no-op when disabled).
#[inline]
pub fn observe(name: &str, v: u64) {
    if enabled() {
        histogram(name).record(v);
    }
}

/// Time a block: records elapsed microseconds into the histogram `name`
/// when the guard drops (no-op when metrics are disabled at drop time).
pub fn time(name: &'static str) -> Timer {
    Timer {
        name,
        start: (enabled()).then(std::time::Instant::now),
    }
}

/// Guard returned by [`time`].
pub struct Timer {
    name: &'static str,
    start: Option<std::time::Instant>,
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            observe(self.name, start.elapsed().as_micros() as u64);
        }
    }
}

/// Zero every registered metric (names stay registered). Tests and
/// `nd-sweep report` call this to start from a clean slate.
pub fn reset() {
    let r = registry();
    for c in r.counters.read().unwrap().values() {
        c.v.store(0, Ordering::Relaxed);
    }
    for g in r.gauges.read().unwrap().values() {
        g.bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
    for h in r.histograms.read().unwrap().values() {
        h.reset();
    }
}

// ---------------------------------------------------------------------------
// snapshots
// ---------------------------------------------------------------------------

/// A point-in-time copy of the whole registry, deterministically ordered
/// (BTreeMaps throughout) so [`Snapshot::to_json`] is byte-stable.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → level.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram name → plain data.
    pub histograms: BTreeMap<String, HistogramData>,
}

/// Snapshot every registered metric.
pub fn snapshot() -> Snapshot {
    let r = registry();
    Snapshot {
        counters: r
            .counters
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect(),
        gauges: r
            .gauges
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect(),
        histograms: r
            .histograms
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.data()))
            .collect(),
    }
}

impl Snapshot {
    /// Keep only metrics whose name satisfies `pred` (used to strip
    /// wall-clock timings before determinism comparisons).
    pub fn retain(&mut self, pred: impl Fn(&str) -> bool) {
        self.counters.retain(|k, _| pred(k));
        self.gauges.retain(|k, _| pred(k));
        self.histograms.retain(|k, _| pred(k));
    }

    /// True when nothing is registered (or everything was filtered out).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Deterministic pretty JSON: keys sorted, floats in shortest
    /// round-trip form, non-finite values as `null`. Histograms carry
    /// `count`/`sum`/`min`/`max`/`mean`, estimated `p50`/`p95`/`p99`
    /// quantiles (see [`HistogramData::quantile`] for the log₂-bucket
    /// error bound), plus the non-empty buckets keyed by bucket index
    /// (bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_map(&mut out, &self.counters, |o, v| o.push_str(&v.to_string()));
        out.push_str("},\n  \"gauges\": {");
        push_map(&mut out, &self.gauges, |o, v| jsonfmt::push_f64(o, *v));
        out.push_str("},\n  \"histograms\": {");
        push_map(&mut out, &self.histograms, |o, h| {
            o.push_str(&format!(
                "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": ",
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max
            ));
            jsonfmt::push_f64(o, h.mean());
            for (key, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
                o.push_str(&format!(", \"{key}\": "));
                jsonfmt::push_f64(o, h.quantile(q));
            }
            o.push_str(", \"buckets\": {");
            let mut first = true;
            for (i, &c) in h.buckets.iter().enumerate() {
                if c > 0 {
                    if !first {
                        o.push_str(", ");
                    }
                    first = false;
                    o.push_str(&format!("\"{i}\": {c}"));
                }
            }
            o.push_str("}}");
        });
        out.push_str("}\n}\n");
        out
    }

    /// Prometheus text exposition (format version 0.0.4) of the whole
    /// snapshot. Counters map to `counter`, gauges to `gauge`, and
    /// histograms to `summary` series with `quantile` labels estimated
    /// from the log₂ buckets (see [`HistogramData::quantile`]).
    ///
    /// Metric names are sanitised to the prometheus charset: every
    /// character outside `[a-zA-Z0-9_:]` becomes `_` (so `cache.hit`
    /// is exposed as `cache_hit`), with a leading `_` added if the name
    /// starts with a digit. Output order follows the snapshot's sorted
    /// maps, so the exposition is deterministic.
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 1);
            for (i, c) in name.chars().enumerate() {
                if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                    if i == 0 && c.is_ascii_digit() {
                        out.push('_');
                    }
                    out.push(c);
                } else {
                    out.push('_');
                }
            }
            out
        }
        // Prometheus floats: plain decimal, `NaN` for empty-histogram
        // quantiles (the exposition format allows it).
        fn num(v: f64) -> String {
            if v.is_nan() {
                "NaN".to_string()
            } else {
                format!("{v}")
            }
        }
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", num(*v)));
        }
        for (name, h) in &self.histograms {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} summary\n"));
            for q in [0.5, 0.95, 0.99] {
                out.push_str(&format!("{n}{{quantile=\"{q}\"}} {}\n", num(h.quantile(q))));
            }
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
        }
        out
    }
}

fn push_map<V>(out: &mut String, map: &BTreeMap<String, V>, fmt: impl Fn(&mut String, &V)) {
    let mut first = true;
    for (k, v) in map {
        out.push_str(if first { "\n    " } else { ",\n    " });
        first = false;
        jsonfmt::push_str(out, k);
        out.push_str(": ");
        fmt(out, v);
    }
    if !first {
        out.push_str("\n  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global-state tests share the registry; serialize them.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_helpers_are_inert() {
        let _g = serial();
        set_enabled(false);
        reset();
        inc("test.inert");
        observe("test.inert_us", 10);
        gauge_set("test.inert_g", 1.0);
        let snap = snapshot();
        assert_eq!(snap.counters.get("test.inert").copied().unwrap_or(0), 0);
    }

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let _g = serial();
        set_enabled(true);
        reset();
        inc("test.c");
        add("test.c", 4);
        gauge_set("test.g", 2.5);
        gauge_max("test.g", 1.0); // lower: ignored
        gauge_max("test.g", 9.0);
        for v in [0u64, 1, 2, 3, 1000] {
            observe("test.h", v);
        }
        let snap = snapshot();
        assert_eq!(snap.counters["test.c"], 5);
        assert_eq!(snap.gauges["test.g"], 9.0);
        let h = &snap.histograms["test.h"];
        assert_eq!((h.count, h.sum, h.min, h.max), (5, 1006, 0, 1000));
        assert_eq!(h.buckets[0], 1); // the zero
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[10], 1); // 1000 ∈ [512, 1024)
        let json = snap.to_json();
        assert!(json.contains("\"test.c\": 5"));
        assert!(json.contains("\"test.g\": 9.0"));
        set_enabled(false);
        reset();
    }

    #[test]
    fn snapshot_json_is_deterministic_and_filterable() {
        let _g = serial();
        set_enabled(true);
        reset();
        add("b.second", 2);
        add("a.first", 1);
        observe("a.lat_us", 7);
        let mut s1 = snapshot();
        let mut s2 = snapshot();
        s1.retain(|n| !n.ends_with("_us"));
        s2.retain(|n| !n.ends_with("_us"));
        assert_eq!(s1.to_json(), s2.to_json());
        assert!(!s1.to_json().contains("lat_us"));
        // keys come out sorted
        let json = s1.to_json();
        assert!(json.find("a.first").unwrap() < json.find("b.second").unwrap());
        set_enabled(false);
        reset();
    }

    #[test]
    fn quantiles_respect_bucket_bounds_and_range() {
        let mut h = HistogramData::new();
        assert!(h.quantile(0.5).is_nan());
        for v in [0u64, 1, 2, 3, 5, 100, 1000, 1000, 1000, 70_000] {
            h.record(v);
        }
        // p50 must land in (or clamp inside) the bucket holding the
        // 5th-ranked sample (5 → bucket 3: [4, 8)).
        let p50 = h.quantile(0.5);
        let (lo, hi) = bucket_bounds(bucket_of(5));
        assert!((lo..=hi).contains(&p50), "p50 {p50} outside [{lo}, {hi}]");
        // Extremes clamp to the observed range.
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(1.0), 70_000.0);
        // Monotone in q.
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = h.quantile(q);
            assert!(v >= prev, "quantile({q}) = {v} < {prev}");
            prev = v;
        }
        // A single-sample histogram pins every quantile to that sample.
        let mut one = HistogramData::new();
        one.record(37);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(one.quantile(q), 37.0);
        }
    }

    #[test]
    fn snapshot_prometheus_exposition() {
        let _g = serial();
        set_enabled(true);
        reset();
        add("test.prom_hits", 3);
        gauge_set("test.prom_level", 2.5);
        for v in [10u64, 20, 30, 40] {
            observe("test.prom_us", v);
        }
        let mut snap = snapshot();
        snap.retain(|n| n.starts_with("test.prom"));
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE test_prom_hits counter\ntest_prom_hits 3\n"));
        assert!(text.contains("# TYPE test_prom_level gauge\ntest_prom_level 2.5\n"));
        assert!(text.contains("# TYPE test_prom_us summary\n"));
        assert!(text.contains("test_prom_us{quantile=\"0.5\"}"));
        assert!(text.contains("test_prom_us_sum 100\n"));
        assert!(text.contains("test_prom_us_count 4\n"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').unwrap();
            assert!(!series.is_empty());
            assert!(
                value == "NaN" || value.parse::<f64>().is_ok(),
                "bad: {line}"
            );
        }
        set_enabled(false);
        reset();
    }

    #[test]
    fn timer_records_microseconds() {
        let _g = serial();
        set_enabled(true);
        reset();
        {
            let _t = time("test.t_us");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let h = snapshot().histograms["test.t_us"].clone();
        assert_eq!(h.count, 1);
        assert!(h.min >= 1000, "slept ≥ 2 ms, recorded {} µs", h.min);
        set_enabled(false);
        reset();
    }
}
