//! Property tests for histogram merge algebra: merging per-shard
//! histograms must be order-insensitive, or multi-threaded snapshot
//! aggregation would depend on scheduling. Also pins the quantile
//! estimator's contract: monotone in q, within the log₂ bucket bounds
//! of the true quantile sample, and stable under merge.

use nd_obs::metrics::bucket_bounds;
use nd_obs::HistogramData;
use proptest::prelude::*;

fn hist_from(samples: &[u64]) -> HistogramData {
    let mut h = HistogramData::new();
    for &s in samples {
        h.record(s);
    }
    h
}

/// The exact q-quantile sample of `samples` (the one `quantile` brackets):
/// the element at 1-based rank `ceil(q * n)` of the sorted list.
fn exact_quantile_sample(samples: &[u64], q: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(a in prop::collection::vec(0u64..1_000_000, 0..40),
                            b in prop::collection::vec(0u64..1_000_000, 0..40)) {
        let (ha, hb) = (hist_from(&a), hist_from(&b));
        prop_assert_eq!(ha.merge(&hb), hb.merge(&ha));
    }

    #[test]
    fn merge_is_associative(a in prop::collection::vec(0u64..1_000_000, 0..30),
                            b in prop::collection::vec(0u64..1_000_000, 0..30),
                            c in prop::collection::vec(0u64..1_000_000, 0..30)) {
        let (ha, hb, hc) = (hist_from(&a), hist_from(&b), hist_from(&c));
        prop_assert_eq!(ha.merge(&hb).merge(&hc), ha.merge(&hb.merge(&hc)));
    }

    #[test]
    fn empty_is_identity(a in prop::collection::vec(0u64..1_000_000, 0..40)) {
        let ha = hist_from(&a);
        let empty = HistogramData::new();
        prop_assert_eq!(ha.merge(&empty), ha.clone());
        prop_assert_eq!(empty.merge(&ha), ha);
    }

    #[test]
    fn merge_equals_recording_concatenation(
        a in prop::collection::vec(0u64..1_000_000, 0..40),
        b in prop::collection::vec(0u64..1_000_000, 0..40),
    ) {
        let merged = hist_from(&a).merge(&hist_from(&b));
        let mut both = a.clone();
        both.extend_from_slice(&b);
        prop_assert_eq!(merged, hist_from(&both));
    }

    #[test]
    fn stats_match_samples(a in prop::collection::vec(0u64..1_000_000, 1..60)) {
        let h = hist_from(&a);
        prop_assert_eq!(h.count, a.len() as u64);
        prop_assert_eq!(h.sum, a.iter().sum::<u64>());
        prop_assert_eq!(h.min, *a.iter().min().unwrap());
        prop_assert_eq!(h.max, *a.iter().max().unwrap());
        prop_assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
    }

    #[test]
    fn quantile_is_monotone_in_q(
        a in prop::collection::vec(0u64..1_000_000, 1..60),
        qs in prop::collection::vec(0.0f64..1.0, 2..12),
    ) {
        let h = hist_from(&a);
        let mut qs = qs;
        qs.sort_by(f64::total_cmp);
        let mut prev = f64::NEG_INFINITY;
        for &q in &qs {
            let v = h.quantile(q);
            prop_assert!(v.is_finite());
            prop_assert!(v >= prev, "quantile({}) = {} < {}", q, v, prev);
            prev = v;
        }
    }

    #[test]
    fn quantile_within_bucket_bounds_and_range(
        a in prop::collection::vec(0u64..1_000_000, 1..60),
        q in 0.0f64..1.0,
    ) {
        let h = hist_from(&a);
        let est = h.quantile(q);
        // Within the observed sample range …
        prop_assert!(est >= h.min as f64 && est <= h.max as f64);
        // … and within the closed bounds of the log₂ bucket that holds
        // the true quantile sample.
        let exact = exact_quantile_sample(&a, q);
        let (lo, hi) = bucket_bounds((64 - exact.leading_zeros()) as usize);
        prop_assert!(
            est >= lo && est <= hi,
            "quantile({}) = {} outside bucket [{}, {}] of exact sample {}",
            q, est, lo, hi, exact
        );
    }

    #[test]
    fn quantile_is_merge_stable(
        a in prop::collection::vec(0u64..1_000_000, 1..60),
        q in 0.0f64..1.0,
    ) {
        let h = hist_from(&a);
        let doubled = h.merge(&h);
        let (e1, e2) = (h.quantile(q), doubled.quantile(q));
        // Self-merge selects the same bucket; the interpolated rank can
        // shift by at most half a sample within it.
        let exact = exact_quantile_sample(&a, q);
        let b = (64 - exact.leading_zeros()) as usize;
        let (lo, hi) = bucket_bounds(b);
        let c = h.buckets[b] as f64;
        prop_assert!(
            (e1 - e2).abs() <= (hi - lo) / (2.0 * c) + 1e-9,
            "quantile({}) drifted on self-merge: {} vs {}", q, e1, e2
        );
    }
}
