//! Property tests for histogram merge algebra: merging per-shard
//! histograms must be order-insensitive, or multi-threaded snapshot
//! aggregation would depend on scheduling.

use nd_obs::HistogramData;
use proptest::prelude::*;

fn hist_from(samples: &[u64]) -> HistogramData {
    let mut h = HistogramData::new();
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(a in prop::collection::vec(0u64..1_000_000, 0..40),
                            b in prop::collection::vec(0u64..1_000_000, 0..40)) {
        let (ha, hb) = (hist_from(&a), hist_from(&b));
        prop_assert_eq!(ha.merge(&hb), hb.merge(&ha));
    }

    #[test]
    fn merge_is_associative(a in prop::collection::vec(0u64..1_000_000, 0..30),
                            b in prop::collection::vec(0u64..1_000_000, 0..30),
                            c in prop::collection::vec(0u64..1_000_000, 0..30)) {
        let (ha, hb, hc) = (hist_from(&a), hist_from(&b), hist_from(&c));
        prop_assert_eq!(ha.merge(&hb).merge(&hc), ha.merge(&hb.merge(&hc)));
    }

    #[test]
    fn empty_is_identity(a in prop::collection::vec(0u64..1_000_000, 0..40)) {
        let ha = hist_from(&a);
        let empty = HistogramData::new();
        prop_assert_eq!(ha.merge(&empty), ha.clone());
        prop_assert_eq!(empty.merge(&ha), ha);
    }

    #[test]
    fn merge_equals_recording_concatenation(
        a in prop::collection::vec(0u64..1_000_000, 0..40),
        b in prop::collection::vec(0u64..1_000_000, 0..40),
    ) {
        let merged = hist_from(&a).merge(&hist_from(&b));
        let mut both = a.clone();
        both.extend_from_slice(&b);
        prop_assert_eq!(merged, hist_from(&both));
    }

    #[test]
    fn stats_match_samples(a in prop::collection::vec(0u64..1_000_000, 1..60)) {
        let h = hist_from(&a);
        prop_assert_eq!(h.count, a.len() as u64);
        prop_assert_eq!(h.sum, a.iter().sum::<u64>());
        prop_assert_eq!(h.min, *a.iter().min().unwrap());
        prop_assert_eq!(h.max, *a.iter().max().unwrap());
        prop_assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
    }
}
