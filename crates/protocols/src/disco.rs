//! Disco (Dutta & Culler, SenSys 2008 — reference \[3\] of the paper).
//!
//! Each node picks a pair of distinct primes `(p₁, p₂)`; slot counter `c`
//! makes a slot active whenever `c ≡ 0 (mod p₁)` or `c ≡ 0 (mod p₂)`. If
//! two nodes use prime pairs with at least one coprime cross pair, the
//! Chinese Remainder Theorem guarantees overlapping active slots within
//! `p_i·p_j` slots. The slot-domain duty cycle is `1/p₁ + 1/p₂` (minus the
//! double-counted slot 0).

use crate::slotted::{is_prime, next_prime, prev_prime, BeaconPlacement, SlottedSchedule};
use nd_core::error::NdError;
use nd_core::schedule::Schedule;
use nd_core::time::Tick;

/// A Disco node configuration.
#[derive(Clone, Debug)]
pub struct Disco {
    /// First prime.
    pub p1: u64,
    /// Second prime (distinct from `p1`).
    pub p2: u64,
    /// Slot length `I`.
    pub slot: Tick,
    /// Packet airtime ω.
    pub omega: Tick,
}

impl Disco {
    /// Validate and build a node configuration.
    pub fn new(p1: u64, p2: u64, slot: Tick, omega: Tick) -> Result<Self, NdError> {
        if !is_prime(p1) || !is_prime(p2) {
            return Err(NdError::InvalidSchedule(format!(
                "Disco needs primes, got ({p1}, {p2})"
            )));
        }
        if p1 == p2 {
            return Err(NdError::InvalidSchedule(
                "Disco needs two distinct primes".into(),
            ));
        }
        Ok(Disco {
            p1,
            p2,
            slot,
            omega,
        })
    }

    /// A balanced prime pair for a target slot-domain duty cycle
    /// (`1/p₁ + 1/p₂ ≈ dc` with `p₁ ≈ p₂ ≈ 2/dc`), following the
    /// balanced-pair recommendation evaluated in the Disco paper.
    pub fn balanced_for_duty_cycle(dc: f64, slot: Tick, omega: Tick) -> Result<Self, NdError> {
        if !(0.0 < dc && dc < 1.0) {
            return Err(NdError::InvalidSchedule(format!(
                "duty cycle out of range: {dc}"
            )));
        }
        let target = (2.0 / dc).round().max(3.0) as u64;
        let p1 = prev_prime(target.max(3));
        let mut p2 = next_prime(target + 1);
        if p2 == p1 {
            p2 = next_prime(p1 + 1);
        }
        Self::new(p1, p2, slot, omega)
    }

    /// The slot-domain worst case against a peer running primes
    /// `(q1, q2)`: the smallest coprime cross product (Disco's CRT
    /// argument). `None` if no cross pair is coprime (identical pairs on
    /// both sides still work because p₁ ⊥ p₂ within one node's own pair —
    /// the cross pairs (p₁, q₂) and (p₂, q₁) are then coprime).
    pub fn worst_case_slots_with(&self, q1: u64, q2: u64) -> Option<u64> {
        let mut best: Option<u64> = None;
        for &(a, b) in &[(self.p1, q1), (self.p1, q2), (self.p2, q1), (self.p2, q2)] {
            if a != b {
                // distinct primes are coprime
                let prod = a * b;
                best = Some(best.map_or(prod, |cur| cur.min(prod)));
            }
        }
        best
    }

    /// Slot-domain duty cycle: `(p₁ + p₂ − 1)/(p₁·p₂)` (slot 0 is shared).
    pub fn slot_duty_cycle(&self) -> f64 {
        (self.p1 + self.p2 - 1) as f64 / (self.p1 * self.p2) as f64
    }

    /// The underlying slotted schedule (period `p₁·p₂` slots, beacons at
    /// the start and end of each active slot).
    pub fn slotted(&self) -> Result<SlottedSchedule, NdError> {
        let period = self.p1 * self.p2;
        let active: Vec<u64> = (0..period)
            .filter(|c| c % self.p1 == 0 || c % self.p2 == 0)
            .collect();
        SlottedSchedule::new(
            self.slot,
            period,
            active,
            BeaconPlacement::StartEnd,
            self.omega,
        )
    }

    /// Lower to an exact beacon/window schedule.
    pub fn schedule(&self) -> Result<Schedule, NdError> {
        self.slotted()?.to_schedule()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OMEGA: Tick = Tick(36_000);
    const SLOT: Tick = Tick::from_millis(1);

    #[test]
    fn validation() {
        assert!(Disco::new(3, 5, SLOT, OMEGA).is_ok());
        assert!(Disco::new(4, 5, SLOT, OMEGA).is_err());
        assert!(Disco::new(5, 5, SLOT, OMEGA).is_err());
    }

    #[test]
    fn active_slot_count_is_p1_plus_p2_minus_1() {
        let d = Disco::new(5, 7, SLOT, OMEGA).unwrap();
        let s = d.slotted().unwrap();
        assert_eq!(s.period_slots, 35);
        assert_eq!(s.active.len(), 5 + 7 - 1);
        assert!((d.slot_duty_cycle() - 11.0 / 35.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_pair_hits_duty_cycle() {
        let d = Disco::balanced_for_duty_cycle(0.05, SLOT, OMEGA).unwrap();
        // target p ≈ 40 → 37 and 41
        assert_eq!((d.p1, d.p2), (37, 41));
        assert!((d.slot_duty_cycle() - 0.05).abs() < 0.01);
    }

    #[test]
    fn worst_case_cross_products() {
        let d = Disco::new(37, 43, SLOT, OMEGA).unwrap();
        // same pair on the peer: min coprime cross product = 37·43
        assert_eq!(d.worst_case_slots_with(37, 43), Some(37 * 43));
        // different peer: the smallest coprime cross pair wins
        assert_eq!(d.worst_case_slots_with(5, 7), Some(5 * 37));
    }

    #[test]
    fn schedule_lowering() {
        let d = Disco::new(3, 5, SLOT, OMEGA).unwrap();
        let sched = d.schedule().unwrap();
        // 7 active slots → 14 beacons (no adjacent duplicates here)
        assert_eq!(sched.beacons.as_ref().unwrap().n_beacons(), 14);
        assert_eq!(sched.windows.as_ref().unwrap().n_windows(), 7);
        // slot-domain duty cycle ≈ γ + β·(I/(I−stuff)) sanity: γ < dc_slots
        let dc = sched.duty_cycle();
        assert!(dc.gamma < d.slot_duty_cycle());
        assert!(dc.beta > 0.0);
    }
}
