//! # nd-protocols — every neighbor-discovery protocol the paper discusses
//!
//! Schedule constructions for the reproduction of *On Optimal Neighbor
//! Discovery* (SIGCOMM 2019):
//!
//! | Module | Protocol | Paper reference |
//! |---|---|---|
//! | [`optimal`] | the paper-optimal slotless tilings (uni/bi-directional, symmetric, asymmetric, channel-constrained) | Theorems 5.4–5.7 |
//! | [`correlated`] | mutual-exclusive one-way quadruples | Appendix C |
//! | [`redundant`] | collision-robust Q-fold coverage | Appendix B |
//! | [`pi`] | periodic-interval (BLE-like) protocols, BLE advDelay | \[18, 14, 12, 13, 23\] |
//! | [`slotted`] | generic slotted-schedule builder | Section 2/6 |
//! | [`disco`] | Disco prime pairs | \[3\] |
//! | [`uconnect`] | U-Connect | \[4\] |
//! | [`searchlight`] | Searchlight(-Striped) | \[5\] |
//! | [`diffcodes`] | perfect-difference-set schedules | \[17, 16\] |
//! | [`codebased`] | code-based two-packet placement | \[6, 7\] |
//! | [`birthday`] | probabilistic birthday baseline | §2 context |
//! | [`assist`] | Griassdi-style mutual assistance | \[13\] |
//! | [`jitter`] | beacon-jitter decorrelation | §8 future work |
//!
//! All constructions lower to exact `nd-core` [`nd_core::Schedule`]s, so
//! the same objects feed the coverage-map analysis, the exact worst-case
//! engine (`nd-analysis`) and the discrete-event simulator (`nd-sim`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aperiodic;
pub mod assist;
pub mod birthday;
pub mod codebased;
pub mod correlated;
pub mod diffcodes;
pub mod disco;
pub mod jitter;
pub mod optimal;
pub mod pi;
pub mod redundant;
pub mod registry;
pub mod role;
pub mod searchlight;
pub mod slotted;
pub mod space;
pub mod uconnect;

pub use aperiodic::{RandomScanner, SlidingScanner};
pub use assist::MutualAssist;
pub use birthday::Birthday;
pub use codebased::CodeBased;
pub use correlated::correlated_oneway;
pub use diffcodes::DiffCode;
pub use disco::Disco;
pub use jitter::{Jittered, RoundJittered};
pub use optimal::{OptimalParams, OptimalProtocol};
pub use pi::{BleAdvertiser, PiProtocol};
pub use redundant::{redundant_symmetric, RedundantProtocol};
pub use registry::{schedule_for_selector, ProtocolKind};
pub use role::{RoleConfig, RolePair};
pub use searchlight::Searchlight;
pub use slotted::{BeaconPlacement, SlottedSchedule};
pub use space::{Constraint, ParamDef, ParamRange, ParamSpace};
pub use uconnect::UConnect;
