//! The paper-optimal slotless schedule constructions (Section 5).
//!
//! These constructions *achieve* the fundamental bounds, proving their
//! tightness:
//!
//! * the reception side is a single window of length `d₁` per period
//!   `T_C = k·d₁` (Theorem 5.3 / Eq. 22: optimal reception duty cycles are
//!   exactly γ = 1/k),
//! * the beacon side sends with a **uniform** gap λ (Theorem 5.1: every sum
//!   of M consecutive gaps must equal M·λ̄) chosen as
//!   `λ = d₁·(a·k + 1)` for an integer `a ≥ 0`, so that consecutive
//!   coverage images tile `[0, T_C)` seamlessly — every k consecutive
//!   beacons cover every offset exactly once (disjoint + deterministic).
//!
//! The same machinery with per-device parameters yields the asymmetric
//! (Theorem 5.7) and channel-utilization-constrained (Theorem 5.6)
//! optima. These constructions are also exactly the "optimal
//! parametrizations" of periodic-interval (BLE-like) protocols discussed in
//! \[14\]/\[13\]: `T_a = λ`, `T_s = T_C`, `d_s = d₁` with `T_a = a·T_s + d_s`.

use nd_core::bounds;
use nd_core::error::NdError;
use nd_core::params::DutyCycle;
use nd_core::schedule::{BeaconSeq, ReceptionWindows, Schedule};
use nd_core::time::Tick;

/// A constructed optimal protocol instance: the schedule plus its exact
/// achieved parameters (which may differ from the requested real-valued
/// targets by integer rounding).
#[derive(Clone, Debug)]
pub struct OptimalProtocol {
    /// The per-device schedule.
    pub schedule: Schedule,
    /// Exact achieved duty cycles.
    pub achieved: DutyCycle,
    /// The worst-case one-way latency this construction guarantees
    /// (`k·λ`, exact in ticks).
    pub predicted_latency: Tick,
}

/// Construction parameters shared by all optima.
#[derive(Clone, Copy, Debug)]
pub struct OptimalParams {
    /// Packet airtime ω.
    pub omega: Tick,
    /// TX/RX power ratio α.
    pub alpha: f64,
    /// The tiling multiplier `a` in `λ = d₁(a·k + 1)`: for the same duty
    /// cycles, a larger `a` shrinks the window length `d₁` (and the
    /// reception period `T_C = k·d₁`) relative to the fixed beacon gap
    /// `λ = ω/β`. `a = 1` is a good default.
    pub a: u64,
}

impl OptimalParams {
    /// Default parameters: the paper's ω = 36 µs, α = 1, a = 1.
    pub fn paper_default() -> Self {
        OptimalParams {
            omega: Tick::from_micros(36),
            alpha: 1.0,
            a: 1,
        }
    }
}

/// Build the unidirectional optimum (Theorem 5.4): a beacon train with
/// transmission duty cycle ≈ `beta` for the sender and a reception sequence
/// with duty cycle ≈ `gamma` for the receiver, guaranteeing one-way
/// discovery in `ω/(β·γ)`.
///
/// Returns the sender schedule (tx-only), the receiver schedule (rx-only)
/// and the exact predicted latency.
pub fn unidirectional(
    params: OptimalParams,
    beta: f64,
    gamma: f64,
) -> Result<(OptimalProtocol, OptimalProtocol), NdError> {
    let (beacons, windows, latency) = build_tiling(params, beta, gamma)?;
    let sender = Schedule::tx_only(beacons);
    let receiver = Schedule::rx_only(windows);
    let s_dc = sender.duty_cycle();
    let r_dc = receiver.duty_cycle();
    Ok((
        OptimalProtocol {
            schedule: sender,
            achieved: s_dc,
            predicted_latency: latency,
        },
        OptimalProtocol {
            schedule: receiver,
            achieved: r_dc,
            predicted_latency: latency,
        },
    ))
}

/// Build the symmetric bidirectional optimum (Theorem 5.5): every device
/// runs the same schedule (up to phase); the duty-cycle budget η is split
/// β = η/(2α), γ = η/2 and the guaranteed two-way latency is `4αω/η²`.
pub fn symmetric(params: OptimalParams, eta: f64) -> Result<OptimalProtocol, NdError> {
    let split = DutyCycle::optimal_split(eta, params.alpha);
    full_duplex_schedule(params, split)
}

/// Build the channel-utilization-constrained optimum (Theorem 5.6):
/// β = min(η/2α, β_m), γ = η − αβ; the guaranteed two-way latency follows
/// Eq. 13.
pub fn constrained(
    params: OptimalParams,
    eta: f64,
    beta_max: f64,
) -> Result<OptimalProtocol, NdError> {
    let split = DutyCycle::constrained_split(eta, params.alpha, beta_max);
    if split.gamma <= 0.0 {
        return Err(NdError::InfeasibleParameters(format!(
            "eta {eta} with cap {beta_max} leaves no reception budget"
        )));
    }
    full_duplex_schedule(params, split)
}

/// Build the asymmetric bidirectional optimum (Theorem 5.7) for two devices
/// with budgets `eta_e` and `eta_f`: each device transmits with
/// β_X ≈ η_X/(2α) and listens with γ_X ≈ η_X/2; both one-way latencies are
/// balanced at `4αω/(η_E·η_F)`.
///
/// The reception side quantizes to γ_X = 1/k_X (Theorem 5.3), which skews
/// the two sides by different relative amounts; the βs are then
/// *re-balanced* (the proof's balanced-latency condition L_E = L_F,
/// which the continuous split satisfies automatically) so that the
/// first-order quantization error cancels from both directions and the
/// constructed pair tracks the bound at its *achieved* duty cycles to
/// second order.
///
/// Returns `(schedule_e, schedule_f)`.
pub fn asymmetric(
    params: OptimalParams,
    eta_e: f64,
    eta_f: f64,
) -> Result<(OptimalProtocol, OptimalProtocol), NdError> {
    let (dc_e, dc_f) = bounds::optimal_asymmetric_splits(eta_e, eta_f, params.alpha);
    // the relative skew each side's γ = 1/k quantization introduces
    let skew = |gamma_target: f64, eta: f64| -> f64 {
        let k = (1.0 / gamma_target).round().max(1.0);
        (1.0 / k - gamma_target) / eta
    };
    let d_e = skew(dc_e.gamma, eta_e);
    let d_f = skew(dc_f.gamma, eta_f);
    // L_EF/L_FE re-balance: stretch E's β by the skew difference, shrink
    // F's by the same amount (d_e = d_f — symmetric pairs included —
    // reduces to the plain optimal split)
    let beta_e = dc_e.beta * (1.0 + (d_e - d_f));
    let beta_f = dc_f.beta * (1.0 + (d_f - d_e));
    // E's beacons must tile F's windows and vice versa
    let (beacons_e, windows_f, l_f) = build_tiling(params, beta_e, dc_f.gamma)?;
    let (beacons_f, windows_e, l_e) = build_tiling(params, beta_f, dc_e.gamma)?;
    let sched_e = Schedule::full(beacons_e, windows_e);
    let sched_f = Schedule::full(beacons_f, windows_f);
    let (a_e, a_f) = (sched_e.duty_cycle(), sched_f.duty_cycle());
    Ok((
        OptimalProtocol {
            schedule: sched_e,
            achieved: a_e,
            predicted_latency: l_f.max(l_e),
        },
        OptimalProtocol {
            schedule: sched_f,
            achieved: a_f,
            predicted_latency: l_f.max(l_e),
        },
    ))
}

/// A symmetric device schedule from an explicit (β, γ) split.
fn full_duplex_schedule(
    params: OptimalParams,
    split: DutyCycle,
) -> Result<OptimalProtocol, NdError> {
    let (beacons, windows, latency) = build_tiling(params, split.beta, split.gamma)?;
    let schedule = Schedule::full(beacons, windows);
    let achieved = schedule.duty_cycle();
    Ok(OptimalProtocol {
        schedule,
        achieved,
        predicted_latency: latency,
    })
}

/// The core tiling construction: integer-exact `(B, C)` with
/// `γ = 1/k`, `λ = d₁(a·k + 1)`, `T_C = k·d₁`, `T_B = k·λ`.
///
/// `beta`/`gamma` are real-valued targets; the returned sequences achieve
/// `γ = 1/k` exactly (k = round(1/γ)) and β within one-nanosecond rounding
/// of the target.
pub(crate) fn build_tiling(
    params: OptimalParams,
    beta: f64,
    gamma: f64,
) -> Result<(BeaconSeq, ReceptionWindows, Tick), NdError> {
    if !(0.0 < beta && beta < 1.0 && 0.0 < gamma && gamma < 1.0) {
        return Err(NdError::InfeasibleParameters(format!(
            "duty cycles out of range: beta {beta}, gamma {gamma}"
        )));
    }
    // Theorem 5.3 / Eq. 22: optimal reception duty cycles are 1/k
    let k = (1.0 / gamma).round().max(1.0) as u64;
    // target mean gap λ = ω/β; quantize via d₁ = λ/(a·k + 1)
    let multiplier = params.a * k + 1;
    let lambda_target = params.omega.as_nanos() as f64 / beta;
    let d1 = Tick(((lambda_target / multiplier as f64).round() as u64).max(1));
    let lambda = d1 * multiplier;
    if lambda < params.omega {
        return Err(NdError::InfeasibleParameters(format!(
            "beacon gap {lambda} shorter than airtime {} (beta {beta} too large for a={})",
            params.omega, params.a
        )));
    }
    let period_c = d1 * k;
    let period_b = lambda * k;
    // beacons at phase d₁/2 to stagger against the window at the period
    // start (cosmetic; any phase tiles)
    let beacons = BeaconSeq::uniform(k, period_b, params.omega, d1 / 2)?;
    let windows = ReceptionWindows::single(Tick::ZERO, d1, period_c)?;
    // worst case: up to λ wait for the first in-range beacon, then up to
    // (k−1)·λ until the covering beacon: exactly k·λ (Theorem 5.1)
    let latency = lambda * k;
    Ok((beacons, windows, latency))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_core::coverage::{CoverageMap, OverlapModel};

    fn params() -> OptimalParams {
        OptimalParams::paper_default()
    }

    #[test]
    fn unidirectional_duty_cycles_near_targets() {
        let (tx, rx) = unidirectional(params(), 0.01, 0.02).unwrap();
        assert!(
            (tx.achieved.beta - 0.01).abs() / 0.01 < 0.01,
            "beta within 1 %"
        );
        assert!(
            (rx.achieved.gamma - 0.02).abs() < 1e-12,
            "gamma exact (1/k)"
        );
        // predicted latency matches the bound ω/(βγ) with achieved values
        let bound = bounds::unidirectional_bound(
            params().omega.as_secs_f64(),
            tx.achieved.beta,
            rx.achieved.gamma,
        );
        let pred = tx.predicted_latency.as_secs_f64();
        assert!((pred - bound).abs() / bound < 1e-9);
    }

    #[test]
    fn unidirectional_is_deterministic_and_disjoint() {
        let (tx, rx) = unidirectional(params(), 0.01, 0.02).unwrap();
        let b = tx.schedule.beacons.as_ref().unwrap();
        let c = rx.schedule.windows.as_ref().unwrap();
        let k = c.period().div_ceil(c.sum_d());
        let rel = b.relative_instants(k as usize);
        let map = CoverageMap::build(&rel, c, params().omega, OverlapModel::Start);
        assert!(map.is_deterministic(), "k beacons must cover all offsets");
        assert!(map.is_disjoint(), "optimal coverage is disjoint");
    }

    #[test]
    fn symmetric_achieves_theorem_5_5() {
        for eta in [0.01, 0.02, 0.05, 0.1] {
            let opt = symmetric(params(), eta).unwrap();
            let bound = bounds::symmetric_bound(1.0, params().omega.as_secs_f64(), eta);
            let pred = opt.predicted_latency.as_secs_f64();
            // integer rounding keeps us within 2 % of the ideal bound
            assert!(
                (pred - bound).abs() / bound < 0.02,
                "eta {eta}: pred {pred}, bound {bound}"
            );
            // and the achieved duty cycle stays within 2 % of the budget
            let achieved_eta = opt.achieved.eta(1.0);
            assert!((achieved_eta - eta).abs() / eta < 0.02);
        }
    }

    #[test]
    fn symmetric_coverage_is_optimal() {
        let opt = symmetric(params(), 0.05).unwrap();
        let b = opt.schedule.beacons.as_ref().unwrap();
        let c = opt.schedule.windows.as_ref().unwrap();
        let k = c.period().div_ceil(c.sum_d()) as usize;
        let map = CoverageMap::build(
            &b.relative_instants(k),
            c,
            params().omega,
            OverlapModel::Start,
        );
        assert!(map.is_deterministic());
        assert!(map.is_disjoint());
        // exactly M beacons: optimal per Theorem 4.3
        assert_eq!(
            k as u64,
            nd_core::coverage::min_beacons(c.period(), c.sum_d())
        );
    }

    #[test]
    fn constrained_caps_beta() {
        let opt = constrained(params(), 0.05, 0.01).unwrap();
        assert!(opt.achieved.beta <= 0.0101);
        assert!((opt.achieved.gamma - (0.05 - 0.01)).abs() < 1e-12);
        // latency matches Theorem 5.6's binding branch
        let bound = bounds::constrained_bound(1.0, params().omega.as_secs_f64(), 0.05, 0.01);
        let pred = opt.predicted_latency.as_secs_f64();
        assert!(
            (pred - bound).abs() / bound < 0.02,
            "pred {pred} vs bound {bound}"
        );
    }

    #[test]
    fn constrained_uncapped_equals_symmetric() {
        let a = constrained(params(), 0.05, 0.5).unwrap();
        let b = symmetric(params(), 0.05).unwrap();
        assert_eq!(a.predicted_latency, b.predicted_latency);
    }

    #[test]
    fn asymmetric_balances_directions() {
        let (e, f) = asymmetric(params(), 0.08, 0.02).unwrap();
        let bound = bounds::asymmetric_bound(1.0, params().omega.as_secs_f64(), 0.08, 0.02);
        let pred = e.predicted_latency.as_secs_f64();
        assert!(
            (pred - bound).abs() / bound < 0.02,
            "pred {pred} vs bound {bound}"
        );
        assert_eq!(e.predicted_latency, f.predicted_latency);
        // both directions deterministic
        let be = e.schedule.beacons.as_ref().unwrap();
        let cf = f.schedule.windows.as_ref().unwrap();
        let k = cf.period().div_ceil(cf.sum_d()) as usize;
        let map = CoverageMap::build(
            &be.relative_instants(k),
            cf,
            params().omega,
            OverlapModel::Start,
        );
        assert!(map.is_deterministic(), "E→F direction");
        let bf = f.schedule.beacons.as_ref().unwrap();
        let ce = e.schedule.windows.as_ref().unwrap();
        let k2 = ce.period().div_ceil(ce.sum_d()) as usize;
        let map2 = CoverageMap::build(
            &bf.relative_instants(k2),
            ce,
            params().omega,
            OverlapModel::Start,
        );
        assert!(map2.is_deterministic(), "F→E direction");
    }

    #[test]
    fn asymmetric_reduces_to_symmetric() {
        let (e, _f) = asymmetric(params(), 0.05, 0.05).unwrap();
        let s = symmetric(params(), 0.05).unwrap();
        assert_eq!(e.predicted_latency, s.predicted_latency);
    }

    #[test]
    fn infeasible_beta_rejected() {
        // β so large that the quantized gap rounds below the airtime
        let tiny = OptimalParams {
            omega: Tick(10),
            alpha: 1.0,
            a: 1,
        };
        assert!(unidirectional(tiny, 0.99, 0.5).is_err());
        // out-of-range duty cycles rejected
        assert!(unidirectional(params(), 0.0, 0.5).is_err());
        assert!(unidirectional(params(), 0.5, 1.5).is_err());
        assert!(constrained(params(), 0.02, 0.05).is_ok());
    }

    #[test]
    fn larger_a_gives_longer_periods_same_duty_cycle() {
        let mut p1 = params();
        p1.a = 1;
        let mut p4 = params();
        p4.a = 4;
        let o1 = symmetric(p1, 0.05).unwrap();
        let o4 = symmetric(p4, 0.05).unwrap();
        let c1 = o1.schedule.windows.as_ref().unwrap().period();
        let c4 = o4.schedule.windows.as_ref().unwrap().period();
        assert!(c4 < c1, "larger a → shorter window/period for the same λ");
        assert!((o1.achieved.eta(1.0) - o4.achieved.eta(1.0)).abs() < 1e-3);
    }
}
