//! Beacon-jitter decorrelation (the paper's concluding direction:
//! "protocols that contain decorrelation mechanisms to make the collision
//! of each beacon independent from the occurrence of previous collisions
//! have not been studied thoroughly").
//!
//! [`Jittered`] wraps any behaviour and adds an independent uniform random
//! delay to every transmitted beacon. With repetitive sequences, one
//! collision implies a correlated pattern of future collisions (Lemma 5.2
//! discussion in §5.2.2); jitter breaks that correlation, which is the
//! assumption behind Appendix B's optimal-redundancy analysis — and what
//! BLE's advDelay implements in practice.

use nd_core::time::Tick;
use nd_sim::{Behavior, Op, Payload};
use rand::Rng;
use rand::RngCore;

/// Adds `U[0, max_jitter]` to every beacon of the wrapped behaviour.
/// Reception windows are not moved.
pub struct Jittered<B> {
    inner: B,
    max_jitter: Tick,
}

impl<B: Behavior> Jittered<B> {
    /// Wrap a behaviour.
    pub fn new(inner: B, max_jitter: Tick) -> Self {
        Jittered { inner, max_jitter }
    }

    /// Access the wrapped behaviour.
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

impl<B: Behavior> Behavior for Jittered<B> {
    fn next_ops(&mut self, after: Tick, rng: &mut dyn RngCore) -> Vec<Op> {
        let mut ops = self.inner.next_ops(after, rng);
        for op in &mut ops {
            if let Op::Tx { at, payload } = *op {
                let j = Tick(rng.gen_range(0..=self.max_jitter.as_nanos()));
                *op = Op::Tx {
                    at: at + j,
                    payload,
                };
            }
        }
        ops.sort_by_key(|op| op.at());
        ops
    }

    fn on_reception(
        &mut self,
        at: Tick,
        from: usize,
        payload: Payload,
        rng: &mut dyn RngCore,
    ) -> Vec<Op> {
        self.inner.on_reception(at, from, payload, rng)
    }

    fn label(&self) -> String {
        format!("{}+jitter({})", self.inner.label(), self.max_jitter)
    }
}

/// Round-coherent jitter: the decorrelation mechanism that *preserves
/// deterministic coverage*.
///
/// Per-beacon jitter (as in [`Jittered`]) breaks a tiling sequence: each
/// beacon covers a specific band of offsets, and moving beacons
/// independently leaves random gaps, so the Q-fold coverage guarantee of
/// Appendix B is lost. Shifting each complete *round* of `k` beacons by a
/// common random offset keeps every round a perfect tiling (a uniformly
/// shifted tiling still covers every offset exactly once) while making the
/// collision fate of consecutive rounds independent — which is precisely
/// the independence assumption behind Eq. 32. The `appb` experiment shows
/// this variant hitting the analytical failure rate where both the plain
/// repetitive schedule (correlated collisions) and per-beacon jitter
/// (broken coverage) miss it.
pub struct RoundJittered {
    beacons: nd_core::BeaconSeq,
    windows: Option<nd_core::ReceptionWindows>,
    round: u64,
    emitted_rx_until: Tick,
}

impl RoundJittered {
    /// Wrap a schedule whose beacon side is one uniform-gap round per
    /// period (the shape produced by the optimal constructions).
    pub fn new(schedule: nd_core::Schedule) -> Self {
        let beacons = schedule
            .beacons
            .expect("round jitter needs a beacon sequence");
        RoundJittered {
            beacons,
            windows: schedule.windows,
            round: 0,
            emitted_rx_until: Tick::ZERO,
        }
    }
}

impl Behavior for RoundJittered {
    fn next_ops(&mut self, after: Tick, rng: &mut dyn RngCore) -> Vec<Op> {
        let tb = self.beacons.period();
        let lambda = self.beacons.mean_gap();
        let omega = self.beacons.omega();
        let mut out = Vec::new();
        // emit whole rounds until one reaches `after`
        while Tick(self.round * tb.as_nanos()) + tb <= after {
            self.round += 1;
        }
        for _ in 0..2 {
            let base = Tick(self.round * tb.as_nanos());
            // common shift for the whole round, capped so rounds never
            // overlap (draw in [0, λ − ω))
            let cap = lambda.saturating_sub(omega).as_nanos().max(1);
            let shift = Tick(rng.gen_range(0..cap));
            for &t in self.beacons.times() {
                out.push(Op::Tx {
                    at: base + t + shift,
                    payload: 0,
                });
            }
            self.round += 1;
        }
        // reception side: unshifted periodic windows
        if let Some(c) = &self.windows {
            let until = Tick(self.round * tb.as_nanos()) + c.period();
            for iv in c.instances_in(self.emitted_rx_until, until) {
                out.push(Op::Rx {
                    at: iv.start,
                    duration: iv.measure(),
                });
            }
            self.emitted_rx_until = until;
        }
        out.retain(|op| op.at() >= after);
        out.sort_by_key(|op| op.at());
        out
    }

    fn label(&self) -> String {
        "round-jitter".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_core::schedule::{BeaconSeq, Schedule};
    use nd_sim::ScheduleBehavior;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn advertiser() -> ScheduleBehavior {
        ScheduleBehavior::new(Schedule::tx_only(
            BeaconSeq::uniform(1, Tick::from_millis(1), Tick::from_micros(36), Tick::ZERO).unwrap(),
        ))
    }

    /// Pull batches until at least `n` ops have been produced.
    fn pull_ops(b: &mut impl Behavior, n: usize, rng: &mut StdRng) -> Vec<Op> {
        let mut out: Vec<Op> = Vec::new();
        let mut after = Tick::ZERO;
        while out.len() < n {
            let batch = b.next_ops(after, rng);
            assert!(!batch.is_empty(), "behavior ran dry");
            after = batch.last().unwrap().at() + Tick(1);
            out.extend(batch);
        }
        out
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let mut j = Jittered::new(advertiser(), Tick::from_micros(100));
        let mut rng = StdRng::seed_from_u64(5);
        let ops = pull_ops(&mut j, 10, &mut rng);
        for (i, op) in ops.iter().enumerate() {
            let base = Tick::from_millis(i as u64);
            assert!(op.at() >= base, "op {i}");
            assert!(op.at() <= base + Tick::from_micros(100), "op {i}");
        }
    }

    #[test]
    fn jitter_varies_across_beacons() {
        let mut j = Jittered::new(advertiser(), Tick::from_micros(500));
        let mut rng = StdRng::seed_from_u64(5);
        let ops = pull_ops(&mut j, 10, &mut rng);
        let offsets: Vec<u64> = ops
            .iter()
            .enumerate()
            .map(|(i, op)| (op.at() - Tick::from_millis(i as u64)).as_nanos())
            .collect();
        assert!(offsets.iter().any(|&o| o != offsets[0]));
    }

    #[test]
    fn zero_jitter_is_identity() {
        let mut plain = advertiser();
        let mut j = Jittered::new(advertiser(), Tick::ZERO);
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        assert_eq!(
            plain.next_ops(Tick::ZERO, &mut r1),
            j.next_ops(Tick::ZERO, &mut r2)
        );
    }

    #[test]
    fn label_mentions_jitter() {
        let j = Jittered::new(advertiser(), Tick::from_micros(100));
        assert!(j.label().contains("jitter"));
    }

    #[test]
    fn round_jitter_shifts_rounds_coherently() {
        use crate::optimal::{symmetric, OptimalParams};
        let opt = symmetric(OptimalParams::paper_default(), 0.05).unwrap();
        let lambda = opt.schedule.beacons.as_ref().unwrap().mean_gap();
        let k = opt.schedule.beacons.as_ref().unwrap().n_beacons();
        let mut rj = RoundJittered::new(opt.schedule.clone());
        let mut rng = StdRng::seed_from_u64(11);
        let ops = rj.next_ops(Tick::ZERO, &mut rng);
        let tx: Vec<Tick> = ops
            .iter()
            .filter_map(|op| match op {
                Op::Tx { at, .. } => Some(*at),
                _ => None,
            })
            .collect();
        assert!(tx.len() >= 2 * k, "two full rounds emitted");
        // within the first round, gaps stay exactly λ (coherent shift)
        for w in tx[..k].windows(2) {
            assert_eq!(w[1] - w[0], lambda);
        }
        // the second round has an independent shift: the gap at the round
        // boundary differs from λ (with overwhelming probability)
        let boundary = tx[k] - tx[k - 1];
        assert!(boundary >= opt.schedule.beacons.as_ref().unwrap().omega());
        // rounds never drift outside their nominal period
        let tb = opt.schedule.beacons.as_ref().unwrap().period();
        assert!(tx[k] >= tb && tx[k] < tb * 2);
    }

    #[test]
    fn round_jitter_preserves_coverage_determinism() {
        use crate::optimal::{symmetric, OptimalParams};
        use nd_core::coverage::{CoverageMap, OverlapModel};
        // one shifted round still tiles the reception period exactly once
        let opt = symmetric(OptimalParams::paper_default(), 0.05).unwrap();
        let b = opt.schedule.beacons.as_ref().unwrap();
        let c = opt.schedule.windows.as_ref().unwrap();
        let k = b.n_beacons();
        // a coherently shifted round = the same relative instants
        let rel = b.relative_instants(k);
        let map = CoverageMap::build(&rel, c, b.omega(), OverlapModel::Start);
        assert!(map.is_deterministic());
        assert!(map.is_disjoint());
    }

    #[test]
    fn round_jitter_emits_reception_windows() {
        use crate::optimal::{symmetric, OptimalParams};
        let opt = symmetric(OptimalParams::paper_default(), 0.05).unwrap();
        let mut rj = RoundJittered::new(opt.schedule);
        let mut rng = StdRng::seed_from_u64(2);
        let ops = rj.next_ops(Tick::ZERO, &mut rng);
        assert!(ops.iter().any(|op| matches!(op, Op::Rx { .. })));
    }
}
