//! Difference-set ("diff-code") schedules (Zheng, Hou & Sha — references
//! \[17, 16\] of the paper).
//!
//! A cyclic `(v, k, 1)` *perfect difference set* `D ⊆ Z_v` has the property
//! that every non-zero residue mod `v` arises exactly once as a difference
//! of two elements of `D`. Making exactly the slots in `D` active
//! guarantees that any rotation of the schedule intersects itself — two
//! devices overlap in an active slot within `v` slots, with only
//! `k ≈ √v` active slots. This meets the `k ≥ √T` bound of \[17, 16\] with
//! equality (up to the integer constraint), which is why the paper's
//! Table 1 lists diff-codes as the only optimal slotted family.
//!
//! Perfect difference sets exist for `v = q² + q + 1` with `q` a prime
//! power (Singer's construction). We ship the validated sets up to
//! `v = 133` and a backtracking searcher for arbitrary small `v`.

use crate::slotted::{BeaconPlacement, SlottedSchedule};
use nd_core::error::NdError;
use nd_core::schedule::Schedule;
use nd_core::time::Tick;

/// The validated perfect difference sets `(v, D)` for Singer parameters
/// `v = q² + q + 1`, `k = q + 1`, `q ∈ {2, 3, 4, 5, 7, 8, 9, 11}`.
/// Every set is machine-checked by [`is_perfect_difference_set`] in tests.
pub const KNOWN_SETS: &[(u64, &[u64])] = &[
    (7, &[1, 2, 4]),
    (13, &[0, 1, 3, 9]),
    (21, &[3, 6, 7, 12, 14]),
    (31, &[1, 5, 11, 24, 25, 27]),
    (57, &[0, 1, 6, 15, 22, 26, 45, 55]),
    (73, &[0, 1, 12, 20, 26, 30, 33, 35, 57]),
    (91, &[0, 1, 3, 9, 27, 49, 56, 61, 77, 81]),
    (133, &[0, 1, 3, 12, 20, 34, 38, 81, 88, 94, 104, 109]),
];

/// Check the perfect-difference-set property: every non-zero residue mod
/// `v` occurs exactly once among the pairwise differences.
pub fn is_perfect_difference_set(v: u64, set: &[u64]) -> bool {
    if set.is_empty() || v < 2 {
        return false;
    }
    if set.iter().any(|&a| a >= v) {
        return false;
    }
    let mut counts = vec![0u32; v as usize];
    for &a in set {
        for &b in set {
            if a != b {
                counts[((a + v - b) % v) as usize] += 1;
            }
        }
    }
    counts[0] == 0 && counts[1..].iter().all(|&c| c == 1)
}

/// Backtracking search for a `(v, k, 1)` perfect difference set.
/// Practical for `v ≲ 200`; returns the lexicographically smallest set
/// starting `0, 1, …` if one exists.
pub fn find_difference_set(v: u64, k: usize) -> Option<Vec<u64>> {
    if k < 2 || v < 2 {
        return None;
    }
    // necessary counting condition: k(k−1) distinct differences must fill
    // exactly the v−1 non-zero residues
    if (k as u64) * (k as u64 - 1) != v - 1 {
        return None;
    }
    let mut sol: Vec<u64> = vec![0, 1];
    let mut diffs = vec![false; v as usize];
    diffs[1] = true;
    diffs[(v - 1) as usize] = true;
    fn bt(v: u64, k: usize, sol: &mut Vec<u64>, diffs: &mut [bool], start: u64) -> bool {
        if sol.len() == k {
            return true;
        }
        for c in start..v {
            let mut new_diffs = Vec::with_capacity(sol.len() * 2);
            let mut ok = true;
            for &a in sol.iter() {
                let d1 = ((c + v - a) % v) as usize;
                let d2 = ((a + v - c) % v) as usize;
                if d1 == d2
                    || diffs[d1]
                    || diffs[d2]
                    || new_diffs.contains(&d1)
                    || new_diffs.contains(&d2)
                {
                    ok = false;
                    break;
                }
                new_diffs.push(d1);
                new_diffs.push(d2);
            }
            if ok {
                for &d in &new_diffs {
                    diffs[d] = true;
                }
                sol.push(c);
                if bt(v, k, sol, diffs, c + 1) {
                    return true;
                }
                sol.pop();
                for &d in &new_diffs {
                    diffs[d] = false;
                }
            }
        }
        false
    }
    if bt(v, k, &mut sol, &mut diffs, 2) {
        Some(sol)
    } else {
        None
    }
}

/// A diff-code node configuration.
#[derive(Clone, Debug)]
pub struct DiffCode {
    /// Period in slots.
    pub v: u64,
    /// Active slot positions (a perfect difference set mod `v`).
    pub set: Vec<u64>,
    /// Slot length `I`.
    pub slot: Tick,
    /// Packet airtime ω.
    pub omega: Tick,
}

impl DiffCode {
    /// Build from an explicit set (validated).
    pub fn new(v: u64, set: Vec<u64>, slot: Tick, omega: Tick) -> Result<Self, NdError> {
        if !is_perfect_difference_set(v, &set) {
            return Err(NdError::InvalidSchedule(format!(
                "{set:?} is not a perfect difference set mod {v}"
            )));
        }
        let mut set = set;
        set.sort();
        Ok(DiffCode {
            v,
            set,
            slot,
            omega,
        })
    }

    /// The known set whose slot-domain duty cycle `k/v` is closest to the
    /// target.
    pub fn best_known_for_duty_cycle(dc: f64, slot: Tick, omega: Tick) -> Result<Self, NdError> {
        let (v, set) = KNOWN_SETS
            .iter()
            .min_by(|(va, sa), (vb, sb)| {
                let da = (sa.len() as f64 / *va as f64 - dc).abs();
                let db = (sb.len() as f64 / *vb as f64 - dc).abs();
                da.partial_cmp(&db).unwrap()
            })
            .expect("KNOWN_SETS is non-empty");
        Self::new(*v, set.to_vec(), slot, omega)
    }

    /// Number of active slots `k`.
    pub fn k(&self) -> u64 {
        self.set.len() as u64
    }

    /// Slot-domain duty cycle `k/v` (≈ `1/√v`: the \[17,16\] optimum).
    pub fn slot_duty_cycle(&self) -> f64 {
        self.k() as f64 / self.v as f64
    }

    /// Slot-domain worst case: `v` slots.
    pub fn worst_case_slots(&self) -> u64 {
        self.v
    }

    /// The underlying slotted schedule.
    pub fn slotted(&self) -> Result<SlottedSchedule, NdError> {
        SlottedSchedule::new(
            self.slot,
            self.v,
            self.set.clone(),
            BeaconPlacement::StartEnd,
            self.omega,
        )
    }

    /// Lower to an exact schedule.
    pub fn schedule(&self) -> Result<Schedule, NdError> {
        self.slotted()?.to_schedule()
    }

    /// The rotation-closure property that powers the worst-case guarantee:
    /// for every rotation `r`, some active slot of this schedule coincides
    /// with an active slot of the rotated schedule.
    pub fn rotation_closure_holds(&self) -> bool {
        (0..self.v).all(|r| {
            self.set.iter().any(|&a| {
                let rotated = (a + r) % self.v;
                self.set.binary_search(&rotated).is_ok()
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OMEGA: Tick = Tick(36_000);
    const SLOT: Tick = Tick::from_millis(1);

    #[test]
    fn all_known_sets_are_perfect() {
        for (v, set) in KNOWN_SETS {
            assert!(
                is_perfect_difference_set(*v, set),
                "set for v = {v} is broken"
            );
            // Singer parameters: k = q+1, v = q²+q+1
            let k = set.len() as u64;
            let q = k - 1;
            assert_eq!(*v, q * q + q + 1, "v = {v}");
        }
    }

    #[test]
    fn validator_rejects_non_sets() {
        assert!(!is_perfect_difference_set(7, &[1, 2, 3]));
        assert!(!is_perfect_difference_set(7, &[]));
        assert!(!is_perfect_difference_set(7, &[1, 2, 9]), "out of range");
        assert!(!is_perfect_difference_set(6, &[1, 2, 4]), "wrong modulus");
    }

    #[test]
    fn searcher_rediscovers_fano_plane() {
        let found = find_difference_set(7, 3).unwrap();
        assert!(is_perfect_difference_set(7, &found));
        let found = find_difference_set(13, 4).unwrap();
        assert!(is_perfect_difference_set(13, &found));
    }

    #[test]
    fn searcher_respects_counting_condition() {
        // no (8, 3, 1) set exists: 3·2 ≠ 7... actually 6 ≠ 7
        assert!(find_difference_set(8, 3).is_none());
        assert!(find_difference_set(12, 4).is_none());
    }

    #[test]
    fn rotation_closure() {
        for (v, set) in KNOWN_SETS.iter().take(5) {
            let dc = DiffCode::new(*v, set.to_vec(), SLOT, OMEGA).unwrap();
            assert!(dc.rotation_closure_holds(), "v = {v}");
        }
    }

    #[test]
    fn duty_cycle_near_sqrt_optimum() {
        for (v, set) in KNOWN_SETS {
            let dc = set.len() as f64 / *v as f64;
            let optimum = 1.0 / (*v as f64).sqrt();
            assert!(
                dc / optimum < 1.25,
                "v = {v}: k/v = {dc} vs 1/√v = {optimum}"
            );
        }
    }

    #[test]
    fn best_known_selection() {
        let d = DiffCode::best_known_for_duty_cycle(0.11, SLOT, OMEGA).unwrap();
        assert_eq!(d.v, 91); // 10/91 ≈ 0.1099
        let d = DiffCode::best_known_for_duty_cycle(0.4, SLOT, OMEGA).unwrap();
        assert_eq!(d.v, 7); // 3/7 ≈ 0.43
    }

    #[test]
    fn schedule_lowering() {
        let d = DiffCode::new(7, vec![1, 2, 4], SLOT, OMEGA).unwrap();
        let sched = d.schedule().unwrap();
        // slots 1 and 2 are adjacent: their boundary beacons dedup
        // (end of 1 at 2·I−ω ≠ start of 2 at 2·I, so actually 6 beacons)
        assert_eq!(sched.beacons.as_ref().unwrap().n_beacons(), 6);
        assert_eq!(sched.windows.as_ref().unwrap().n_windows(), 3);
        assert_eq!(d.worst_case_slots(), 7);
    }
}
