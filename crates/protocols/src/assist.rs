//! Mutual assistance (Griassdi-style, Kindt et al. IPSN 2017 — reference
//! \[13\] of the paper; see also Appendix C's closing discussion).
//!
//! Each beacon carries the sender's *next reception-window start time*.
//! A device that receives such a beacon schedules one extra "reply" beacon
//! right inside the announced window, converting a one-way discovery into
//! a two-way one almost immediately — a form of synchronized operation
//! bootstrapped by the first asynchronous contact.

use nd_core::schedule::Schedule;
use nd_core::time::Tick;
use nd_sim::{Behavior, Op, Payload, ScheduleBehavior};
use rand::RngCore;

/// Wraps a static schedule with mutual assistance: outgoing beacons
/// announce the next own window; received announcements trigger one reply
/// beacon into the peer's window.
pub struct MutualAssist {
    inner: ScheduleBehavior,
    windows_period: Option<(Tick, Tick, Tick)>, // (first window start, duration, period)
    phase: Tick,
    /// Guard offset into the announced window for the reply beacon (half a
    /// window is robust against clock error; we use a fixed small offset).
    reply_offset: Tick,
    replies_sent: u64,
    max_replies: u64,
}

impl MutualAssist {
    /// Wrap a schedule (with phase 0).
    pub fn new(schedule: Schedule) -> Self {
        Self::with_phase(schedule, Tick::ZERO)
    }

    /// Wrap a phase-shifted schedule.
    pub fn with_phase(schedule: Schedule, phase: Tick) -> Self {
        let windows_period = schedule
            .windows
            .as_ref()
            .map(|c| (c.windows()[0].t, c.windows()[0].d, c.period()));
        MutualAssist {
            inner: ScheduleBehavior::with_phase(schedule, phase),
            windows_period,
            phase,
            reply_offset: Tick::from_micros(5),
            replies_sent: 0,
            max_replies: u64::MAX,
        }
    }

    /// Limit the number of assist replies (useful to bound the energy
    /// overhead in long simulations).
    pub fn with_max_replies(mut self, n: u64) -> Self {
        self.max_replies = n;
        self
    }

    /// The sim-time start of this device's next reception window strictly
    /// after `now`.
    fn next_window_after(&self, now: Tick) -> Option<Tick> {
        let (t0, _d, period) = self.windows_period?;
        // window k starts at t0 + k·period − phase (sim time)
        let now_sched = now + self.phase;
        let k = (now_sched.saturating_sub(t0)).as_nanos() / period.as_nanos() + 1;
        let start = t0 + period * k;
        start.checked_sub(self.phase)
    }

    /// Number of assist replies sent so far.
    pub fn replies_sent(&self) -> u64 {
        self.replies_sent
    }
}

impl Behavior for MutualAssist {
    fn next_ops(&mut self, after: Tick, rng: &mut dyn RngCore) -> Vec<Op> {
        // annotate every outgoing beacon with the next own window start
        self.inner
            .next_ops(after, rng)
            .into_iter()
            .map(|op| match op {
                Op::Tx { at, .. } => {
                    let announce = self.next_window_after(at).map_or(0, |w| w.as_nanos());
                    Op::Tx {
                        at,
                        payload: announce,
                    }
                }
                rx => rx,
            })
            .collect()
    }

    fn on_reception(
        &mut self,
        at: Tick,
        _from: usize,
        payload: Payload,
        _rng: &mut dyn RngCore,
    ) -> Vec<Op> {
        if payload == 0 || self.replies_sent >= self.max_replies {
            return Vec::new();
        }
        let window_start = Tick(payload);
        if window_start <= at {
            return Vec::new(); // stale announcement
        }
        self.replies_sent += 1;
        vec![Op::Tx {
            at: window_start + self.reply_offset,
            payload: 0,
        }]
    }

    fn label(&self) -> String {
        "mutual-assist".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_core::schedule::{BeaconSeq, ReceptionWindows};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schedule() -> Schedule {
        Schedule::full(
            BeaconSeq::uniform(
                1,
                Tick::from_millis(10),
                Tick::from_micros(36),
                Tick::from_millis(2),
            )
            .unwrap(),
            ReceptionWindows::single(Tick::ZERO, Tick::from_millis(1), Tick::from_millis(10))
                .unwrap(),
        )
    }

    #[test]
    fn beacons_announce_next_window() {
        let mut ma = MutualAssist::new(schedule());
        let mut rng = StdRng::seed_from_u64(1);
        let ops = ma.next_ops(Tick::ZERO, &mut rng);
        let tx: Vec<_> = ops
            .iter()
            .filter_map(|op| match op {
                Op::Tx { at, payload } => Some((*at, *payload)),
                _ => None,
            })
            .collect();
        assert!(!tx.is_empty());
        for (at, payload) in tx {
            assert!(payload > at.as_nanos(), "announcement is in the future");
            // announced instant is on the window grid (multiples of 10 ms)
            assert_eq!(payload % Tick::from_millis(10).as_nanos(), 0);
        }
    }

    #[test]
    fn reception_triggers_reply_into_window() {
        let mut ma = MutualAssist::new(schedule());
        let mut rng = StdRng::seed_from_u64(1);
        let announced = Tick::from_millis(50);
        let ops = ma.on_reception(Tick::from_millis(42), 3, announced.as_nanos(), &mut rng);
        assert_eq!(ops.len(), 1);
        match ops[0] {
            Op::Tx { at, .. } => {
                assert!(at >= announced);
                assert!(at < announced + Tick::from_millis(1));
            }
            _ => panic!("expected a reply beacon"),
        }
        assert_eq!(ma.replies_sent(), 1);
    }

    #[test]
    fn stale_and_empty_announcements_ignored() {
        let mut ma = MutualAssist::new(schedule());
        let mut rng = StdRng::seed_from_u64(1);
        assert!(ma
            .on_reception(Tick::from_millis(42), 3, 0, &mut rng)
            .is_empty());
        assert!(ma
            .on_reception(
                Tick::from_millis(42),
                3,
                Tick::from_millis(41).as_nanos(),
                &mut rng
            )
            .is_empty());
    }

    #[test]
    fn reply_budget_enforced() {
        let mut ma = MutualAssist::new(schedule()).with_max_replies(1);
        let mut rng = StdRng::seed_from_u64(1);
        let a1 = ma.on_reception(Tick(1), 0, Tick::from_millis(10).as_nanos(), &mut rng);
        assert_eq!(a1.len(), 1);
        let a2 = ma.on_reception(Tick(2), 0, Tick::from_millis(20).as_nanos(), &mut rng);
        assert!(a2.is_empty());
    }

    #[test]
    fn phase_shifts_announcements() {
        let phase = Tick::from_millis(3);
        let ma = MutualAssist::with_phase(schedule(), phase);
        // next window after sim-time 0: schedule windows at 10k ms − 3 ms
        let w = ma.next_window_after(Tick::ZERO).unwrap();
        assert_eq!(w, Tick::from_millis(7));
    }
}
