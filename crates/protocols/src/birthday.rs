//! The probabilistic "birthday" protocol (McGlynn & Borbash; the classic
//! randomized baseline the deterministic literature measures against).
//!
//! In every slot a device independently transmits with probability `p_tx`,
//! listens with probability `p_rx`, and sleeps otherwise. Discovery is
//! only probabilistic — there is no worst-case guarantee — which is
//! exactly why the paper restricts itself to deterministic protocols. We
//! include it as the contrast baseline for mean-latency comparisons and
//! for collision experiments (its per-slot independence is the "perfectly
//! decorrelated" extreme of Appendix B).

use nd_core::error::NdError;
use nd_core::time::Tick;
use nd_sim::{Behavior, Op};
use rand::Rng;
use rand::RngCore;

/// A birthday-protocol node.
pub struct Birthday {
    /// Slot length (one packet airtime is the natural choice for the
    /// transmit slots; listening uses the same grid).
    pub slot: Tick,
    /// Per-slot transmit probability.
    pub p_tx: f64,
    /// Per-slot listen probability.
    pub p_rx: f64,
    cursor: Tick,
}

impl Birthday {
    /// Validate and build.
    pub fn new(slot: Tick, p_tx: f64, p_rx: f64) -> Result<Self, NdError> {
        if !(0.0..=1.0).contains(&p_tx) || !(0.0..=1.0).contains(&p_rx) || p_tx + p_rx > 1.0 {
            return Err(NdError::InfeasibleParameters(format!(
                "slot probabilities out of range: p_tx {p_tx}, p_rx {p_rx}"
            )));
        }
        if slot.is_zero() {
            return Err(NdError::InvalidSchedule("zero slot".into()));
        }
        Ok(Birthday {
            slot,
            p_tx,
            p_rx,
            cursor: Tick::ZERO,
        })
    }

    /// Split a duty-cycle budget η evenly between transmitting and
    /// listening (the symmetric configuration; with α = 1 the energy
    /// optimum mirrors Theorem 5.5's β = γ split).
    pub fn balanced(slot: Tick, eta: f64, alpha: f64) -> Result<Self, NdError> {
        let p_tx = eta / (2.0 * alpha);
        let p_rx = eta / 2.0;
        Self::new(slot, p_tx, p_rx)
    }

    /// Expected duty cycles `(β, γ) = (p_tx, p_rx)` (slots are fully used).
    pub fn expected_duty_cycle(&self) -> (f64, f64) {
        (self.p_tx, self.p_rx)
    }
}

impl Behavior for Birthday {
    fn next_ops(&mut self, after: Tick, rng: &mut dyn RngCore) -> Vec<Op> {
        if self.cursor < after {
            // jump to the slot grid at/after `after`
            let k = after.as_nanos().div_ceil(self.slot.as_nanos());
            self.cursor = Tick(k * self.slot.as_nanos());
        }
        let mut out = Vec::new();
        // emit slots until at least one op is produced (bounded batch)
        for _ in 0..4096 {
            let at = self.cursor;
            self.cursor += self.slot;
            let roll: f64 = rng.gen();
            if roll < self.p_tx {
                out.push(Op::Tx { at, payload: 0 });
            } else if roll < self.p_tx + self.p_rx {
                out.push(Op::Rx {
                    at,
                    duration: self.slot,
                });
            }
            if out.len() >= 16 {
                break;
            }
        }
        out
    }

    fn label(&self) -> String {
        format!("birthday({:.3},{:.3})", self.p_tx, self.p_rx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validation() {
        assert!(Birthday::new(Tick(1000), 0.1, 0.1).is_ok());
        assert!(Birthday::new(Tick(1000), 0.6, 0.6).is_err());
        assert!(Birthday::new(Tick(1000), -0.1, 0.5).is_err());
        assert!(Birthday::new(Tick::ZERO, 0.1, 0.1).is_err());
    }

    #[test]
    fn balanced_split() {
        let b = Birthday::balanced(Tick(1000), 0.05, 1.0).unwrap();
        assert!((b.p_tx - 0.025).abs() < 1e-12);
        assert!((b.p_rx - 0.025).abs() < 1e-12);
    }

    #[test]
    fn ops_land_on_slot_grid() {
        let mut b = Birthday::new(Tick(1000), 0.3, 0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let ops = b.next_ops(Tick(2500), &mut rng);
        assert!(!ops.is_empty());
        for op in &ops {
            assert_eq!(op.at().as_nanos() % 1000, 0, "on grid");
            assert!(op.at() >= Tick(2500));
        }
    }

    #[test]
    fn long_run_frequencies_match_probabilities() {
        let mut b = Birthday::new(Tick(1000), 0.2, 0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let (mut tx, mut rx) = (0u64, 0u64);
        let mut cursor = Tick::ZERO;
        for _ in 0..500 {
            for op in b.next_ops(cursor, &mut rng) {
                match op {
                    Op::Tx { at, .. } => {
                        tx += 1;
                        cursor = at + Tick(1);
                    }
                    Op::Rx { at, .. } => {
                        rx += 1;
                        cursor = at + Tick(1);
                    }
                }
            }
        }
        let total_slots = cursor.as_nanos() / 1000;
        let f_tx = tx as f64 / total_slots as f64;
        let f_rx = rx as f64 / total_slots as f64;
        assert!((f_tx - 0.2).abs() < 0.03, "tx frequency {f_tx}");
        assert!((f_rx - 0.3).abs() < 0.03, "rx frequency {f_rx}");
    }
}
