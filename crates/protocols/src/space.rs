//! Declarative parameter spaces — what an optimizer may tune per protocol.
//!
//! Every registry protocol exposes a [`ParamSpace`]: typed parameter
//! ranges (duty-cycle target, slot length, …) plus feasibility
//! constraints that fence the optimizer into the region where the
//! construction is defined. The space is *data*, not code, so search
//! strategies (`nd-opt`), spec validators and documentation all read the
//! same description. Parameter values travel as plain `f64` vectors in
//! the order of [`ParamSpace::params`]; named lookup goes through
//! [`ParamSpace::index_of`].
//!
//! Conventions shared with the sweep grammar:
//! * `eta` — total duty-cycle target η (dimensionless, `(0, 1]`),
//! * `slot_us` — slot length in microseconds (slotted protocols only).

use nd_core::time::Tick;

/// How a parameter's values are laid out — this drives both seeding
/// (where an optimizer places its initial grid) and refinement (how a
/// midpoint between two candidate values is formed).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ParamRange {
    /// A continuous range seeded and refined on a log scale — for scale
    /// parameters spanning decades (duty cycles, periods).
    LogRange {
        /// Inclusive lower limit (> 0).
        lo: f64,
        /// Inclusive upper limit.
        hi: f64,
    },
    /// A continuous range seeded and refined on a linear scale.
    LinRange {
        /// Inclusive lower limit.
        lo: f64,
        /// Inclusive upper limit.
        hi: f64,
    },
}

impl ParamRange {
    /// Inclusive limits of the range.
    pub fn limits(&self) -> (f64, f64) {
        match *self {
            ParamRange::LogRange { lo, hi } | ParamRange::LinRange { lo, hi } => (lo, hi),
        }
    }

    /// Whether `v` lies inside the range.
    pub fn contains(&self, v: f64) -> bool {
        let (lo, hi) = self.limits();
        v.is_finite() && v >= lo && v <= hi
    }

    /// `n` seed values spanning the range (log- or linearly spaced,
    /// endpoints included). `n = 1` yields the geometric/arithmetic
    /// middle.
    pub fn seeds(&self, n: usize) -> Vec<f64> {
        let n = n.max(1);
        let (lo, hi) = self.limits();
        if n == 1 {
            return vec![self.midpoint(lo, hi)];
        }
        (0..n)
            .map(|i| {
                let t = i as f64 / (n - 1) as f64;
                let v = match self {
                    ParamRange::LogRange { .. } => (lo.ln() + t * (hi.ln() - lo.ln())).exp(),
                    ParamRange::LinRange { .. } => lo + t * (hi - lo),
                };
                // exp(ln(x)) can land one ulp outside the range; seeds
                // must stay feasible by construction
                v.clamp(lo, hi)
            })
            .collect()
    }

    /// The scale-appropriate midpoint of two values (geometric on log
    /// ranges, arithmetic on linear ranges), clamped into the range.
    pub fn midpoint(&self, a: f64, b: f64) -> f64 {
        let (lo, hi) = self.limits();
        let m = match self {
            ParamRange::LogRange { .. } => (a * b).sqrt(),
            ParamRange::LinRange { .. } => 0.5 * (a + b),
        };
        m.clamp(lo, hi)
    }
}

/// One tunable parameter: a name (sweep-grammar spelling) and its range.
#[derive(Clone, Debug, PartialEq)]
pub struct ParamDef {
    /// Parameter name (`"eta"`, `"slot_us"`).
    pub name: &'static str,
    /// Value layout and limits.
    pub range: ParamRange,
}

/// A feasibility constraint over a full parameter point — regions where a
/// construction, while inside every per-parameter range, is still
/// undefined or degenerate. Constructor errors remain the backstop for
/// anything not expressible here; these exist so an optimizer can skip
/// known-infeasible points without paying for the failed construction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Constraint {
    /// `slot_us` must be at least this multiple of the packet airtime ω —
    /// a slot must fit its beacon(s) plus a usable listening remainder.
    MinSlotOmegaRatio(f64),
    /// `eta · slot_us` must be at least `factor · ω_us`: the active time
    /// per schedule period must amount to at least one packet airtime,
    /// otherwise the discretized construction collapses to zero beacons.
    MinEtaSlotProductOmega(f64),
}

/// A protocol's full declarative parameter space.
#[derive(Clone, Debug, PartialEq)]
pub struct ParamSpace {
    /// The tunable parameters, in canonical order (value vectors use this
    /// order).
    pub params: Vec<ParamDef>,
    /// Feasibility constraints over full points.
    pub constraints: Vec<Constraint>,
}

impl ParamSpace {
    /// The position of a named parameter in value vectors.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name == name)
    }

    /// The named component of a point, if the space has that parameter.
    pub fn value_of(&self, name: &str, point: &[f64]) -> Option<f64> {
        self.index_of(name).and_then(|i| point.get(i).copied())
    }

    /// Whether the point is inside every range and satisfies every
    /// constraint. `omega` is the radio's packet airtime (constraints
    /// relate slot lengths to it). In a [`ParamSpace::paired`] space the
    /// constraints apply to each role's `(eta, slot_us)` independently.
    pub fn feasible(&self, point: &[f64], omega: Tick) -> bool {
        if point.len() != self.params.len() {
            return false;
        }
        if !self
            .params
            .iter()
            .zip(point)
            .all(|(p, &v)| p.range.contains(v))
        {
            return false;
        }
        let omega_us = omega.as_micros_f64();
        let roles = [
            (self.value_of("eta", point), self.value_of("slot_us", point)),
            (
                self.value_of("eta_b", point),
                self.value_of("slot_us_b", point),
            ),
        ];
        self.constraints.iter().all(|c| {
            roles.iter().all(|&(eta, slot_us)| match *c {
                Constraint::MinSlotOmegaRatio(r) => slot_us.is_none_or(|s| s >= r * omega_us),
                Constraint::MinEtaSlotProductOmega(f) => match (eta, slot_us) {
                    (Some(e), Some(s)) => e * s >= f * omega_us,
                    _ => true,
                },
            })
        })
    }

    /// The two-role version of this space: every parameter duplicated
    /// with a `_b` suffix (role B), role A's axes first. Constraints
    /// apply to each role independently (see [`ParamSpace::feasible`]).
    /// This is how `nd-opt` searches asymmetric (η_E, η_F) pairs against
    /// the Theorem 5.7 bound.
    pub fn paired(&self) -> ParamSpace {
        let suffixed = |name: &'static str| -> &'static str {
            match name {
                "eta" => "eta_b",
                "slot_us" => "slot_us_b",
                other => panic!("no role-B spelling for parameter `{other}`"),
            }
        };
        let mut params = self.params.clone();
        params.extend(self.params.iter().map(|p| ParamDef {
            name: suffixed(p.name),
            range: p.range,
        }));
        ParamSpace {
            params,
            constraints: self.constraints.clone(),
        }
    }

    /// The full seeding grid: `per_axis` values per parameter, crossed
    /// (cartesian product, first parameter outermost), *not* yet filtered
    /// for feasibility.
    pub fn seed_grid(&self, per_axis: usize) -> Vec<Vec<f64>> {
        let axes: Vec<Vec<f64>> = self
            .params
            .iter()
            .map(|p| p.range.seeds(per_axis))
            .collect();
        let mut grid: Vec<Vec<f64>> = vec![Vec::new()];
        for axis in &axes {
            let mut next = Vec::with_capacity(grid.len() * axis.len());
            for prefix in &grid {
                for &v in axis {
                    let mut point = prefix.clone();
                    point.push(v);
                    next.push(point);
                }
            }
            grid = next;
        }
        grid
    }

    /// The component-wise, scale-appropriate midpoint of two points —
    /// how an optimizer refines the region between two neighboring front
    /// candidates.
    pub fn midpoint(&self, a: &[f64], b: &[f64]) -> Vec<f64> {
        self.params
            .iter()
            .enumerate()
            .map(|(i, p)| p.range.midpoint(a[i], b[i]))
            .collect()
    }

    /// The same space with the named parameter's range intersected with
    /// `[lo, hi]` (the scale is kept). `None` if the intersection is
    /// empty or the space has no such parameter — a search restricted to
    /// a region the protocol does not cover is a caller error, not an
    /// empty result.
    pub fn restrict(&self, name: &str, lo: f64, hi: f64) -> Option<ParamSpace> {
        let idx = self.index_of(name)?;
        let mut out = self.clone();
        let p = &mut out.params[idx];
        let (cur_lo, cur_hi) = p.range.limits();
        let (new_lo, new_hi) = (lo.max(cur_lo), hi.min(cur_hi));
        // empty (or NaN-poisoned) intersection
        if new_lo.partial_cmp(&new_hi) != Some(std::cmp::Ordering::Less) && new_lo != new_hi {
            return None;
        }
        p.range = match p.range {
            ParamRange::LogRange { .. } => ParamRange::LogRange {
                lo: new_lo,
                hi: new_hi,
            },
            ParamRange::LinRange { .. } => ParamRange::LinRange {
                lo: new_lo,
                hi: new_hi,
            },
        };
        Some(out)
    }
}

/// The duty-cycle range every space shares: the paper's practical regime
/// (≈ 0.5 % … 25 %), log-spaced because latency scales as 1/η².
fn eta_param() -> ParamDef {
    ParamDef {
        name: "eta",
        range: ParamRange::LogRange {
            lo: 0.005,
            hi: 0.25,
        },
    }
}

/// The slot-length range slotted protocols expose: 0.25 ms … 8 ms
/// (BLE-scale up to sensor-network-scale), log-spaced.
fn slot_param() -> ParamDef {
    ParamDef {
        name: "slot_us",
        range: ParamRange::LogRange {
            lo: 250.0,
            hi: 8000.0,
        },
    }
}

impl crate::registry::ProtocolKind {
    /// The protocol's declarative parameter space: what `nd-opt` (or any
    /// other search) may tune, and where the construction is defined.
    ///
    /// The slotless optimum is parametrized by η alone; every slotted
    /// protocol adds its slot length. Constraints fence off slots too
    /// short to hold a beacon and η·slot products that round to zero
    /// active time.
    pub fn param_space(&self) -> ParamSpace {
        use crate::registry::ProtocolKind::*;
        let slotted = |min_slot_omega: f64| ParamSpace {
            params: vec![eta_param(), slot_param()],
            constraints: vec![
                Constraint::MinSlotOmegaRatio(min_slot_omega),
                Constraint::MinEtaSlotProductOmega(1.0),
            ],
        };
        match self {
            OptimalSlotless => ParamSpace {
                params: vec![eta_param()],
                constraints: vec![],
            },
            // plain slotted constructions: a slot holds one beacon at each
            // boundary, so ≥ 4ω leaves a usable listening remainder
            Disco | UConnect | Searchlight => slotted(4.0),
            // two packets per slot (code-based) and difference codes with
            // dense marks need more headroom per slot
            DiffCodes | CodeBased => slotted(8.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ProtocolKind;

    const OMEGA: Tick = Tick::from_micros(36);

    #[test]
    fn every_registry_protocol_has_a_space_with_eta_first() {
        for kind in ProtocolKind::all() {
            let space = kind.param_space();
            assert!(!space.params.is_empty(), "{}", kind.name());
            assert_eq!(space.params[0].name, "eta", "{}", kind.name());
            assert_eq!(space.index_of("eta"), Some(0));
        }
    }

    #[test]
    fn slotted_spaces_expose_a_slot_axis_and_slotless_does_not() {
        assert_eq!(
            ProtocolKind::OptimalSlotless
                .param_space()
                .index_of("slot_us"),
            None
        );
        for kind in [
            ProtocolKind::Disco,
            ProtocolKind::UConnect,
            ProtocolKind::Searchlight,
            ProtocolKind::DiffCodes,
            ProtocolKind::CodeBased,
        ] {
            let space = kind.param_space();
            assert!(space.index_of("slot_us").is_some(), "{}", kind.name());
            assert!(!space.constraints.is_empty(), "{}", kind.name());
        }
    }

    #[test]
    fn seeds_span_the_range_and_respect_the_scale() {
        let r = ParamRange::LogRange { lo: 0.01, hi: 1.0 };
        let seeds = r.seeds(3);
        assert_eq!(seeds.len(), 3);
        assert!((seeds[0] - 0.01).abs() < 1e-12);
        assert!((seeds[1] - 0.1).abs() < 1e-9, "log middle: {}", seeds[1]);
        assert!((seeds[2] - 1.0).abs() < 1e-12);

        let r = ParamRange::LinRange { lo: 0.0, hi: 10.0 };
        assert_eq!(r.seeds(3), vec![0.0, 5.0, 10.0]);
        assert_eq!(r.seeds(1), vec![5.0]);
        assert_eq!(
            (ParamRange::LogRange { lo: 4.0, hi: 9.0 }).seeds(1),
            vec![6.0]
        );
    }

    #[test]
    fn seed_grid_is_the_cartesian_product() {
        let space = ProtocolKind::Disco.param_space();
        let grid = space.seed_grid(3);
        assert_eq!(grid.len(), 9);
        assert!(grid.iter().all(|p| p.len() == 2));
        // first axis outermost
        assert_eq!(grid[0][0], grid[1][0]);
        assert_ne!(grid[0][1], grid[1][1]);
    }

    #[test]
    fn feasibility_enforces_ranges_and_constraints() {
        let space = ProtocolKind::Disco.param_space();
        assert!(space.feasible(&[0.05, 1000.0], OMEGA));
        // out of range
        assert!(!space.feasible(&[0.0001, 1000.0], OMEGA));
        assert!(!space.feasible(&[0.05, 1e6], OMEGA));
        // wrong arity
        assert!(!space.feasible(&[0.05], OMEGA));
        // a 100 µs slot cannot hold 4ω = 144 µs — but only in-range points
        // exercise the constraint, so test with a large omega instead
        let big_omega = Tick::from_micros(200);
        assert!(!space.feasible(&[0.05, 500.0], big_omega), "500 < 4·200");
        // η·slot below one airtime: 0.005 · 1000 µs = 5 µs < 36 µs
        assert!(!space.feasible(&[0.005, 1000.0], OMEGA));
        assert!(space.feasible(&[0.04, 1000.0], OMEGA));
    }

    #[test]
    fn midpoints_follow_the_scale() {
        let space = ProtocolKind::Disco.param_space();
        let m = space.midpoint(&[0.01, 1000.0], &[0.04, 4000.0]);
        assert!((m[0] - 0.02).abs() < 1e-12, "geometric: {}", m[0]);
        assert!((m[1] - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn restrict_intersects_and_rejects_empty() {
        let space = ProtocolKind::Disco.param_space();
        let narrowed = space.restrict("eta", 0.02, 0.10).unwrap();
        assert_eq!(
            narrowed.params[0].range,
            ParamRange::LogRange { lo: 0.02, hi: 0.10 }
        );
        // scale and other axes untouched
        assert_eq!(narrowed.params[1], space.params[1]);
        assert_eq!(narrowed.constraints, space.constraints);
        // clamped to the space's own limits
        let clamped = space.restrict("eta", 0.0001, 0.9).unwrap();
        assert_eq!(clamped.params[0].range, space.params[0].range);
        // empty intersection and unknown names are errors
        assert!(space.restrict("eta", 0.5, 0.9).is_none());
        assert!(space.restrict("warp", 0.1, 0.2).is_none());
    }

    #[test]
    fn paired_space_duplicates_axes_and_checks_roles_independently() {
        let space = ProtocolKind::Disco.param_space().paired();
        assert_eq!(
            space.params.iter().map(|p| p.name).collect::<Vec<_>>(),
            vec!["eta", "slot_us", "eta_b", "slot_us_b"]
        );
        // both roles feasible
        assert!(space.feasible(&[0.05, 1000.0, 0.02, 2000.0], OMEGA));
        // role B violates the η·slot constraint (0.005 · 1000 µs < 36 µs)
        assert!(!space.feasible(&[0.05, 1000.0, 0.005, 1000.0], OMEGA));
        // role A violates it while role B is fine
        assert!(!space.feasible(&[0.005, 1000.0, 0.05, 1000.0], OMEGA));
        // slotless pairs too
        let slotless = ProtocolKind::OptimalSlotless.param_space().paired();
        assert_eq!(
            slotless.params.iter().map(|p| p.name).collect::<Vec<_>>(),
            vec!["eta", "eta_b"]
        );
        assert!(slotless.feasible(&[0.05, 0.01], OMEGA));
    }

    #[test]
    fn feasible_seed_points_build_schedules() {
        // the declared space must be honest: feasible seed points are
        // accepted by the actual constructors (errors stay a backstop for
        // exotic interior points, but the seeding grid must mostly work)
        let slot_idx = |space: &ParamSpace| space.index_of("slot_us");
        for kind in ProtocolKind::all() {
            let space = kind.param_space();
            let mut feasible = 0;
            let mut built = 0;
            for point in space.seed_grid(3) {
                if !space.feasible(&point, OMEGA) {
                    continue;
                }
                feasible += 1;
                let eta = point[0];
                let slot = slot_idx(&space)
                    .map(|i| Tick::from_secs_f64(point[i] * 1e-6))
                    .unwrap_or(Tick::from_millis(1));
                if kind.schedule_for_eta(eta, slot, OMEGA).is_ok() {
                    built += 1;
                }
            }
            assert!(feasible > 0, "{}: empty feasible seed grid", kind.name());
            assert!(
                built * 3 >= feasible * 2,
                "{}: only {built}/{feasible} feasible seeds construct",
                kind.name()
            );
        }
    }
}
