//! Collision-robust redundant schedules (Appendix B of the paper).
//!
//! For `S > 2` devices, the deterministic worst case `L` is only met with
//! some probability; Appendix B derives the optimal redundancy degree `Q`
//! (every offset covered `Q` times) and channel utilization β for a target
//! failure rate `P_f`. A uniform-gap tiling sequence already provides this
//! redundancy structure: each group of `k` consecutive beacons covers every
//! offset exactly once, so `Q` consecutive groups cover every offset `Q`
//! times within `L′ = Q·k·λ` — Eq. 33.
//!
//! The catch (stated by the paper) is *correlation*: with strictly
//! repetitive sequences, a beacon that collides tends to collide again in
//! the next group. Combine the schedule with
//! [`crate::jitter::Jittered`] to approximate the independent-collision
//! assumption behind Eq. 32 — the `appb` experiment measures how close
//! that gets.

use crate::optimal::{build_tiling, OptimalParams};
use nd_core::bounds::redundancy::{optimal_redundancy, CollisionExponent, RedundancyPlan};
use nd_core::error::NdError;
use nd_core::schedule::Schedule;
use nd_core::time::Tick;

/// A redundancy-planned protocol instance.
#[derive(Clone, Debug)]
pub struct RedundantProtocol {
    /// The per-device schedule (β from the plan, γ = η − αβ).
    pub schedule: Schedule,
    /// The solved Appendix B plan (Q, β, γ, L′, …).
    pub plan: RedundancyPlan,
    /// The exact latency within which every offset is covered `Q` times
    /// (`Q·k·λ` in ticks; the integer-rounded version of the plan's
    /// `l_prime`).
    pub predicted_l_prime: Tick,
}

impl RedundantProtocol {
    /// Machine-check the Q-fold coverage property: within the `L′` horizon
    /// (`Q·k` beacons), every offset must be covered at least `Q` times
    /// (Definition 4.3's Λ* ≥ Q). Returns the verified minimum
    /// multiplicity.
    pub fn verify_multiplicity(&self) -> u32 {
        use nd_core::coverage::{CoverageMap, OverlapModel};
        let b = self.schedule.beacons.as_ref().expect("transmits");
        let c = self.schedule.windows.as_ref().expect("listens");
        let k = c.period().div_ceil(c.sum_d()) as usize;
        let n = k * self.plan.q as usize;
        let map = CoverageMap::build(&b.relative_instants(n), c, b.omega(), OverlapModel::Start);
        map.min_multiplicity()
    }
}

/// Build the Appendix B optimum for a budget η, failure-rate target `pf`
/// and `s` simultaneously discovering devices.
pub fn redundant_symmetric(
    params: OptimalParams,
    eta: f64,
    pf: f64,
    s: u32,
    exponent: CollisionExponent,
) -> Result<RedundantProtocol, NdError> {
    let plan = optimal_redundancy(
        eta,
        params.alpha,
        params.omega.as_secs_f64(),
        pf,
        s,
        exponent,
        16,
    )
    .ok_or_else(|| {
        NdError::InfeasibleParameters(format!(
            "no feasible redundancy degree for eta {eta}, pf {pf}, s {s}"
        ))
    })?;
    let (beacons, windows, one_cover_latency) = build_tiling(params, plan.beta, plan.gamma)?;
    let predicted_l_prime = one_cover_latency * plan.q as u64;
    Ok(RedundantProtocol {
        schedule: Schedule::full(beacons, windows),
        plan,
        predicted_l_prime,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> OptimalParams {
        OptimalParams::paper_default()
    }

    #[test]
    fn paper_example_lowered_to_schedule() {
        // ω = 36 µs, α = 1, η = 5 %, P_f = 0.05 %, S = 3 → Q = 3
        let r =
            redundant_symmetric(params(), 0.05, 0.0005, 3, CollisionExponent::SMinusOne).unwrap();
        assert_eq!(r.plan.q, 3);
        // schedule's β matches the plan within rounding
        let dc = r.schedule.duty_cycle();
        assert!((dc.beta - r.plan.beta).abs() / r.plan.beta < 0.01);
        assert!((dc.gamma - r.plan.gamma).abs() / r.plan.gamma < 0.01);
        // integer L′ tracks the analytical one
        let ratio = r.predicted_l_prime.as_secs_f64() / r.plan.l_prime;
        assert!((ratio - 1.0).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn lprime_is_q_times_single_cover() {
        let r =
            redundant_symmetric(params(), 0.05, 0.0005, 3, CollisionExponent::SMinusOne).unwrap();
        // pair worst case (single cover) = L′/Q
        let single = r.predicted_l_prime / r.plan.q as u64;
        let pair = r.plan.pair_worst_case;
        assert!((single.as_secs_f64() - pair).abs() / pair < 0.02);
    }

    #[test]
    fn q_fold_coverage_verified() {
        // Definition 4.3 machine check: the Q = 3 plan covers every offset
        // at least 3 times within L′
        let r =
            redundant_symmetric(params(), 0.05, 0.0005, 3, CollisionExponent::SMinusOne).unwrap();
        assert_eq!(r.verify_multiplicity(), r.plan.q);
    }

    #[test]
    fn infeasible_budget_rejected() {
        // A *large* failure-rate target is the infeasible direction: Eq. 32
        // at P_f = 0.5 among 50 devices needs a per-beacon collision rate
        // so high that the implied β exceeds the whole η = 0.1 % budget for
        // every redundancy degree Q.
        assert!(
            redundant_symmetric(params(), 0.001, 0.5, 50, CollisionExponent::SMinusOne).is_err()
        );
    }
}
