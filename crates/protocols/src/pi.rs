//! Periodic-interval (PI) protocols — the BLE-like slotless family
//! (references \[18, 14, 12, 13\] of the paper).
//!
//! A PI device beacons every `T_a` (advertising interval) and opens a
//! reception window of `d_s` every `T_s` (scan interval / scan window).
//! The three parameters are free, which is exactly why the paper's
//! question — *which parametrizations are optimal?* — was open: the
//! recursive worst-case analysis of \[18\] computes the latency of any one
//! triple but cannot search the infinite space.
//!
//! This module provides arbitrary `(T_a, T_s, d_s)` triples plus
//! * the **optimal parametrization** `T_a = a·T_s + d_s`, `γ = d_s/T_s =
//!   1/k` — which is precisely the tiling construction of
//!   `crate::optimal` (the paper's conclusion that slotless PI protocols
//!   scale across the whole Pareto front), and
//! * **BLE presets** with the spec's random `advDelay ∈ [0, 10 ms]`
//!   jitter, modelled by [`BleAdvertiser`].

use nd_core::error::NdError;
use nd_core::params::DutyCycle;
use nd_core::schedule::{BeaconSeq, ReceptionWindows, Schedule};
use nd_core::time::Tick;
use nd_sim::{Behavior, Op};
use rand::Rng;
use rand::RngCore;

/// A periodic-interval protocol configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PiProtocol {
    /// Advertising interval `T_a` (beacon every `T_a`).
    pub ta: Tick,
    /// Scan interval `T_s`.
    pub ts: Tick,
    /// Scan window `d_s ≤ T_s`.
    pub ds: Tick,
    /// Packet airtime ω.
    pub omega: Tick,
}

impl PiProtocol {
    /// Validate and build.
    pub fn new(ta: Tick, ts: Tick, ds: Tick, omega: Tick) -> Result<Self, NdError> {
        if ds > ts {
            return Err(NdError::InvalidSchedule(format!(
                "scan window {ds} exceeds scan interval {ts}"
            )));
        }
        if ta < omega {
            return Err(NdError::InvalidSchedule(format!(
                "advertising interval {ta} below airtime {omega}"
            )));
        }
        if ds.is_zero() || ts.is_zero() {
            return Err(NdError::InvalidSchedule("zero scan parameters".into()));
        }
        Ok(PiProtocol { ta, ts, ds, omega })
    }

    /// Duty cycles: β = ω/T_a, γ = d_s/T_s.
    pub fn duty_cycle(&self) -> DutyCycle {
        DutyCycle {
            beta: self.omega.as_nanos() as f64 / self.ta.as_nanos() as f64,
            gamma: self.ds.as_nanos() as f64 / self.ts.as_nanos() as f64,
        }
    }

    /// Build a triple from duty-cycle targets and a chosen scan window.
    pub fn from_duty_cycles(beta: f64, gamma: f64, ds: Tick, omega: Tick) -> Result<Self, NdError> {
        if beta <= 0.0 || gamma <= 0.0 || gamma > 1.0 {
            return Err(NdError::InvalidSchedule(format!(
                "invalid duty cycles beta {beta}, gamma {gamma}"
            )));
        }
        let ta = Tick((omega.as_nanos() as f64 / beta).round() as u64);
        let ts = Tick((ds.as_nanos() as f64 / gamma).round() as u64);
        Self::new(ta, ts, ds, omega)
    }

    /// The paper-optimal parametrization for a duty-cycle budget η:
    /// `γ = η/2 = 1/k`, `T_a = a·T_s + d_s` — a thin wrapper over the
    /// Theorem 5.5 tiling construction.
    pub fn optimal(eta: f64, alpha: f64, omega: Tick, a: u64) -> Result<Self, NdError> {
        let opt =
            crate::optimal::symmetric(crate::optimal::OptimalParams { omega, alpha, a }, eta)?;
        let b = opt.schedule.beacons.expect("symmetric schedule transmits");
        let c = opt.schedule.windows.expect("symmetric schedule listens");
        Self::new(b.mean_gap(), c.period(), c.sum_d(), omega)
    }

    /// Lower to an exact schedule (the fixed-interval, jitter-free form).
    pub fn schedule(&self) -> Result<Schedule, NdError> {
        let beacons = BeaconSeq::new(vec![Tick::ZERO], self.ta, self.omega)?;
        let windows = ReceptionWindows::single(Tick::ZERO, self.ds, self.ts)?;
        Ok(Schedule::full(beacons, windows))
    }

    /// A scanner-only schedule (BLE central).
    pub fn scanner(&self) -> Result<Schedule, NdError> {
        Ok(Schedule::rx_only(ReceptionWindows::single(
            Tick::ZERO,
            self.ds,
            self.ts,
        )?))
    }

    /// An advertiser-only schedule (BLE peripheral, jitter-free).
    pub fn advertiser(&self) -> Result<Schedule, NdError> {
        Ok(Schedule::tx_only(BeaconSeq::new(
            vec![Tick::ZERO],
            self.ta,
            self.omega,
        )?))
    }

    /// The BLE v5 "general discovery" preset: 100 ms advertising interval
    /// (plus 0–10 ms advDelay, see [`BleAdvertiser`]), 1.28 s scan interval
    /// with an 11.25 ms scan window, 36 µs packets.
    pub fn ble_general_discovery() -> Self {
        PiProtocol {
            ta: Tick::from_millis(100),
            ts: Tick::from_micros(1_280_000),
            ds: Tick::from_micros(11_250),
            omega: Tick::from_micros(36),
        }
    }
}

/// A BLE peripheral: beacons every `T_a + advDelay` with
/// `advDelay ~ U[0, 10 ms]` drawn fresh per advertising event (Bluetooth
/// spec 5.0, vol. 6 B.4.4.2.2 — reference \[23\] of the paper).
///
/// The jitter is the "decorrelation mechanism" the paper's conclusion
/// highlights: it makes successive collisions between two advertisers
/// independent at the cost of a slightly longer mean interval.
pub struct BleAdvertiser {
    /// Base advertising interval `T_a`.
    pub ta: Tick,
    /// Maximum random delay added per event (spec: 10 ms).
    pub adv_delay_max: Tick,
    next: Tick,
}

impl BleAdvertiser {
    /// Standard advertiser with the spec's 10 ms advDelay.
    pub fn new(ta: Tick) -> Self {
        BleAdvertiser {
            ta,
            adv_delay_max: Tick::from_millis(10),
            next: Tick::ZERO,
        }
    }
}

impl Behavior for BleAdvertiser {
    fn next_ops(&mut self, after: Tick, rng: &mut dyn RngCore) -> Vec<Op> {
        if self.next < after {
            self.next = after;
        }
        // emit a handful of advertising events per pull
        let mut out = Vec::with_capacity(8);
        for _ in 0..8 {
            out.push(Op::Tx {
                at: self.next,
                payload: 0,
            });
            let delay = Tick(rng.gen_range(0..=self.adv_delay_max.as_nanos()));
            self.next = self.next + self.ta + delay;
        }
        out
    }

    fn label(&self) -> String {
        format!("ble-adv({})", self.ta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const OMEGA: Tick = Tick(36_000);

    #[test]
    fn validation() {
        assert!(PiProtocol::new(
            Tick::from_millis(100),
            Tick::from_millis(1000),
            Tick::from_millis(10),
            OMEGA
        )
        .is_ok());
        // window > interval
        assert!(PiProtocol::new(
            Tick::from_millis(100),
            Tick::from_millis(10),
            Tick::from_millis(20),
            OMEGA
        )
        .is_err());
        // advertising faster than the airtime
        assert!(PiProtocol::new(Tick(1000), Tick::from_millis(10), Tick(5000), OMEGA).is_err());
    }

    #[test]
    fn duty_cycles() {
        let pi = PiProtocol::new(
            Tick::from_micros(3600),
            Tick::from_millis(100),
            Tick::from_millis(10),
            OMEGA,
        )
        .unwrap();
        let dc = pi.duty_cycle();
        assert!((dc.beta - 0.01).abs() < 1e-9);
        assert!((dc.gamma - 0.1).abs() < 1e-12);
    }

    #[test]
    fn from_duty_cycles_roundtrips() {
        let pi = PiProtocol::from_duty_cycles(0.01, 0.05, Tick::from_millis(2), OMEGA).unwrap();
        let dc = pi.duty_cycle();
        assert!((dc.beta - 0.01).abs() / 0.01 < 0.01);
        assert!((dc.gamma - 0.05).abs() / 0.05 < 0.01);
    }

    #[test]
    fn optimal_parametrization_has_tiling_relation() {
        let pi = PiProtocol::optimal(0.05, 1.0, OMEGA, 1).unwrap();
        // T_a = a·T_s + d_s
        assert_eq!(pi.ta, pi.ts + pi.ds);
        let eta = pi.duty_cycle().eta(1.0);
        assert!((eta - 0.05).abs() / 0.05 < 0.02, "eta {eta}");
    }

    #[test]
    fn ble_preset_values() {
        let ble = PiProtocol::ble_general_discovery();
        assert_eq!(ble.ta, Tick::from_millis(100));
        assert_eq!(ble.ds, Tick::from_micros(11_250));
        assert!(ble.schedule().is_ok());
        assert!(ble.scanner().is_ok());
        assert!(ble.advertiser().is_ok());
    }

    #[test]
    fn ble_advertiser_jitters() {
        let mut adv = BleAdvertiser::new(Tick::from_millis(100));
        let mut rng = StdRng::seed_from_u64(3);
        let ops = adv.next_ops(Tick::ZERO, &mut rng);
        assert_eq!(ops.len(), 8);
        let mut gaps = Vec::new();
        for w in ops.windows(2) {
            let g = w[1].at() - w[0].at();
            assert!(g >= Tick::from_millis(100));
            assert!(g <= Tick::from_millis(110));
            gaps.push(g);
        }
        // jitter actually varies
        assert!(gaps.iter().any(|&g| g != gaps[0]));
    }

    #[test]
    fn ble_advertiser_respects_after() {
        let mut adv = BleAdvertiser::new(Tick::from_millis(100));
        let mut rng = StdRng::seed_from_u64(3);
        let _ = adv.next_ops(Tick::ZERO, &mut rng);
        let later = adv.next_ops(Tick::from_secs(10), &mut rng);
        assert!(later[0].at() >= Tick::from_secs(10));
    }
}
