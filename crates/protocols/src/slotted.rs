//! Generic slotted-schedule builder.
//!
//! Most published ND protocols (Disco, Searchlight, U-Connect,
//! diff-code/quorum schedules) subdivide time into slots of length `I` and
//! mark some slots *active*: the device beacons at the slot boundaries and
//! listens in between (Section 2 of the paper). This module turns a set of
//! active slot indices into an exact `nd-core` [`Schedule`], with the
//! beacon placement variants the paper discusses:
//!
//! * [`BeaconPlacement::StartEnd`] — one beacon at the start and one at the
//!   end of each active slot (Disco/Searchlight-style; two packets per
//!   slot);
//! * [`BeaconPlacement::StartOnly`] — a single beacon at the slot start
//!   (the one-packet-per-slot accounting of Eq. 17);
//! * [`BeaconPlacement::PreAndEnd`] — one beacon *just before* the slot
//!   plus one at the end (the code-based protocols of \[6,7\], which send one
//!   packet slightly outside the slot boundary).

use nd_core::error::NdError;
use nd_core::interval::{Interval, IntervalSet};
use nd_core::schedule::{BeaconSeq, ReceptionWindows, Schedule, Window};
use nd_core::time::Tick;

/// Where beacons sit within an active slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BeaconPlacement {
    /// Beacons at slot start and slot end; listen in between.
    #[default]
    StartEnd,
    /// Single beacon at slot start; listen for the rest of the slot.
    StartOnly,
    /// Beacons just before the slot start and at the slot end; listen for
    /// the whole slot body (\[6,7\]).
    PreAndEnd,
}

/// A slotted protocol schedule: `period_slots` slots of length `slot`, of
/// which `active` (sorted, distinct indices) are active.
#[derive(Clone, Debug)]
pub struct SlottedSchedule {
    /// Slot length `I`.
    pub slot: Tick,
    /// Slots per period (`T` in the slotted-bounds notation).
    pub period_slots: u64,
    /// Active slot indices, sorted and distinct, all `< period_slots`.
    pub active: Vec<u64>,
    /// Beacon placement within active slots.
    pub placement: BeaconPlacement,
    /// Packet airtime ω.
    pub omega: Tick,
}

impl SlottedSchedule {
    /// Validate and build.
    pub fn new(
        slot: Tick,
        period_slots: u64,
        active: Vec<u64>,
        placement: BeaconPlacement,
        omega: Tick,
    ) -> Result<Self, NdError> {
        if period_slots == 0 || active.is_empty() {
            return Err(NdError::InvalidSchedule(
                "need at least one slot and one active slot".into(),
            ));
        }
        let min_slot = match placement {
            BeaconPlacement::StartEnd => omega * 2 + Tick(1),
            BeaconPlacement::StartOnly => omega + Tick(1),
            BeaconPlacement::PreAndEnd => omega * 2 + Tick(1),
        };
        if slot < min_slot {
            return Err(NdError::InvalidSchedule(format!(
                "slot length {slot} below the minimum {min_slot} for {placement:?}"
            )));
        }
        let mut prev: Option<u64> = None;
        for &i in &active {
            if i >= period_slots {
                return Err(NdError::InvalidSchedule(format!(
                    "active slot {i} outside the period of {period_slots} slots"
                )));
            }
            if prev.is_some_and(|p| p >= i) {
                return Err(NdError::InvalidSchedule(
                    "active slots must be sorted and distinct".into(),
                ));
            }
            prev = Some(i);
        }
        Ok(SlottedSchedule {
            slot,
            period_slots,
            active,
            placement,
            omega,
        })
    }

    /// Slot-domain duty cycle `k/T`.
    pub fn slot_duty_cycle(&self) -> f64 {
        self.active.len() as f64 / self.period_slots as f64
    }

    /// The schedule period in time, `T·I`.
    pub fn period(&self) -> Tick {
        self.slot * self.period_slots
    }

    /// Lower the schedule to exact beacon/window sequences.
    pub fn to_schedule(&self) -> Result<Schedule, NdError> {
        let period = self.period();
        let mut beacon_times: Vec<Tick> = Vec::new();
        let mut window_parts: Vec<Interval> = Vec::new();
        for &i in &self.active {
            let start = self.slot * i;
            let end = self.slot * (i + 1);
            match self.placement {
                BeaconPlacement::StartEnd => {
                    beacon_times.push(start);
                    beacon_times.push(end - self.omega);
                    window_parts.push(Interval::new(start + self.omega, end - self.omega));
                }
                BeaconPlacement::StartOnly => {
                    beacon_times.push(start);
                    window_parts.push(Interval::new(start + self.omega, end));
                }
                BeaconPlacement::PreAndEnd => {
                    // the pre-slot beacon wraps at the period boundary
                    let pre = (start + period - self.omega).rem_euclid(period);
                    beacon_times.push(pre);
                    beacon_times.push(end - self.omega);
                    window_parts.push(Interval::new(start, end - self.omega));
                }
            }
        }
        beacon_times.sort();
        beacon_times.dedup();
        let beacons = BeaconSeq::new(beacon_times, period, self.omega)?;
        let windows: Vec<Window> = IntervalSet::from_intervals(window_parts)
            .intervals()
            .iter()
            .map(|iv| Window::new(iv.start, iv.measure()))
            .collect();
        let windows = ReceptionWindows::new(windows, period)?;
        Ok(Schedule::full(beacons, windows))
    }

    /// The slot length that yields channel utilization `beta` for this
    /// schedule shape under the Eq. 20 conversion `β = n_pkt·k·ω/(I·T)`.
    pub fn slot_for_utilization(
        k: u64,
        t: u64,
        omega: Tick,
        packets_per_slot: u64,
        beta: f64,
    ) -> Tick {
        assert!(beta > 0.0);
        let i = (packets_per_slot * k) as f64 * omega.as_nanos() as f64 / (t as f64 * beta);
        Tick(i.round().max(1.0) as u64)
    }
}

/// Simple deterministic primality test (trial division; the primes in ND
/// protocols are tiny).
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    let mut d = 3;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// The smallest prime ≥ `n`.
pub fn next_prime(mut n: u64) -> u64 {
    loop {
        if is_prime(n) {
            return n;
        }
        n += 1;
    }
}

/// The largest prime ≤ `n` (panics below 2).
pub fn prev_prime(mut n: u64) -> u64 {
    loop {
        assert!(n >= 2, "no prime below 2");
        if is_prime(n) {
            return n;
        }
        n -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OMEGA: Tick = Tick(36_000);

    fn slot_ms(ms: u64) -> Tick {
        Tick::from_millis(ms)
    }

    #[test]
    fn start_end_placement() {
        let s = SlottedSchedule::new(slot_ms(1), 10, vec![0, 3], BeaconPlacement::StartEnd, OMEGA)
            .unwrap();
        let sched = s.to_schedule().unwrap();
        let b = sched.beacons.as_ref().unwrap();
        assert_eq!(b.n_beacons(), 4);
        assert_eq!(b.times()[0], Tick::ZERO);
        assert_eq!(b.times()[1], slot_ms(1) - OMEGA);
        let c = sched.windows.as_ref().unwrap();
        assert_eq!(c.n_windows(), 2);
        assert_eq!(c.windows()[0].t, OMEGA);
        assert_eq!(c.windows()[0].d, slot_ms(1) - OMEGA * 2);
        assert_eq!(s.slot_duty_cycle(), 0.2);
        assert_eq!(s.period(), slot_ms(10));
    }

    #[test]
    fn start_only_placement() {
        let s = SlottedSchedule::new(slot_ms(1), 5, vec![2], BeaconPlacement::StartOnly, OMEGA)
            .unwrap();
        let sched = s.to_schedule().unwrap();
        assert_eq!(sched.beacons.as_ref().unwrap().n_beacons(), 1);
        let w = &sched.windows.as_ref().unwrap().windows()[0];
        assert_eq!(w.t, slot_ms(2) + OMEGA);
        assert_eq!(w.d, slot_ms(1) - OMEGA);
    }

    #[test]
    fn pre_and_end_wraps_at_period() {
        let s = SlottedSchedule::new(slot_ms(1), 4, vec![0, 2], BeaconPlacement::PreAndEnd, OMEGA)
            .unwrap();
        let sched = s.to_schedule().unwrap();
        let b = sched.beacons.as_ref().unwrap();
        // slot 0's pre-beacon wraps to period − ω
        assert!(b.times().contains(&(slot_ms(4) - OMEGA)));
        // slot 2's pre-beacon at 2 ms − ω
        assert!(b.times().contains(&(slot_ms(2) - OMEGA)));
        // windows span the slot bodies
        let c = sched.windows.as_ref().unwrap();
        assert_eq!(c.windows()[0].t, Tick::ZERO);
    }

    #[test]
    fn consecutive_active_slots_merge_windows() {
        let s = SlottedSchedule::new(
            slot_ms(1),
            10,
            vec![4, 5],
            BeaconPlacement::StartOnly,
            OMEGA,
        )
        .unwrap();
        let sched = s.to_schedule().unwrap();
        // beacon of slot 5 interrupts, but the two windows stay distinct
        // intervals because the beacon sits between them... with StartOnly
        // windows are [4I+ω,5I) and [5I+ω,6I): distinct
        assert_eq!(sched.windows.as_ref().unwrap().n_windows(), 2);
        // duplicate beacon times collapse for adjacent StartEnd slots
        let s2 = SlottedSchedule::new(slot_ms(1), 10, vec![4, 5], BeaconPlacement::StartEnd, OMEGA)
            .unwrap();
        let b = s2.to_schedule().unwrap();
        assert_eq!(b.beacons.as_ref().unwrap().n_beacons(), 4);
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        assert!(
            SlottedSchedule::new(slot_ms(1), 0, vec![], BeaconPlacement::StartEnd, OMEGA).is_err()
        );
        assert!(
            SlottedSchedule::new(slot_ms(1), 4, vec![5], BeaconPlacement::StartEnd, OMEGA).is_err(),
            "active beyond period"
        );
        assert!(
            SlottedSchedule::new(slot_ms(1), 4, vec![2, 1], BeaconPlacement::StartEnd, OMEGA)
                .is_err(),
            "unsorted"
        );
        // slot too short for two beacons
        assert!(
            SlottedSchedule::new(Tick(50_000), 4, vec![0], BeaconPlacement::StartEnd, OMEGA)
                .is_err()
        );
        // but fine for one
        assert!(
            SlottedSchedule::new(Tick(50_000), 4, vec![0], BeaconPlacement::StartOnly, OMEGA)
                .is_ok()
        );
    }

    #[test]
    fn slot_for_utilization_inverts_eq20() {
        let k = 10u64;
        let t = 100u64;
        let beta = 0.004;
        let slot = SlottedSchedule::slot_for_utilization(k, t, OMEGA, 2, beta);
        // β = 2kω/(IT)
        let recovered =
            2.0 * k as f64 * OMEGA.as_nanos() as f64 / (slot.as_nanos() as f64 * t as f64);
        assert!((recovered - beta).abs() / beta < 0.01);
    }

    #[test]
    fn primes() {
        assert!(is_prime(2) && is_prime(3) && is_prime(37) && is_prime(97));
        assert!(!is_prime(0) && !is_prime(1) && !is_prime(91) && !is_prime(100));
        assert_eq!(next_prime(90), 97);
        assert_eq!(prev_prime(90), 89);
        assert_eq!(next_prime(37), 37);
    }
}
