//! A small registry to build every protocol at a comparable configuration
//! — used by the `classify`/`table1` experiments and the
//! protocol-shootout example.

use crate::{
    codebased::CodeBased, diffcodes::DiffCode, disco::Disco, optimal::OptimalParams,
    searchlight::Searchlight, uconnect::UConnect,
};
use nd_core::error::NdError;
use nd_core::schedule::Schedule;
use nd_core::time::Tick;

/// The deterministic protocols the paper classifies, plus our optimal
/// construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolKind {
    /// The paper-optimal slotless tiling (Theorem 5.5).
    OptimalSlotless,
    /// Disco \[3\] with balanced primes.
    Disco,
    /// U-Connect \[4\].
    UConnect,
    /// Searchlight \[5\] (sequential probe).
    Searchlight,
    /// Diff-codes \[17, 16\].
    DiffCodes,
    /// Code-based \[6, 7\] (two packets per slot).
    CodeBased,
}

impl ProtocolKind {
    /// All kinds, in Table-1 order with the optimum first.
    pub fn all() -> &'static [ProtocolKind] {
        &[
            ProtocolKind::OptimalSlotless,
            ProtocolKind::DiffCodes,
            ProtocolKind::Searchlight,
            ProtocolKind::Disco,
            ProtocolKind::UConnect,
            ProtocolKind::CodeBased,
        ]
    }

    /// Look a protocol up by its display name (the inverse of
    /// [`ProtocolKind::name`]) — how declarative scenario specs (`nd-sweep`)
    /// refer to protocols.
    pub fn from_name(name: &str) -> Option<ProtocolKind> {
        ProtocolKind::all()
            .iter()
            .copied()
            .find(|k| k.name() == name)
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolKind::OptimalSlotless => "optimal-slotless",
            ProtocolKind::Disco => "disco",
            ProtocolKind::UConnect => "u-connect",
            ProtocolKind::Searchlight => "searchlight",
            ProtocolKind::DiffCodes => "diff-codes",
            ProtocolKind::CodeBased => "code-based",
        }
    }

    /// Build this protocol's per-device schedule aiming at a *total* duty
    /// cycle η (α = 1). Slotted protocols take their natural slot-domain
    /// parametrization with the given slot length; the slotless optimum
    /// splits β = γ = η/2.
    pub fn schedule_for_eta(&self, eta: f64, slot: Tick, omega: Tick) -> Result<Schedule, NdError> {
        match self {
            ProtocolKind::OptimalSlotless => Ok(crate::optimal::symmetric(
                OptimalParams {
                    omega,
                    alpha: 1.0,
                    a: 1,
                },
                eta,
            )?
            .schedule),
            ProtocolKind::Disco => Disco::balanced_for_duty_cycle(eta, slot, omega)?.schedule(),
            ProtocolKind::UConnect => UConnect::for_duty_cycle(eta, slot, omega)?.schedule(),
            ProtocolKind::Searchlight => Searchlight::for_duty_cycle(eta, slot, omega)?.schedule(),
            ProtocolKind::DiffCodes => {
                DiffCode::best_known_for_duty_cycle(eta, slot, omega)?.schedule()
            }
            ProtocolKind::CodeBased => {
                CodeBased::best_known_for_duty_cycle(eta, slot, omega)?.schedule()
            }
        }
    }
}

/// Build a per-device schedule from a *selector* string — the form
/// declarative scenario specs (`nd-sweep`) and the cohort simulator use to
/// name protocols:
///
/// * a registry name ([`ProtocolKind::from_name`], e.g. `"disco"`,
///   `"optimal-slotless"`), built for the given η and slot length, or
/// * the parametrized form `diff-code:<v>:<m1>,<m2>,…` building an
///   explicit difference-set schedule (η is then implied by the set and
///   the slot length).
pub fn schedule_for_selector(
    selector: &str,
    eta: f64,
    slot: Tick,
    omega: Tick,
) -> Result<Schedule, NdError> {
    if let Some(rest) = selector.strip_prefix("diff-code:") {
        let (v_str, marks_str) = rest.split_once(':').ok_or_else(|| {
            NdError::InvalidSchedule(format!("`{selector}`: expected diff-code:<v>:<m1>,<m2>,…"))
        })?;
        let v: u64 = v_str.parse().map_err(|_| {
            NdError::InvalidSchedule(format!("`{selector}`: bad modulus `{v_str}`"))
        })?;
        let marks: Vec<u64> = marks_str
            .split(',')
            .map(|m| {
                m.trim()
                    .parse()
                    .map_err(|_| NdError::InvalidSchedule(format!("`{selector}`: bad mark `{m}`")))
            })
            .collect::<Result<_, _>>()?;
        let d = DiffCode::new(v, marks, slot, omega)?;
        return d.schedule();
    }
    let kind = ProtocolKind::from_name(selector).ok_or_else(|| {
        let known: Vec<&str> = ProtocolKind::all().iter().map(|k| k.name()).collect();
        NdError::InvalidSchedule(format!(
            "unknown protocol `{selector}` (registry: {}; or diff-code:<v>:<marks>)",
            known.join(", ")
        ))
    })?;
    kind.schedule_for_eta(eta, slot, omega)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds() {
        let slot = Tick::from_millis(1);
        let omega = Tick::from_micros(36);
        for kind in ProtocolKind::all() {
            let sched = kind
                .schedule_for_eta(0.1, slot, omega)
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
            assert!(sched.beacons.is_some(), "{}", kind.name());
            assert!(sched.windows.is_some(), "{}", kind.name());
        }
    }

    #[test]
    fn from_name_roundtrips() {
        for kind in ProtocolKind::all() {
            assert_eq!(ProtocolKind::from_name(kind.name()), Some(*kind));
        }
        assert_eq!(ProtocolKind::from_name("no-such-protocol"), None);
    }

    #[test]
    fn selector_builds_registry_names_and_diff_codes() {
        let slot = Tick::from_millis(1);
        let omega = Tick::from_micros(36);
        let by_name = schedule_for_selector("disco", 0.1, slot, omega).unwrap();
        assert!(by_name.beacons.is_some());
        let diff = schedule_for_selector("diff-code:7:1,2,4", 0.1, slot, omega).unwrap();
        assert!(diff.windows.is_some());
        let err = schedule_for_selector("warp-drive", 0.1, slot, omega).unwrap_err();
        assert!(err.to_string().contains("warp-drive"));
        assert!(err.to_string().contains("disco"), "lists the registry");
        assert!(schedule_for_selector("diff-code:7", 0.1, slot, omega).is_err());
        assert!(schedule_for_selector("diff-code:7:x", 0.1, slot, omega).is_err());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = ProtocolKind::all().iter().map(|k| k.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), ProtocolKind::all().len());
    }

    #[test]
    fn slotted_duty_cycles_in_slot_domain_near_target() {
        let slot = Tick::from_millis(1);
        let omega = Tick::from_micros(36);
        for kind in [
            ProtocolKind::Disco,
            ProtocolKind::UConnect,
            ProtocolKind::Searchlight,
        ] {
            let sched = kind.schedule_for_eta(0.1, slot, omega).unwrap();
            // γ ≈ slot-domain duty cycle for I ≫ ω
            let gamma = sched.windows.as_ref().unwrap().gamma();
            assert!((gamma - 0.1).abs() < 0.03, "{}: gamma {gamma}", kind.name());
        }
    }
}
