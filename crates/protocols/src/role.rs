//! Role-typed device configurations — the unit of heterogeneity.
//!
//! The paper's Theorem 5.7 covers *pairs of unequal devices*: a BLE
//! advertiser against a scanner, a beacon-dense anchor against a
//! battery-starved tag. A [`RoleConfig`] is one device's complete
//! protocol configuration (selector, duty-cycle target, slot length);
//! every pipeline layer above `nd-core` — sweep grids, evaluators,
//! cohort simulations, the optimizer — describes an experiment as a
//! *pair* of roles (A, B), with role B defaulting to role A so the
//! symmetric case stays the degenerate one-role form it always was.

use crate::schedule_for_selector;
use nd_core::error::NdError;
use nd_core::schedule::Schedule;
use nd_core::time::Tick;

/// One device role: a protocol selector plus the parameters its schedule
/// is built for.
#[derive(Clone, Debug, PartialEq)]
pub struct RoleConfig {
    /// Protocol selector (registry name or `diff-code:<v>:<m1>,…`).
    pub protocol: String,
    /// Total duty-cycle target η for this role.
    pub eta: f64,
    /// Slot length for slotted protocols.
    pub slot: Tick,
}

impl RoleConfig {
    /// Build this role's per-device schedule for the given packet
    /// airtime.
    pub fn schedule(&self, omega: Tick) -> Result<Schedule, NdError> {
        schedule_for_selector(&self.protocol, self.eta, self.slot, omega)
    }

    /// A human-readable `protocol@eta` tag (used to label simulated
    /// devices so traces and stats identify the role).
    pub fn label(&self) -> String {
        format!("{}@{}", self.protocol, self.eta)
    }
}

/// A pair of roles: role A on device/cohort-part 0, role B on the other.
/// `RolePair::symmetric` is the degenerate case every pre-existing
/// experiment uses.
#[derive(Clone, Debug, PartialEq)]
pub struct RolePair {
    /// Device 0's role (the "advertiser"/E side in asymmetric setups).
    pub a: RoleConfig,
    /// Device 1's role (the "scanner"/F side).
    pub b: RoleConfig,
}

impl RolePair {
    /// Both devices run the same configuration.
    pub fn symmetric(role: RoleConfig) -> Self {
        RolePair {
            b: role.clone(),
            a: role,
        }
    }

    /// Whether the two roles actually differ (the symmetric fast path —
    /// schedule reuse, unchanged cache hashes — keys off this).
    pub fn is_asymmetric(&self) -> bool {
        self.a != self.b
    }

    /// Build both schedules, reusing role A's when the pair is
    /// symmetric.
    ///
    /// An asymmetric pair of `optimal-slotless` roles builds the paper's
    /// *coupled* Theorem 5.7 construction ([`crate::optimal::asymmetric`]):
    /// each side's beacon gap is chosen to tile the *other* side's window
    /// period, which is what achieves the `4αω/(η_E·η_F)` bound — two
    /// independently built symmetric tilings at different η do not align
    /// and can be a factor ~2 worse. Every other combination builds the
    /// two selectors independently (those protocols define no coordinated
    /// pair construction).
    pub fn schedules(&self, omega: Tick) -> Result<(Schedule, Schedule), NdError> {
        if !self.is_asymmetric() {
            let a = self.a.schedule(omega)?;
            let b = a.clone();
            return Ok((a, b));
        }
        if self.a.protocol == "optimal-slotless" && self.b.protocol == "optimal-slotless" {
            let params = crate::optimal::OptimalParams {
                omega,
                alpha: 1.0,
                a: 1,
            };
            let (e, f) = crate::optimal::asymmetric(params, self.a.eta, self.b.eta)?;
            return Ok((e.schedule, f.schedule));
        }
        Ok((self.a.schedule(omega)?, self.b.schedule(omega)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn role(protocol: &str, eta: f64) -> RoleConfig {
        RoleConfig {
            protocol: protocol.into(),
            eta,
            slot: Tick::from_millis(1),
        }
    }

    #[test]
    fn symmetric_pair_builds_one_schedule_twice() {
        let pair = RolePair::symmetric(role("optimal-slotless", 0.05));
        assert!(!pair.is_asymmetric());
        let (a, b) = pair.schedules(Tick::from_micros(36)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn asymmetric_pair_builds_distinct_schedules() {
        let pair = RolePair {
            a: role("optimal-slotless", 0.10),
            b: role("optimal-slotless", 0.02),
        };
        assert!(pair.is_asymmetric());
        let (a, b) = pair.schedules(Tick::from_micros(36)).unwrap();
        assert!(a.eta(1.0) > b.eta(1.0), "role A spends more energy");
    }

    #[test]
    fn asymmetric_optimal_pair_is_the_coupled_theorem_5_7_construction() {
        let omega = Tick::from_micros(36);
        let pair = RolePair {
            a: role("optimal-slotless", 0.08),
            b: role("optimal-slotless", 0.02),
        };
        let (a, b) = pair.schedules(omega).unwrap();
        // E's beacon gap tiles F's window period and vice versa: both
        // cross products β_E·γ_F and β_F·γ_E realize the bound
        let bound = nd_core::bounds::asymmetric_bound(1.0, 36e-6, 0.08, 0.02);
        let dc_a = a.duty_cycle();
        let dc_b = b.duty_cycle();
        let l_ef = 36e-6 / (dc_a.beta * dc_b.gamma);
        let l_fe = 36e-6 / (dc_b.beta * dc_a.gamma);
        assert!((l_ef - bound).abs() / bound < 0.02, "{l_ef} vs {bound}");
        assert!((l_fe - bound).abs() / bound < 0.02, "{l_fe} vs {bound}");
    }

    #[test]
    fn heterogeneous_protocols_build_too() {
        let pair = RolePair {
            a: role("disco", 0.10),
            b: role("u-connect", 0.10),
        };
        let (a, b) = pair.schedules(Tick::from_micros(36)).unwrap();
        assert_ne!(a, b);
        assert_eq!(pair.a.label(), "disco@0.1");
    }

    #[test]
    fn bad_selector_is_an_error() {
        assert!(role("warp-drive", 0.05)
            .schedule(Tick::from_micros(36))
            .is_err());
    }
}
