//! Code-based protocols (Meng, Wu & Chen — references \[6, 7\] of the
//! paper).
//!
//! These protocols start from a difference-set schedule and send one
//! additional packet *slightly outside* the active-slot boundary (just
//! before the slot start). The extra packet lets an active slot be
//! discovered by a peer whose own active slot only touches the boundary,
//! which in slot terms beats the `k ≥ √T` bound of \[17, 16\] — at the price
//! of two packets per active slot. Section 6.1.1 of the paper (Eq. 19)
//! shows that in *time* terms the improvement disappears: the bound is
//! `ω(1/2 + 2α + 2α²)/η²`, equal to the fundamental bound only at α = ½.
//!
//! We implement the packet placement faithfully (pre-slot + end-of-slot
//! beacon, listening over the whole slot body) on top of any perfect
//! difference set; the slot-domain guarantee stays `v` slots and the
//! channel utilization doubles relative to one-packet-per-slot accounting.

use crate::diffcodes::DiffCode;
use crate::slotted::{BeaconPlacement, SlottedSchedule};
use nd_core::error::NdError;
use nd_core::schedule::Schedule;
use nd_core::time::Tick;

/// A code-based node configuration: a diff-code with the \[6,7\] two-packet
/// placement.
#[derive(Clone, Debug)]
pub struct CodeBased {
    /// The underlying difference-set schedule.
    pub code: DiffCode,
}

impl CodeBased {
    /// Wrap a difference set with the code-based packet placement.
    pub fn new(code: DiffCode) -> Self {
        CodeBased { code }
    }

    /// The known set closest to a target slot-domain duty cycle.
    pub fn best_known_for_duty_cycle(dc: f64, slot: Tick, omega: Tick) -> Result<Self, NdError> {
        Ok(CodeBased::new(DiffCode::best_known_for_duty_cycle(
            dc, slot, omega,
        )?))
    }

    /// Slot-domain worst case: `v` slots.
    pub fn worst_case_slots(&self) -> u64 {
        self.code.v
    }

    /// The underlying slotted schedule with the `PreAndEnd` placement.
    pub fn slotted(&self) -> Result<SlottedSchedule, NdError> {
        SlottedSchedule::new(
            self.code.slot,
            self.code.v,
            self.code.set.clone(),
            BeaconPlacement::PreAndEnd,
            self.code.omega,
        )
    }

    /// Lower to an exact schedule.
    pub fn schedule(&self) -> Result<Schedule, NdError> {
        self.slotted()?.to_schedule()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OMEGA: Tick = Tick(36_000);
    const SLOT: Tick = Tick::from_millis(1);

    fn code() -> CodeBased {
        CodeBased::new(DiffCode::new(7, vec![1, 2, 4], SLOT, OMEGA).unwrap())
    }

    #[test]
    fn two_packets_per_slot() {
        let sched = code().schedule().unwrap();
        let b = sched.beacons.as_ref().unwrap();
        // 3 active slots × 2 packets, minus dedup where slot 1's end beacon
        // coincides with slot 2's pre-beacon (2·I − ω)
        assert_eq!(b.n_beacons(), 5);
        // channel utilization roughly doubles the one-packet diff-code
        let plain = code().code.schedule().unwrap();
        let beta_cb = sched.duty_cycle().beta;
        let beta_dc = plain.duty_cycle().beta;
        assert!(beta_cb > beta_dc * 0.8 && beta_cb <= beta_dc * 1.2 + 1e-9);
    }

    #[test]
    fn listening_covers_slot_bodies() {
        let sched = code().schedule().unwrap();
        let c = sched.windows.as_ref().unwrap();
        // window of slot 1 starts at the slot boundary (pre-beacon is
        // outside the slot)
        assert!(c.contains_instant(Tick::from_millis(1)));
        assert_eq!(code().worst_case_slots(), 7);
    }
}
