//! Non-repetitive reception sequences (Appendix A.1 of the paper).
//!
//! All bounds in the paper remain valid when `C∞` is *not* a periodic
//! repetition of a finite `C`: Appendix A.1 re-derives
//! `M = ⌈1/γ⌉` and `L = ω/(βγ)` for arbitrary patterns. Two useful
//! non-repetitive scanners:
//!
//! * [`RandomScanner`] — one window of length `d` placed uniformly at
//!   random in each frame of length `T` (γ = d/T). It has no worst-case
//!   guarantee (a geometric tail instead), making it the canonical foil
//!   for the deterministic bound: its *mean* can approach the optimum
//!   while its tail is unbounded — exactly why the paper studies
//!   deterministic protocols.
//! * [`SlidingScanner`] — a window that advances by a fixed stride each
//!   frame (mod T). Deterministic and non-repetitive in any single frame
//!   period; with the stride coprime to the frame it behaves like a
//!   difference-set walk.

use nd_core::error::NdError;
use nd_core::time::Tick;
use nd_sim::{Behavior, Op};
use rand::Rng;
use rand::RngCore;

/// A scanner with one uniformly random window per frame (Appendix A.1's
/// "continuously altering" reception pattern).
pub struct RandomScanner {
    /// Frame length `T`.
    pub frame: Tick,
    /// Window length `d` (γ = d/T).
    pub window: Tick,
    next_frame: u64,
}

impl RandomScanner {
    /// Validate and build.
    pub fn new(frame: Tick, window: Tick) -> Result<Self, NdError> {
        if window.is_zero() || window > frame {
            return Err(NdError::InvalidSchedule(format!(
                "window {window} must be in (0, frame {frame}]"
            )));
        }
        Ok(RandomScanner {
            frame,
            window,
            next_frame: 0,
        })
    }

    /// The reception duty cycle γ = d/T.
    pub fn gamma(&self) -> f64 {
        self.window.as_nanos() as f64 / self.frame.as_nanos() as f64
    }
}

impl Behavior for RandomScanner {
    fn next_ops(&mut self, after: Tick, rng: &mut dyn RngCore) -> Vec<Op> {
        // jump to the frame containing/after `after`
        let f = after.as_nanos() / self.frame.as_nanos();
        if f > self.next_frame {
            self.next_frame = f;
        }
        let mut out = Vec::with_capacity(4);
        for _ in 0..4 {
            let base = Tick(self.next_frame * self.frame.as_nanos());
            let span = (self.frame - self.window).as_nanos();
            let offset = if span == 0 {
                0
            } else {
                rng.gen_range(0..=span)
            };
            let at = base + Tick(offset);
            if at >= after {
                out.push(Op::Rx {
                    at,
                    duration: self.window,
                });
            }
            self.next_frame += 1;
        }
        out
    }

    fn label(&self) -> String {
        format!("random-scanner(γ={:.3})", self.gamma())
    }
}

/// A deterministic non-repetitive scanner: the window slides by `stride`
/// each frame (mod the frame length).
pub struct SlidingScanner {
    /// Frame length `T`.
    pub frame: Tick,
    /// Window length `d`.
    pub window: Tick,
    /// Per-frame slide (mod `T − d` wrap).
    pub stride: Tick,
    next_frame: u64,
}

impl SlidingScanner {
    /// Validate and build.
    pub fn new(frame: Tick, window: Tick, stride: Tick) -> Result<Self, NdError> {
        if window.is_zero() || window > frame {
            return Err(NdError::InvalidSchedule(format!(
                "window {window} must be in (0, frame {frame}]"
            )));
        }
        Ok(SlidingScanner {
            frame,
            window,
            stride,
            next_frame: 0,
        })
    }

    /// Window offset within frame `k`.
    pub fn offset_in_frame(&self, k: u64) -> Tick {
        let span = (self.frame - self.window).as_nanos().max(1);
        Tick((self.stride.as_nanos() * k) % span)
    }
}

impl Behavior for SlidingScanner {
    fn next_ops(&mut self, after: Tick, _rng: &mut dyn RngCore) -> Vec<Op> {
        let f = after.as_nanos() / self.frame.as_nanos();
        if f > self.next_frame {
            self.next_frame = f;
        }
        let mut out = Vec::with_capacity(4);
        for _ in 0..4 {
            let k = self.next_frame;
            let base = Tick(k * self.frame.as_nanos());
            let at = base + self.offset_in_frame(k);
            if at >= after {
                out.push(Op::Rx {
                    at,
                    duration: self.window,
                });
            }
            self.next_frame += 1;
        }
        out
    }

    fn label(&self) -> String {
        "sliding-scanner".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_scanner_windows_inside_frames() {
        let mut s = RandomScanner::new(Tick::from_millis(10), Tick::from_millis(1)).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let ops = s.next_ops(Tick::ZERO, &mut rng);
        assert_eq!(ops.len(), 4);
        for (i, op) in ops.iter().enumerate() {
            let Op::Rx { at, duration } = *op else {
                panic!("scanner only listens");
            };
            let base = Tick::from_millis(10 * i as u64);
            assert!(at >= base);
            assert!(at + duration <= base + Tick::from_millis(10));
        }
    }

    #[test]
    fn random_scanner_gamma() {
        let s = RandomScanner::new(Tick::from_millis(10), Tick::from_millis(1)).unwrap();
        assert!((s.gamma() - 0.1).abs() < 1e-12);
        assert!(RandomScanner::new(Tick::from_millis(1), Tick::from_millis(2)).is_err());
    }

    #[test]
    fn random_scanner_varies_offsets() {
        let mut s = RandomScanner::new(Tick::from_millis(10), Tick::from_millis(1)).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let ops = s.next_ops(Tick::ZERO, &mut rng);
        let offsets: Vec<u64> = ops
            .iter()
            .enumerate()
            .map(|(i, op)| (op.at() - Tick::from_millis(10 * i as u64)).as_nanos())
            .collect();
        assert!(offsets.iter().any(|&o| o != offsets[0]));
    }

    #[test]
    fn sliding_scanner_deterministic_progression() {
        let mut s = SlidingScanner::new(
            Tick::from_millis(10),
            Tick::from_millis(1),
            Tick::from_micros(700),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let a = s.next_ops(Tick::ZERO, &mut rng);
        // rebuilding gives identical ops (no randomness)
        let mut s2 = SlidingScanner::new(
            Tick::from_millis(10),
            Tick::from_millis(1),
            Tick::from_micros(700),
        )
        .unwrap();
        let b = s2.next_ops(Tick::ZERO, &mut rng);
        assert_eq!(a, b);
        // offsets advance by the stride
        assert_eq!(
            s.offset_in_frame(1) - s.offset_in_frame(0),
            Tick::from_micros(700)
        );
    }

    #[test]
    fn scanners_respect_after() {
        let mut s = RandomScanner::new(Tick::from_millis(10), Tick::from_millis(1)).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let ops = s.next_ops(Tick::from_millis(35), &mut rng);
        assert!(ops.iter().all(|op| op.at() >= Tick::from_millis(35)));
    }
}
