//! Searchlight (Bakht, Trower & Kravets, MobiCom 2012 — reference \[5\] of
//! the paper).
//!
//! Time is divided into periods of `t` slots. Each period contains an
//! *anchor* slot at position 0 and a *probe* slot whose position sweeps
//! `1, 2, …, ⌈t/2⌉` across consecutive periods (it only needs to search
//! half the period because anchor–anchor offsets are symmetric). Discovery
//! is guaranteed within `t·⌈t/2⌉` slots; the slot-domain duty cycle is
//! `2/t`. The "striped" variant permutes the probe order with a stride —
//! the worst case is unchanged, which our exact analysis confirms.

use crate::slotted::{BeaconPlacement, SlottedSchedule};
use nd_core::error::NdError;
use nd_core::schedule::Schedule;
use nd_core::time::Tick;

/// A Searchlight node configuration.
#[derive(Clone, Debug)]
pub struct Searchlight {
    /// Period length in slots (`t ≥ 2`).
    pub t: u64,
    /// Probe stride: 1 = sequential probing, >1 = striped. Must be coprime
    /// with ⌈t/2⌉ so the probe still visits every position.
    pub stride: u64,
    /// Slot length `I`.
    pub slot: Tick,
    /// Packet airtime ω.
    pub omega: Tick,
}

impl Searchlight {
    /// Validate and build (sequential probing).
    pub fn new(t: u64, slot: Tick, omega: Tick) -> Result<Self, NdError> {
        Self::striped(t, 1, slot, omega)
    }

    /// Validate and build with a probe stride (Searchlight-Striped).
    pub fn striped(t: u64, stride: u64, slot: Tick, omega: Tick) -> Result<Self, NdError> {
        if t < 2 {
            return Err(NdError::InvalidSchedule(format!(
                "Searchlight needs t ≥ 2, got {t}"
            )));
        }
        let n_probe = t.div_ceil(2);
        if stride == 0 || gcd(stride, n_probe) != 1 {
            return Err(NdError::InvalidSchedule(format!(
                "stride {stride} must be coprime with ⌈t/2⌉ = {n_probe}"
            )));
        }
        Ok(Searchlight {
            t,
            stride,
            slot,
            omega,
        })
    }

    /// The period for a target slot-domain duty cycle (`2/t ≈ dc`).
    pub fn for_duty_cycle(dc: f64, slot: Tick, omega: Tick) -> Result<Self, NdError> {
        if !(0.0 < dc && dc < 1.0) {
            return Err(NdError::InvalidSchedule(format!(
                "duty cycle out of range: {dc}"
            )));
        }
        let t = (2.0 / dc).round().max(2.0) as u64;
        Self::new(t, slot, omega)
    }

    /// Number of distinct probe positions (`⌈t/2⌉`).
    pub fn n_probe_positions(&self) -> u64 {
        self.t.div_ceil(2)
    }

    /// Slot-domain worst case: `t·⌈t/2⌉` slots.
    pub fn worst_case_slots(&self) -> u64 {
        self.t * self.n_probe_positions()
    }

    /// Slot-domain duty cycle `2/t`.
    pub fn slot_duty_cycle(&self) -> f64 {
        2.0 / self.t as f64
    }

    /// The underlying slotted schedule over the full hyperperiod of
    /// `t·⌈t/2⌉` slots.
    pub fn slotted(&self) -> Result<SlottedSchedule, NdError> {
        let n_probe = self.n_probe_positions();
        let period = self.t * n_probe;
        let mut active = Vec::with_capacity(2 * n_probe as usize);
        for j in 0..n_probe {
            let base = j * self.t;
            let probe = 1 + (j * self.stride) % n_probe;
            active.push(base);
            active.push(base + probe);
        }
        active.sort();
        active.dedup();
        SlottedSchedule::new(
            self.slot,
            period,
            active,
            BeaconPlacement::StartEnd,
            self.omega,
        )
    }

    /// Lower to an exact schedule.
    pub fn schedule(&self) -> Result<Schedule, NdError> {
        self.slotted()?.to_schedule()
    }

    /// Lower with *overflowed* probe slots — the actual Searchlight-Striped
    /// refinement: each probe's listening window is extended by one packet
    /// airtime past the slot end, so beacons sitting exactly on a slot
    /// boundary (the Figure 5 strips that the plain lowering misses) are
    /// still caught. Costs `ω` of extra listening per probe slot.
    pub fn schedule_overflowed(&self) -> Result<Schedule, NdError> {
        use nd_core::interval::{Interval, IntervalSet};
        use nd_core::schedule::{BeaconSeq, ReceptionWindows, Window};
        let sl = self.slotted()?;
        let period = sl.period();
        let mut beacon_times = Vec::new();
        let mut windows: Vec<Interval> = Vec::new();
        for (idx, &i) in sl.active.iter().enumerate() {
            let start = self.slot * i;
            let end = self.slot * (i + 1);
            beacon_times.push(start);
            beacon_times.push(end - self.omega);
            // anchors (even positions in the active list) keep the plain
            // window; probes overflow by ω on both sides
            let is_probe = idx % 2 == 1;
            if is_probe {
                let lo = start.saturating_sub(self.omega);
                let hi = (end + self.omega).min(period);
                windows.push(Interval::new(lo, start));
                windows.push(Interval::new(start + self.omega, end - self.omega));
                windows.push(Interval::new(end, hi));
            } else {
                windows.push(Interval::new(start + self.omega, end - self.omega));
            }
        }
        beacon_times.sort();
        beacon_times.dedup();
        let beacons = BeaconSeq::new(beacon_times, period, self.omega)?;
        // carve the device's own beacon airtimes back out of the overflow
        // extensions (half-duplex realizability)
        let blank: IntervalSet = IntervalSet::from_intervals(
            beacons
                .times()
                .iter()
                .map(|&t| Interval::new(t, t + self.omega)),
        );
        let merged = IntervalSet::from_intervals(windows).subtract(&blank);
        let windows = ReceptionWindows::new(
            merged
                .intervals()
                .iter()
                .map(|iv| Window::new(iv.start, iv.measure()))
                .collect(),
            period,
        )?;
        Ok(Schedule::full(beacons, windows))
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    const OMEGA: Tick = Tick(36_000);
    const SLOT: Tick = Tick::from_millis(1);

    #[test]
    fn validation() {
        assert!(Searchlight::new(10, SLOT, OMEGA).is_ok());
        assert!(Searchlight::new(1, SLOT, OMEGA).is_err());
        // stride must be coprime with ⌈t/2⌉ = 5
        assert!(Searchlight::striped(10, 5, SLOT, OMEGA).is_err());
        assert!(Searchlight::striped(10, 3, SLOT, OMEGA).is_ok());
    }

    #[test]
    fn worst_case_and_duty_cycle() {
        let s = Searchlight::new(20, SLOT, OMEGA).unwrap();
        assert_eq!(s.worst_case_slots(), 200);
        assert_eq!(s.slot_duty_cycle(), 0.1);
        let odd = Searchlight::new(21, SLOT, OMEGA).unwrap();
        assert_eq!(odd.n_probe_positions(), 11);
        assert_eq!(odd.worst_case_slots(), 231);
    }

    #[test]
    fn probe_sweeps_every_position() {
        let s = Searchlight::new(8, SLOT, OMEGA).unwrap();
        let sl = s.slotted().unwrap();
        // anchors at multiples of 8; probes hit 1..=4 exactly once each
        let mut probes: Vec<u64> = sl
            .active
            .iter()
            .filter(|&&a| a % 8 != 0)
            .map(|&a| a % 8)
            .collect();
        probes.sort();
        assert_eq!(probes, vec![1, 2, 3, 4]);
        assert_eq!(sl.active.len(), 8);
    }

    #[test]
    fn striped_probe_is_a_permutation() {
        let s = Searchlight::striped(10, 3, SLOT, OMEGA).unwrap();
        let sl = s.slotted().unwrap();
        let mut probes: Vec<u64> = sl
            .active
            .iter()
            .filter(|&&a| a % 10 != 0)
            .map(|&a| a % 10)
            .collect();
        probes.sort();
        assert_eq!(probes, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn for_duty_cycle_inverts() {
        let s = Searchlight::for_duty_cycle(0.05, SLOT, OMEGA).unwrap();
        assert_eq!(s.t, 40);
    }

    #[test]
    fn schedule_lowering() {
        let s = Searchlight::new(6, SLOT, OMEGA).unwrap();
        let sched = s.schedule().unwrap();
        // 3 periods × 2 active slots × 2 beacons
        assert_eq!(sched.beacons.as_ref().unwrap().n_beacons(), 12);
        assert_eq!(sched.windows.as_ref().unwrap().n_windows(), 6);
    }

    #[test]
    fn overflowed_probes_listen_longer() {
        let s = Searchlight::new(6, SLOT, OMEGA).unwrap();
        let plain = s.schedule().unwrap();
        let over = s.schedule_overflowed().unwrap();
        let g_plain = plain.windows.as_ref().unwrap().gamma();
        let g_over = over.windows.as_ref().unwrap().gamma();
        assert!(g_over > g_plain, "overflow adds listening time");
        // the addition is bounded by 2ω per probe slot
        let probes = s.n_probe_positions() as f64;
        let max_extra = probes * 2.0 * OMEGA.as_nanos() as f64
            / (s.worst_case_slots() as f64 * SLOT.as_nanos() as f64);
        assert!(g_over - g_plain <= max_extra * 1.01);
    }

    #[test]
    fn overflow_shrinks_the_boundary_strips() {
        use nd_core::coverage::OverlapModel;
        // measure one-way uncovered fraction via the coverage machinery:
        // the overflowed probes catch slot-boundary beacons the plain
        // schedule misses
        let uncovered = |sched: &Schedule| {
            let b = sched.beacons.as_ref().unwrap();
            let c = sched.windows.as_ref().unwrap();
            let base = OverlapModel::Start.reception_offsets(c, OMEGA);
            let mut covered = nd_core::IntervalSet::empty();
            // T_B = T_C: all distinct images within one period of beacons
            for &t in b.times() {
                covered = covered.union(&base.shift_mod(-(t.as_nanos() as i128), c.period()));
            }
            1.0 - covered.measure().as_nanos() as f64 / c.period().as_nanos() as f64
        };
        let s = Searchlight::new(6, SLOT, OMEGA).unwrap();
        let plain = uncovered(&s.schedule().unwrap());
        let over = uncovered(&s.schedule_overflowed().unwrap());
        assert!(plain > 0.0, "plain lowering has strips ({plain})");
        assert!(
            over < plain * 0.6,
            "overflow must shrink the strips: {over} vs {plain}"
        );
    }
}
