//! Mutual-exclusive one-way discovery (Appendix C of the paper).
//!
//! Both devices run the *same* schedule: one reception window of length
//! `d₁` at the start of each period `T_C = k·d₁` (k even), and `k/2`
//! beacons at the **odd multiples** of `d₁`, i.e. in a fixed temporal
//! relation ζ = d₁ to the device's own window. The correlation (Eq. 34)
//! makes the two directions complementary:
//!
//! * if the phase between the devices falls in an *even* `d₁`-block, a
//!   beacon of E lands in F's window (F discovers E);
//! * if it falls in an *odd* block, a beacon of F lands in E's window
//!   (E discovers F).
//!
//! Every phase is covered by one direction, with half the beacons per
//! device that direct symmetric discovery would need — achieving
//! Theorem C.1's bound `L = 2αω/η²`, the tightest bound for pairwise
//! deterministic ND. As a bonus, beacons (odd blocks) never overlap the
//! device's own window (block 0), so the Appendix A.5 self-blocking issue
//! vanishes entirely.

use nd_core::bounds;
use nd_core::error::NdError;
use nd_core::schedule::{BeaconSeq, ReceptionWindows, Schedule};
use nd_core::time::Tick;

use crate::optimal::OptimalProtocol;

/// Build the Appendix C one-way-optimal schedule for a per-device budget
/// η. Both devices run the returned schedule; their random phase decides
/// which direction discovers first.
pub fn correlated_oneway(omega: Tick, alpha: f64, eta: f64) -> Result<OptimalProtocol, NdError> {
    if !(0.0 < eta && eta < 1.0) {
        return Err(NdError::InfeasibleParameters(format!(
            "eta out of range: {eta}"
        )));
    }
    // balance 1/k = αω/(2d₁) = η/2  →  k = 2/η (even), d₁ = αω/η
    let mut k = (2.0 / eta).round().max(2.0) as u64;
    if k % 2 == 1 {
        k += 1;
    }
    let d1 = Tick(((alpha * omega.as_nanos() as f64) / eta).round() as u64).max(Tick(1));
    if d1 * 2 < omega + Tick(1) {
        return Err(NdError::InfeasibleParameters(format!(
            "eta {eta} too large: beacon gap 2·d₁ = {} below airtime {omega}",
            d1 * 2
        )));
    }
    let period = d1 * k;
    // beacons at (2i+1)·d₁ for i = 0..k/2
    let times: Vec<Tick> = (0..k / 2).map(|i| d1 * (2 * i + 1)).collect();
    let beacons = BeaconSeq::new(times, period, omega)?;
    // The paper's windows are *closed* intervals [t, t+d] (Section 4.1);
    // on the half-open integer grid that is one tick longer than d₁. The
    // extra tick is what joins the two coverage combs at the block
    // boundaries: F covers the closed blocks [2i·d₁, (2i+1)·d₁] and E the
    // closed blocks [(2i+1)·d₁, (2i+2)·d₁], overlapping exactly at the
    // multiples of d₁.
    let windows = ReceptionWindows::single(Tick::ZERO, d1 + Tick(1), period)?;
    let schedule = Schedule::full(beacons, windows);
    let achieved = schedule.duty_cycle();
    Ok(OptimalProtocol {
        schedule,
        // worst case: the full period (wait for the matching odd/even block
        // to come around) — equals 2αω/η² at the balanced parameters
        predicted_latency: period,
        achieved,
    })
}

/// Exact check that the quadruple of sequences achieves one-way
/// determinism: for every integer phase φ of device F against device E,
/// *either* an E-beacon start falls into an F-window *or* vice versa,
/// within one period. Returns the worst-case one-way latency over all
/// phases (None if some phase is never covered).
///
/// This is a direct executable rendering of the coverage argument in
/// Figure 11; the `appc` experiment uses it to machine-check Theorem C.1's
/// achievability.
pub fn verify_oneway_determinism(schedule: &Schedule, step: Tick) -> Option<Tick> {
    let b = schedule.beacons.as_ref()?;
    let c = schedule.windows.as_ref()?;
    let period = c.period();
    assert_eq!(b.period(), period, "construction uses T_B = T_C");
    let mut worst = Tick::ZERO;
    let mut phi = Tick::ZERO;
    while phi < period {
        // E at phase 0, F at phase φ: E's beacons at t_e, F's windows at
        // [φ + w, φ + w + d); and symmetrically.
        let mut first: Option<Tick> = None;
        // search up to two periods of global time for the first hit
        'outer: for cycle in 0..2u64 {
            for &tb in b.times() {
                let t_e = tb + period * cycle; // E beacon (global)
                let t_f = tb + phi + period * cycle; // F beacon (global)
                                                     // E beacon into F window? F windows at [φ, φ+d) + m·period
                if in_window(t_e, phi, c, period) {
                    first = Some(t_e);
                    break 'outer;
                }
                if in_window(t_f, Tick::ZERO, c, period) {
                    first = Some(t_f);
                    break 'outer;
                }
            }
        }
        match first {
            Some(t) => worst = worst.max(t),
            None => return None,
        }
        phi += step;
    }
    Some(worst)
}

/// Like [`verify_oneway_determinism`], but reports the *fraction* of
/// probed phases that achieve either-way discovery and the worst latency
/// among the covered ones — for protocols (like U-Connect or boundary-
/// afflicted slotted schedules) whose either-way coverage is high but not
/// total under the strict reception model.
pub fn oneway_coverage_fraction(schedule: &Schedule, step: Tick) -> (f64, Option<Tick>) {
    let Some(b) = schedule.beacons.as_ref() else {
        return (0.0, None);
    };
    let Some(c) = schedule.windows.as_ref() else {
        return (0.0, None);
    };
    let period = c.period();
    assert_eq!(b.period(), period, "requires T_B = T_C");
    let mut covered = 0u64;
    let mut probed = 0u64;
    let mut worst = Tick::ZERO;
    let mut phi = Tick::ZERO;
    while phi < period {
        probed += 1;
        let mut first: Option<Tick> = None;
        'outer: for cycle in 0..2u64 {
            for &tb in b.times() {
                let t_e = tb + period * cycle;
                let t_f = tb + phi + period * cycle;
                if in_window(t_e, phi, c, period) {
                    first = Some(t_e);
                    break 'outer;
                }
                if in_window(t_f, Tick::ZERO, c, period) {
                    first = Some(t_f);
                    break 'outer;
                }
            }
        }
        if let Some(t) = first {
            covered += 1;
            worst = worst.max(t);
        }
        phi += step;
    }
    (
        covered as f64 / probed as f64,
        if covered > 0 { Some(worst) } else { None },
    )
}

fn in_window(t: Tick, base_phase: Tick, c: &ReceptionWindows, period: Tick) -> bool {
    // window pattern starts at base_phase
    let rel = (t + period * 4 - base_phase).rem_euclid(period);
    c.windows().iter().any(|w| w.interval().contains(rel))
}

/// The theoretical latency bound this construction targets
/// (Theorem C.1): `2αω/η²` seconds.
pub fn oneway_target(omega: Tick, alpha: f64, eta: f64) -> f64 {
    bounds::oneway_bound(alpha, omega.as_secs_f64(), eta)
}

#[cfg(test)]
mod tests {
    use super::*;

    const OMEGA: Tick = Tick(36_000); // 36 µs

    #[test]
    fn construction_achieves_theorem_c1() {
        for eta in [0.01, 0.02, 0.05] {
            let opt = correlated_oneway(OMEGA, 1.0, eta).unwrap();
            let bound = oneway_target(OMEGA, 1.0, eta);
            let pred = opt.predicted_latency.as_secs_f64();
            assert!(
                (pred - bound).abs() / bound < 0.02,
                "eta {eta}: pred {pred} bound {bound}"
            );
            let achieved = opt.achieved.eta(1.0);
            assert!((achieved - eta).abs() / eta < 0.02, "budget respected");
        }
    }

    #[test]
    fn half_the_beacons_per_discovery() {
        // Appendix C: "the number of beacons that need to be sent per
        // device for guaranteeing one-way discovery can be halved". The
        // per-second beacon *rate* is the same (β = η/2α in both designs);
        // what halves is the latency, and with it the number of beacons
        // sent per (guaranteed) discovery.
        let oneway = correlated_oneway(OMEGA, 1.0, 0.05).unwrap();
        let direct =
            crate::optimal::symmetric(crate::optimal::OptimalParams::paper_default(), 0.05)
                .unwrap();
        let per_l = |b: &nd_core::BeaconSeq, l: Tick| {
            b.n_beacons() as f64 * l.as_secs_f64() / b.period().as_secs_f64()
        };
        let m1 = per_l(
            oneway.schedule.beacons.as_ref().unwrap(),
            oneway.predicted_latency,
        );
        let m2 = per_l(
            direct.schedule.beacons.as_ref().unwrap(),
            direct.predicted_latency,
        );
        assert!((m2 / m1 - 2.0).abs() < 0.1, "m1 {m1} m2 {m2}");
        // and the latency itself halves at equal budget
        let ratio = direct.predicted_latency.as_secs_f64() / oneway.predicted_latency.as_secs_f64();
        assert!((ratio - 2.0).abs() < 0.1, "latency ratio {ratio}");
    }

    #[test]
    fn beacons_barely_touch_own_window() {
        // the first beacon (at d₁) touches the closed window [0, d₁] in
        // exactly one tick — the paper's measure-zero boundary point; all
        // other beacons are clear of the window
        let opt = correlated_oneway(OMEGA, 1.0, 0.02).unwrap();
        let f = opt.schedule.self_blocking_fraction(Tick::ZERO);
        assert!(f < 1e-5, "self-blocking fraction {f}");
    }

    #[test]
    fn every_phase_is_covered_one_way() {
        let opt = correlated_oneway(OMEGA, 1.0, 0.05).unwrap();
        let d1 = opt.schedule.windows.as_ref().unwrap().sum_d();
        // probe at d₁/7 steps — fine enough to hit every block
        let worst = verify_oneway_determinism(&opt.schedule, d1 / 7).expect("deterministic");
        assert!(worst <= opt.predicted_latency + d1 * 2);
    }

    #[test]
    fn too_large_eta_rejected() {
        // with a small α the window d₁ = αω/η shrinks below ω/2 and the
        // beacon gap 2·d₁ cannot fit a packet
        assert!(correlated_oneway(OMEGA, 0.25, 0.9).is_err());
        assert!(correlated_oneway(OMEGA, 1.0, 1.5).is_err());
        assert!(correlated_oneway(OMEGA, 1.0, 0.0).is_err());
    }
}
