//! U-Connect (Kandhalu, Lakshmanan & Rajkumar, IPSN 2010 — reference \[4\]
//! of the paper).
//!
//! A node with prime `p` transmits a beacon at the start of every `p`-th
//! slot (and listens for the remainder of that slot), and additionally
//! listens for `(p+1)/2` consecutive slots once every `p²` slots. Two
//! nodes with (not necessarily distinct) primes discover each other within
//! `p²` slots; the slot-domain duty cycle is `(3p+1)/(2p²) ≈ 3/(2p)`.

use crate::slotted::is_prime;
use nd_core::error::NdError;
use nd_core::interval::{Interval, IntervalSet};
use nd_core::schedule::{BeaconSeq, ReceptionWindows, Schedule, Window};
use nd_core::time::Tick;

/// A U-Connect node configuration.
#[derive(Clone, Debug)]
pub struct UConnect {
    /// The prime `p`.
    pub p: u64,
    /// Slot length `I`.
    pub slot: Tick,
    /// Packet airtime ω.
    pub omega: Tick,
}

impl UConnect {
    /// Validate and build.
    pub fn new(p: u64, slot: Tick, omega: Tick) -> Result<Self, NdError> {
        if !is_prime(p) || p < 3 {
            return Err(NdError::InvalidSchedule(format!(
                "U-Connect needs an odd prime, got {p}"
            )));
        }
        if slot < omega * 2 + Tick(1) {
            return Err(NdError::InvalidSchedule(format!(
                "slot {slot} too short for beacon + listening"
            )));
        }
        Ok(UConnect { p, slot, omega })
    }

    /// The prime achieving a target slot-domain duty cycle
    /// (`3/(2p) ≈ dc`).
    pub fn for_duty_cycle(dc: f64, slot: Tick, omega: Tick) -> Result<Self, NdError> {
        if !(0.0 < dc && dc < 1.0) {
            return Err(NdError::InvalidSchedule(format!(
                "duty cycle out of range: {dc}"
            )));
        }
        let target = (1.5 / dc).round().max(3.0) as u64;
        let p = crate::slotted::next_prime(target);
        Self::new(p, slot, omega)
    }

    /// Slot-domain worst case: `p²` slots.
    pub fn worst_case_slots(&self) -> u64 {
        self.p * self.p
    }

    /// Slot-domain duty cycle `(3p+1)/(2p²)`.
    pub fn slot_duty_cycle(&self) -> f64 {
        (3 * self.p + 1) as f64 / (2 * self.p * self.p) as f64
    }

    /// Lower to an exact schedule with period `p²` slots: beacons at slot
    /// starts `0, p, 2p, …` (listening for the rest of each beacon slot),
    /// plus the long hyperslot window covering the `(p+1)/2` slots starting
    /// at slot 1 (offset so it does not double-count the beacon slot 0,
    /// keeping the published duty cycle `(3p+1)/(2p²)` exact).
    pub fn schedule(&self) -> Result<Schedule, NdError> {
        let period = self.slot * (self.p * self.p);
        let mut beacons = Vec::new();
        let mut windows: Vec<Interval> = Vec::new();
        for j in 0..self.p {
            let start = self.slot * (j * self.p);
            beacons.push(start);
            windows.push(Interval::new(start + self.omega, start + self.slot));
        }
        // hyperslot: (p+1)/2 consecutive listening slots from slot 1
        let hyper_end = self.slot * (1 + self.p.div_ceil(2));
        windows.push(Interval::new(self.slot, hyper_end));
        let beacon_seq = BeaconSeq::new(beacons, period, self.omega)?;
        // merge overlaps (the hyperslot subsumes beacon-slot windows at its
        // start) and carve out the beacon airtimes inside the hyperslot so
        // the schedule stays physically realizable on a half-duplex radio
        let beacon_blank: IntervalSet = IntervalSet::from_intervals(
            beacon_seq
                .times()
                .iter()
                .map(|&t| Interval::new(t, t + self.omega)),
        );
        let merged = IntervalSet::from_intervals(windows).subtract(&beacon_blank);
        let windows = merged
            .intervals()
            .iter()
            .map(|iv| Window::new(iv.start, iv.measure()))
            .collect();
        let windows = ReceptionWindows::new(windows, period)?;
        Ok(Schedule::full(beacon_seq, windows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OMEGA: Tick = Tick(36_000);
    const SLOT: Tick = Tick::from_millis(1);

    #[test]
    fn validation() {
        assert!(UConnect::new(7, SLOT, OMEGA).is_ok());
        assert!(UConnect::new(8, SLOT, OMEGA).is_err());
        assert!(UConnect::new(2, SLOT, OMEGA).is_err());
        assert!(UConnect::new(7, Tick(40_000), OMEGA).is_err());
    }

    #[test]
    fn duty_cycle_formula() {
        let u = UConnect::new(31, SLOT, OMEGA).unwrap();
        assert!((u.slot_duty_cycle() - 94.0 / 1922.0).abs() < 1e-12);
        assert_eq!(u.worst_case_slots(), 961);
    }

    #[test]
    fn for_duty_cycle_picks_prime() {
        let u = UConnect::for_duty_cycle(0.05, SLOT, OMEGA).unwrap();
        assert_eq!(u.p, 31); // 1.5/0.05 = 30 → next prime 31
        assert!((u.slot_duty_cycle() - 0.05).abs() < 0.01);
    }

    #[test]
    fn schedule_shape() {
        let u = UConnect::new(5, SLOT, OMEGA).unwrap();
        let sched = u.schedule().unwrap();
        let b = sched.beacons.as_ref().unwrap();
        assert_eq!(b.n_beacons(), 5);
        assert_eq!(b.period(), SLOT * 25);
        let c = sched.windows.as_ref().unwrap();
        // hyperslot covers slots 1..4, plus the 5 beacon-slot windows
        assert!(c.gamma() > 0.15, "γ ≈ 3/25 + beacon-slot tails");
        // duty cycles are consistent with the published slot-domain formula
        // (3p+1)/(2p²) up to the small ω corrections
        let dc = sched.duty_cycle();
        let eta = dc.gamma + dc.beta;
        assert!((eta - u.slot_duty_cycle()).abs() < 0.02, "eta {eta}");
    }

    #[test]
    fn hyperslot_blanks_beacons() {
        let u = UConnect::new(5, SLOT, OMEGA).unwrap();
        let sched = u.schedule().unwrap();
        let c = sched.windows.as_ref().unwrap();
        // no window may contain the beacon instant at t = 0
        assert!(!c.contains_instant(Tick::ZERO));
        assert!(c.contains_instant(OMEGA));
        // hyperslot listening spans slots 1..4 contiguously
        assert!(c.contains_instant(SLOT * 2));
        assert!(c.contains_instant(SLOT * 3 - Tick(1)));
    }
}
