//! Property tests for the simulator: agreement with a from-first-
//! principles reference computation on randomized advertiser/scanner
//! configurations, duty-cycle accounting, and drift monotonicity.

use nd_core::schedule::{BeaconSeq, ReceptionWindows, Schedule};
use nd_core::time::Tick;
use nd_sim::{Drifting, ScheduleBehavior, SimConfig, Simulator, Topology};
use proptest::prelude::*;

const OMEGA: Tick = Tick(36_000);

/// Reference: first instant (within `horizon`) at which a beacon of the
/// advertiser (period `ta`, phase `pa`) starts inside a window of the
/// scanner (window `ds` at the start of each `ts`, shifted earlier by
/// `ps`), computed by direct enumeration.
fn reference_first_hit(
    ta: Tick,
    pa: Tick,
    ts: Tick,
    ds: Tick,
    ps: Tick,
    horizon: Tick,
) -> Option<Tick> {
    let mut k = 0u64;
    loop {
        // advertiser phase pa means its schedule started at −pa: beacons at
        // k·ta − pa for k·ta ≥ pa
        let nominal = ta * k;
        k += 1;
        let Some(at) = nominal.checked_sub(pa) else {
            continue;
        };
        if at >= horizon {
            return None;
        }
        // scanner phase ps: windows at [m·ts − ps, m·ts − ps + ds)
        let pos = (at + ps).rem_euclid(ts);
        if pos < ds {
            return Some(at);
        }
    }
}

fn run_sim(ta: Tick, pa: Tick, ts: Tick, ds: Tick, ps: Tick, horizon: Tick) -> Option<Tick> {
    let mut radio = nd_core::RadioParams::paper_default();
    radio.omega = OMEGA;
    let mut cfg = SimConfig::paper_baseline(horizon, 5).with_radio(radio);
    cfg.collisions = false;
    cfg.half_duplex = false;
    let mut sim = Simulator::new(cfg, Topology::full(2));
    let adv = Schedule::tx_only(BeaconSeq::new(vec![Tick::ZERO], ta, OMEGA).unwrap());
    let scan = Schedule::rx_only(ReceptionWindows::single(Tick::ZERO, ds, ts).unwrap());
    sim.add_device(Box::new(ScheduleBehavior::with_phase(adv, pa)));
    sim.add_device(Box::new(ScheduleBehavior::with_phase(scan, ps)));
    sim.run().discovery.one_way(1, 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The simulator's first discovery equals the reference enumeration
    /// for arbitrary PI configurations and phases.
    #[test]
    fn simulator_matches_reference(
        ta_us in 100u64..5000,
        ts_us in 200u64..8000,
        ds_us in 40u64..190,
        pa_us in 0u64..5000,
        ps_us in 0u64..8000,
    ) {
        let ta = Tick::from_micros(ta_us);
        let ts = Tick::from_micros(ts_us);
        let ds = Tick::from_micros(ds_us.min(ts_us - 1));
        let pa = Tick::from_micros(pa_us % ta_us);
        let ps = Tick::from_micros(ps_us % ts_us);
        let horizon = Tick::from_millis(300);
        let expect = reference_first_hit(ta, pa, ts, ds, ps, horizon);
        let got = run_sim(ta, pa, ts, ds, ps, horizon);
        prop_assert_eq!(got, expect);
    }

    /// Measured duty cycles track the configured schedules.
    #[test]
    fn measured_duty_cycles(
        ta_us in 500u64..3000,
        gamma_pm in 20u64..300,
    ) {
        let ta = Tick::from_micros(ta_us);
        let ts = Tick::from_millis(10);
        let ds = Tick(ts.as_nanos() * gamma_pm / 1000);
        let mut radio = nd_core::RadioParams::paper_default();
        radio.omega = OMEGA;
        let cfg = SimConfig::paper_baseline(Tick::from_secs(1), 5).with_radio(radio);
        let mut sim = Simulator::new(cfg, Topology::full(2));
        let adv = Schedule::tx_only(BeaconSeq::new(vec![Tick::ZERO], ta, OMEGA).unwrap());
        let scan = Schedule::rx_only(ReceptionWindows::single(Tick::ZERO, ds, ts).unwrap());
        sim.add_device(Box::new(ScheduleBehavior::new(adv)));
        sim.add_device(Box::new(ScheduleBehavior::new(scan)));
        let report = sim.run();
        let beta = report.devices[0].beta(report.elapsed);
        let beta_cfg = OMEGA.as_nanos() as f64 / ta.as_nanos() as f64;
        prop_assert!((beta - beta_cfg).abs() / beta_cfg < 0.02, "beta {beta} vs {beta_cfg}");
        let gamma = report.devices[1].gamma(report.elapsed);
        let gamma_cfg = gamma_pm as f64 / 1000.0;
        prop_assert!((gamma - gamma_cfg).abs() / gamma_cfg < 0.03, "gamma {gamma} vs {gamma_cfg}");
    }

    /// Drift shifts discoveries but never invents receptions out of
    /// nothing at zero drift: ±ppb wrappers with ppb = 0 are transparent.
    #[test]
    fn zero_drift_transparent(
        ta_us in 100u64..2000,
        ps_us in 0u64..3000,
    ) {
        let ta = Tick::from_micros(ta_us);
        let ts = Tick::from_micros(3100);
        let ds = Tick::from_micros(150);
        let ps = Tick::from_micros(ps_us % 3100);
        let horizon = Tick::from_millis(100);
        let plain = run_sim(ta, Tick::ZERO, ts, ds, ps, horizon);

        let mut radio = nd_core::RadioParams::paper_default();
        radio.omega = OMEGA;
        let mut cfg = SimConfig::paper_baseline(horizon, 5).with_radio(radio);
        cfg.collisions = false;
        cfg.half_duplex = false;
        let mut sim = Simulator::new(cfg, Topology::full(2));
        let adv = Schedule::tx_only(BeaconSeq::new(vec![Tick::ZERO], ta, OMEGA).unwrap());
        let scan = Schedule::rx_only(ReceptionWindows::single(Tick::ZERO, ds, ts).unwrap());
        sim.add_device(Box::new(Drifting::new(ScheduleBehavior::new(adv), 0)));
        sim.add_device(Box::new(Drifting::new(
            ScheduleBehavior::with_phase(scan, ps),
            0,
        )));
        let drifted = sim.run().discovery.one_way(1, 0);
        prop_assert_eq!(plain, drifted);
    }
}
