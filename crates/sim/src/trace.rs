//! Event tracing and ASCII timeline rendering (Figure 1/3-style).

use crate::stats::LossReason;
use nd_core::time::Tick;

/// One traced simulator event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// Device started transmitting at `at` (airtime ω).
    TxStart {
        /// Transmitting device.
        dev: usize,
        /// Start instant.
        at: Tick,
    },
    /// Device opened a reception window `[at, at + duration)`.
    RxWindow {
        /// Listening device.
        dev: usize,
        /// Window start.
        at: Tick,
        /// Window length.
        duration: Tick,
    },
    /// `dev` successfully received the beacon `from` sent at `at`.
    Reception {
        /// Receiving device.
        dev: usize,
        /// Transmitting device.
        from: usize,
        /// Beacon start instant.
        at: Tick,
    },
    /// A geometrically receivable beacon was lost.
    Loss {
        /// Would-be receiver.
        dev: usize,
        /// Transmitter.
        from: usize,
        /// Beacon start instant.
        at: Tick,
        /// Why it was lost.
        reason: LossReason,
    },
}

impl TraceEvent {
    /// The instant the event refers to.
    pub fn at(&self) -> Tick {
        match *self {
            TraceEvent::TxStart { at, .. }
            | TraceEvent::RxWindow { at, .. }
            | TraceEvent::Reception { at, .. }
            | TraceEvent::Loss { at, .. } => at,
        }
    }
}

/// Render a per-device ASCII timeline of the window `[from, to)`:
/// `T` marks transmissions, `=` reception windows, `*` successful
/// receptions (overrides), `x` losses.
pub fn render_timeline(
    events: &[TraceEvent],
    n_devices: usize,
    from: Tick,
    to: Tick,
    width: usize,
) -> String {
    use std::fmt::Write as _;
    assert!(to > from && width >= 10);
    let span = (to - from).as_nanos();
    let col = |t: Tick| -> Option<usize> {
        if t < from || t >= to {
            return None;
        }
        Some((((t - from).as_nanos() as u128 * width as u128) / span as u128) as usize)
    };
    let mut rows = vec![vec![b' '; width]; n_devices];
    // windows first (lowest priority), then tx, then receptions/losses
    for ev in events {
        if let TraceEvent::RxWindow { dev, at, duration } = *ev {
            let (Some(a), b) = (
                col(at.max(from)),
                col((at + duration).min(to - Tick(1))).unwrap_or(width - 1),
            ) else {
                continue;
            };
            for c in rows[dev].iter_mut().take(b + 1).skip(a) {
                *c = b'=';
            }
        }
    }
    for ev in events {
        if let TraceEvent::TxStart { dev, at } = *ev {
            if let Some(c) = col(at) {
                rows[dev][c] = b'T';
            }
        }
    }
    for ev in events {
        match *ev {
            TraceEvent::Reception { dev, at, .. } => {
                if let Some(c) = col(at) {
                    rows[dev][c] = b'*';
                }
            }
            TraceEvent::Loss { dev, at, .. } => {
                if let Some(c) = col(at) {
                    rows[dev][c] = b'x';
                }
            }
            _ => {}
        }
    }
    let mut out = String::new();
    for (i, row) in rows.into_iter().enumerate() {
        let _ = writeln!(out, "dev{i:<2} |{}|", String::from_utf8(row).unwrap());
    }
    let _ = writeln!(out, "      {from} .. {to}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_timestamps() {
        let e = TraceEvent::TxStart {
            dev: 0,
            at: Tick(5),
        };
        assert_eq!(e.at(), Tick(5));
        let e = TraceEvent::Loss {
            dev: 1,
            from: 0,
            at: Tick(9),
            reason: LossReason::Collision,
        };
        assert_eq!(e.at(), Tick(9));
    }

    #[test]
    fn timeline_renders_marks() {
        let events = vec![
            TraceEvent::RxWindow {
                dev: 1,
                at: Tick(20),
                duration: Tick(30),
            },
            TraceEvent::TxStart {
                dev: 0,
                at: Tick(25),
            },
            TraceEvent::Reception {
                dev: 1,
                from: 0,
                at: Tick(25),
            },
        ];
        let art = render_timeline(&events, 2, Tick(0), Tick(100), 50);
        assert!(art.contains('T'));
        assert!(art.contains('='));
        assert!(art.contains('*'));
        assert!(art.lines().count() == 3);
    }

    #[test]
    fn timeline_clips_out_of_range() {
        let events = vec![TraceEvent::TxStart {
            dev: 0,
            at: Tick(500),
        }];
        let art = render_timeline(&events, 1, Tick(0), Tick(100), 20);
        assert!(!art.contains('T'));
    }
}
