//! # nd-sim — a discrete-event wireless simulator for neighbor discovery
//!
//! This crate is the experimental substrate for the reproduction of *On
//! Optimal Neighbor Discovery* (SIGCOMM 2019). It simulates `N` duty-cycled
//! radios on a single shared broadcast channel under exactly the model the
//! paper analyzes:
//!
//! * radios sleep, transmit beacons of airtime ω, or listen in reception
//!   windows ([`behavior::Op`]);
//! * a beacon is received when it meets the configured overlap model
//!   (paper §3.2 default: beacon start inside a window; Appendix A.3
//!   full-containment model available);
//! * overlapping transmissions collide (ALOHA, Eq. 12), half-duplex radios
//!   blank their own windows (Appendix A.5), and smoltcp-style fault
//!   injection can drop packets randomly;
//! * everything is deterministic given a seed.
//!
//! Protocols drive devices through the [`behavior::Behavior`] trait —
//! static periodic schedules use [`behavior::ScheduleBehavior`], reactive
//! protocols (mutual assistance, BLE advDelay) implement the trait
//! directly.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod behavior;
pub mod config;
pub mod drift;
pub mod engine;
pub mod stats;
pub mod trace;

pub use behavior::{Behavior, IdleBehavior, Op, Payload, ScheduleBehavior};
pub use config::{SimConfig, Topology};
pub use drift::Drifting;
pub use engine::Simulator;
pub use stats::{DeviceStats, DiscoveryMatrix, LossReason, PacketCounters, SimReport};
pub use trace::{render_timeline, TraceEvent};
