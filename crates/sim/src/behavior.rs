//! Device behaviours: how a protocol drives its radio over time.
//!
//! The simulator pulls [`Op`]s (transmissions and reception windows) from
//! each device's [`Behavior`]. Static protocols (everything in Section 5 of
//! the paper) are driven by a periodic [`nd_core::Schedule`] via
//! [`ScheduleBehavior`]; reactive protocols (mutual assistance \[13\],
//! BLE-style random advertising delays) implement [`Behavior`] directly and
//! may react to received packets.

use nd_core::schedule::Schedule;
use nd_core::time::Tick;
use rand::RngCore;

/// Opaque per-packet payload. Protocols define the meaning; e.g. the
/// mutual-assistance protocol encodes the sender's next listen instant in
/// nanoseconds.
pub type Payload = u64;

/// A single radio operation requested by a behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Transmit one beacon starting at `at` (airtime is the radio's ω).
    Tx {
        /// Start instant.
        at: Tick,
        /// Payload carried in the beacon.
        payload: Payload,
    },
    /// Listen during `[at, at + duration)`.
    Rx {
        /// Start instant.
        at: Tick,
        /// Window length.
        duration: Tick,
    },
}

impl Op {
    /// The instant the operation begins.
    pub fn at(&self) -> Tick {
        match *self {
            Op::Tx { at, .. } | Op::Rx { at, .. } => at,
        }
    }
}

/// A protocol instance running on one simulated device.
///
/// The engine calls [`Behavior::next_ops`] whenever it has exhausted the
/// device's buffered operations; returning an empty vector means the device
/// schedules nothing further on its own (it may still react to receptions).
pub trait Behavior {
    /// Produce the next batch of operations starting at or after `after`.
    ///
    /// Implementations must return ops sorted by start time, all `≥ after`;
    /// returning an empty batch permanently idles the proactive side.
    fn next_ops(&mut self, after: Tick, rng: &mut dyn RngCore) -> Vec<Op>;

    /// Append the next batch of operations to `out` (same contract as
    /// [`Behavior::next_ops`]). Engines on the hot path call this with a
    /// reused scratch buffer so steady-state refills allocate nothing;
    /// behaviours with their own emission machinery override it.
    fn next_ops_into(&mut self, after: Tick, rng: &mut dyn RngCore, out: &mut Vec<Op>) {
        out.extend(self.next_ops(after, rng));
    }

    /// Called when this device successfully receives a beacon; may return
    /// additional operations (e.g. the mutual-assistance reply beacon).
    /// `at` is the packet's start instant, `from` the sender's device index.
    fn on_reception(
        &mut self,
        at: Tick,
        from: usize,
        payload: Payload,
        rng: &mut dyn RngCore,
    ) -> Vec<Op> {
        let _ = (at, from, payload, rng);
        Vec::new()
    }

    /// A short human-readable protocol label for traces and reports.
    fn label(&self) -> String {
        "behavior".into()
    }
}

/// Drives a static periodic [`Schedule`] (beacon sequence + reception
/// windows), optionally phase-shifted — the bridge from the analytical
/// world of `nd-core` to the simulator.
///
/// The phase models the random initial offset between devices: a device
/// with phase φ behaves as if its schedule had started at absolute time
/// −φ.
pub struct ScheduleBehavior {
    schedule: Schedule,
    phase_b: Tick,
    phase_c: Tick,
    label: String,
    /// Ops are generated one schedule period at a time; these cursors
    /// remember how far each side has been emitted.
    emitted_until_b: Tick,
    emitted_until_c: Tick,
    /// Reused per-side emission buffers: each side emits in start order,
    /// and a batch is their two-pointer merge — no sort, no allocation
    /// once the buffers have grown to a chunk's op count.
    scratch_tx: Vec<Op>,
    scratch_rx: Vec<Op>,
}

impl ScheduleBehavior {
    /// Wrap a schedule with zero phase.
    pub fn new(schedule: Schedule) -> Self {
        Self::with_phase(schedule, Tick::ZERO)
    }

    /// Wrap a schedule whose origin is shifted `phase` ticks into the past
    /// (both the beacon and the reception sequence are shifted together,
    /// preserving any intra-device correlation — important for the
    /// Appendix C protocols).
    pub fn with_phase(schedule: Schedule, phase: Tick) -> Self {
        ScheduleBehavior {
            schedule,
            phase_b: phase,
            phase_c: phase,
            label: "schedule".into(),
            emitted_until_b: Tick::ZERO,
            emitted_until_c: Tick::ZERO,
            scratch_tx: Vec::new(),
            scratch_rx: Vec::new(),
        }
    }

    /// Set a descriptive label (protocol name) for reports.
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Access the underlying schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Emit beacon ops in `[cursor, until)` landing at/after `after`.
    fn emit_tx(&mut self, after: Tick, until: Tick, out: &mut Vec<Op>) {
        let Some(b) = &self.schedule.beacons else {
            return;
        };
        // absolute sim time t corresponds to schedule time t + phase
        let phase = self.phase_b;
        let from = self.emitted_until_b + phase;
        let to = until + phase;
        b.for_each_instant_in(from, to, |inst| {
            // map back to sim time; instants before the phase are skipped
            if let Some(at) = inst.checked_sub(phase) {
                if at >= after {
                    out.push(Op::Tx { at, payload: 0 });
                }
            }
        });
        self.emitted_until_b = until;
    }

    /// Emit listen-window ops in `[cursor, until)` landing at/after `after`.
    fn emit_rx(&mut self, after: Tick, until: Tick, out: &mut Vec<Op>) {
        let Some(c) = &self.schedule.windows else {
            return;
        };
        let phase = self.phase_c;
        let from = self.emitted_until_c + phase;
        let to = until + phase;
        c.for_each_instance_in(from, to, |iv| {
            if let Some(at) = iv.start.checked_sub(phase) {
                if at >= after {
                    out.push(Op::Rx {
                        at,
                        duration: iv.measure(),
                    });
                }
            }
        });
        self.emitted_until_c = until;
    }

    /// The emission chunk: one max(T_B, T_C) at a time.
    fn chunk(&self) -> Tick {
        let tb = self
            .schedule
            .beacons
            .as_ref()
            .map_or(Tick::ZERO, |b| b.period());
        let tc = self
            .schedule
            .windows
            .as_ref()
            .map_or(Tick::ZERO, |c| c.period());
        tb.max(tc).max(Tick(1))
    }
}

impl Behavior for ScheduleBehavior {
    fn next_ops(&mut self, after: Tick, rng: &mut dyn RngCore) -> Vec<Op> {
        let mut out = Vec::new();
        self.next_ops_into(after, rng, &mut out);
        out
    }

    fn next_ops_into(&mut self, after: Tick, _rng: &mut dyn RngCore, out: &mut Vec<Op>) {
        let chunk = self.chunk();
        let mut txs = std::mem::take(&mut self.scratch_tx);
        let mut rxs = std::mem::take(&mut self.scratch_rx);
        txs.clear();
        rxs.clear();
        // keep emitting chunks until at least one op lands at/after `after`
        // (bounded: each chunk contains at least one op of each active side)
        let mut until = self.emitted_until_b.max(self.emitted_until_c).max(after) + chunk;
        for _ in 0..3 {
            self.emit_tx(after, until, &mut txs);
            self.emit_rx(after, until, &mut rxs);
            if !txs.is_empty() || !rxs.is_empty() {
                break;
            }
            until += chunk;
        }
        // each side is already in start order; merge with ties keeping Tx
        // first (what the stable sort over [tx..., rx...] used to produce)
        let (mut t, mut r) = (0, 0);
        out.reserve(txs.len() + rxs.len());
        while t < txs.len() && r < rxs.len() {
            if txs[t].at() <= rxs[r].at() {
                out.push(txs[t]);
                t += 1;
            } else {
                out.push(rxs[r]);
                r += 1;
            }
        }
        out.extend_from_slice(&txs[t..]);
        out.extend_from_slice(&rxs[r..]);
        self.scratch_tx = txs;
        self.scratch_rx = rxs;
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

impl<B: Behavior + ?Sized> Behavior for Box<B> {
    fn next_ops(&mut self, after: Tick, rng: &mut dyn RngCore) -> Vec<Op> {
        (**self).next_ops(after, rng)
    }

    fn next_ops_into(&mut self, after: Tick, rng: &mut dyn RngCore, out: &mut Vec<Op>) {
        (**self).next_ops_into(after, rng, out)
    }

    fn on_reception(
        &mut self,
        at: Tick,
        from: usize,
        payload: Payload,
        rng: &mut dyn RngCore,
    ) -> Vec<Op> {
        (**self).on_reception(at, from, payload, rng)
    }

    fn label(&self) -> String {
        (**self).label()
    }
}

/// A behaviour that does nothing proactively (pure sink; useful for tests
/// and for modelling passive sniffers that are configured reactively).
pub struct IdleBehavior;

impl Behavior for IdleBehavior {
    fn next_ops(&mut self, _after: Tick, _rng: &mut dyn RngCore) -> Vec<Op> {
        Vec::new()
    }

    fn label(&self) -> String {
        "idle".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_core::schedule::{BeaconSeq, ReceptionWindows};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn test_schedule() -> Schedule {
        let b = BeaconSeq::uniform(
            2,
            Tick::from_micros(100),
            Tick::from_micros(4),
            Tick::from_micros(10),
        )
        .unwrap();
        let c = ReceptionWindows::single(
            Tick::from_micros(40),
            Tick::from_micros(20),
            Tick::from_micros(100),
        )
        .unwrap();
        Schedule::full(b, c)
    }

    #[test]
    fn schedule_behavior_emits_in_order() {
        let mut b = ScheduleBehavior::new(test_schedule());
        let ops = b.next_ops(Tick::ZERO, &mut rng());
        assert!(!ops.is_empty());
        for w in ops.windows(2) {
            assert!(w[0].at() <= w[1].at());
        }
        // first period: Tx at 10 µs, Rx at 40 µs, Tx at 60 µs
        assert_eq!(
            ops[0],
            Op::Tx {
                at: Tick::from_micros(10),
                payload: 0
            }
        );
        assert!(ops.contains(&Op::Rx {
            at: Tick::from_micros(40),
            duration: Tick::from_micros(20)
        }));
    }

    #[test]
    fn schedule_behavior_continues_across_calls() {
        let mut b = ScheduleBehavior::new(test_schedule());
        let first = b.next_ops(Tick::ZERO, &mut rng());
        let last_at = first.last().unwrap().at();
        let second = b.next_ops(last_at + Tick(1), &mut rng());
        assert!(!second.is_empty());
        assert!(second[0].at() > last_at);
        // no duplicates across batches
        for op in &second {
            assert!(!first.contains(op));
        }
    }

    #[test]
    fn phase_shifts_ops_left() {
        let mut zero = ScheduleBehavior::new(test_schedule());
        let mut shifted = ScheduleBehavior::with_phase(test_schedule(), Tick::from_micros(15));
        let a = zero.next_ops(Tick::ZERO, &mut rng());
        let b = shifted.next_ops(Tick::ZERO, &mut rng());
        // schedule beacons at 10/60 µs per 100 µs; with phase 15 the sim
        // sees them at 45, 95, 145, … µs
        assert!(b.contains(&Op::Tx {
            at: Tick::from_micros(45),
            payload: 0
        }));
        assert!(b.contains(&Op::Tx {
            at: Tick::from_micros(95),
            payload: 0
        }));
        // the pre-phase 10 µs beacon is dropped, not wrapped to negative time
        assert!(!b.iter().any(|op| op.at() < Tick::from_micros(25)));
        // every shifted op is an unshifted op minus the phase
        let phase = Tick::from_micros(15);
        let mut more = zero.next_ops(a.last().unwrap().at() + Tick(1), &mut rng());
        let mut all_a = a;
        all_a.append(&mut more);
        for op in &b {
            assert!(
                all_a.iter().any(|oa| oa.at() == op.at() + phase),
                "op {op:?} has no phase-shifted counterpart"
            );
        }
    }

    #[test]
    fn tx_only_schedule() {
        let b =
            BeaconSeq::uniform(1, Tick::from_micros(50), Tick::from_micros(4), Tick::ZERO).unwrap();
        let mut beh = ScheduleBehavior::new(Schedule::tx_only(b)).labeled("adv");
        let ops = beh.next_ops(Tick::ZERO, &mut rng());
        assert!(ops.iter().all(|op| matches!(op, Op::Tx { .. })));
        assert_eq!(beh.label(), "adv");
    }

    #[test]
    fn idle_behavior_is_idle() {
        let mut b = IdleBehavior;
        assert!(b.next_ops(Tick::ZERO, &mut rng()).is_empty());
        assert!(b.on_reception(Tick::ZERO, 0, 0, &mut rng()).is_empty());
    }
}
