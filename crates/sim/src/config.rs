//! Simulation configuration: radio model, channel model, fault injection.

use nd_core::coverage::OverlapModel;
use nd_core::params::RadioParams;
use nd_core::stable::StableEncode;
use nd_core::time::Tick;

/// Global simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Radio parameters shared by all devices (airtime, power ratio,
    /// switching overheads).
    pub radio: RadioParams,
    /// When does a beacon/window overlap count as a reception
    /// (paper §3.2 default: the beacon's start instant must fall inside the
    /// window).
    pub overlap: OverlapModel,
    /// Hard stop time.
    pub t_end: Tick,
    /// RNG seed (the simulator is fully deterministic given the seed).
    pub seed: u64,
    /// Half-duplex radios: a device's own transmission (expanded by the
    /// radio's turnaround times) blanks its reception windows
    /// (Appendix A.5). Disable to model the hypothetical full-duplex radio
    /// of Section 6.1.1.
    pub half_duplex: bool,
    /// ALOHA collisions: two in-range transmissions overlapping in time
    /// destroy each other at every receiver (Eq. 12). Disable for
    /// pair-analysis experiments that assume a collision-free channel.
    pub collisions: bool,
    /// Fault injection: i.i.d. probability that an otherwise successful
    /// reception is dropped (smoltcp-style `--drop-chance`).
    pub drop_probability: f64,
    /// Record a full event trace (costs memory; for debugging/rendering).
    pub trace: bool,
}

impl SimConfig {
    /// The paper's baseline model: ideal radio, `Start` overlap semantics,
    /// half-duplex, collisions on, no random faults.
    pub fn paper_baseline(t_end: Tick, seed: u64) -> Self {
        SimConfig {
            radio: RadioParams::paper_default(),
            overlap: OverlapModel::Start,
            t_end,
            seed,
            half_duplex: true,
            collisions: true,
            drop_probability: 0.0,
            trace: false,
        }
    }

    /// Builder-style radio override.
    pub fn with_radio(mut self, radio: RadioParams) -> Self {
        self.radio = radio;
        self
    }

    /// Builder-style overlap-model override.
    pub fn with_overlap(mut self, overlap: OverlapModel) -> Self {
        self.overlap = overlap;
        self
    }

    /// Builder-style fault injection.
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.drop_probability = p;
        self
    }
}

impl StableEncode for SimConfig {
    /// Encode every field that influences simulation results, so
    /// content-addressed caches (nd-sweep) can key on a `SimConfig`.
    /// `trace` is included too: it does not change results, but keeping the
    /// encoding total over the struct is cheaper than arguing about it.
    fn encode(&self, out: &mut Vec<u8>) {
        self.radio.encode(out);
        self.overlap.encode(out);
        self.t_end.encode(out);
        self.seed.encode(out);
        self.half_duplex.encode(out);
        self.collisions.encode(out);
        self.drop_probability.encode(out);
        self.trace.encode(out);
    }
}

/// Directed connectivity and per-link loss between devices.
///
/// `in_range(tx, rx)` answers whether a transmission by `tx` is audible at
/// `rx` at all; `link_loss(tx, rx)` is an extra per-link drop probability
/// (fault injection for asymmetric/marginal links).
///
/// Three representations share this interface. [`Topology::full`] is
/// symbolic — O(1) memory at any `n`, which is what makes million-node
/// cohorts constructible at all. [`Topology::clusters`] partitions the
/// cohort into channel neighborhoods (audible iff same cluster), also
/// without a matrix. Editing an individual link ([`Topology::set_link`],
/// [`Topology::set_link_loss`]) promotes to the dense per-pair matrices,
/// exactly as before.
#[derive(Clone, Debug, PartialEq)]
pub struct Topology {
    n: usize,
    repr: TopologyRepr,
}

#[derive(Clone, Debug, PartialEq)]
enum TopologyRepr {
    /// Every ordered pair audible, loss-free.
    Full,
    /// Audible iff the two devices share a cluster id; loss-free.
    Clusters(Vec<u32>),
    /// Explicit per-pair matrices (row-major `tx * n + rx`).
    Dense { audible: Vec<bool>, loss: Vec<f64> },
}

impl Topology {
    /// A fully connected, loss-free topology of `n` devices (O(1) memory).
    pub fn full(n: usize) -> Self {
        Topology {
            n,
            repr: TopologyRepr::Full,
        }
    }

    /// A clustered topology: device `i` sits in cluster `assignment[i]`,
    /// and a transmission is audible exactly when sender and receiver
    /// share a cluster. Cluster ids are arbitrary labels; only equality
    /// matters. This is the netsim channel-neighborhood model: each
    /// cluster is an independent collision domain.
    pub fn clusters(assignment: Vec<u32>) -> Self {
        Topology {
            n: assignment.len(),
            repr: TopologyRepr::Clusters(assignment),
        }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the topology is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn idx(&self, tx: usize, rx: usize) -> usize {
        assert!(tx < self.n && rx < self.n, "device index out of range");
        tx * self.n + rx
    }

    /// Materialize the dense matrices (link editing needs per-pair state).
    fn make_dense(&mut self) -> (&mut Vec<bool>, &mut Vec<f64>) {
        if !matches!(self.repr, TopologyRepr::Dense { .. }) {
            let n = self.n;
            let mut audible = vec![false; n * n];
            for tx in 0..n {
                for rx in 0..n {
                    audible[tx * n + rx] = match &self.repr {
                        TopologyRepr::Full => true,
                        TopologyRepr::Clusters(c) => c[tx] == c[rx],
                        TopologyRepr::Dense { .. } => unreachable!(),
                    };
                }
            }
            self.repr = TopologyRepr::Dense {
                audible,
                loss: vec![0.0; n * n],
            };
        }
        match &mut self.repr {
            TopologyRepr::Dense { audible, loss } => (audible, loss),
            _ => unreachable!(),
        }
    }

    /// Set whether `rx` can hear `tx` (directed). Promotes a symbolic
    /// topology to the dense representation.
    pub fn set_link(&mut self, tx: usize, rx: usize, connected: bool) {
        let i = self.idx(tx, rx);
        self.make_dense().0[i] = connected;
    }

    /// Set both directions of a link.
    pub fn set_bidi(&mut self, a: usize, b: usize, connected: bool) {
        self.set_link(a, b, connected);
        self.set_link(b, a, connected);
    }

    /// Whether a transmission by `tx` is audible at `rx`.
    pub fn in_range(&self, tx: usize, rx: usize) -> bool {
        let i = self.idx(tx, rx);
        tx != rx
            && match &self.repr {
                TopologyRepr::Full => true,
                TopologyRepr::Clusters(c) => c[tx] == c[rx],
                TopologyRepr::Dense { audible, .. } => audible[i],
            }
    }

    /// Set the per-link loss probability for packets `tx → rx`. Promotes
    /// a symbolic topology to the dense representation.
    pub fn set_link_loss(&mut self, tx: usize, rx: usize, p: f64) {
        assert!((0.0..=1.0).contains(&p));
        let i = self.idx(tx, rx);
        self.make_dense().1[i] = p;
    }

    /// The per-link loss probability for packets `tx → rx`.
    pub fn link_loss(&self, tx: usize, rx: usize) -> f64 {
        let i = self.idx(tx, rx);
        match &self.repr {
            TopologyRepr::Dense { loss, .. } => loss[i],
            _ => 0.0,
        }
    }

    /// Connected-component label per device: devices that can influence
    /// each other (in either direction, transitively) share a label;
    /// labels are the smallest member id of the component. A full
    /// topology is one component; a clustered one has one per cluster;
    /// dense topologies are scanned (weakly connected components over
    /// the audible matrix).
    pub fn cluster_assignments(&self) -> Vec<u32> {
        match &self.repr {
            TopologyRepr::Full => vec![0; self.n],
            TopologyRepr::Clusters(c) => {
                // normalize labels to the smallest member id per cluster
                let mut first: std::collections::HashMap<u32, u32> =
                    std::collections::HashMap::new();
                let mut out = Vec::with_capacity(self.n);
                for (i, &c_i) in c.iter().enumerate() {
                    let label = *first.entry(c_i).or_insert(i as u32);
                    out.push(label);
                }
                out
            }
            TopologyRepr::Dense { audible, .. } => {
                // union-find over the (undirected closure of the) matrix
                let n = self.n;
                let mut parent: Vec<u32> = (0..n as u32).collect();
                fn find(parent: &mut [u32], mut x: u32) -> u32 {
                    while parent[x as usize] != x {
                        parent[x as usize] = parent[parent[x as usize] as usize];
                        x = parent[x as usize];
                    }
                    x
                }
                for tx in 0..n {
                    for rx in 0..n {
                        if tx != rx && audible[tx * n + rx] {
                            let (a, b) =
                                (find(&mut parent, tx as u32), find(&mut parent, rx as u32));
                            if a != b {
                                let (lo, hi) = (a.min(b), a.max(b));
                                parent[hi as usize] = lo;
                            }
                        }
                    }
                }
                (0..n as u32).map(|i| find(&mut parent, i)).collect()
            }
        }
    }

    /// The device ids of each connected component, grouped in order of
    /// each component's smallest member id (so shard 0 always contains
    /// device 0). These are the independently-simulable shards: no event
    /// in one component can ever influence another.
    pub fn shards(&self) -> Vec<Vec<usize>> {
        if let TopologyRepr::Full = self.repr {
            return if self.n == 0 {
                Vec::new()
            } else {
                vec![(0..self.n).collect()]
            };
        }
        let labels = self.cluster_assignments();
        let mut order: Vec<u32> = Vec::new();
        let mut groups: std::collections::HashMap<u32, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, &l) in labels.iter().enumerate() {
            let g = groups.entry(l).or_default();
            if g.is_empty() {
                order.push(l);
            }
            g.push(i);
        }
        // labels are smallest-member ids and nodes are scanned in id
        // order, so first-appearance order == ascending smallest member
        order
            .into_iter()
            .map(|l| groups.remove(&l).expect("grouped above"))
            .collect()
    }

    /// The induced sub-topology over `members` (ids in member order).
    /// Members of one cluster/component induce a full sub-topology in the
    /// symbolic representations; dense matrices are sliced.
    pub fn subtopology(&self, members: &[usize]) -> Topology {
        let k = members.len();
        match &self.repr {
            TopologyRepr::Full => Topology::full(k),
            TopologyRepr::Clusters(c) => {
                Topology::clusters(members.iter().map(|&i| c[i]).collect())
            }
            TopologyRepr::Dense { audible, loss } => {
                let mut sub_audible = vec![false; k * k];
                let mut sub_loss = vec![0.0; k * k];
                for (a, &i) in members.iter().enumerate() {
                    for (b, &j) in members.iter().enumerate() {
                        sub_audible[a * k + b] = audible[self.idx(i, j)];
                        sub_loss[a * k + b] = loss[self.idx(i, j)];
                    }
                }
                Topology {
                    n: k,
                    repr: TopologyRepr::Dense {
                        audible: sub_audible,
                        loss: sub_loss,
                    },
                }
            }
        }
    }

    /// Number of ordered pairs `(tx, rx)` with `in_range(tx, rx)` — the
    /// denominator of cohort completion. O(1) for full, O(n) for
    /// clustered, O(n²) for dense topologies.
    pub fn ordered_in_range_pairs(&self) -> u64 {
        match &self.repr {
            TopologyRepr::Full => {
                let n = self.n as u64;
                n.saturating_mul(n.saturating_sub(1))
            }
            TopologyRepr::Clusters(c) => {
                let mut sizes: std::collections::HashMap<u32, u64> =
                    std::collections::HashMap::new();
                for &ci in c {
                    *sizes.entry(ci).or_insert(0) += 1;
                }
                sizes.values().map(|&k| k * (k - 1)).sum()
            }
            TopologyRepr::Dense { audible, .. } => {
                let n = self.n;
                let mut count = 0u64;
                for tx in 0..n {
                    for rx in 0..n {
                        if tx != rx && audible[tx * n + rx] {
                            count += 1;
                        }
                    }
                }
                count
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_defaults() {
        let cfg = SimConfig::paper_baseline(Tick::from_secs(1), 42);
        assert!(cfg.half_duplex && cfg.collisions);
        assert_eq!(cfg.drop_probability, 0.0);
        assert_eq!(cfg.overlap, OverlapModel::Start);
        assert!(cfg.radio.is_ideal());
    }

    #[test]
    fn builders() {
        let cfg = SimConfig::paper_baseline(Tick::from_secs(1), 1)
            .with_drop_probability(0.15)
            .with_overlap(OverlapModel::FullPacket)
            .with_radio(RadioParams::ble_like());
        assert_eq!(cfg.drop_probability, 0.15);
        assert_eq!(cfg.overlap, OverlapModel::FullPacket);
        assert!(!cfg.radio.is_ideal());
    }

    #[test]
    fn topology_links() {
        let mut t = Topology::full(3);
        assert!(t.in_range(0, 1));
        assert!(!t.in_range(1, 1), "never in range of self");
        t.set_link(0, 1, false);
        assert!(!t.in_range(0, 1));
        assert!(t.in_range(1, 0), "directed");
        t.set_bidi(1, 2, false);
        assert!(!t.in_range(1, 2) && !t.in_range(2, 1));
        t.set_link_loss(2, 0, 0.5);
        assert_eq!(t.link_loss(2, 0), 0.5);
        assert_eq!(t.link_loss(0, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn topology_bounds_checked() {
        let t = Topology::full(2);
        let _ = t.in_range(0, 5);
    }

    #[test]
    fn clustered_topology_partitions_audibility() {
        let t = Topology::clusters(vec![0, 1, 0, 1]);
        assert!(t.in_range(0, 2) && t.in_range(1, 3));
        assert!(!t.in_range(0, 1) && !t.in_range(2, 3));
        assert!(!t.in_range(1, 1), "never in range of self");
        assert_eq!(t.link_loss(0, 2), 0.0);
        assert_eq!(t.ordered_in_range_pairs(), 4);
    }

    #[test]
    fn shards_group_components_by_smallest_member() {
        let t = Topology::clusters(vec![7, 3, 7, 3, 9]);
        assert_eq!(t.shards(), vec![vec![0, 2], vec![1, 3], vec![4]]);
        assert_eq!(t.cluster_assignments(), vec![0, 1, 0, 1, 4]);

        let full = Topology::full(3);
        assert_eq!(full.shards(), vec![vec![0, 1, 2]]);
        assert_eq!(full.cluster_assignments(), vec![0, 0, 0]);
        assert_eq!(full.ordered_in_range_pairs(), 6);
        assert!(Topology::full(0).shards().is_empty());
    }

    #[test]
    fn subtopology_inherits_links() {
        let t = Topology::clusters(vec![0, 1, 0]);
        let sub = t.subtopology(&[0, 2]);
        assert_eq!(sub.len(), 2);
        assert!(sub.in_range(0, 1) && sub.in_range(1, 0));

        let mut dense = Topology::full(3);
        dense.set_link(0, 2, false);
        dense.set_link_loss(2, 0, 0.25);
        let sub = dense.subtopology(&[0, 2]);
        assert!(!sub.in_range(0, 1), "0→2 cut survives the slice");
        assert_eq!(sub.link_loss(1, 0), 0.25);
    }

    #[test]
    fn dense_promotion_preserves_symbolic_links() {
        // editing one link of a clustered topology must keep the rest
        let mut t = Topology::clusters(vec![0, 0, 1]);
        t.set_link(0, 2, true);
        assert!(t.in_range(0, 1), "intra-cluster link survives promotion");
        assert!(t.in_range(0, 2), "edited link applies");
        assert!(!t.in_range(2, 0), "directed edit");
        // components now merge across the bridge
        assert_eq!(t.cluster_assignments(), vec![0, 0, 0]);
        assert_eq!(t.shards().len(), 1);
        assert_eq!(t.ordered_in_range_pairs(), 3);
    }
}
