//! Simulation configuration: radio model, channel model, fault injection.

use nd_core::coverage::OverlapModel;
use nd_core::params::RadioParams;
use nd_core::stable::StableEncode;
use nd_core::time::Tick;

/// Global simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Radio parameters shared by all devices (airtime, power ratio,
    /// switching overheads).
    pub radio: RadioParams,
    /// When does a beacon/window overlap count as a reception
    /// (paper §3.2 default: the beacon's start instant must fall inside the
    /// window).
    pub overlap: OverlapModel,
    /// Hard stop time.
    pub t_end: Tick,
    /// RNG seed (the simulator is fully deterministic given the seed).
    pub seed: u64,
    /// Half-duplex radios: a device's own transmission (expanded by the
    /// radio's turnaround times) blanks its reception windows
    /// (Appendix A.5). Disable to model the hypothetical full-duplex radio
    /// of Section 6.1.1.
    pub half_duplex: bool,
    /// ALOHA collisions: two in-range transmissions overlapping in time
    /// destroy each other at every receiver (Eq. 12). Disable for
    /// pair-analysis experiments that assume a collision-free channel.
    pub collisions: bool,
    /// Fault injection: i.i.d. probability that an otherwise successful
    /// reception is dropped (smoltcp-style `--drop-chance`).
    pub drop_probability: f64,
    /// Record a full event trace (costs memory; for debugging/rendering).
    pub trace: bool,
}

impl SimConfig {
    /// The paper's baseline model: ideal radio, `Start` overlap semantics,
    /// half-duplex, collisions on, no random faults.
    pub fn paper_baseline(t_end: Tick, seed: u64) -> Self {
        SimConfig {
            radio: RadioParams::paper_default(),
            overlap: OverlapModel::Start,
            t_end,
            seed,
            half_duplex: true,
            collisions: true,
            drop_probability: 0.0,
            trace: false,
        }
    }

    /// Builder-style radio override.
    pub fn with_radio(mut self, radio: RadioParams) -> Self {
        self.radio = radio;
        self
    }

    /// Builder-style overlap-model override.
    pub fn with_overlap(mut self, overlap: OverlapModel) -> Self {
        self.overlap = overlap;
        self
    }

    /// Builder-style fault injection.
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.drop_probability = p;
        self
    }
}

impl StableEncode for SimConfig {
    /// Encode every field that influences simulation results, so
    /// content-addressed caches (nd-sweep) can key on a `SimConfig`.
    /// `trace` is included too: it does not change results, but keeping the
    /// encoding total over the struct is cheaper than arguing about it.
    fn encode(&self, out: &mut Vec<u8>) {
        self.radio.encode(out);
        self.overlap.encode(out);
        self.t_end.encode(out);
        self.seed.encode(out);
        self.half_duplex.encode(out);
        self.collisions.encode(out);
        self.drop_probability.encode(out);
        self.trace.encode(out);
    }
}

/// Directed connectivity and per-link loss between devices.
///
/// `in_range(tx, rx)` answers whether a transmission by `tx` is audible at
/// `rx` at all; `link_loss(tx, rx)` is an extra per-link drop probability
/// (fault injection for asymmetric/marginal links).
#[derive(Clone, Debug)]
pub struct Topology {
    n: usize,
    audible: Vec<bool>,
    loss: Vec<f64>,
}

impl Topology {
    /// A fully connected, loss-free topology of `n` devices.
    pub fn full(n: usize) -> Self {
        Topology {
            n,
            audible: vec![true; n * n],
            loss: vec![0.0; n * n],
        }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the topology is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn idx(&self, tx: usize, rx: usize) -> usize {
        assert!(tx < self.n && rx < self.n, "device index out of range");
        tx * self.n + rx
    }

    /// Set whether `rx` can hear `tx` (directed).
    pub fn set_link(&mut self, tx: usize, rx: usize, connected: bool) {
        let i = self.idx(tx, rx);
        self.audible[i] = connected;
    }

    /// Set both directions of a link.
    pub fn set_bidi(&mut self, a: usize, b: usize, connected: bool) {
        self.set_link(a, b, connected);
        self.set_link(b, a, connected);
    }

    /// Whether a transmission by `tx` is audible at `rx`.
    pub fn in_range(&self, tx: usize, rx: usize) -> bool {
        tx != rx && self.audible[self.idx(tx, rx)]
    }

    /// Set the per-link loss probability for packets `tx → rx`.
    pub fn set_link_loss(&mut self, tx: usize, rx: usize, p: f64) {
        assert!((0.0..=1.0).contains(&p));
        let i = self.idx(tx, rx);
        self.loss[i] = p;
    }

    /// The per-link loss probability for packets `tx → rx`.
    pub fn link_loss(&self, tx: usize, rx: usize) -> f64 {
        self.loss[self.idx(tx, rx)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_defaults() {
        let cfg = SimConfig::paper_baseline(Tick::from_secs(1), 42);
        assert!(cfg.half_duplex && cfg.collisions);
        assert_eq!(cfg.drop_probability, 0.0);
        assert_eq!(cfg.overlap, OverlapModel::Start);
        assert!(cfg.radio.is_ideal());
    }

    #[test]
    fn builders() {
        let cfg = SimConfig::paper_baseline(Tick::from_secs(1), 1)
            .with_drop_probability(0.15)
            .with_overlap(OverlapModel::FullPacket)
            .with_radio(RadioParams::ble_like());
        assert_eq!(cfg.drop_probability, 0.15);
        assert_eq!(cfg.overlap, OverlapModel::FullPacket);
        assert!(!cfg.radio.is_ideal());
    }

    #[test]
    fn topology_links() {
        let mut t = Topology::full(3);
        assert!(t.in_range(0, 1));
        assert!(!t.in_range(1, 1), "never in range of self");
        t.set_link(0, 1, false);
        assert!(!t.in_range(0, 1));
        assert!(t.in_range(1, 0), "directed");
        t.set_bidi(1, 2, false);
        assert!(!t.in_range(1, 2) && !t.in_range(2, 1));
        t.set_link_loss(2, 0, 0.5);
        assert_eq!(t.link_loss(2, 0), 0.5);
        assert_eq!(t.link_loss(0, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn topology_bounds_checked() {
        let t = Topology::full(2);
        let _ = t.in_range(0, 5);
    }
}
