//! Simulation statistics: per-device energy accounting, the discovery
//! matrix, and packet-loss counters.

use nd_core::params::RadioParams;
use nd_core::time::Tick;

/// Energy/airtime accounting for one device.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DeviceStats {
    /// Protocol label (from the behaviour).
    pub label: String,
    /// Total transmission airtime.
    pub tx_time: Tick,
    /// Total scheduled listening time.
    pub rx_time: Tick,
    /// Number of beacons sent.
    pub n_tx: u64,
    /// Number of reception windows opened.
    pub n_rx_windows: u64,
    /// Number of beacons successfully received.
    pub n_received: u64,
}

impl DeviceStats {
    /// Measured transmission duty cycle β over `elapsed` (ideal radio).
    pub fn beta(&self, elapsed: Tick) -> f64 {
        self.tx_time.as_nanos() as f64 / elapsed.as_nanos() as f64
    }

    /// Measured reception duty cycle γ over `elapsed` (ideal radio).
    pub fn gamma(&self, elapsed: Tick) -> f64 {
        self.rx_time.as_nanos() as f64 / elapsed.as_nanos() as f64
    }

    /// Measured total duty cycle η = γ + α·β (ideal radio).
    pub fn eta(&self, elapsed: Tick, alpha: f64) -> f64 {
        self.gamma(elapsed) + alpha * self.beta(elapsed)
    }

    /// Measured total duty cycle including the radio's switching overheads
    /// (Appendix A.2: each beacon costs an extra `d_oTx` of active time,
    /// each window an extra `d_oRx`).
    pub fn eta_with_overheads(&self, elapsed: Tick, radio: &RadioParams) -> f64 {
        let tx = self.tx_time + radio.do_tx * self.n_tx;
        let rx = self.rx_time + radio.do_rx * self.n_rx_windows;
        (rx.as_nanos() as f64 + radio.alpha * tx.as_nanos() as f64) / elapsed.as_nanos() as f64
    }

    /// Energy consumed in joules, given the radio's reception power draw
    /// `prx_watts` (transmission draws `α·P_rx` per Definition 3.5;
    /// switching overheads are charged at reception power, matching the
    /// Appendix A.2 "effective additional active time" convention).
    pub fn energy_joules(&self, radio: &RadioParams, prx_watts: f64) -> f64 {
        assert!(prx_watts >= 0.0);
        let tx = (self.tx_time + radio.do_tx * self.n_tx).as_secs_f64();
        let rx = (self.rx_time + radio.do_rx * self.n_rx_windows).as_secs_f64();
        prx_watts * (radio.alpha * tx + rx)
    }
}

/// First-discovery instants for every ordered pair: entry `(receiver,
/// sender)` is the start instant of the first beacon from `sender` that
/// `receiver` successfully received (the paper's Definition 3.4 latency,
/// neglecting the final packet's airtime per §3.2/A.4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiscoveryMatrix {
    n: usize,
    first: Vec<Option<Tick>>,
}

impl DiscoveryMatrix {
    /// An empty matrix for `n` devices.
    pub fn new(n: usize) -> Self {
        DiscoveryMatrix {
            n,
            first: vec![None; n * n],
        }
    }

    fn idx(&self, receiver: usize, sender: usize) -> usize {
        assert!(receiver < self.n && sender < self.n);
        receiver * self.n + sender
    }

    /// Record a reception (keeps the earliest).
    pub fn record(&mut self, receiver: usize, sender: usize, at: Tick) {
        let i = self.idx(receiver, sender);
        match self.first[i] {
            Some(prev) if prev <= at => {}
            _ => self.first[i] = Some(at),
        }
    }

    /// When `receiver` first discovered `sender`.
    pub fn one_way(&self, receiver: usize, sender: usize) -> Option<Tick> {
        self.first[self.idx(receiver, sender)]
    }

    /// When the pair `(a, b)` first achieved discovery in *either*
    /// direction (the Appendix C metric).
    pub fn either_way(&self, a: usize, b: usize) -> Option<Tick> {
        match (self.one_way(a, b), self.one_way(b, a)) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (Some(x), None) | (None, Some(x)) => Some(x),
            (None, None) => None,
        }
    }

    /// When the pair `(a, b)` completed *mutual* discovery (both
    /// directions; the Theorem 5.5/5.7 metric).
    pub fn two_way(&self, a: usize, b: usize) -> Option<Tick> {
        match (self.one_way(a, b), self.one_way(b, a)) {
            (Some(x), Some(y)) => Some(x.max(y)),
            _ => None,
        }
    }

    /// `true` once every ordered pair has discovered each other.
    pub fn complete(&self) -> bool {
        (0..self.n).all(|r| (0..self.n).all(|s| r == s || self.one_way(r, s).is_some()))
    }

    /// The time the last ordered pair completed, if all did.
    pub fn completion_time(&self) -> Option<Tick> {
        let mut worst = Tick::ZERO;
        for r in 0..self.n {
            for s in 0..self.n {
                if r != s {
                    worst = worst.max(self.one_way(r, s)?);
                }
            }
        }
        Some(worst)
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the matrix tracks no devices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// Why a geometrically receivable packet was lost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LossReason {
    /// Destroyed by an overlapping transmission (Eq. 12).
    Collision,
    /// The receiver's own transmission (plus turnarounds) blanked the
    /// window (Appendix A.5).
    SelfBlocking,
    /// Random fault injection (global drop chance or per-link loss).
    Fault,
}

/// Aggregate packet counters for one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PacketCounters {
    /// Beacons transmitted (per transmission, not per receiver).
    pub sent: u64,
    /// Successful receptions (per receiver).
    pub received: u64,
    /// Receivable packets destroyed by collisions.
    pub lost_collision: u64,
    /// Receivable packets lost to the receiver's own transmissions.
    pub lost_self_blocking: u64,
    /// Receivable packets dropped by fault injection.
    pub lost_fault: u64,
}

impl PacketCounters {
    /// Fraction of receivable packets lost to collisions.
    pub fn collision_rate(&self) -> f64 {
        let receivable =
            self.received + self.lost_collision + self.lost_self_blocking + self.lost_fault;
        if receivable == 0 {
            0.0
        } else {
            self.lost_collision as f64 / receivable as f64
        }
    }
}

/// The full result of one simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Time the simulation stopped (≤ configured `t_end`).
    pub elapsed: Tick,
    /// Per-device accounting, indexed by device id.
    pub devices: Vec<DeviceStats>,
    /// First-discovery matrix.
    pub discovery: DiscoveryMatrix,
    /// Packet counters.
    pub packets: PacketCounters,
    /// Event trace (empty unless `SimConfig::trace`).
    pub trace: Vec<crate::trace::TraceEvent>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_stats_duty_cycles() {
        let s = DeviceStats {
            label: "x".into(),
            tx_time: Tick::from_millis(10),
            rx_time: Tick::from_millis(30),
            n_tx: 100,
            n_rx_windows: 10,
            n_received: 0,
        };
        let elapsed = Tick::from_secs(1);
        assert!((s.beta(elapsed) - 0.01).abs() < 1e-12);
        assert!((s.gamma(elapsed) - 0.03).abs() < 1e-12);
        assert!((s.eta(elapsed, 2.0) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn overhead_eta_exceeds_ideal() {
        let s = DeviceStats {
            label: "x".into(),
            tx_time: Tick::from_millis(10),
            rx_time: Tick::from_millis(30),
            n_tx: 100,
            n_rx_windows: 10,
            n_received: 0,
        };
        let elapsed = Tick::from_secs(1);
        let ideal = s.eta(elapsed, 1.0);
        assert!(
            (s.eta_with_overheads(elapsed, &nd_core::RadioParams::paper_default()) - ideal).abs()
                < 1e-12
        );
        assert!(s.eta_with_overheads(elapsed, &nd_core::RadioParams::ble_like()) > ideal);
    }

    #[test]
    fn energy_accounting() {
        let s = DeviceStats {
            label: "x".into(),
            tx_time: Tick::from_millis(10),
            rx_time: Tick::from_millis(30),
            n_tx: 100,
            n_rx_windows: 10,
            n_received: 0,
        };
        // ideal radio, P_rx = 10 mW, α = 1: E = 0.01·(0.01 + 0.03) J
        let e = s.energy_joules(&nd_core::RadioParams::paper_default(), 0.01);
        assert!((e - 0.01 * 0.04).abs() < 1e-12);
        // α = 2 doubles the TX share
        let mut radio = nd_core::RadioParams::paper_default();
        radio.alpha = 2.0;
        let e2 = s.energy_joules(&radio, 0.01);
        assert!((e2 - 0.01 * 0.05).abs() < 1e-12);
        // switching overheads add energy
        let e3 = s.energy_joules(&nd_core::RadioParams::ble_like(), 0.01);
        assert!(e3 > e);
    }

    #[test]
    fn discovery_matrix_records_earliest() {
        let mut m = DiscoveryMatrix::new(2);
        assert!(!m.complete());
        m.record(0, 1, Tick(100));
        m.record(0, 1, Tick(50));
        m.record(0, 1, Tick(200));
        assert_eq!(m.one_way(0, 1), Some(Tick(50)));
        assert_eq!(m.two_way(0, 1), None);
        assert_eq!(m.either_way(0, 1), Some(Tick(50)));
        m.record(1, 0, Tick(80));
        assert_eq!(m.two_way(0, 1), Some(Tick(80)));
        assert_eq!(m.either_way(0, 1), Some(Tick(50)));
        assert!(m.complete());
        assert_eq!(m.completion_time(), Some(Tick(80)));
    }

    #[test]
    fn completion_needs_all_pairs() {
        let mut m = DiscoveryMatrix::new(3);
        for r in 0..3 {
            for s in 0..3 {
                if r != s && !(r == 2 && s == 0) {
                    m.record(r, s, Tick(10));
                }
            }
        }
        assert!(!m.complete());
        assert_eq!(m.completion_time(), None);
        m.record(2, 0, Tick(99));
        assert!(m.complete());
        assert_eq!(m.completion_time(), Some(Tick(99)));
    }

    #[test]
    fn counters_collision_rate() {
        let mut c = PacketCounters::default();
        assert_eq!(c.collision_rate(), 0.0);
        c.received = 90;
        c.lost_collision = 10;
        assert!((c.collision_rate() - 0.1).abs() < 1e-12);
    }
}
