//! Clock drift: a behaviour wrapper that runs its inner protocol on a
//! skewed local clock.
//!
//! The paper (like most of the ND literature) assumes nominal clocks; real
//! crystals are off by tens of ppm. Drift matters for two reasons:
//!
//! * it breaks the *resonances* that make badly parametrized protocols
//!   non-deterministic (e.g. `T_a = T_s` couplings, or the slot-boundary
//!   alignment slivers of Figure 5) — two drifting devices slide past any
//!   unlucky alignment at a rate of Δppm·10⁻⁶ seconds per second;
//! * it slowly invalidates announced rendezvous times (mutual-assistance
//!   protocols must widen their windows accordingly).
//!
//! The `drift` experiment quantifies the first effect.

use crate::behavior::{Behavior, Op, Payload};
use nd_core::time::Tick;
use rand::RngCore;

/// Runs the wrapped behaviour on a clock that is `ppb` parts-per-billion
/// fast (positive) or slow (negative) relative to simulation time.
///
/// Local instants `t_local` map to simulation instants
/// `t_sim = t_local · (1 + ppb·10⁻⁹)`, applied with integer arithmetic so
/// the mapping is exact and monotone.
pub struct Drifting<B> {
    inner: B,
    ppb: i64,
}

impl<B: Behavior> Drifting<B> {
    /// Wrap a behaviour with a clock skew in parts per billion
    /// (1 ppm = 1000 ppb). |ppb| must be below 10⁶ (0.1 %), far beyond any
    /// real crystal.
    pub fn new(inner: B, ppb: i64) -> Self {
        assert!(
            ppb.unsigned_abs() < 1_000_000,
            "unphysical drift: {ppb} ppb"
        );
        Drifting { inner, ppb }
    }

    /// Convenience: parts per million.
    pub fn ppm(inner: B, ppm: i64) -> Self {
        Self::new(inner, ppm * 1000)
    }

    /// local → simulation time.
    fn to_sim(&self, t: Tick) -> Tick {
        let ns = t.as_nanos() as i128;
        let skew = ns * self.ppb as i128 / 1_000_000_000;
        Tick((ns + skew) as u64)
    }

    /// simulation → local time (inverse mapping, rounded up so that
    /// `to_sim(sim_to_local(t)) >= t` never emits ops in the past).
    fn sim_to_local(&self, t: Tick) -> Tick {
        let ns = t.as_nanos() as i128;
        let denom = 1_000_000_000 + self.ppb as i128;
        let local = (ns * 1_000_000_000 + denom - 1) / denom;
        Tick(local as u64)
    }
}

impl<B: Behavior> Behavior for Drifting<B> {
    fn next_ops(&mut self, after: Tick, rng: &mut dyn RngCore) -> Vec<Op> {
        let local_after = self.sim_to_local(after);
        let mut ops = self.inner.next_ops(local_after, rng);
        for op in &mut ops {
            *op = match *op {
                Op::Tx { at, payload } => Op::Tx {
                    at: self.to_sim(at).max(after),
                    payload,
                },
                Op::Rx { at, duration } => Op::Rx {
                    at: self.to_sim(at).max(after),
                    // durations stretch with the clock too
                    duration: self.to_sim(duration).max(Tick(1)),
                },
            };
        }
        ops
    }

    fn on_reception(
        &mut self,
        at: Tick,
        from: usize,
        payload: Payload,
        rng: &mut dyn RngCore,
    ) -> Vec<Op> {
        let local_at = self.sim_to_local(at);
        let mut ops = self.inner.on_reception(local_at, from, payload, rng);
        for op in &mut ops {
            *op = match *op {
                Op::Tx { at: t, payload } => Op::Tx {
                    at: self.to_sim(t).max(at),
                    payload,
                },
                Op::Rx { at: t, duration } => Op::Rx {
                    at: self.to_sim(t).max(at),
                    duration: self.to_sim(duration).max(Tick(1)),
                },
            };
        }
        ops
    }

    fn label(&self) -> String {
        format!("{}@{:+}ppb", self.inner.label(), self.ppb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::ScheduleBehavior;
    use nd_core::schedule::{BeaconSeq, Schedule};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn advertiser() -> ScheduleBehavior {
        ScheduleBehavior::new(Schedule::tx_only(
            BeaconSeq::uniform(1, Tick::from_millis(1), Tick::from_micros(36), Tick::ZERO).unwrap(),
        ))
    }

    #[test]
    fn zero_drift_is_identity() {
        let mut plain = advertiser();
        let mut drifted = Drifting::new(advertiser(), 0);
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(1);
        assert_eq!(
            plain.next_ops(Tick::ZERO, &mut r1),
            drifted.next_ops(Tick::ZERO, &mut r2)
        );
    }

    #[test]
    fn positive_drift_stretches_sim_intervals() {
        // +100 ppm: the local second lasts 1.0001 sim-seconds, so the
        // "every 1 ms" beacons land at sim instants k·(1 ms + 100 ns)
        let mut drifted = Drifting::ppm(advertiser(), 100);
        let mut rng = StdRng::seed_from_u64(1);
        let mut ops = Vec::new();
        let mut after = Tick::ZERO;
        while ops.len() < 4 {
            let batch = drifted.next_ops(after, &mut rng);
            after = batch.last().unwrap().at() + Tick(1);
            ops.extend(batch);
        }
        // beacon k at k·(1 ms + 100 ns)
        assert_eq!(ops[1].at(), Tick(1_000_000 + 100));
        assert_eq!(ops[3].at(), Tick(3 * 1_000_000 + 300));
    }

    #[test]
    fn negative_drift_shrinks() {
        let mut drifted = Drifting::ppm(advertiser(), -100);
        let mut rng = StdRng::seed_from_u64(1);
        let mut ops = Vec::new();
        let mut after = Tick::ZERO;
        while ops.len() < 3 {
            let batch = drifted.next_ops(after, &mut rng);
            after = batch.last().unwrap().at() + Tick(1);
            ops.extend(batch);
        }
        assert_eq!(ops[1].at(), Tick(1_000_000 - 100));
    }

    #[test]
    fn mapping_roundtrip_never_goes_backwards() {
        let d = Drifting::new(advertiser(), 137);
        for t in [0u64, 1, 999, 1_000_000, 123_456_789, 10_000_000_000] {
            let t = Tick(t);
            assert!(d.to_sim(d.sim_to_local(t)) >= t, "{t}");
        }
        let d = Drifting::new(advertiser(), -137);
        for t in [0u64, 1, 999, 1_000_000, 123_456_789] {
            let t = Tick(t);
            assert!(d.to_sim(d.sim_to_local(t)) >= t, "{t}");
        }
    }

    #[test]
    fn label_carries_drift() {
        assert!(Drifting::ppm(advertiser(), 50)
            .label()
            .contains("+50000ppb"));
    }

    #[test]
    #[should_panic(expected = "unphysical")]
    fn rejects_extreme_drift() {
        let _ = Drifting::new(advertiser(), 2_000_000);
    }
}
