//! The discrete-event simulation engine.
//!
//! The engine advances a single shared channel and `N` devices through
//! time. Devices pull their radio operations from [`Behavior`]s; the
//! channel applies the paper's reception model:
//!
//! * **geometry** — a beacon is receivable iff it meets the configured
//!   [`OverlapModel`] against the receiver's (effective) listening windows,
//! * **half-duplex blanking** — the receiver's own transmissions, expanded
//!   by the radio turnaround times, blank its windows (Appendix A.5),
//! * **collisions** — any two overlapping in-range transmissions destroy
//!   each other at every receiver (ALOHA, Eq. 12),
//! * **fault injection** — i.i.d. and per-link drop probabilities.
//!
//! Everything is deterministic given the seed. Reception decisions are made
//! at packet *end* (all needed information exists by then), but discovery
//! latencies are recorded at packet *start*, matching the paper's
//! convention of neglecting the final packet's airtime (§3.2, A.4).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use nd_core::coverage::OverlapModel;
use nd_core::interval::{Interval, IntervalSet};
use nd_core::time::Tick;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::behavior::{Behavior, Op};
use crate::config::{SimConfig, Topology};
use crate::stats::{DeviceStats, DiscoveryMatrix, LossReason, PacketCounters, SimReport};
use crate::trace::TraceEvent;

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// Pull due ops from device `.0`'s buffer.
    OpStart(usize),
    /// Evaluate transmission record `.0` (packet has just ended).
    TxEnd(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    at: Tick,
    seq: u64,
    kind: EventKind,
}

struct TxRecord {
    dev: usize,
    iv: Interval,
    payload: u64,
}

struct Device {
    behavior: Box<dyn Behavior>,
    /// Upcoming ops, sorted by start time.
    buffer: VecDeque<Op>,
    /// The behaviour returned an empty batch → no more proactive ops.
    proactive_done: bool,
    /// Scheduled listening windows, in start order (pruned lazily).
    listen: Vec<Interval>,
    listen_prune: usize,
    /// Own transmissions, in start order (pruned lazily).
    own_tx: Vec<Interval>,
    own_tx_prune: usize,
    stats: DeviceStats,
}

impl Device {
    fn insert_op(&mut self, op: Op) {
        // fast path: append
        if self.buffer.back().is_none_or(|last| last.at() <= op.at()) {
            self.buffer.push_back(op);
        } else {
            let pos = self.buffer.partition_point(|o| o.at() <= op.at());
            self.buffer.insert(pos, op);
        }
    }
}

/// The discrete-event simulator.
///
/// ```
/// use nd_sim::{Simulator, SimConfig, ScheduleBehavior, Topology};
/// use nd_core::{BeaconSeq, ReceptionWindows, Schedule, Tick};
///
/// // an advertiser beaconing every 100 µs and a scanner listening 50 µs
/// // out of every 200 µs are guaranteed to meet quickly
/// let adv = Schedule::tx_only(
///     BeaconSeq::uniform(1, Tick::from_micros(100), Tick::from_micros(4), Tick::ZERO).unwrap(),
/// );
/// let scan = Schedule::rx_only(
///     ReceptionWindows::single(Tick::ZERO, Tick::from_micros(50), Tick::from_micros(200)).unwrap(),
/// );
/// let mut radio = nd_core::RadioParams::paper_default();
/// radio.omega = Tick::from_micros(4);
/// let cfg = SimConfig::paper_baseline(Tick::from_millis(10), 1).with_radio(radio);
/// let mut sim = Simulator::new(cfg, Topology::full(2));
/// sim.add_device(Box::new(ScheduleBehavior::new(adv)));
/// sim.add_device(Box::new(ScheduleBehavior::new(scan)));
/// let report = sim.run();
/// assert!(report.discovery.one_way(1, 0).is_some());
/// ```
pub struct Simulator {
    cfg: SimConfig,
    topo: Topology,
    devices: Vec<Device>,
    transmissions: Vec<TxRecord>,
    tx_prune: usize,
    events: BinaryHeap<Reverse<Event>>,
    seq: u64,
    now: Tick,
    discovery: DiscoveryMatrix,
    packets: PacketCounters,
    trace: Vec<TraceEvent>,
    rng: StdRng,
    /// Optional early-stop predicate evaluated after each reception.
    stop_when_complete: bool,
}

impl Simulator {
    /// Create a simulator; add devices with [`Simulator::add_device`], then
    /// call [`Simulator::run`].
    pub fn new(cfg: SimConfig, topo: Topology) -> Self {
        let n = topo.len();
        let rng = StdRng::seed_from_u64(cfg.seed);
        Simulator {
            cfg,
            topo,
            devices: Vec::with_capacity(n),
            transmissions: Vec::new(),
            tx_prune: 0,
            events: BinaryHeap::new(),
            seq: 0,
            now: Tick::ZERO,
            discovery: DiscoveryMatrix::new(n),
            packets: PacketCounters::default(),
            trace: Vec::new(),
            rng,
            stop_when_complete: false,
        }
    }

    /// Register the next device (ids are assigned in call order and must
    /// match the topology size by the time `run` is called).
    pub fn add_device(&mut self, behavior: Box<dyn Behavior>) -> usize {
        let id = self.devices.len();
        let label = behavior.label();
        self.devices.push(Device {
            behavior,
            buffer: VecDeque::new(),
            proactive_done: false,
            listen: Vec::new(),
            listen_prune: 0,
            own_tx: Vec::new(),
            own_tx_prune: 0,
            stats: DeviceStats {
                label,
                ..DeviceStats::default()
            },
        });
        id
    }

    /// Stop as soon as every ordered pair has discovered each other.
    pub fn stop_when_all_discovered(&mut self, yes: bool) {
        self.stop_when_complete = yes;
    }

    fn push_event(&mut self, at: Tick, kind: EventKind) {
        self.events.push(Reverse(Event {
            at,
            seq: self.seq,
            kind,
        }));
        self.seq += 1;
    }

    /// Refill a device's buffer from its behaviour if empty; schedule an
    /// OpStart event for the buffer front.
    fn arm_device(&mut self, dev: usize, after: Tick) {
        if self.devices[dev].buffer.is_empty() && !self.devices[dev].proactive_done {
            let ops = self.devices[dev].behavior.next_ops(after, &mut self.rng);
            if ops.is_empty() {
                self.devices[dev].proactive_done = true;
            } else {
                for op in ops {
                    debug_assert!(op.at() >= after, "behavior emitted an op in the past");
                    let op = clamp_op(op, after);
                    self.devices[dev].insert_op(op);
                }
            }
        }
        if let Some(front) = self.devices[dev].buffer.front() {
            let at = front.at();
            self.push_event(at, EventKind::OpStart(dev));
        }
    }

    /// Run to completion and return the report.
    pub fn run(mut self) -> SimReport {
        assert_eq!(
            self.devices.len(),
            self.topo.len(),
            "device count must match topology size"
        );
        for dev in 0..self.devices.len() {
            self.arm_device(dev, Tick::ZERO);
        }
        while let Some(Reverse(ev)) = self.events.pop() {
            if ev.at > self.cfg.t_end {
                break;
            }
            self.now = ev.at;
            match ev.kind {
                EventKind::OpStart(dev) => self.handle_op_start(dev),
                EventKind::TxEnd(idx) => self.handle_tx_end(idx),
            }
            if self.stop_when_complete && self.discovery.complete() {
                break;
            }
        }
        let elapsed = self.now.min(self.cfg.t_end);
        SimReport {
            elapsed,
            devices: self.devices.into_iter().map(|d| d.stats).collect(),
            discovery: self.discovery,
            packets: self.packets,
            trace: self.trace,
        }
    }

    fn handle_op_start(&mut self, dev: usize) {
        let omega = self.cfg.radio.omega;
        while let Some(op) = self.devices[dev].buffer.front().copied() {
            if op.at() > self.now {
                break;
            }
            self.devices[dev].buffer.pop_front();
            match op {
                Op::Tx { at, payload } => {
                    let iv = Interval::new(at, at + omega);
                    self.devices[dev].own_tx.push(iv);
                    self.devices[dev].stats.n_tx += 1;
                    self.devices[dev].stats.tx_time += omega;
                    self.packets.sent += 1;
                    let idx = self.transmissions.len();
                    self.transmissions.push(TxRecord { dev, iv, payload });
                    self.push_event(iv.end, EventKind::TxEnd(idx));
                    if self.cfg.trace {
                        self.trace.push(TraceEvent::TxStart { dev, at });
                    }
                }
                Op::Rx { at, duration } => {
                    let iv = Interval::new(at, at + duration);
                    self.devices[dev].listen.push(iv);
                    self.devices[dev].stats.n_rx_windows += 1;
                    self.devices[dev].stats.rx_time += duration;
                    if self.cfg.trace {
                        self.trace.push(TraceEvent::RxWindow { dev, at, duration });
                    }
                }
            }
        }
        self.arm_device(dev, self.now);
    }

    fn handle_tx_end(&mut self, idx: usize) {
        let (sender, iv, payload) = {
            let tx = &self.transmissions[idx];
            (tx.dev, tx.iv, tx.payload)
        };
        self.prune(iv.start);

        // find transmissions overlapping this packet (for collisions)
        let colliders: Vec<usize> = self.overlapping_tx(idx, iv);

        let mut reactive: Vec<(usize, Vec<Op>)> = Vec::new();
        for rx in 0..self.devices.len() {
            if !self.topo.in_range(sender, rx) {
                continue;
            }
            // geometry against the scheduled windows
            let scheduled = self.listening_cover(rx, iv);
            if !self.geometry_ok(&scheduled, iv) {
                continue; // not receivable at all — not counted as a loss
            }
            // half-duplex blanking (Appendix A.5)
            if self.cfg.half_duplex {
                let effective = self.blanked_cover(rx, &scheduled);
                if !self.geometry_ok(&effective, iv) {
                    self.packets.lost_self_blocking += 1;
                    if self.cfg.trace {
                        self.trace.push(TraceEvent::Loss {
                            dev: rx,
                            from: sender,
                            at: iv.start,
                            reason: LossReason::SelfBlocking,
                        });
                    }
                    continue;
                }
            }
            // collisions: any other in-range transmission overlapping the
            // packet destroys it at this receiver
            if self.cfg.collisions {
                let collided = colliders.iter().any(|&q| {
                    let tx = &self.transmissions[q];
                    tx.dev != rx && self.topo.in_range(tx.dev, rx)
                });
                if collided {
                    self.packets.lost_collision += 1;
                    if self.cfg.trace {
                        self.trace.push(TraceEvent::Loss {
                            dev: rx,
                            from: sender,
                            at: iv.start,
                            reason: LossReason::Collision,
                        });
                    }
                    continue;
                }
            }
            // fault injection
            let p_drop = self.cfg.drop_probability + self.topo.link_loss(sender, rx);
            if p_drop > 0.0 && self.rng.gen::<f64>() < p_drop {
                self.packets.lost_fault += 1;
                if self.cfg.trace {
                    self.trace.push(TraceEvent::Loss {
                        dev: rx,
                        from: sender,
                        at: iv.start,
                        reason: LossReason::Fault,
                    });
                }
                continue;
            }
            // success
            self.packets.received += 1;
            self.devices[rx].stats.n_received += 1;
            self.discovery.record(rx, sender, iv.start);
            if self.cfg.trace {
                self.trace.push(TraceEvent::Reception {
                    dev: rx,
                    from: sender,
                    at: iv.start,
                });
            }
            let ops =
                self.devices[rx]
                    .behavior
                    .on_reception(iv.start, sender, payload, &mut self.rng);
            if !ops.is_empty() {
                reactive.push((rx, ops));
            }
        }
        for (rx, ops) in reactive {
            for op in ops {
                let op = clamp_op(op, self.now);
                self.devices[rx].insert_op(op);
            }
            // re-arm: the new front may be earlier than any pending event
            if let Some(front) = self.devices[rx].buffer.front() {
                let at = front.at();
                self.push_event(at, EventKind::OpStart(rx));
            }
        }
    }

    /// The receiver's scheduled listening intersected with the packet's
    /// interval.
    fn listening_cover(&self, rx: usize, packet: Interval) -> IntervalSet {
        let d = &self.devices[rx];
        let mut parts = Vec::new();
        for w in d.listen.iter().skip(d.listen_prune) {
            if w.start >= packet.end {
                break;
            }
            let cut = w.intersect(&packet);
            if !cut.is_empty() {
                parts.push(cut);
            }
        }
        IntervalSet::from_intervals(parts)
    }

    /// Subtract the receiver's own transmissions (expanded by turnaround
    /// times) from a listening cover.
    fn blanked_cover(&self, rx: usize, cover: &IntervalSet) -> IntervalSet {
        let d = &self.devices[rx];
        let radio = &self.cfg.radio;
        let mut blanked = Vec::new();
        for tx in d.own_tx.iter().skip(d.own_tx_prune) {
            blanked.push(Interval::new(
                tx.start.saturating_sub(radio.do_rx_tx),
                tx.end + radio.do_tx_rx,
            ));
        }
        cover.subtract(&IntervalSet::from_intervals(blanked))
    }

    /// Apply the configured overlap model to a listening cover.
    fn geometry_ok(&self, cover: &IntervalSet, packet: Interval) -> bool {
        match self.cfg.overlap {
            OverlapModel::Start => cover.contains(packet.start),
            OverlapModel::AnyOverlap => !cover.is_empty(),
            OverlapModel::FullPacket => {
                cover.intervals().len() == 1 && {
                    let iv = cover.intervals()[0];
                    iv.start <= packet.start && iv.end >= packet.end
                }
            }
        }
    }

    /// Transmissions (other than `idx`) overlapping `iv` in time.
    fn overlapping_tx(&self, idx: usize, iv: Interval) -> Vec<usize> {
        let mut out = Vec::new();
        // records are in start order; scan the recent tail
        for (q, tx) in self.transmissions.iter().enumerate().skip(self.tx_prune) {
            if tx.iv.start >= iv.end {
                break;
            }
            if q != idx && tx.iv.overlaps(&iv) {
                out.push(q);
            }
        }
        out
    }

    /// Advance prune pointers: anything ending well before `t` can no
    /// longer affect any packet decision (packets are ω long and turnaround
    /// expansion is bounded by the radio parameters).
    fn prune(&mut self, t: Tick) {
        let guard =
            self.cfg.radio.omega + self.cfg.radio.do_rx_tx + self.cfg.radio.do_tx_rx + Tick(1);
        let horizon = t.saturating_sub(guard * 4);
        while self.tx_prune < self.transmissions.len()
            && self.transmissions[self.tx_prune].iv.end < horizon
        {
            self.tx_prune += 1;
        }
        for d in &mut self.devices {
            while d.listen_prune < d.listen.len() && d.listen[d.listen_prune].end < horizon {
                d.listen_prune += 1;
            }
            while d.own_tx_prune < d.own_tx.len() && d.own_tx[d.own_tx_prune].end < horizon {
                d.own_tx_prune += 1;
            }
        }
    }
}

fn clamp_op(op: Op, at_least: Tick) -> Op {
    match op {
        Op::Tx { at, payload } => Op::Tx {
            at: at.max(at_least),
            payload,
        },
        Op::Rx { at, duration } => Op::Rx {
            at: at.max(at_least),
            duration,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::ScheduleBehavior;
    use nd_core::params::RadioParams;
    use nd_core::schedule::{BeaconSeq, ReceptionWindows, Schedule};

    fn radio(omega_us: u64) -> RadioParams {
        RadioParams::ideal(Tick::from_micros(omega_us), 1.0)
    }

    fn adv(period_us: u64, phase_us: u64) -> Schedule {
        Schedule::tx_only(
            BeaconSeq::uniform(
                1,
                Tick::from_micros(period_us),
                Tick::from_micros(4),
                Tick::from_micros(phase_us),
            )
            .unwrap(),
        )
    }

    fn scan(window_us: u64, period_us: u64) -> Schedule {
        Schedule::rx_only(
            ReceptionWindows::single(
                Tick::ZERO,
                Tick::from_micros(window_us),
                Tick::from_micros(period_us),
            )
            .unwrap(),
        )
    }

    fn base_cfg(ms: u64) -> SimConfig {
        SimConfig::paper_baseline(Tick::from_millis(ms), 42).with_radio(radio(4))
    }

    #[test]
    fn advertiser_meets_scanner() {
        let mut sim = Simulator::new(base_cfg(10), Topology::full(2));
        sim.add_device(Box::new(ScheduleBehavior::new(adv(100, 10))));
        sim.add_device(Box::new(ScheduleBehavior::new(scan(50, 200))));
        let report = sim.run();
        // beacon at 10 µs lands inside the scanner's [0,50) window
        assert_eq!(report.discovery.one_way(1, 0), Some(Tick::from_micros(10)));
        // the scanner never transmits, so the advertiser never discovers it
        assert_eq!(report.discovery.one_way(0, 1), None);
        assert!(report.packets.sent >= 100);
        assert!(report.devices[1].stats_label_is("schedule"));
    }

    impl DeviceStats {
        fn stats_label_is(&self, l: &str) -> bool {
            self.label == l
        }
    }

    #[test]
    fn out_of_range_devices_never_discover() {
        let mut topo = Topology::full(2);
        topo.set_bidi(0, 1, false);
        let mut sim = Simulator::new(base_cfg(10), topo);
        sim.add_device(Box::new(ScheduleBehavior::new(adv(100, 10))));
        sim.add_device(Box::new(ScheduleBehavior::new(scan(50, 200))));
        let report = sim.run();
        assert_eq!(report.discovery.one_way(1, 0), None);
    }

    #[test]
    fn beacon_outside_window_not_received() {
        let mut sim = Simulator::new(base_cfg(1), Topology::full(2));
        // beacon at 60 µs of every 100; window [0,50) of every 100:
        // offsets stay fixed → never discovered
        sim.add_device(Box::new(ScheduleBehavior::new(adv(100, 60))));
        sim.add_device(Box::new(ScheduleBehavior::new(scan(50, 100))));
        let report = sim.run();
        assert_eq!(report.discovery.one_way(1, 0), None);
    }

    #[test]
    fn collision_destroys_both_packets() {
        // two advertisers beacon at the same instants; the scanner hears
        // nothing with collisions on
        let mut sim = Simulator::new(base_cfg(1), Topology::full(3));
        sim.add_device(Box::new(ScheduleBehavior::new(adv(100, 10))));
        sim.add_device(Box::new(ScheduleBehavior::new(adv(100, 10))));
        sim.add_device(Box::new(ScheduleBehavior::new(scan(100, 100))));
        let report = sim.run();
        assert_eq!(report.discovery.one_way(2, 0), None);
        assert_eq!(report.discovery.one_way(2, 1), None);
        assert!(report.packets.lost_collision > 0);
        assert_eq!(report.packets.received, 0);
    }

    #[test]
    fn collisions_can_be_disabled() {
        let mut cfg = base_cfg(1);
        cfg.collisions = false;
        let mut sim = Simulator::new(cfg, Topology::full(3));
        sim.add_device(Box::new(ScheduleBehavior::new(adv(100, 10))));
        sim.add_device(Box::new(ScheduleBehavior::new(adv(100, 10))));
        sim.add_device(Box::new(ScheduleBehavior::new(scan(100, 100))));
        let report = sim.run();
        assert!(report.discovery.one_way(2, 0).is_some());
        assert!(report.discovery.one_way(2, 1).is_some());
    }

    #[test]
    fn partial_overlap_collision_only_when_tx_overlap() {
        // beacons at 10 and 16 µs with ω = 4: no overlap → both received
        let mut sim = Simulator::new(base_cfg(1), Topology::full(3));
        sim.add_device(Box::new(ScheduleBehavior::new(adv(100, 10))));
        sim.add_device(Box::new(ScheduleBehavior::new(adv(100, 16))));
        sim.add_device(Box::new(ScheduleBehavior::new(scan(100, 100))));
        let report = sim.run();
        assert!(report.discovery.one_way(2, 0).is_some());
        assert!(report.discovery.one_way(2, 1).is_some());
        assert_eq!(report.packets.lost_collision, 0);
    }

    #[test]
    fn half_duplex_blanks_own_window() {
        // receiver transmits at the same instant the sender's beacon
        // arrives → blanked (ideal radio: blanked exactly for ω)
        let mut sim = Simulator::new(base_cfg(1), Topology::full(2));
        sim.add_device(Box::new(ScheduleBehavior::new(adv(100, 10))));
        let rx_sched = Schedule::full(
            BeaconSeq::uniform(
                1,
                Tick::from_micros(100),
                Tick::from_micros(4),
                Tick::from_micros(10),
            )
            .unwrap(),
            ReceptionWindows::single(Tick::ZERO, Tick::from_micros(50), Tick::from_micros(100))
                .unwrap(),
        );
        sim.add_device(Box::new(ScheduleBehavior::new(rx_sched)));
        let report = sim.run();
        // every beacon of dev 0 coincides with dev 1's own beacon: with
        // collisions on it is also a collision at... no: dev1's tx doesn't
        // reach itself as a collision — it blanks. dev0 likewise transmits
        // at 10 so cannot hear dev1 either.
        assert_eq!(report.discovery.one_way(1, 0), None);
        assert!(
            report.packets.lost_self_blocking > 0,
            "blanking must be attributed"
        );
    }

    #[test]
    fn fault_injection_drops_packets() {
        let cfg = base_cfg(10).with_drop_probability(1.0);
        let mut sim = Simulator::new(cfg, Topology::full(2));
        sim.add_device(Box::new(ScheduleBehavior::new(adv(100, 10))));
        sim.add_device(Box::new(ScheduleBehavior::new(scan(50, 100))));
        let report = sim.run();
        assert_eq!(report.discovery.one_way(1, 0), None);
        assert!(report.packets.lost_fault > 0);
        assert_eq!(report.packets.received, 0);
    }

    #[test]
    fn per_link_loss_is_directional() {
        let mut topo = Topology::full(2);
        topo.set_link_loss(0, 1, 1.0);
        let mut sim = Simulator::new(base_cfg(10), topo);
        sim.add_device(Box::new(ScheduleBehavior::new(adv(100, 10))));
        sim.add_device(Box::new(ScheduleBehavior::new(scan(50, 100))));
        let report = sim.run();
        assert_eq!(report.discovery.one_way(1, 0), None);
    }

    #[test]
    fn stats_measure_duty_cycles() {
        let mut sim = Simulator::new(base_cfg(100), Topology::full(2));
        sim.add_device(Box::new(ScheduleBehavior::new(adv(1000, 0))));
        sim.add_device(Box::new(ScheduleBehavior::new(scan(100, 1000))));
        let report = sim.run();
        let elapsed = report.elapsed;
        // advertiser: β = 4/1000
        let beta = report.devices[0].beta(elapsed);
        assert!((beta - 0.004).abs() < 5e-4, "beta {beta}");
        // scanner: γ = 100/1000
        let gamma = report.devices[1].gamma(elapsed);
        assert!((gamma - 0.1).abs() < 5e-3, "gamma {gamma}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let cfg = SimConfig::paper_baseline(Tick::from_millis(50), seed)
                .with_radio(radio(4))
                .with_drop_probability(0.3);
            let mut sim = Simulator::new(cfg, Topology::full(2));
            sim.add_device(Box::new(ScheduleBehavior::new(adv(97, 13))));
            sim.add_device(Box::new(ScheduleBehavior::new(scan(53, 211))));
            let r = sim.run();
            (r.discovery.one_way(1, 0), r.packets.received)
        };
        assert_eq!(run(7), run(7));
        // different seeds usually differ in fault rolls
        let (a, b) = (run(1), run(2));
        let _ = (a, b); // may coincide; determinism is the property under test
    }

    #[test]
    fn early_stop_on_completion() {
        let mut sim = Simulator::new(base_cfg(1000), Topology::full(2));
        sim.add_device(Box::new(ScheduleBehavior::new(Schedule::full(
            BeaconSeq::uniform(1, Tick::from_micros(100), Tick::from_micros(4), Tick::ZERO)
                .unwrap(),
            ReceptionWindows::single(
                Tick::from_micros(50),
                Tick::from_micros(40),
                Tick::from_micros(100),
            )
            .unwrap(),
        ))));
        sim.add_device(Box::new(ScheduleBehavior::new(Schedule::full(
            BeaconSeq::uniform(
                1,
                Tick::from_micros(100),
                Tick::from_micros(4),
                Tick::from_micros(60),
            )
            .unwrap(),
            ReceptionWindows::single(Tick::ZERO, Tick::from_micros(40), Tick::from_micros(100))
                .unwrap(),
        ))));
        sim.stop_when_all_discovered(true);
        let report = sim.run();
        assert!(report.discovery.complete());
        assert!(report.elapsed < Tick::from_millis(2), "stopped early");
    }

    #[test]
    fn trace_records_events() {
        let mut cfg = base_cfg(1);
        cfg.trace = true;
        let mut sim = Simulator::new(cfg, Topology::full(2));
        sim.add_device(Box::new(ScheduleBehavior::new(adv(100, 10))));
        sim.add_device(Box::new(ScheduleBehavior::new(scan(50, 100))));
        let report = sim.run();
        assert!(report
            .trace
            .iter()
            .any(|e| matches!(e, TraceEvent::TxStart { .. })));
        assert!(report
            .trace
            .iter()
            .any(|e| matches!(e, TraceEvent::Reception { .. })));
    }

    #[test]
    fn full_packet_model_requires_containment() {
        // window [0, 6) µs, packet of 4 µs starting at 3 µs: overlaps but
        // doesn't fit
        let cfg = base_cfg(1).with_overlap(OverlapModel::FullPacket);
        let mut sim = Simulator::new(cfg, Topology::full(2));
        sim.add_device(Box::new(ScheduleBehavior::new(adv(100, 3))));
        sim.add_device(Box::new(ScheduleBehavior::new(scan(6, 100))));
        let report = sim.run();
        assert_eq!(report.discovery.one_way(1, 0), None);
        // under the Start model the same setup succeeds
        let cfg = base_cfg(1);
        let mut sim = Simulator::new(cfg, Topology::full(2));
        sim.add_device(Box::new(ScheduleBehavior::new(adv(100, 3))));
        sim.add_device(Box::new(ScheduleBehavior::new(scan(6, 100))));
        let report = sim.run();
        assert_eq!(report.discovery.one_way(1, 0), Some(Tick::from_micros(3)));
    }
}
