//! End-to-end: trace a real single-thread sweep in-process, then drive
//! the `nd-trace` binary over the produced JSONL — the same contract
//! the CI trace-analyze-smoke job exercises.

use nd_sweep::{run_sweep, ScenarioSpec, SweepOptions};
use nd_trace::{build_forest, critical_path, parse_trace};
use std::path::PathBuf;
use std::process::Command;

const SPEC: &str = r#"
name = "trace-it"
backend = "montecarlo"
metric = "two-way"

[grid]
protocol = ["optimal-slotless"]
eta = [0.05, 0.10]
drop_probability = [0.0, 0.2]

[sim]
trials = 8
seed = 7
horizon_predicted_x = 4.0
collisions = false
half_duplex = false
"#;

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nd-trace-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn nd_trace(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_nd-trace"))
        .args(args)
        .output()
        .expect("spawn nd-trace");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Rewrite a trace with every timestamp and duration scaled ×2 — a
/// uniform slowdown that keeps the span nesting valid.
fn slow_down(trace: &str, out: &std::path::Path) {
    let spans = parse_trace(trace).unwrap();
    let mut text = String::new();
    for s in spans {
        text.push_str(&format!(
            "{{\"t\": \"span\", \"name\": \"{}\", \"tid\": {}, \"start_ns\": {}, \"dur_ns\": {}, \"depth\": {}}}\n",
            s.name,
            s.tid,
            s.start_ns * 2,
            s.dur_ns * 2,
            s.depth
        ));
    }
    std::fs::write(out, text).unwrap();
}

#[test]
fn traced_sweep_end_to_end() {
    let dir = temp_dir();
    let trace_path = dir.join("sweep.jsonl");

    // One single-thread, uncached sweep with the global sink attached.
    nd_obs::trace::init_file(&trace_path).unwrap();
    let spec = ScenarioSpec::from_toml_str(SPEC).unwrap();
    let opts = SweepOptions {
        threads: Some(1),
        use_cache: false,
        cache_dir: None,
    };
    run_sweep(&spec, &opts).unwrap();
    nd_obs::trace::shutdown();

    let text = std::fs::read_to_string(&trace_path).unwrap();
    let spans = parse_trace(&text).unwrap();
    assert!(
        spans.iter().any(|s| s.name == "sweep.run"),
        "trace must contain the sweep root"
    );

    // Library-level acceptance: ≥95% of the wall-clock is attributed to
    // top-level spans on a single-thread run.
    let cp = critical_path(&build_forest(spans));
    assert!(
        cp.attributed_frac >= 0.95,
        "attributed only {:.1}%",
        cp.attributed_frac * 100.0
    );

    // CLI: critical-path with the same gate.
    let trace = trace_path.to_str().unwrap();
    let (ok, stdout, stderr) = nd_trace(&["critical-path", trace, "--min-attributed", "0.95"]);
    assert!(ok, "gate should pass: {stderr}");
    assert!(stdout.contains("critical path:"), "got: {stdout}");
    assert!(stdout.contains("sweep.run"));
    assert!(stdout.contains("attribution gate passed"));

    // CLI: flame output is well-formed folded stacks.
    let (ok, folded, _) = nd_trace(&["flame", trace]);
    assert!(ok);
    assert!(folded.lines().any(|l| l.starts_with("sweep.run")));
    for line in folded.lines() {
        let (path, count) = line.rsplit_once(' ').expect("`stack count` shape");
        assert!(!path.is_empty());
        count.parse::<u64>().expect("count is an integer");
    }

    // CLI: chrome export parses as JSON with one event per span.
    let chrome_path = dir.join("chrome.json");
    let (ok, _, stderr) = nd_trace(&["chrome", trace, "--out", chrome_path.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    let chrome = std::fs::read_to_string(&chrome_path).unwrap();
    let v = nd_sweep::value::parse_json(&chrome).unwrap();
    let events = v.as_table().unwrap()["traceEvents"].as_array().unwrap();
    assert_eq!(events.len(), parse_trace(&text).unwrap().len());

    // CLI: identical traces pass the regression gate …
    let (ok, stdout, stderr) = nd_trace(&["diff", trace, trace, "--fail-on-regress", "50"]);
    assert!(ok, "identical runs must pass: {stderr}");
    assert!(stdout.contains("regression gate passed"), "got: {stdout}");

    // … and a uniform 2× slowdown fails it.
    let slow_path = dir.join("slow.jsonl");
    slow_down(&text, &slow_path);
    let (ok, _, stderr) = nd_trace(&[
        "diff",
        trace,
        slow_path.to_str().unwrap(),
        "--fail-on-regress",
        "50",
    ]);
    assert!(!ok, "2× slowdown must trip the gate");
    assert!(stderr.contains("regression gate FAILED"), "got: {stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_rejects_bad_usage() {
    let (ok, _, stderr) = nd_trace(&["critical-path"]);
    assert!(!ok);
    assert!(stderr.contains("nd-trace:"));

    let (ok, _, stderr) = nd_trace(&["critical-path", "/nonexistent/trace.jsonl"]);
    assert!(!ok);
    assert!(stderr.contains("nonexistent"));

    let (ok, _, stderr) = nd_trace(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));

    let (ok, stdout, _) = nd_trace(&["--help"]);
    assert!(ok);
    assert!(stdout.contains("critical-path") && stdout.contains("--fail-on-regress"));
}
