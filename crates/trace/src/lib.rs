//! `nd-trace` — the read side of nd-obs tracing: span-JSONL analytics.
//!
//! nd-obs writes one JSON line per closed span (`ND_TRACE=path` or the
//! CLIs' `--trace-out`). This crate parses those lines back into
//! per-thread span trees ([`build_forest`]) and answers the questions
//! the write side cannot: where did the wall-clock go
//! ([`critical_path`]), what does the whole run look like as a
//! flamegraph ([`folded_stacks`]) or in a trace viewer
//! ([`chrome_trace`]), and did anything regress between two runs
//! ([`diff`] — the `nd-trace diff --fail-on-regress` CI gate).
//!
//! Parsing is tolerant in both directions: unknown record types and
//! unknown span fields are skipped, so older and newer traces both
//! load. Tree building uses interval containment (not the recorded
//! `depth`), so a trace filtered to one request id still forms valid
//! trees even though the surviving spans' depths are sparse.
//!
//! Self-time — the quantity flamegraphs and the critical path report —
//! is a span's duration minus the duration of its direct children
//! (clamped at zero when children overlap the parent edge by a few
//! nanoseconds).

#![warn(missing_docs)]

use nd_sweep::value::{parse_json, Value};
use std::collections::BTreeMap;
use std::fmt;

/// An error from trace parsing or analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError(pub String);

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for TraceError {}

/// One span line from an nd-obs trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRec {
    /// Span name (`sweep.job`, `serve.request`, …).
    pub name: String,
    /// Per-process thread ordinal the span ran on.
    pub tid: u64,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Open-span count at entry (informational; trees are rebuilt from
    /// intervals).
    pub depth: u64,
    /// The trace context (request id) stamped on the span, if any.
    pub ctx: Option<String>,
    /// The span's `fields` object, if any (kept for chrome export).
    pub fields: Option<Value>,
}

impl SpanRec {
    /// Exclusive end timestamp.
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }
}

fn get_u64(t: &BTreeMap<String, Value>, key: &str) -> Option<u64> {
    t.get(key)?.as_i64().and_then(|v| u64::try_from(v).ok())
}

/// Parse span JSONL text into records. Lines whose record type `t` is
/// not `"span"` are skipped (future record types); blank lines are
/// ignored; malformed JSON or a span missing a required key is an
/// error naming the line number.
pub fn parse_trace(text: &str) -> Result<Vec<SpanRec>, TraceError> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = parse_json(line).map_err(|e| TraceError(format!("line {}: {}", lineno + 1, e)))?;
        let t = v
            .as_table()
            .ok_or_else(|| TraceError(format!("line {}: not a JSON object", lineno + 1)))?;
        match t.get("t").and_then(Value::as_str) {
            Some("span") => {}
            _ => continue,
        }
        let missing = |key: &str| TraceError(format!("line {}: span missing {key:?}", lineno + 1));
        out.push(SpanRec {
            name: t
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| missing("name"))?
                .to_string(),
            tid: get_u64(t, "tid").ok_or_else(|| missing("tid"))?,
            start_ns: get_u64(t, "start_ns").ok_or_else(|| missing("start_ns"))?,
            dur_ns: get_u64(t, "dur_ns").ok_or_else(|| missing("dur_ns"))?,
            depth: get_u64(t, "depth").unwrap_or(0),
            ctx: t.get("ctx").and_then(Value::as_str).map(str::to_string),
            fields: t.get("fields").cloned(),
        });
    }
    Ok(out)
}

/// A span in its reconstructed tree.
#[derive(Debug, Clone)]
pub struct Node {
    /// The parsed span.
    pub span: SpanRec,
    /// Indices (into [`Forest::nodes`]) of direct children, in start
    /// order.
    pub children: Vec<usize>,
    /// Duration not covered by direct children.
    pub self_ns: u64,
}

/// All spans of a trace as per-thread trees on one shared timeline.
#[derive(Debug, Clone, Default)]
pub struct Forest {
    /// Every span, tree edges in [`Node::children`].
    pub nodes: Vec<Node>,
    /// Indices of top-level spans (no enclosing span on their thread).
    pub roots: Vec<usize>,
    /// Trace wall-clock: latest end minus earliest start over all
    /// spans. 0 for an empty trace.
    pub wall_ns: u64,
}

/// Rebuild span trees from flat records.
///
/// Spans are grouped by `tid` and nested by interval containment: a
/// span is a child of the innermost earlier span on its thread whose
/// `[start, end]` interval contains it. The recorded `depth` only
/// breaks start-time ties, so subsets (e.g. one request id) still
/// build correctly.
pub fn build_forest(spans: Vec<SpanRec>) -> Forest {
    let mut forest = Forest::default();
    if spans.is_empty() {
        return forest;
    }
    let min_start = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
    let max_end = spans.iter().map(SpanRec::end_ns).max().unwrap_or(0);
    forest.wall_ns = max_end.saturating_sub(min_start);

    let mut by_tid: BTreeMap<u64, Vec<SpanRec>> = BTreeMap::new();
    for s in spans {
        by_tid.entry(s.tid).or_default().push(s);
    }
    for (_tid, mut group) in by_tid {
        group.sort_by_key(|s| (s.start_ns, s.depth, std::cmp::Reverse(s.dur_ns)));
        let mut stack: Vec<usize> = Vec::new();
        for span in group {
            // Unwind to the innermost open span that contains this one.
            while let Some(&top) = stack.last() {
                let t = &forest.nodes[top].span;
                if span.start_ns >= t.end_ns() || span.end_ns() > t.end_ns() {
                    stack.pop();
                } else {
                    break;
                }
            }
            let idx = forest.nodes.len();
            forest.nodes.push(Node {
                span,
                children: Vec::new(),
                self_ns: 0,
            });
            match stack.last() {
                Some(&parent) => forest.nodes[parent].children.push(idx),
                None => forest.roots.push(idx),
            }
            stack.push(idx);
        }
    }
    // Self-time = duration minus direct children.
    for i in 0..forest.nodes.len() {
        let child_ns: u64 = forest.nodes[i]
            .children
            .iter()
            .map(|&c| forest.nodes[c].span.dur_ns)
            .sum();
        forest.nodes[i].self_ns = forest.nodes[i].span.dur_ns.saturating_sub(child_ns);
    }
    forest
}

/// Keep only spans stamped with trace context `ctx`.
pub fn filter_ctx(spans: Vec<SpanRec>, ctx: &str) -> Vec<SpanRec> {
    spans
        .into_iter()
        .filter(|s| s.ctx.as_deref() == Some(ctx))
        .collect()
}

// ---------------------------------------------------------------------------
// critical path
// ---------------------------------------------------------------------------

/// One step down the critical path.
#[derive(Debug, Clone)]
pub struct PathStep {
    /// Span name.
    pub name: String,
    /// Span duration.
    pub dur_ns: u64,
    /// Span self-time (duration minus direct children).
    pub self_ns: u64,
    /// Nesting level along the path (0 = the root step).
    pub level: usize,
}

/// Aggregated per-name totals (used by the critical-path table and
/// [`diff`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NameStats {
    /// Number of spans with this name.
    pub count: u64,
    /// Summed duration.
    pub total_ns: u64,
    /// Summed self-time.
    pub self_ns: u64,
}

/// The critical-path report over one trace.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Trace wall-clock (latest end minus earliest start).
    pub wall_ns: u64,
    /// Wall-clock covered by top-level spans of the dominant thread —
    /// the thread whose roots cover the most time.
    pub attributed_ns: u64,
    /// `attributed_ns / wall_ns` (0 when the trace is empty).
    pub attributed_frac: f64,
    /// The dominating chain: from the longest root, repeatedly into the
    /// longest child.
    pub steps: Vec<PathStep>,
    /// Per-name self-time totals, descending.
    pub self_by_name: Vec<(String, NameStats)>,
}

/// Sum span durations and self-times per span name.
pub fn aggregate_by_name(forest: &Forest) -> BTreeMap<String, NameStats> {
    let mut map: BTreeMap<String, NameStats> = BTreeMap::new();
    for n in &forest.nodes {
        let e = map.entry(n.span.name.clone()).or_default();
        e.count += 1;
        e.total_ns += n.span.dur_ns;
        e.self_ns += n.self_ns;
    }
    map
}

/// Attribute the trace's wall-clock: find the dominant thread, walk the
/// dominating span chain, and rank span names by self-time.
pub fn critical_path(forest: &Forest) -> CriticalPath {
    // Dominant thread = the tid whose root spans cover the most time.
    let mut root_cover: BTreeMap<u64, u64> = BTreeMap::new();
    for &r in &forest.roots {
        let s = &forest.nodes[r].span;
        *root_cover.entry(s.tid).or_default() += s.dur_ns;
    }
    let attributed_ns = root_cover.values().copied().max().unwrap_or(0);
    let dominant_tid = root_cover
        .iter()
        .max_by_key(|(_, &v)| v)
        .map(|(&k, _)| k)
        .unwrap_or(0);

    // Chain: longest root on the dominant thread, then longest child.
    let mut steps = Vec::new();
    let mut cur = forest
        .roots
        .iter()
        .copied()
        .filter(|&r| forest.nodes[r].span.tid == dominant_tid)
        .max_by_key(|&r| forest.nodes[r].span.dur_ns);
    let mut level = 0;
    while let Some(i) = cur {
        let n = &forest.nodes[i];
        steps.push(PathStep {
            name: n.span.name.clone(),
            dur_ns: n.span.dur_ns,
            self_ns: n.self_ns,
            level,
        });
        level += 1;
        cur = n
            .children
            .iter()
            .copied()
            .max_by_key(|&c| forest.nodes[c].span.dur_ns);
    }

    let mut self_by_name: Vec<(String, NameStats)> =
        aggregate_by_name(forest).into_iter().collect();
    self_by_name.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then(a.0.cmp(&b.0)));

    CriticalPath {
        wall_ns: forest.wall_ns,
        attributed_ns,
        attributed_frac: if forest.wall_ns == 0 {
            0.0
        } else {
            attributed_ns as f64 / forest.wall_ns as f64
        },
        steps,
        self_by_name,
    }
}

// ---------------------------------------------------------------------------
// flame / chrome export
// ---------------------------------------------------------------------------

/// Folded-stack lines (`root;child;leaf self_ns`) for flamegraph tools.
///
/// One line per distinct stack, the count being the stack's summed
/// self-time in nanoseconds; lines come out sorted so the output is
/// deterministic. Feed directly to `flamegraph.pl` or `inferno`.
pub fn folded_stacks(forest: &Forest) -> String {
    let mut acc: BTreeMap<String, u64> = BTreeMap::new();
    let mut stack: Vec<&str> = Vec::new();
    fn walk<'a>(
        forest: &'a Forest,
        idx: usize,
        stack: &mut Vec<&'a str>,
        acc: &mut BTreeMap<String, u64>,
    ) {
        let n = &forest.nodes[idx];
        stack.push(&n.span.name);
        if n.self_ns > 0 {
            *acc.entry(stack.join(";")).or_default() += n.self_ns;
        }
        for &c in &n.children {
            walk(forest, c, stack, acc);
        }
        stack.pop();
    }
    for &r in &forest.roots {
        walk(forest, r, &mut stack, &mut acc);
    }
    let mut out = String::new();
    for (path, ns) in acc {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

/// Chrome trace-event JSON (`{"traceEvents": [...]}`) loadable in
/// `chrome://tracing` and Perfetto. Spans become complete (`"ph": "X"`)
/// events with microsecond timestamps; the trace context id and span
/// fields ride in `args`.
pub fn chrome_trace(spans: &[SpanRec]) -> String {
    let events: Vec<Value> = spans
        .iter()
        .map(|s| {
            let mut ev = BTreeMap::new();
            ev.insert("name".to_string(), Value::Str(s.name.clone()));
            ev.insert("cat".to_string(), Value::Str("nd".to_string()));
            ev.insert("ph".to_string(), Value::Str("X".to_string()));
            ev.insert("ts".to_string(), Value::Float(s.start_ns as f64 / 1e3));
            ev.insert("dur".to_string(), Value::Float(s.dur_ns as f64 / 1e3));
            ev.insert("pid".to_string(), Value::Int(0));
            ev.insert("tid".to_string(), Value::Int(s.tid as i64));
            let mut args = match &s.fields {
                Some(Value::Table(t)) => t.clone(),
                _ => BTreeMap::new(),
            };
            if let Some(ctx) = &s.ctx {
                args.insert("ctx".to_string(), Value::Str(ctx.clone()));
            }
            if !args.is_empty() {
                ev.insert("args".to_string(), Value::Table(args));
            }
            Value::Table(ev)
        })
        .collect();
    let mut top = BTreeMap::new();
    top.insert("traceEvents".to_string(), Value::Array(events));
    Value::Table(top).to_json()
}

// ---------------------------------------------------------------------------
// diff
// ---------------------------------------------------------------------------

/// Per-name before/after comparison produced by [`diff`].
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Span name.
    pub name: String,
    /// Stats in trace A (zeroed when the name is new in B).
    pub a: NameStats,
    /// Stats in trace B (zeroed when the name disappeared).
    pub b: NameStats,
    /// `(b.total - a.total) / a.total * 100`; +inf for new names.
    pub total_pct: f64,
    /// Whether this row trips the regression gate.
    pub regressed: bool,
}

/// The report of [`diff`].
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Wall-clock of A and B.
    pub wall_a_ns: u64,
    /// Wall-clock of trace B.
    pub wall_b_ns: u64,
    /// Whether the overall wall-clock regressed past the threshold.
    pub wall_regressed: bool,
    /// One row per span name (union of both traces), sorted by B total
    /// descending.
    pub rows: Vec<DiffRow>,
}

impl DiffReport {
    /// Whether any gate (wall-clock or per-name) tripped.
    pub fn regressed(&self) -> bool {
        self.wall_regressed || self.rows.iter().any(|r| r.regressed)
    }
}

/// Compare two traces per span name and against an overall wall-clock
/// gate.
///
/// A name regresses when its total time grows by more than
/// `fail_pct` percent **and** it is significant — its total in either
/// trace is at least `min_share` of that trace's wall-clock. The floor
/// keeps microsecond-scale spans (whose timings are pure noise between
/// otherwise identical runs) from tripping the gate; lower it
/// explicitly to gate on small spans.
pub fn diff(a: &Forest, b: &Forest, fail_pct: f64, min_share: f64) -> DiffReport {
    let (agg_a, agg_b) = (aggregate_by_name(a), aggregate_by_name(b));
    let factor = 1.0 + fail_pct / 100.0;
    let mut names: Vec<&String> = agg_a.keys().chain(agg_b.keys()).collect();
    names.sort();
    names.dedup();
    let mut rows: Vec<DiffRow> = names
        .into_iter()
        .map(|name| {
            let sa = agg_a.get(name).copied().unwrap_or_default();
            let sb = agg_b.get(name).copied().unwrap_or_default();
            let total_pct = if sa.total_ns == 0 {
                if sb.total_ns == 0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                (sb.total_ns as f64 - sa.total_ns as f64) / sa.total_ns as f64 * 100.0
            };
            let significant = sa.total_ns as f64 >= min_share * a.wall_ns as f64
                || sb.total_ns as f64 >= min_share * b.wall_ns as f64;
            let grew = sb.total_ns as f64 > sa.total_ns as f64 * factor;
            DiffRow {
                name: name.clone(),
                a: sa,
                b: sb,
                total_pct,
                regressed: significant && grew,
            }
        })
        .collect();
    rows.sort_by(|x, y| y.b.total_ns.cmp(&x.b.total_ns).then(x.name.cmp(&y.name)));
    DiffReport {
        wall_a_ns: a.wall_ns,
        wall_b_ns: b.wall_ns,
        wall_regressed: b.wall_ns as f64 > a.wall_ns as f64 * factor,
        rows,
    }
}

/// Format nanoseconds human-readably (µs/ms/s picked by magnitude).
pub fn fmt_ns(ns: u64) -> String {
    let ns_f = ns as f64;
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns_f / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns_f / 1e6)
    } else {
        format!("{:.3} s", ns_f / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(name: &str, tid: u64, start: u64, dur: u64, depth: u64, ctx: Option<&str>) -> String {
        let ctx = ctx
            .map(|c| format!(", \"ctx\": \"{c}\""))
            .unwrap_or_default();
        format!(
            "{{\"t\": \"span\", \"name\": \"{name}\", \"tid\": {tid}, \"start_ns\": {start}, \"dur_ns\": {dur}, \"depth\": {depth}{ctx}}}"
        )
    }

    fn sample_trace() -> String {
        // tid 0: root [0, 1000) with children a [100, 400) and b [500, 900);
        // a has grandchild g [150, 250). tid 1: worker root [200, 800).
        [
            line("g", 0, 150, 100, 2, None),
            line("a", 0, 100, 300, 1, Some("req-1")),
            line("b", 0, 500, 400, 1, None),
            line("root", 0, 0, 1000, 0, None),
            line("worker", 1, 200, 600, 0, Some("req-1")),
        ]
        .join("\n")
    }

    #[test]
    fn parse_skips_unknown_types_and_errors_on_garbage() {
        let text = format!(
            "{}\n{{\"t\": \"future\", \"x\": 1}}\n\n{}",
            line("a", 0, 0, 10, 0, None),
            line("b", 0, 20, 10, 0, None)
        );
        let spans = parse_trace(&text).unwrap();
        assert_eq!(spans.len(), 2);
        assert!(parse_trace("not json").is_err());
        assert!(parse_trace("{\"t\": \"span\"}")
            .unwrap_err()
            .0
            .contains("name"));
    }

    #[test]
    fn forest_nests_by_containment_and_computes_self() {
        let f = build_forest(parse_trace(&sample_trace()).unwrap());
        assert_eq!(f.wall_ns, 1000);
        assert_eq!(f.roots.len(), 2); // root (tid 0) + worker (tid 1)
        let root = f
            .nodes
            .iter()
            .find(|n| n.span.name == "root")
            .expect("root node");
        assert_eq!(root.children.len(), 2);
        // self = 1000 - (300 + 400)
        assert_eq!(root.self_ns, 300);
        let a = f.nodes.iter().find(|n| n.span.name == "a").unwrap();
        assert_eq!(a.children.len(), 1);
        assert_eq!(a.self_ns, 200); // 300 - 100
    }

    #[test]
    fn critical_path_attributes_and_walks_longest_chain() {
        let f = build_forest(parse_trace(&sample_trace()).unwrap());
        let cp = critical_path(&f);
        assert_eq!(cp.wall_ns, 1000);
        // tid 0's root covers 1000 > tid 1's 600.
        assert_eq!(cp.attributed_ns, 1000);
        assert!((cp.attributed_frac - 1.0).abs() < 1e-9);
        let names: Vec<&str> = cp.steps.iter().map(|s| s.name.as_str()).collect();
        // Longest child of root is b (400 > 300).
        assert_eq!(names, ["root", "b"]);
        // Self-time ranking: b=400, root=300, worker=600 → worker first.
        assert_eq!(cp.self_by_name[0].0, "worker");
    }

    #[test]
    fn folded_stacks_sum_self_times() {
        let f = build_forest(parse_trace(&sample_trace()).unwrap());
        let folded = folded_stacks(&f);
        let lines: Vec<&str> = folded.lines().collect();
        assert!(lines.contains(&"root 300"));
        assert!(lines.contains(&"root;a 200"));
        assert!(lines.contains(&"root;a;g 100"));
        assert!(lines.contains(&"root;b 400"));
        assert!(lines.contains(&"worker 600"));
        // Folded totals add up to the total self time (= total span time
        // of roots here).
        let sum: u64 = lines
            .iter()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(sum, 1600);
    }

    #[test]
    fn chrome_trace_parses_back_as_json() {
        let spans = parse_trace(&sample_trace()).unwrap();
        let json = chrome_trace(&spans);
        let v = parse_json(&json).unwrap();
        let events = v.as_table().unwrap()["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 5);
        let first = events[0].as_table().unwrap();
        assert_eq!(first["ph"].as_str(), Some("X"));
        assert!(first.contains_key("ts") && first.contains_key("dur"));
    }

    #[test]
    fn ctx_filter_keeps_request_spans() {
        let spans = filter_ctx(parse_trace(&sample_trace()).unwrap(), "req-1");
        assert_eq!(spans.len(), 2);
        let f = build_forest(spans);
        assert_eq!(f.roots.len(), 2); // a (tid 0) and worker (tid 1)
    }

    #[test]
    fn diff_gates_on_significant_growth_only() {
        let base = build_forest(parse_trace(&sample_trace()).unwrap());
        // 2× slowdown: scale every timestamp and duration.
        let doubled: Vec<SpanRec> = parse_trace(&sample_trace())
            .unwrap()
            .into_iter()
            .map(|mut s| {
                s.start_ns *= 2;
                s.dur_ns *= 2;
                s
            })
            .collect();
        let slow = build_forest(doubled);

        // Identical runs: nothing regresses.
        let same = diff(&base, &base, 50.0, 0.01);
        assert!(!same.regressed(), "identical traces must pass the gate");

        // Doubled run: wall and the big names regress.
        let worse = diff(&base, &slow, 50.0, 0.01);
        assert!(worse.wall_regressed);
        assert!(worse.rows.iter().any(|r| r.name == "root" && r.regressed));

        // Insignificant spans never regress: tiny span triples but is
        // far below 1% of wall.
        let mut a_spans = parse_trace(&sample_trace()).unwrap();
        a_spans.push(SpanRec {
            name: "tiny".into(),
            tid: 0,
            start_ns: 10,
            dur_ns: 1_000_000, // 1 ms of a 10 s wall
            depth: 5,
            ctx: None,
            fields: None,
        });
        let mut b_spans = a_spans.clone();
        b_spans.last_mut().unwrap().dur_ns = 3_000_000;
        // Stretch wall so `tiny` is insignificant in both.
        for spans in [&mut a_spans, &mut b_spans] {
            spans.push(SpanRec {
                name: "big".into(),
                tid: 7,
                start_ns: 0,
                dur_ns: 10_000_000_000,
                depth: 0,
                ctx: None,
                fields: None,
            });
        }
        let rep = diff(&build_forest(a_spans), &build_forest(b_spans), 50.0, 0.01);
        let tiny = rep.rows.iter().find(|r| r.name == "tiny").unwrap();
        assert!(tiny.total_pct > 100.0);
        assert!(!tiny.regressed, "sub-threshold span must not gate");
        assert!(!rep.regressed());
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(15_000), "15.0 µs");
        assert_eq!(fmt_ns(12_340_000), "12.34 ms");
        assert_eq!(fmt_ns(12_000_000_000), "12.000 s");
    }
}
