//! The `nd-trace` CLI: analyse nd-obs span JSONL traces.
//!
//! ```text
//! nd-trace critical-path <t.jsonl> [--min-attributed FRAC] [--ctx ID]
//! nd-trace flame <t.jsonl> [--ctx ID] [--out FILE]
//! nd-trace chrome <t.jsonl> [--ctx ID] [--out FILE]
//! nd-trace diff <a.jsonl> <b.jsonl> [--fail-on-regress PCT] [--min-share FRAC]
//! ```

use nd_trace::{
    build_forest, chrome_trace, critical_path, diff, filter_ctx, fmt_ns, folded_stacks,
    parse_trace, SpanRec, TraceError,
};
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "\
nd-trace — analytics over nd-obs span traces (JSONL)

Produce a trace with `ND_TRACE=t.jsonl <cmd>` or the CLIs' `--trace-out`,
then ask where the time went.

USAGE:
    nd-trace critical-path <t.jsonl> [OPTIONS]
        Attribute the trace's wall-clock: dominant span chain plus a
        per-name self-time ranking.
        --min-attributed FRAC   exit non-zero when top-level spans cover
                                less than FRAC (0..1) of the wall-clock
        --ctx ID                only spans stamped with trace context ID

    nd-trace flame <t.jsonl> [--ctx ID] [--out FILE]
        Folded stacks (`a;b;c self_ns`), one line per distinct stack —
        pipe into flamegraph.pl / inferno-flamegraph.

    nd-trace chrome <t.jsonl> [--ctx ID] [--out FILE]
        Chrome trace-event JSON for chrome://tracing or Perfetto.

    nd-trace diff <a.jsonl> <b.jsonl> [OPTIONS]
        Per-span-name count/total/self deltas between two runs.
        --fail-on-regress PCT   exit non-zero when a significant name's
                                total (or the wall-clock) grew > PCT %
        --min-share FRAC        significance floor: gate only names whose
                                total is ≥ FRAC of either wall-clock
                                (default 0.01)

EXIT STATUS:
    0  analysis done, gates (if any) passed
    1  a gate tripped (--min-attributed / --fail-on-regress)
    2  usage or I/O error
";

/// `say!` that ignores I/O errors: piping analytics into `head`
/// closes stdout early, which must truncate output, not panic.
macro_rules! say {
    ($($arg:tt)*) => {{
        use std::io::Write as _;
        let _ = writeln!(std::io::stdout(), $($arg)*);
    }};
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("critical-path") => cmd_critical_path(&args[1..]),
        Some("flame") => cmd_flame(&args[1..]),
        Some("chrome") => cmd_chrome(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("--version" | "-V" | "version") => {
            say!("nd-trace {}", env!("CARGO_PKG_VERSION"));
            ExitCode::SUCCESS
        }
        Some("--help" | "-h" | "help") | None => {
            use std::io::Write as _;
            let _ = write!(std::io::stdout(), "{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("nd-trace: {msg}");
    ExitCode::from(2)
}

/// Read and parse a trace file, applying the `--ctx` filter if set.
fn load(path: &str, ctx: Option<&str>) -> Result<Vec<SpanRec>, TraceError> {
    let text =
        std::fs::read_to_string(Path::new(path)).map_err(|e| TraceError(format!("{path}: {e}")))?;
    let spans = parse_trace(&text).map_err(|e| TraceError(format!("{path}: {e}")))?;
    Ok(match ctx {
        Some(id) => filter_ctx(spans, id),
        None => spans,
    })
}

/// Write `text` to `--out FILE`, or stdout when unset.
fn emit(out: Option<&str>, text: &str) -> Result<(), TraceError> {
    match out {
        Some(path) => std::fs::write(path, text).map_err(|e| TraceError(format!("{path}: {e}"))),
        None => {
            use std::io::Write as _;
            let _ = std::io::stdout().write_all(text.as_bytes());
            Ok(())
        }
    }
}

/// Pull `--flag value` out of `args`, leaving positionals in place.
fn take_opt(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, TraceError> {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            if i + 1 >= args.len() {
                return Err(TraceError(format!("{flag} needs a value")));
            }
            args.remove(i);
            Ok(Some(args.remove(i)))
        }
        None => Ok(None),
    }
}

fn parse_f64(opt: Option<String>, flag: &str) -> Result<Option<f64>, TraceError> {
    opt.map(|s| {
        s.parse::<f64>()
            .map_err(|_| TraceError(format!("{flag}: not a number: {s}")))
    })
    .transpose()
}

fn cmd_critical_path(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let (min_attr, ctx) = match (|| {
        let m = parse_f64(take_opt(&mut args, "--min-attributed")?, "--min-attributed")?;
        let c = take_opt(&mut args, "--ctx")?;
        Ok::<_, TraceError>((m, c))
    })() {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let [path] = args.as_slice() else {
        return fail("critical-path needs exactly one trace file (see --help)");
    };
    let spans = match load(path, ctx.as_deref()) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    if spans.is_empty() {
        return fail(format!(
            "{path}: no spans (is this an ND_TRACE JSONL file?)"
        ));
    }
    let n_spans = spans.len();
    let n_tids = {
        let mut tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        tids.len()
    };
    let forest = build_forest(spans);
    let cp = critical_path(&forest);

    say!("trace: {n_spans} spans on {n_tids} thread(s)");
    say!(
        "wall-clock {}  attributed {} ({:.1}%)",
        fmt_ns(cp.wall_ns),
        fmt_ns(cp.attributed_ns),
        cp.attributed_frac * 100.0
    );
    say!("\ncritical path:");
    for step in &cp.steps {
        say!(
            "  {:indent$}{:<24} {:>12}  self {}",
            "",
            step.name,
            fmt_ns(step.dur_ns),
            fmt_ns(step.self_ns),
            indent = step.level * 2
        );
    }
    say!("\ntop self-time by name:");
    for (name, stats) in cp.self_by_name.iter().take(15) {
        say!(
            "  {:<28} {:>12}  {:>5.1}%  ({} span{})",
            name,
            fmt_ns(stats.self_ns),
            stats.self_ns as f64 / cp.wall_ns.max(1) as f64 * 100.0,
            stats.count,
            if stats.count == 1 { "" } else { "s" }
        );
    }
    if let Some(min) = min_attr {
        if cp.attributed_frac < min {
            eprintln!(
                "nd-trace: attribution gate FAILED: {:.1}% < {:.1}%",
                cp.attributed_frac * 100.0,
                min * 100.0
            );
            return ExitCode::FAILURE;
        }
        say!(
            "\nattribution gate passed: {:.1}% ≥ {:.1}%",
            cp.attributed_frac * 100.0,
            min * 100.0
        );
    }
    ExitCode::SUCCESS
}

fn cmd_flame(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let (ctx, out) = match (|| {
        Ok::<_, TraceError>((take_opt(&mut args, "--ctx")?, take_opt(&mut args, "--out")?))
    })() {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let [path] = args.as_slice() else {
        return fail("flame needs exactly one trace file (see --help)");
    };
    match load(path, ctx.as_deref())
        .map(build_forest)
        .map(|f| folded_stacks(&f))
        .and_then(|text| emit(out.as_deref(), &text))
    {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(e),
    }
}

fn cmd_chrome(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let (ctx, out) = match (|| {
        Ok::<_, TraceError>((take_opt(&mut args, "--ctx")?, take_opt(&mut args, "--out")?))
    })() {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let [path] = args.as_slice() else {
        return fail("chrome needs exactly one trace file (see --help)");
    };
    match load(path, ctx.as_deref())
        .map(|spans| chrome_trace(&spans))
        .and_then(|mut text| {
            text.push('\n');
            emit(out.as_deref(), &text)
        }) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(e),
    }
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let (fail_pct, min_share) = match (|| {
        let f = parse_f64(
            take_opt(&mut args, "--fail-on-regress")?,
            "--fail-on-regress",
        )?;
        let m = parse_f64(take_opt(&mut args, "--min-share")?, "--min-share")?;
        Ok::<_, TraceError>((f, m))
    })() {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let [path_a, path_b] = args.as_slice() else {
        return fail("diff needs exactly two trace files (see --help)");
    };
    let (spans_a, spans_b) = match (load(path_a, None), load(path_b, None)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return fail(e),
    };
    let (fa, fb) = (build_forest(spans_a), build_forest(spans_b));
    // With no explicit gate, still compute rows against a huge threshold
    // so the report marks nothing regressed.
    let gate_pct = fail_pct.unwrap_or(f64::INFINITY);
    let report = diff(&fa, &fb, gate_pct, min_share.unwrap_or(0.01));

    let wall_pct = if report.wall_a_ns == 0 {
        0.0
    } else {
        (report.wall_b_ns as f64 - report.wall_a_ns as f64) / report.wall_a_ns as f64 * 100.0
    };
    say!(
        "wall-clock: {} → {} ({:+.1}%){}",
        fmt_ns(report.wall_a_ns),
        fmt_ns(report.wall_b_ns),
        wall_pct,
        if report.wall_regressed {
            "  REGRESSED"
        } else {
            ""
        }
    );
    say!(
        "\n{:<28} {:>7} {:>12} {:>12} {:>9}",
        "name",
        "count",
        "total A",
        "total B",
        "Δtotal"
    );
    for row in &report.rows {
        say!(
            "{:<28} {:>3}→{:<3} {:>12} {:>12} {:>+8.1}%{}",
            row.name,
            row.a.count,
            row.b.count,
            fmt_ns(row.a.total_ns),
            fmt_ns(row.b.total_ns),
            if row.total_pct.is_finite() {
                row.total_pct
            } else {
                999.9
            },
            if row.regressed { "  REGRESSED" } else { "" }
        );
    }
    if let Some(pct) = fail_pct {
        if report.regressed() {
            let n = report.rows.iter().filter(|r| r.regressed).count();
            eprintln!(
                "nd-trace: regression gate FAILED (> +{pct}% growth): {n} name(s){}",
                if report.wall_regressed {
                    " + wall-clock"
                } else {
                    ""
                }
            );
            return ExitCode::FAILURE;
        }
        say!("\nregression gate passed (≤ +{pct}% growth)");
    }
    ExitCode::SUCCESS
}
