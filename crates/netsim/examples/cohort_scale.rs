//! `cohort_scale` — run an N-node sharded cohort and print a digest.
//!
//! ```text
//! cargo run --release -p nd-netsim --example cohort_scale -- [N] [neighborhood] [threads] [horizon_ms]
//! ```
//!
//! Cuts `N` nodes into channel neighborhoods of the given size
//! (disconnected clusters), runs them through [`nd_netsim::run_sharded`]
//! on the requested worker threads, and prints one summary line ending
//! in a digest folded over every shard report **in shard order**. The
//! digest is bit-stable across runs and thread counts — CI re-runs the
//! binary and compares the lines verbatim to catch determinism
//! regressions at scale.

use nd_core::time::Tick;
use nd_netsim::{run_sharded, NodeSpec};
use nd_sim::{ScheduleBehavior, SimConfig, Topology};

fn arg(i: usize, default: u64) -> u64 {
    std::env::args()
        .nth(i)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn fnv(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h = (*h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
}

fn main() {
    let n = arg(1, 1_000_000) as usize;
    let neighborhood = arg(2, 8).max(2) as u32;
    let threads = arg(
        3,
        std::thread::available_parallelism().map_or(1, |p| p.get() as u64),
    ) as usize;
    let horizon = Tick::from_millis(arg(4, 50));
    let seed = 42u64;

    let sched = nd_protocols::schedule_for_selector(
        "optimal-slotless",
        0.10,
        Tick::from_millis(1),
        Tick::from_micros(36),
    )
    .unwrap();
    let mut radio = nd_core::RadioParams::paper_default();
    radio.omega = Tick::from_micros(36);
    let cfg = SimConfig::paper_baseline(horizon, seed).with_radio(radio);
    let topo = Topology::clusters((0..n as u32).map(|i| i / neighborhood).collect());

    let mut events: u64 = 0;
    let mut sent: u64 = 0;
    let mut received: u64 = 0;
    let mut lost_coll: u64 = 0;
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let t0 = std::time::Instant::now();
    run_sharded(
        &cfg,
        &topo,
        true,
        threads,
        |g| {
            let phase =
                Tick(((seed ^ (g as u64)).wrapping_mul(0x9e37_79b9_7f4a_7c15)) % 14_400_000);
            NodeSpec::always_on(Box::new(ScheduleBehavior::with_phase(sched.clone(), phase)))
        },
        |_, _, report| {
            events += report.events;
            sent += report.packets.sent;
            received += report.packets.received;
            lost_coll += report.packets.lost_collision;
            fnv(&mut digest, report.events);
            fnv(&mut digest, report.elapsed.0);
            fnv(&mut digest, report.packets.sent);
            fnv(&mut digest, report.packets.received);
            fnv(&mut digest, report.packets.lost_collision);
            fnv(&mut digest, report.packets.lost_self_blocking);
        },
    );
    let wall = t0.elapsed().as_secs_f64();
    println!(
        "n={n} shards={} threads={threads} events={events} sent={sent} received={received} \
         lost_coll={lost_coll} wall={wall:.2}s events_per_sec={:.0} digest={digest:016x}",
        n.div_ceil(neighborhood as usize),
        events as f64 / wall,
    );
}
