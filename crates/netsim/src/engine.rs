//! The N-node discrete-event engine.
//!
//! [`NetSimulator`] generalizes the pairwise `nd_sim::Simulator` to a
//! cohort: every node has a presence window (join/leave churn), its own
//! RNG stream, and an arbitrary [`nd_sim::Behavior`]; the shared channel
//! applies
//! the paper's reception model (overlap geometry, half-duplex blanking,
//! ALOHA collisions, fault injection). With two always-on nodes and the
//! same configuration it reproduces the pairwise engine's receptions
//! exactly — the two-node simulator is the N = 2 special case (the
//! cross-validation tests pin this down).
//!
//! Protocols run on node-local timelines (0 = the node's join instant), so
//! the same behaviour describes an early bird and a late joiner; clock
//! drift composes underneath via [`nd_sim::Drifting`].
//!
//! The event core is built for scale: events flow through the
//! hierarchical [`crate::wheel::TimingWheel`] (O(1) amortized at netsim's
//! dense short-horizon mix), per-node state lives in the flat
//! structure-of-arrays [`crate::node`] arena, and cohort completion is a
//! per-cluster countdown (O(1) per reception) instead of an O(N²)
//! matrix scan per event. Topologies that split into disconnected
//! clusters — e.g. per-channel neighborhoods from
//! [`nd_sim::Topology::clusters`] — complete independently: once a
//! cluster has discovered all its ordered pairs (under
//! [`NetSimulator::stop_when_all_discovered`]), its remaining events are
//! discarded without advancing the clock, which keeps a whole-cohort run
//! bit-identical to per-shard runs merged by [`crate::shard`].

use crate::event::{EventKind, EventQueue};
use crate::metrics::CohortReport;
use crate::node::{NodeArena, NodeSpec};
use nd_core::interval::{Interval, IntervalSet};
use nd_core::time::Tick;
use nd_obs::Progress;
use nd_sim::{DiscoveryMatrix, Op, PacketCounters, SimConfig, Topology};
use rand::Rng;
use std::collections::VecDeque;

/// One transmission on the shared channel.
struct TxRecord {
    node: usize,
    iv: Interval,
    payload: u64,
    /// The sender left mid-packet: the truncated airtime still interferes,
    /// but the packet is corrupt and never delivered.
    aborted: bool,
}

/// One cluster's scheduled listening windows, tagged with the listener,
/// in nondecreasing start order.
///
/// The order is free: every buffered `Rx` op is processed by its wake at
/// exactly its start instant, so pushes arrive already sorted by start.
/// That makes "who could hear a packet" a binary search + short scan
/// instead of a walk over every cluster member's window list — the
/// receiver-side cost of a `TxEnd` drops from O(cluster size) to
/// O(listeners actually overlapping the packet).
struct Timeline {
    /// `(window, listener id)` in nondecreasing `window.start` order.
    entries: Vec<(Interval, u32)>,
    /// Lazy prune cursor: everything before it is past the influence
    /// horizon of any future packet.
    prune: usize,
    /// Monotone search cursor: queries arrive with nondecreasing packet
    /// starts (`TxEnd`s fire in packet order), so the lower bound only
    /// ever moves forward — amortized O(1) instead of a binary search.
    /// Rewound to `prune` when `max_dur` grows.
    search: usize,
    /// Longest window duration ever pushed — the lower-bound slack: a
    /// window overlapping `t` must start after `t - max_dur`.
    max_dur: Tick,
}

impl Timeline {
    fn new() -> Self {
        Timeline {
            entries: Vec::new(),
            prune: 0,
            search: 0,
            max_dur: Tick::ZERO,
        }
    }

    /// Record a window; starts arrive nondecreasing (each `Rx` op is
    /// processed by its wake at exactly its start instant).
    fn push(&mut self, iv: Interval, node: u32) {
        debug_assert!(
            self.entries.last().is_none_or(|e| e.0.start <= iv.start),
            "listen windows must arrive in start order"
        );
        if iv.measure() > self.max_dur {
            // a longer window reaches further back: rewind the cursor
            self.max_dur = iv.measure();
            self.search = self.prune;
        }
        self.entries.push((iv, node));
    }

    /// First index that could overlap a packet starting at `packet_start`,
    /// advancing (and occasionally compacting) the prune cursor first.
    fn candidates_from(&mut self, packet_start: Tick, horizon: Tick) -> usize {
        while self.prune < self.entries.len()
            && self.entries[self.prune].0.start + self.max_dur < horizon
        {
            self.prune += 1;
        }
        if self.prune > 64 && self.prune * 2 >= self.entries.len() {
            self.entries.drain(..self.prune);
            self.search = self.search.saturating_sub(self.prune);
            self.prune = 0;
        }
        self.search = self.search.max(self.prune);
        while self.search < self.entries.len()
            && self.entries[self.search].0.start + self.max_dur <= packet_start
        {
            self.search += 1;
        }
        self.search
    }
}

/// The multi-node discrete-event simulator.
///
/// ```
/// use nd_netsim::{NetSimulator, NodeSpec};
/// use nd_sim::{ScheduleBehavior, SimConfig, Topology};
/// use nd_core::{BeaconSeq, RadioParams, ReceptionWindows, Schedule, Tick};
///
/// // three nodes that both beacon and listen discover each other quickly
/// let sched = Schedule::full(
///     BeaconSeq::uniform(1, Tick::from_micros(300), Tick::from_micros(4), Tick::ZERO).unwrap(),
///     ReceptionWindows::single(Tick::from_micros(50), Tick::from_micros(200), Tick::from_micros(300)).unwrap(),
/// );
/// let mut radio = RadioParams::paper_default();
/// radio.omega = Tick::from_micros(4);
/// let cfg = SimConfig::paper_baseline(Tick::from_millis(20), 7).with_radio(radio);
/// let mut sim = NetSimulator::new(cfg, Topology::full(3));
/// for phase_us in [0u64, 70, 170] {
///     let behavior = ScheduleBehavior::with_phase(sched.clone(), Tick::from_micros(phase_us));
///     sim.add_node(NodeSpec::always_on(Box::new(behavior)));
/// }
/// let report = sim.run();
/// assert!(report.discovery.complete());
/// ```
pub struct NetSimulator {
    cfg: SimConfig,
    topo: Topology,
    nodes: NodeArena,
    /// Retained transmission records; absolute record `idx` lives at
    /// `transmissions[idx - tx_base]`. Records whose influence horizon has
    /// passed are popped off the front (their `TxEnd` is proven fired).
    transmissions: VecDeque<TxRecord>,
    tx_base: usize,
    /// Pending packet ends `(end, seq, absolute record idx)`. Airtime is
    /// one constant ω per run, so ends become due in exactly the order
    /// packets started — a FIFO beside the queue. Each entry carries a
    /// sequence number reserved at start time, so firing an end the
    /// moment its `(end, seq)` precedes the queue's head reproduces the
    /// schedule-it-as-an-event order bit for bit, at FIFO cost instead
    /// of a third of all queue traffic.
    pending_ends: VecDeque<(Tick, u64, usize)>,
    queue: EventQueue,
    discovery: DiscoveryMatrix,
    packets: PacketCounters,
    stop_when_complete: bool,
    /// Normalized cluster label per node (smallest member id), as reported.
    cluster_label: Vec<u32>,
    /// Dense cluster index per node (labels renumbered 0..k in
    /// first-appearance order).
    cluster_of: Vec<u32>,
    /// Ordered pairs not yet discovered, per dense cluster index. A
    /// cluster is complete exactly when this hits zero — the counter
    /// equivalent of `DiscoveryMatrix::complete()` on the cluster.
    remaining: Vec<u64>,
    /// Clusters with `remaining > 0`.
    clusters_active: usize,
    /// Scheduled listening windows per dense cluster index (reception
    /// geometry is queried by time across a neighborhood, not per node).
    timelines: Vec<Timeline>,
    /// Scratch: candidate `(listener, window ∩ packet)` pairs per `TxEnd`.
    cand: Vec<(u32, Interval)>,
    /// Scratch: one refill batch of behaviour ops (reused so steady-state
    /// refills through [`nd_sim::Behavior::next_ops_into`] allocate
    /// nothing).
    op_scratch: Vec<Op>,
    /// Scratch: collider record indices per `TxEnd`.
    colliders: Vec<usize>,
    /// Scratch: nodes whose own expanded transmission covers the current
    /// packet start (half-duplex blanking, start-overlap model).
    blankers: Vec<u32>,
    /// Monotone lower bound (absolute record index) for the collider /
    /// blanker scan: packet starts are nondecreasing across `TxEnd`s, so
    /// records wholly before one packet are wholly before every later one.
    collider_search: usize,
    /// Per-node own-tx logs are only maintained when the general
    /// interval-algebra blanking path needs them (half-duplex under a
    /// non-start overlap model); the start-model hot path derives
    /// blanking from the shared transmission records instead.
    need_own_tx: bool,
}

impl NetSimulator {
    /// Create a simulator; add nodes with [`NetSimulator::add_node`], then
    /// call [`NetSimulator::run`]. The config's `seed` roots every node's
    /// private RNG stream.
    pub fn new(cfg: SimConfig, topo: Topology) -> Self {
        let n = topo.len();
        let cluster_label = topo.cluster_assignments();
        let mut cluster_of = vec![0u32; n];
        let mut sizes: Vec<u64> = Vec::new();
        let mut index_of = std::collections::HashMap::new();
        for i in 0..n {
            let c = *index_of.entry(cluster_label[i]).or_insert_with(|| {
                sizes.push(0);
                (sizes.len() - 1) as u32
            });
            cluster_of[i] = c;
            sizes[c as usize] += 1;
        }
        let remaining: Vec<u64> = sizes.iter().map(|&k| k * (k - 1)).collect();
        let clusters_active = remaining.iter().filter(|&&r| r > 0).count();
        let need_own_tx =
            cfg.half_duplex && !matches!(cfg.overlap, nd_core::coverage::OverlapModel::Start);
        NetSimulator {
            cfg,
            topo,
            nodes: NodeArena::with_capacity(n),
            transmissions: VecDeque::new(),
            tx_base: 0,
            pending_ends: VecDeque::new(),
            queue: EventQueue::new(),
            discovery: DiscoveryMatrix::new(n),
            packets: PacketCounters::default(),
            stop_when_complete: false,
            cluster_label,
            cluster_of,
            timelines: sizes.iter().map(|_| Timeline::new()).collect(),
            remaining,
            clusters_active,
            cand: Vec::new(),
            op_scratch: Vec::new(),
            colliders: Vec::new(),
            blankers: Vec::new(),
            collider_search: 0,
            need_own_tx,
        }
    }

    /// Register the next node (ids are assigned in call order and must
    /// match the topology size by the time `run` is called).
    pub fn add_node(&mut self, spec: NodeSpec) -> usize {
        self.nodes.push(spec, self.cfg.seed)
    }

    /// Stop as soon as every ordered pair has discovered each other.
    /// Disconnected topologies complete cluster by cluster: a finished
    /// cluster's remaining events are dropped, and the run ends when the
    /// last cluster finishes (clusters with undiscoverable pairs run to
    /// the horizon, as before).
    pub fn stop_when_all_discovered(&mut self, yes: bool) {
        self.stop_when_complete = yes;
    }

    /// Swap in the binary-heap reference queue (the implementation the
    /// timing wheel replaced). An escape hatch for the wheel-vs-heap
    /// equivalence suite and for bisection; call before
    /// [`NetSimulator::run`].
    pub fn use_heap_queue(&mut self) {
        self.queue = EventQueue::new_heap();
    }

    /// Run to completion and return the cohort report.
    ///
    /// The event loop is a profiling hook: processed events are flushed
    /// to the `netsim.events` counter in 2^16 batches **plus a final
    /// flush on drain** (so short shards are counted exactly), wheel
    /// pressure goes to the `netsim.wheel_depth_max` /
    /// `netsim.wheel_cascades` / `netsim.wheel_overflow_max` gauges
    /// (`netsim.heap_depth_max` on the reference-heap path), the
    /// end-of-run rate to `netsim.events_per_sec`, and (for standalone
    /// runs — the sweep pool's display takes priority inside a sweep)
    /// simulated time drives a stderr progress line toward `t_end`. None
    /// of it runs unless observability is enabled, and none of it feeds
    /// back into the simulation.
    pub fn run(mut self) -> CohortReport {
        assert_eq!(
            self.nodes.len(),
            self.topo.len(),
            "node count must match topology size"
        );
        for i in 0..self.nodes.len() {
            self.queue.push(self.nodes.join[i], EventKind::Join(i));
            if let Some(leave) = self.nodes.leave_of(i) {
                self.queue.push(leave, EventKind::Leave(i));
            }
        }
        // Flush-batched so the hot loop touches no shared atomics; 2^16
        // events ≈ a few ms of work, plenty fine-grained for profiling.
        const FLUSH_EVERY: u64 = 1 << 16;
        let progress = Progress::new("netsim", self.cfg.t_end.0);
        let observing = nd_obs::metrics::enabled() || progress.is_active();
        let wall_start = observing.then(std::time::Instant::now);
        let mut total_events: u64 = 0;
        let mut flushed: u64 = 0;
        let mut depth_high: usize = 0;
        // only the reference heap needs per-event depth sampling — the
        // wheel tracks its own high-water internally
        let track_depth = observing && self.queue.wheel_stats().is_none();
        // the per-event completed-cluster discard can only ever fire with 2+
        // clusters: a single cluster's completion exits the loop before the
        // next pop, so skip the owner lookup entirely on the common path
        let stopping = self.stop_when_complete && self.remaining.len() > 1;
        let stop_all = self.stop_when_complete;
        while !(stop_all && self.clusters_active == 0) {
            // fire any packet end due before the next queued event; its
            // reserved seq makes the (time, seq) order identical to
            // having scheduled it
            if let Some(&(end, seq, idx)) = self.pending_ends.front() {
                if self
                    .queue
                    .peek_key()
                    .is_none_or(|(at, qseq)| (end, seq) < (at, qseq))
                {
                    self.pending_ends.pop_front();
                    if end > self.cfg.t_end {
                        self.queue.advance(end);
                        break;
                    }
                    if stopping
                        && self.remaining
                            [self.cluster_of[self.transmissions[idx - self.tx_base].node] as usize]
                            == 0
                    {
                        continue;
                    }
                    self.queue.advance(end);
                    self.handle_tx_end(idx);
                    total_events += 1;
                    if observing {
                        if track_depth {
                            depth_high = depth_high.max(self.queue.len());
                        }
                        if total_events - flushed == FLUSH_EVERY {
                            nd_obs::metrics::add("netsim.events", FLUSH_EVERY);
                            flushed = total_events;
                            progress.update(end.0);
                        }
                    }
                    continue;
                }
            }
            let Some(ev) = self.queue.pop() else { break };
            if ev.at > self.cfg.t_end {
                self.queue.advance(ev.at);
                break;
            }
            if stopping {
                // a completed cluster's tail events are discarded without
                // advancing the clock — exactly what a per-shard run does
                // by stopping, so sharded and whole-cohort runs agree
                let i = match ev.kind {
                    EventKind::Join(i) | EventKind::Leave(i) | EventKind::Wake(i) => i,
                    EventKind::TxStart { node, .. } | EventKind::RxStart { node, .. } => {
                        node as usize
                    }
                };
                if self.remaining[self.cluster_of[i] as usize] == 0 {
                    continue;
                }
            }
            self.queue.advance(ev.at);
            match ev.kind {
                EventKind::Join(i) => self.handle_join(i),
                EventKind::Leave(i) => self.handle_leave(i),
                EventKind::Wake(i) => self.handle_wake(i),
                EventKind::TxStart { node, payload } => self.handle_tx_start(node, payload, ev.at),
                EventKind::RxStart { node, end } => {
                    let i = node as usize;
                    // a stale window of a node that has since left
                    // (the old design cleared it from the buffer)
                    if self.nodes.present[i] {
                        self.timelines[self.cluster_of[i] as usize]
                            .push(Interval::new(ev.at, end), node);
                        self.nodes.stats[i].n_rx_windows += 1;
                        self.nodes.stats[i].rx_time += end - ev.at;
                    }
                }
            }
            total_events += 1;
            if observing {
                if track_depth {
                    depth_high = depth_high.max(self.queue.len());
                }
                if total_events - flushed == FLUSH_EVERY {
                    nd_obs::metrics::add("netsim.events", FLUSH_EVERY);
                    flushed = total_events;
                    progress.update(ev.at.0);
                }
            }
        }
        if observing {
            // flush-on-drain: the remainder batch must land even for runs
            // shorter than one flush interval (a 10⁶-node cohort is many
            // such shards — undercounting them skews the cohort gauges)
            nd_obs::metrics::add("netsim.events", total_events - flushed);
            match self.queue.wheel_stats() {
                Some((wheel_depth, cascades, overflow_max)) => {
                    nd_obs::metrics::gauge_max("netsim.wheel_depth_max", wheel_depth as f64);
                    nd_obs::metrics::add("netsim.wheel_cascades", cascades);
                    nd_obs::metrics::gauge_max("netsim.wheel_overflow_max", overflow_max as f64);
                }
                None => nd_obs::metrics::gauge_max("netsim.heap_depth_max", depth_high as f64),
            }
            if let Some(start) = wall_start {
                let secs = start.elapsed().as_secs_f64();
                if secs > 0.0 {
                    nd_obs::metrics::gauge_max("netsim.events_per_sec", total_events as f64 / secs);
                }
            }
        }
        progress.finish();
        let elapsed = self.queue.now().min(self.cfg.t_end);
        let n = self.nodes.len();
        CohortReport {
            elapsed,
            events: total_events,
            discovery: self.discovery,
            packets: self.packets,
            stats: std::mem::take(&mut self.nodes.stats),
            joins: std::mem::take(&mut self.nodes.join),
            leaves: (0..n).map(|i| self.nodes.leave_of(i)).collect(),
            cluster: self.cluster_label,
        }
    }

    fn handle_join(&mut self, i: usize) {
        self.nodes.present[i] = true;
        self.arm(i);
    }

    /// Refill node `i`'s buffer from its behaviour if empty (translating
    /// local ops to simulation time) and schedule a wake for the front.
    fn arm(&mut self, i: usize) {
        let now = self.queue.now();
        if !self.nodes.present[i] {
            return;
        }
        while !self.nodes.proactive_done[i] {
            // the behaviour lives on the node's local timeline: 0 = join
            let join = self.nodes.join[i];
            let local_after = now.saturating_sub(join);
            let mut ops = std::mem::take(&mut self.op_scratch);
            ops.clear();
            self.nodes.behavior[i].next_ops_into(local_after, &mut self.nodes.rng[i], &mut ops);
            if ops.is_empty() {
                self.nodes.proactive_done[i] = true;
                self.op_scratch = ops;
                break;
            }
            let mut last = Tick::ZERO;
            for &op in ops.iter() {
                debug_assert!(op.at() >= local_after, "behavior emitted an op in the past");
                let op = shift_op(op, join, now);
                last = last.max(op.at());
                self.enqueue_op(i, op);
            }
            self.op_scratch = ops;
            // refill again when the batch runs out. The tick lands on the
            // batch's last op and is pushed after it, so it fires once
            // everything here has been handled; refills are cursor-driven
            // (a behaviour emits from where it left off, to a fixed chunk
            // boundary), so the refill instant does not change the op
            // stream. A batch wholly due right now — possible at a join
            // onto a busy instant — refills again immediately: the old
            // same-instant wake-then-refill cascade, minus the events.
            if last > now {
                self.queue.push(last, EventKind::Wake(i));
                break;
            }
        }
    }

    /// Route one simulation-time op straight onto the event queue — no
    /// per-node buffer, no per-op wake dispatch. Departures and the
    /// horizon silence pending ops exactly as they silenced the old
    /// buffered wakes: the op events check presence when they fire.
    fn enqueue_op(&mut self, i: usize, op: Op) {
        match op {
            Op::Rx { at, duration } => self.queue.push(
                at,
                EventKind::RxStart {
                    node: i as u32,
                    end: at + duration,
                },
            ),
            Op::Tx { at, payload } => self.queue.push(
                at,
                EventKind::TxStart {
                    node: i as u32,
                    payload,
                },
            ),
        }
    }

    /// A refill tick: the node's last emitted batch has just run out.
    fn handle_wake(&mut self, i: usize) {
        self.arm(i);
    }

    /// A scheduled beacon starts: record it on the shared channel and
    /// book its `TxEnd`.
    fn handle_tx_start(&mut self, node: u32, payload: u64, at: Tick) {
        let i = node as usize;
        if !self.nodes.present[i] {
            return; // a stale beacon of a node that has since left
        }
        let iv = Interval::new(at, at + self.cfg.radio.omega);
        if self.need_own_tx {
            self.nodes.own_tx[i].push(iv);
            if self.nodes.own_tx[i].len() & 63 == 0 {
                // nodes that transmit but rarely pass geometry never reach
                // the blanking path; prune here so their own-tx logs stay
                // bounded regardless
                let horizon = self.prune_horizon(at);
                self.prune_own_tx(i, horizon);
            }
        }
        self.nodes.stats[i].n_tx += 1;
        self.nodes.stats[i].tx_time += self.cfg.radio.omega;
        self.packets.sent += 1;
        let idx = self.tx_base + self.transmissions.len();
        self.transmissions.push_back(TxRecord {
            node: i,
            iv,
            payload,
            aborted: false,
        });
        let seq = self.queue.alloc_seq();
        self.pending_ends.push_back((iv.end, seq, idx));
    }

    fn handle_leave(&mut self, i: usize) {
        let now = self.queue.now();
        self.nodes.present[i] = false;
        // truncate listening windows that extend past departure (and give
        // the unused tail back to the duty-cycle accounting); the new end
        // is clamped to ≥ start so the timeline stays sorted by start —
        // a wholly-future window becomes empty in place
        let tl = &mut self.timelines[self.cluster_of[i] as usize];
        for e in tl.entries.iter_mut().skip(tl.prune) {
            if e.1 as usize == i && e.0.end > now {
                let cut_start = e.0.start.max(now);
                self.nodes.stats[i].rx_time = self.nodes.stats[i]
                    .rx_time
                    .saturating_sub(e.0.end - cut_start);
                e.0 = Interval::new(e.0.start, cut_start);
            }
        }
        // an in-flight packet is cut short: the truncated airtime still
        // interferes, but the packet is corrupt
        for tx in self.transmissions.iter_mut() {
            if tx.node == i && tx.iv.end > now {
                let cut_start = tx.iv.start.min(now);
                self.nodes.stats[i].tx_time =
                    self.nodes.stats[i].tx_time.saturating_sub(tx.iv.end - now);
                tx.iv = Interval::new(cut_start, now);
                tx.aborted = true;
            }
        }
    }

    fn handle_tx_end(&mut self, idx: usize) {
        let (sender, iv, payload, aborted) = {
            let tx = &self.transmissions[idx - self.tx_base];
            (tx.node, tx.iv, tx.payload, tx.aborted)
        };
        self.prune_tx(iv.start);
        if aborted || iv.is_empty() {
            return; // sender left mid-packet; nothing deliverable
        }
        let horizon = self.prune_horizon(iv.start);

        // one pass over the retained records: collision candidates plus
        // start-model half-duplex blankers
        let start_model = matches!(self.cfg.overlap, nd_core::coverage::OverlapModel::Start);
        if self.cfg.collisions || (self.cfg.half_duplex && start_model) {
            self.scan_tx(idx, iv);
        }
        let colliders = std::mem::take(&mut self.colliders);
        let blankers = std::mem::take(&mut self.blankers);

        // candidate receivers: owners of scheduled windows overlapping the
        // packet, found by binary search in the cluster's listen timeline
        // (audibility never crosses a cluster boundary, so only the
        // sender's own neighborhood is consulted)
        let cluster = self.cluster_of[sender] as usize;
        let mut cand = std::mem::take(&mut self.cand);
        {
            let tl = &mut self.timelines[cluster];
            let lo = tl.candidates_from(iv.start, horizon);
            for &(w, node) in &tl.entries[lo..] {
                if w.start >= iv.end {
                    break;
                }
                let cut = w.intersect(&iv);
                if !cut.is_empty() {
                    cand.push((node, cut));
                }
            }
        }
        // group windows by receiver, ascending id — the stable sort keeps
        // each node's windows in schedule order, so the per-node cover is
        // exactly what its own window list would have produced
        cand.sort_by_key(|&(node, _)| node);

        let mut reactive: Vec<(usize, Vec<Op>)> = Vec::new();
        let mut at = 0;
        while at < cand.len() {
            let rx = cand[at].0 as usize;
            let group_start = at;
            while at < cand.len() && cand[at].0 as usize == rx {
                at += 1;
            }
            let windows = &cand[group_start..at];
            if !self.topo.in_range(sender, rx) {
                continue;
            }
            // the receiver must be in the network for the whole packet
            if !self.nodes.present_during(rx, iv) || !self.nodes.present[rx] {
                continue;
            }
            // geometry against the scheduled windows, then half-duplex
            // blanking (Appendix A.5); under the paper's start-of-packet
            // overlap model both reduce to point queries — no interval
            // algebra on the hot path
            if start_model {
                if !windows.iter().any(|&(_, w)| w.contains(iv.start)) {
                    continue; // not receivable at all — not counted as a loss
                }
                if self.cfg.half_duplex && blankers.iter().any(|&b| b as usize == rx) {
                    self.packets.lost_self_blocking += 1;
                    continue;
                }
            } else {
                let scheduled = IntervalSet::from_intervals(windows.iter().map(|&(_, w)| w));
                if !self.geometry_ok(&scheduled, iv) {
                    continue; // not receivable at all — not counted as a loss
                }
                if self.cfg.half_duplex {
                    let effective = self.blanked_cover(rx, iv, &scheduled);
                    if !self.geometry_ok(&effective, iv) {
                        self.packets.lost_self_blocking += 1;
                        continue;
                    }
                }
            }
            // collisions: any other in-range transmission overlapping the
            // packet destroys it at this receiver (ALOHA, Eq. 12)
            if self.cfg.collisions {
                let collided = colliders.iter().any(|&q| {
                    let tx = &self.transmissions[q - self.tx_base];
                    tx.node != rx && self.topo.in_range(tx.node, rx)
                });
                if collided {
                    self.packets.lost_collision += 1;
                    continue;
                }
            }
            // fault injection, rolled on the receiver's private stream
            let p_drop = self.cfg.drop_probability + self.topo.link_loss(sender, rx);
            if p_drop > 0.0 && self.nodes.rng[rx].gen::<f64>() < p_drop {
                self.packets.lost_fault += 1;
                continue;
            }
            // success
            self.packets.received += 1;
            self.nodes.stats[rx].n_received += 1;
            if self.discovery.one_way(rx, sender).is_none() {
                // a first contact for this ordered pair: count the
                // cluster down toward completion
                self.remaining[cluster] -= 1;
                if self.remaining[cluster] == 0 {
                    self.clusters_active -= 1;
                }
            }
            self.discovery.record(rx, sender, iv.start);
            let local_at = iv.start.saturating_sub(self.nodes.join[rx]);
            let ops = self.nodes.behavior[rx].on_reception(
                local_at,
                sender,
                payload,
                &mut self.nodes.rng[rx],
            );
            if !ops.is_empty() {
                reactive.push((rx, ops));
            }
        }
        let now = self.queue.now();
        for (rx, ops) in reactive {
            let join = self.nodes.join[rx];
            for op in ops {
                self.enqueue_op(rx, shift_op(op, join, now));
            }
        }
        let mut colliders = colliders;
        colliders.clear();
        self.colliders = colliders;
        let mut blankers = blankers;
        blankers.clear();
        self.blankers = blankers;
        cand.clear();
        self.cand = cand;
    }

    /// How far back a record can still matter at packet-start `t`: past
    /// this horizon nothing overlaps the packet or its blanking expansion.
    fn prune_horizon(&self, t: Tick) -> Tick {
        let guard =
            self.cfg.radio.omega + self.cfg.radio.do_rx_tx + self.cfg.radio.do_tx_rx + Tick(1);
        t.saturating_sub(guard * 4)
    }

    /// Advance node `i`'s lazy own-tx prune cursor past records ending
    /// before `horizon`, compacting the log when the dead prefix dominates.
    fn prune_own_tx(&mut self, i: usize, horizon: Tick) {
        let own_tx = &mut self.nodes.own_tx[i];
        let prune = &mut self.nodes.own_tx_prune[i];
        while *prune < own_tx.len() && own_tx[*prune].end < horizon {
            *prune += 1;
        }
        if *prune > 64 && *prune * 2 >= own_tx.len() {
            own_tx.drain(..*prune);
            *prune = 0;
        }
    }

    /// Subtract the receiver's own transmissions (expanded by turnaround
    /// times) from a listening cover, advancing the node's lazy prune
    /// cursor past spent transmissions.
    fn blanked_cover(&mut self, rx: usize, packet: Interval, cover: &IntervalSet) -> IntervalSet {
        self.prune_own_tx(rx, self.prune_horizon(packet.start));
        let radio = &self.cfg.radio;
        let prune = self.nodes.own_tx_prune[rx];
        let blanked = self.nodes.own_tx[rx][prune..].iter().map(|tx| {
            Interval::new(
                tx.start.saturating_sub(radio.do_rx_tx),
                tx.end + radio.do_tx_rx,
            )
        });
        cover.subtract(&IntervalSet::from_intervals(blanked))
    }

    /// Apply the configured overlap model to a listening cover.
    fn geometry_ok(&self, cover: &IntervalSet, packet: Interval) -> bool {
        match self.cfg.overlap {
            nd_core::coverage::OverlapModel::Start => cover.contains(packet.start),
            nd_core::coverage::OverlapModel::AnyOverlap => !cover.is_empty(),
            nd_core::coverage::OverlapModel::FullPacket => {
                cover.intervals().len() == 1 && {
                    let iv = cover.intervals()[0];
                    iv.start <= packet.start && iv.end >= packet.end
                }
            }
        }
    }

    /// One sequential pass over the retained transmission records around
    /// `iv`, filling the scratch lists: `colliders` gets the absolute
    /// indices of *other* records overlapping the packet (ALOHA, Eq. 12),
    /// `blankers` the senders whose record — expanded by the turnaround
    /// times — covers the packet start (start-model half-duplex test;
    /// a node is blanked iff its id appears here).
    ///
    /// Records are kept in nondecreasing start order, are at most ω long
    /// (leave-truncation only shortens them), and queries arrive with
    /// nondecreasing packet starts, so the lower bound is a monotone
    /// cursor — amortized O(1) per call, one cache-friendly walk instead
    /// of per-node log lookups.
    fn scan_tx(&mut self, idx: usize, iv: Interval) {
        let radio = &self.cfg.radio;
        // a record can still matter if it overlaps the packet (collision)
        // or its expansion reaches the packet start (blanking): both imply
        // `start + ω + do_tx_rx ≥ iv.start`
        let reach_back = radio.omega + radio.do_tx_rx;
        let mut lo = self.collider_search.max(self.tx_base);
        while lo - self.tx_base < self.transmissions.len()
            && self.transmissions[lo - self.tx_base].iv.start + reach_back < iv.start
        {
            lo += 1;
        }
        self.collider_search = lo;
        // blanking looks ahead of the packet too: a record starting within
        // `do_rx_tx` after the packet start still blanks its sender
        let scan_end = iv.end.max(iv.start + radio.do_rx_tx + Tick(1));
        for local in (lo - self.tx_base)..self.transmissions.len() {
            let tx = &self.transmissions[local];
            if tx.iv.start >= scan_end {
                break;
            }
            let q = self.tx_base + local;
            if q != idx && tx.iv.overlaps(&iv) {
                self.colliders.push(q);
            }
            if Interval::new(
                tx.iv.start.saturating_sub(radio.do_rx_tx),
                tx.iv.end + radio.do_tx_rx,
            )
            .contains(iv.start)
            {
                self.blankers.push(tx.node as u32);
            }
        }
    }

    /// Drop transmission records that can no longer affect any packet
    /// decision. A record is only dropped once its own `TxEnd` has
    /// provably fired (its end — even a leave-truncated one — is within
    /// one packet length of the original end, far inside the horizon
    /// guard), so absolute indices held by pending events stay valid.
    fn prune_tx(&mut self, t: Tick) {
        let horizon = self.prune_horizon(t);
        while let Some(front) = self.transmissions.front() {
            if front.iv.end >= horizon {
                break;
            }
            self.transmissions.pop_front();
            self.tx_base += 1;
        }
    }
}

/// Translate a node-local op to simulation time (`+join`), clamped so a
/// cascade never schedules into the past.
fn shift_op(op: Op, join: Tick, at_least: Tick) -> Op {
    match op {
        Op::Tx { at, payload } => Op::Tx {
            at: (at + join).max(at_least),
            payload,
        },
        Op::Rx { at, duration } => Op::Rx {
            at: (at + join).max(at_least),
            duration,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_core::params::RadioParams;
    use nd_core::schedule::{BeaconSeq, ReceptionWindows, Schedule};
    use nd_sim::ScheduleBehavior;

    fn radio(omega_us: u64) -> RadioParams {
        RadioParams::ideal(Tick::from_micros(omega_us), 1.0)
    }

    fn adv(period_us: u64, phase_us: u64) -> Schedule {
        Schedule::tx_only(
            BeaconSeq::uniform(
                1,
                Tick::from_micros(period_us),
                Tick::from_micros(4),
                Tick::from_micros(phase_us),
            )
            .unwrap(),
        )
    }

    fn scan(window_us: u64, period_us: u64) -> Schedule {
        Schedule::rx_only(
            ReceptionWindows::single(
                Tick::ZERO,
                Tick::from_micros(window_us),
                Tick::from_micros(period_us),
            )
            .unwrap(),
        )
    }

    fn base_cfg(ms: u64) -> SimConfig {
        SimConfig::paper_baseline(Tick::from_millis(ms), 42).with_radio(radio(4))
    }

    fn on(sched: Schedule) -> NodeSpec {
        NodeSpec::always_on(Box::new(ScheduleBehavior::new(sched)))
    }

    #[test]
    fn always_on_pair_matches_pairwise_engine() {
        // identical setup on both engines → identical receptions
        let mut net = NetSimulator::new(base_cfg(10), Topology::full(2));
        net.add_node(on(adv(100, 10)));
        net.add_node(on(scan(50, 200)));
        let net_report = net.run();

        let mut pair = nd_sim::Simulator::new(base_cfg(10), Topology::full(2));
        pair.add_device(Box::new(ScheduleBehavior::new(adv(100, 10))));
        pair.add_device(Box::new(ScheduleBehavior::new(scan(50, 200))));
        let pair_report = pair.run();

        assert_eq!(
            net_report.discovery.one_way(1, 0),
            pair_report.discovery.one_way(1, 0)
        );
        assert_eq!(
            net_report.discovery.one_way(1, 0),
            Some(Tick::from_micros(10))
        );
        assert_eq!(net_report.packets.sent, pair_report.packets.sent);
        assert_eq!(net_report.packets.received, pair_report.packets.received);
    }

    #[test]
    fn late_joiner_hears_nothing_before_joining() {
        // scanner joins at 5 ms; the advertiser's beacons before that are
        // lost, and its schedule (window at local 0) starts at join
        let mut net = NetSimulator::new(base_cfg(10), Topology::full(2));
        net.add_node(on(adv(100, 10)));
        net.add_node(NodeSpec::windowed(
            Box::new(ScheduleBehavior::new(scan(50, 200))),
            Tick::from_millis(5),
            None,
        ));
        let report = net.run();
        let first = report.discovery.one_way(1, 0).unwrap();
        assert!(
            first >= Tick::from_millis(5),
            "heard before joining: {first:?}"
        );
        // beacons every 100 µs land in the first local window quickly
        assert!(first < Tick::from_millis(6));
    }

    #[test]
    fn leaver_hears_nothing_after_leaving() {
        // the scanner leaves at 2 ms, the advertiser only joins at 3 ms:
        // never co-present, so nothing may be discovered
        let mut net = NetSimulator::new(base_cfg(10), Topology::full(2));
        net.add_node(NodeSpec::windowed(
            Box::new(ScheduleBehavior::new(adv(100, 10))),
            Tick::from_millis(3),
            None,
        ));
        net.add_node(NodeSpec::windowed(
            Box::new(ScheduleBehavior::new(scan(200, 200))),
            Tick::ZERO,
            Some(Tick::from_millis(2)),
        ));
        let report = net.run();
        assert_eq!(report.discovery.one_way(1, 0), None);
        assert_eq!(report.copresence(0, 1), None);
        // and the scanner's listening accounting stops at departure
        assert!(report.stats[1].rx_time <= Tick::from_millis(2));
    }

    #[test]
    fn collisions_destroy_overlapping_beacons() {
        let mut net = NetSimulator::new(base_cfg(1), Topology::full(3));
        net.add_node(on(adv(100, 10)));
        net.add_node(on(adv(100, 10)));
        net.add_node(on(scan(100, 100)));
        let report = net.run();
        assert_eq!(report.discovery.one_way(2, 0), None);
        assert_eq!(report.discovery.one_way(2, 1), None);
        assert!(report.packets.lost_collision > 0);

        let mut cfg = base_cfg(1);
        cfg.collisions = false;
        let mut net = NetSimulator::new(cfg, Topology::full(3));
        net.add_node(on(adv(100, 10)));
        net.add_node(on(adv(100, 10)));
        net.add_node(on(scan(100, 100)));
        let report = net.run();
        assert!(report.discovery.one_way(2, 0).is_some());
        assert!(report.discovery.one_way(2, 1).is_some());
    }

    #[test]
    fn departed_node_no_longer_collides() {
        // two advertisers collide while both present; after node 1 leaves
        // at 0.5 ms, node 0's beacons get through
        let mut net = NetSimulator::new(base_cfg(2), Topology::full(3));
        net.add_node(on(adv(100, 10)));
        net.add_node(NodeSpec::windowed(
            Box::new(ScheduleBehavior::new(adv(100, 10))),
            Tick::ZERO,
            Some(Tick::from_micros(500)),
        ));
        net.add_node(on(scan(100, 100)));
        let report = net.run();
        let first = report.discovery.one_way(2, 0).unwrap();
        assert!(first >= Tick::from_micros(500), "{first:?}");
        assert_eq!(report.discovery.one_way(2, 1), None);
        assert!(report.packets.lost_collision > 0);
    }

    #[test]
    fn early_stop_on_cohort_completion() {
        let sched = |phase_us: u64| {
            Schedule::full(
                BeaconSeq::uniform(
                    1,
                    Tick::from_micros(300),
                    Tick::from_micros(4),
                    Tick::from_micros(phase_us),
                )
                .unwrap(),
                ReceptionWindows::single(
                    Tick::from_micros(50),
                    Tick::from_micros(200),
                    Tick::from_micros(300),
                )
                .unwrap(),
            )
        };
        let mut net = NetSimulator::new(base_cfg(1000), Topology::full(3));
        // beacon offsets inside everyone's [50, 250) µs window, spaced so
        // they neither collide nor hit the senders' own blanking
        for phase in [60u64, 120, 180] {
            net.add_node(on(sched(phase)));
        }
        net.stop_when_all_discovered(true);
        let report = net.run();
        assert!(report.discovery.complete());
        assert!(report.elapsed < Tick::from_millis(5), "stopped early");
    }

    #[test]
    fn runs_are_deterministic() {
        let build = || {
            let mut cfg = base_cfg(20);
            cfg.drop_probability = 0.3;
            cfg.seed = 99;
            let mut net = NetSimulator::new(cfg, Topology::full(5));
            for phase in [3u64, 31, 57, 83] {
                net.add_node(on(adv(97, phase)));
            }
            net.add_node(on(scan(53, 211)));
            net.run()
        };
        let a = build();
        let b = build();
        for s in 0..4 {
            assert_eq!(a.discovery.one_way(4, s), b.discovery.one_way(4, s));
        }
        assert_eq!(a.packets.received, b.packets.received);
        assert_eq!(a.packets.lost_fault, b.packets.lost_fault);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn heap_and_wheel_engines_agree() {
        let run = |heap: bool| {
            let mut cfg = base_cfg(20);
            cfg.drop_probability = 0.2;
            cfg.seed = 7;
            let mut net = NetSimulator::new(cfg, Topology::full(4));
            if heap {
                net.use_heap_queue();
            }
            for phase in [3u64, 31, 57] {
                net.add_node(on(adv(97, phase)));
            }
            net.add_node(on(scan(53, 211)));
            net.run()
        };
        let wheel = run(false);
        let heap = run(true);
        assert_eq!(wheel.events, heap.events);
        assert_eq!(wheel.elapsed, heap.elapsed);
        assert_eq!(wheel.packets, heap.packets);
        assert_eq!(wheel.discovery, heap.discovery);
        assert_eq!(wheel.stats, heap.stats);
    }

    #[test]
    fn clustered_topology_isolates_neighborhoods() {
        // nodes {0, 2} on channel 0, {1, 3} on channel 1: discovery never
        // crosses the cluster boundary, and each cluster completes on its
        // own under stop_when_all_discovered
        let sched = |phase_us: u64| {
            Schedule::full(
                BeaconSeq::uniform(
                    1,
                    Tick::from_micros(300),
                    Tick::from_micros(4),
                    Tick::from_micros(phase_us),
                )
                .unwrap(),
                ReceptionWindows::single(
                    Tick::from_micros(50),
                    Tick::from_micros(200),
                    Tick::from_micros(300),
                )
                .unwrap(),
            )
        };
        let topo = Topology::clusters(vec![0, 1, 0, 1]);
        let mut net = NetSimulator::new(base_cfg(1000), topo);
        for phase in [60u64, 120, 130, 190] {
            net.add_node(on(sched(phase)));
        }
        net.stop_when_all_discovered(true);
        let report = net.run();
        assert!(report.elapsed < Tick::from_millis(5), "stopped early");
        assert_eq!(report.cluster, vec![0, 1, 0, 1]);
        for (rx, tx) in [(0, 2), (2, 0), (1, 3), (3, 1)] {
            assert!(report.discovery.one_way(rx, tx).is_some(), "{rx} ← {tx}");
        }
        for (rx, tx) in [(0, 1), (1, 0), (2, 3), (3, 2)] {
            assert_eq!(report.discovery.one_way(rx, tx), None, "{rx} ← {tx}");
        }
    }

    #[test]
    #[should_panic(expected = "node count must match topology")]
    fn topology_size_is_enforced() {
        let net = NetSimulator::new(base_cfg(1), Topology::full(2));
        let _ = net.run();
    }
}
