//! The N-node discrete-event engine.
//!
//! [`NetSimulator`] generalizes the pairwise `nd_sim::Simulator` to a
//! cohort: every node has a presence window (join/leave churn), its own
//! RNG stream, and an arbitrary [`nd_sim::Behavior`]; the shared channel
//! applies
//! the paper's reception model (overlap geometry, half-duplex blanking,
//! ALOHA collisions, fault injection). With two always-on nodes and the
//! same configuration it reproduces the pairwise engine's receptions
//! exactly — the two-node simulator is the N = 2 special case (the
//! cross-validation tests pin this down).
//!
//! Protocols run on node-local timelines (0 = the node's join instant), so
//! the same behaviour describes an early bird and a late joiner; clock
//! drift composes underneath via [`nd_sim::Drifting`].

use crate::event::{EventKind, EventQueue};
use crate::metrics::CohortReport;
use crate::node::{Node, NodeSpec};
use nd_core::interval::{Interval, IntervalSet};
use nd_core::time::Tick;
use nd_obs::Progress;
use nd_sim::{DiscoveryMatrix, Op, PacketCounters, SimConfig, Topology};
use rand::Rng;

/// One transmission on the shared channel.
struct TxRecord {
    node: usize,
    iv: Interval,
    payload: u64,
    /// The sender left mid-packet: the truncated airtime still interferes,
    /// but the packet is corrupt and never delivered.
    aborted: bool,
}

/// The multi-node discrete-event simulator.
///
/// ```
/// use nd_netsim::{NetSimulator, NodeSpec};
/// use nd_sim::{ScheduleBehavior, SimConfig, Topology};
/// use nd_core::{BeaconSeq, RadioParams, ReceptionWindows, Schedule, Tick};
///
/// // three nodes that both beacon and listen discover each other quickly
/// let sched = Schedule::full(
///     BeaconSeq::uniform(1, Tick::from_micros(300), Tick::from_micros(4), Tick::ZERO).unwrap(),
///     ReceptionWindows::single(Tick::from_micros(50), Tick::from_micros(200), Tick::from_micros(300)).unwrap(),
/// );
/// let mut radio = RadioParams::paper_default();
/// radio.omega = Tick::from_micros(4);
/// let cfg = SimConfig::paper_baseline(Tick::from_millis(20), 7).with_radio(radio);
/// let mut sim = NetSimulator::new(cfg, Topology::full(3));
/// for phase_us in [0u64, 70, 170] {
///     let behavior = ScheduleBehavior::with_phase(sched.clone(), Tick::from_micros(phase_us));
///     sim.add_node(NodeSpec::always_on(Box::new(behavior)));
/// }
/// let report = sim.run();
/// assert!(report.discovery.complete());
/// ```
pub struct NetSimulator {
    cfg: SimConfig,
    topo: Topology,
    nodes: Vec<Node>,
    transmissions: Vec<TxRecord>,
    tx_prune: usize,
    queue: EventQueue,
    discovery: DiscoveryMatrix,
    packets: PacketCounters,
    stop_when_complete: bool,
}

impl NetSimulator {
    /// Create a simulator; add nodes with [`NetSimulator::add_node`], then
    /// call [`NetSimulator::run`]. The config's `seed` roots every node's
    /// private RNG stream.
    pub fn new(cfg: SimConfig, topo: Topology) -> Self {
        let n = topo.len();
        NetSimulator {
            cfg,
            topo,
            nodes: Vec::with_capacity(n),
            transmissions: Vec::new(),
            tx_prune: 0,
            queue: EventQueue::new(),
            discovery: DiscoveryMatrix::new(n),
            packets: PacketCounters::default(),
            stop_when_complete: false,
        }
    }

    /// Register the next node (ids are assigned in call order and must
    /// match the topology size by the time `run` is called).
    pub fn add_node(&mut self, spec: NodeSpec) -> usize {
        let id = self.nodes.len();
        self.nodes.push(Node::new(spec, id, self.cfg.seed));
        id
    }

    /// Stop as soon as every ordered pair has discovered each other (only
    /// reachable when every node is present and audible; churned runs stop
    /// at the horizon instead).
    pub fn stop_when_all_discovered(&mut self, yes: bool) {
        self.stop_when_complete = yes;
    }

    /// Run to completion and return the cohort report.
    ///
    /// The event loop is a profiling hook: processed events are flushed
    /// to the `netsim.events` counter in batches, the high-water heap
    /// depth goes to the `netsim.heap_depth_max` gauge, the end-of-run
    /// rate to `netsim.events_per_sec`, and (for standalone runs — the
    /// sweep pool's display takes priority inside a sweep) simulated
    /// time drives a stderr progress line toward `t_end`. None of it
    /// runs unless observability is enabled, and none of it feeds back
    /// into the simulation.
    pub fn run(mut self) -> CohortReport {
        assert_eq!(
            self.nodes.len(),
            self.topo.len(),
            "node count must match topology size"
        );
        for (i, node) in self.nodes.iter().enumerate() {
            self.queue.push(node.join, EventKind::Join(i));
            if let Some(leave) = node.leave {
                self.queue.push(leave, EventKind::Leave(i));
            }
        }
        // Flush-batched so the hot loop touches no shared atomics; 2^16
        // events ≈ a few ms of work, plenty fine-grained for profiling.
        const FLUSH_EVERY: u64 = 1 << 16;
        let progress = Progress::new("netsim", self.cfg.t_end.0);
        let observing = nd_obs::metrics::enabled() || progress.is_active();
        let wall_start = observing.then(std::time::Instant::now);
        let mut batch: u64 = 0;
        let mut total_events: u64 = 0;
        let mut heap_high: usize = 0;
        while let Some(ev) = self.queue.pop() {
            if ev.at > self.cfg.t_end {
                break;
            }
            match ev.kind {
                EventKind::Join(i) => self.handle_join(i),
                EventKind::Leave(i) => self.handle_leave(i),
                EventKind::Wake(i) => self.handle_wake(i),
                EventKind::TxEnd(idx) => self.handle_tx_end(idx),
            }
            if observing {
                batch += 1;
                heap_high = heap_high.max(self.queue.len());
                if batch == FLUSH_EVERY {
                    total_events += batch;
                    batch = 0;
                    nd_obs::metrics::add("netsim.events", FLUSH_EVERY);
                    progress.update(ev.at.0);
                }
            }
            if self.stop_when_complete && self.discovery.complete() {
                break;
            }
        }
        if observing {
            total_events += batch;
            nd_obs::metrics::add("netsim.events", batch);
            nd_obs::metrics::gauge_max("netsim.heap_depth_max", heap_high as f64);
            if let Some(start) = wall_start {
                let secs = start.elapsed().as_secs_f64();
                if secs > 0.0 {
                    nd_obs::metrics::gauge_max("netsim.events_per_sec", total_events as f64 / secs);
                }
            }
        }
        progress.finish();
        let elapsed = self.queue.now().min(self.cfg.t_end);
        CohortReport {
            elapsed,
            discovery: self.discovery,
            packets: self.packets,
            stats: self.nodes.iter().map(|n| n.stats.clone()).collect(),
            joins: self.nodes.iter().map(|n| n.join).collect(),
            leaves: self.nodes.iter().map(|n| n.leave).collect(),
        }
    }

    fn handle_join(&mut self, i: usize) {
        self.nodes[i].present = true;
        self.arm(i);
    }

    /// Refill node `i`'s buffer from its behaviour if empty (translating
    /// local ops to simulation time) and schedule a wake for the front.
    fn arm(&mut self, i: usize) {
        let now = self.queue.now();
        let node = &mut self.nodes[i];
        if !node.present {
            return;
        }
        if node.buffer.is_empty() && !node.proactive_done {
            // the behaviour lives on the node's local timeline: 0 = join
            let local_after = now.saturating_sub(node.join);
            let join = node.join;
            let ops = node.behavior.next_ops(local_after, &mut node.rng);
            if ops.is_empty() {
                node.proactive_done = true;
            } else {
                for op in ops {
                    debug_assert!(op.at() >= local_after, "behavior emitted an op in the past");
                    node.insert_op(shift_op(op, join, now));
                }
            }
        }
        if let Some(front) = self.nodes[i].buffer.front() {
            let at = front.at();
            self.queue.push(at, EventKind::Wake(i));
        }
    }

    fn handle_wake(&mut self, i: usize) {
        let now = self.queue.now();
        if !self.nodes[i].present {
            return; // stale wake for a node that has left
        }
        let omega = self.cfg.radio.omega;
        while let Some(op) = self.nodes[i].buffer.front().copied() {
            if op.at() > now {
                break;
            }
            self.nodes[i].buffer.pop_front();
            match op {
                Op::Tx { at, payload } => {
                    let iv = Interval::new(at, at + omega);
                    let node = &mut self.nodes[i];
                    node.own_tx.push(iv);
                    node.stats.n_tx += 1;
                    node.stats.tx_time += omega;
                    self.packets.sent += 1;
                    let idx = self.transmissions.len();
                    self.transmissions.push(TxRecord {
                        node: i,
                        iv,
                        payload,
                        aborted: false,
                    });
                    self.queue.push(iv.end, EventKind::TxEnd(idx));
                }
                Op::Rx { at, duration } => {
                    let iv = Interval::new(at, at + duration);
                    let node = &mut self.nodes[i];
                    node.listen.push(iv);
                    node.stats.n_rx_windows += 1;
                    node.stats.rx_time += duration;
                }
            }
        }
        self.arm(i);
    }

    fn handle_leave(&mut self, i: usize) {
        let now = self.queue.now();
        let node = &mut self.nodes[i];
        node.present = false;
        node.buffer.clear();
        // truncate listening windows that extend past departure (and give
        // the unused tail back to the duty-cycle accounting)
        for w in node.listen.iter_mut().skip(node.listen_prune) {
            if w.end > now {
                let cut_start = w.start.max(now);
                node.stats.rx_time = node.stats.rx_time.saturating_sub(w.end - cut_start);
                *w = Interval::new(w.start.min(now), now);
            }
        }
        // an in-flight packet is cut short: the truncated airtime still
        // interferes, but the packet is corrupt
        for tx in self.transmissions.iter_mut().skip(self.tx_prune) {
            if tx.node == i && tx.iv.end > now {
                let cut_start = tx.iv.start.min(now);
                node.stats.tx_time = node.stats.tx_time.saturating_sub(tx.iv.end - now);
                tx.iv = Interval::new(cut_start, now);
                tx.aborted = true;
            }
        }
    }

    fn handle_tx_end(&mut self, idx: usize) {
        let (sender, iv, payload, aborted) = {
            let tx = &self.transmissions[idx];
            (tx.node, tx.iv, tx.payload, tx.aborted)
        };
        self.prune(iv.start);
        if aborted || iv.is_empty() {
            return; // sender left mid-packet; nothing deliverable
        }

        // transmissions overlapping this packet (for collisions)
        let colliders: Vec<usize> = self.overlapping_tx(idx, iv);

        let mut reactive: Vec<(usize, Vec<Op>)> = Vec::new();
        for rx in 0..self.nodes.len() {
            if !self.topo.in_range(sender, rx) {
                continue;
            }
            // the receiver must be in the network for the whole packet
            if !self.nodes[rx].present_during(iv) || !self.nodes[rx].present {
                continue;
            }
            // geometry against the scheduled windows
            let scheduled = self.listening_cover(rx, iv);
            if !self.geometry_ok(&scheduled, iv) {
                continue; // not receivable at all — not counted as a loss
            }
            // half-duplex blanking (Appendix A.5)
            if self.cfg.half_duplex {
                let effective = self.blanked_cover(rx, &scheduled);
                if !self.geometry_ok(&effective, iv) {
                    self.packets.lost_self_blocking += 1;
                    continue;
                }
            }
            // collisions: any other in-range transmission overlapping the
            // packet destroys it at this receiver (ALOHA, Eq. 12)
            if self.cfg.collisions {
                let collided = colliders.iter().any(|&q| {
                    let tx = &self.transmissions[q];
                    tx.node != rx && self.topo.in_range(tx.node, rx)
                });
                if collided {
                    self.packets.lost_collision += 1;
                    continue;
                }
            }
            // fault injection, rolled on the receiver's private stream
            let p_drop = self.cfg.drop_probability + self.topo.link_loss(sender, rx);
            if p_drop > 0.0 && self.nodes[rx].rng.gen::<f64>() < p_drop {
                self.packets.lost_fault += 1;
                continue;
            }
            // success
            self.packets.received += 1;
            self.nodes[rx].stats.n_received += 1;
            self.discovery.record(rx, sender, iv.start);
            let node = &mut self.nodes[rx];
            let local_at = iv.start.saturating_sub(node.join);
            let ops = node
                .behavior
                .on_reception(local_at, sender, payload, &mut node.rng);
            if !ops.is_empty() {
                reactive.push((rx, ops));
            }
        }
        let now = self.queue.now();
        for (rx, ops) in reactive {
            let join = self.nodes[rx].join;
            for op in ops {
                self.nodes[rx].insert_op(shift_op(op, join, now));
            }
            // re-arm: the new front may precede any pending wake
            if let Some(front) = self.nodes[rx].buffer.front() {
                let at = front.at();
                self.queue.push(at, EventKind::Wake(rx));
            }
        }
    }

    /// The receiver's scheduled listening intersected with the packet.
    fn listening_cover(&self, rx: usize, packet: Interval) -> IntervalSet {
        let node = &self.nodes[rx];
        let mut parts = Vec::new();
        for w in node.listen.iter().skip(node.listen_prune) {
            if w.start >= packet.end {
                break;
            }
            let cut = w.intersect(&packet);
            if !cut.is_empty() {
                parts.push(cut);
            }
        }
        IntervalSet::from_intervals(parts)
    }

    /// Subtract the receiver's own transmissions (expanded by turnaround
    /// times) from a listening cover.
    fn blanked_cover(&self, rx: usize, cover: &IntervalSet) -> IntervalSet {
        let node = &self.nodes[rx];
        let radio = &self.cfg.radio;
        let mut blanked = Vec::new();
        for tx in node.own_tx.iter().skip(node.own_tx_prune) {
            blanked.push(Interval::new(
                tx.start.saturating_sub(radio.do_rx_tx),
                tx.end + radio.do_tx_rx,
            ));
        }
        cover.subtract(&IntervalSet::from_intervals(blanked))
    }

    /// Apply the configured overlap model to a listening cover.
    fn geometry_ok(&self, cover: &IntervalSet, packet: Interval) -> bool {
        match self.cfg.overlap {
            nd_core::coverage::OverlapModel::Start => cover.contains(packet.start),
            nd_core::coverage::OverlapModel::AnyOverlap => !cover.is_empty(),
            nd_core::coverage::OverlapModel::FullPacket => {
                cover.intervals().len() == 1 && {
                    let iv = cover.intervals()[0];
                    iv.start <= packet.start && iv.end >= packet.end
                }
            }
        }
    }

    /// Transmissions (other than `idx`) overlapping `iv` in time.
    fn overlapping_tx(&self, idx: usize, iv: Interval) -> Vec<usize> {
        let mut out = Vec::new();
        for (q, tx) in self.transmissions.iter().enumerate().skip(self.tx_prune) {
            if tx.iv.start >= iv.end {
                break;
            }
            if q != idx && tx.iv.overlaps(&iv) {
                out.push(q);
            }
        }
        out
    }

    /// Advance prune pointers: anything ending well before `t` can no
    /// longer affect any packet decision.
    fn prune(&mut self, t: Tick) {
        let guard =
            self.cfg.radio.omega + self.cfg.radio.do_rx_tx + self.cfg.radio.do_tx_rx + Tick(1);
        let horizon = t.saturating_sub(guard * 4);
        while self.tx_prune < self.transmissions.len()
            && self.transmissions[self.tx_prune].iv.end < horizon
        {
            self.tx_prune += 1;
        }
        for node in &mut self.nodes {
            while node.listen_prune < node.listen.len()
                && node.listen[node.listen_prune].end < horizon
            {
                node.listen_prune += 1;
            }
            while node.own_tx_prune < node.own_tx.len()
                && node.own_tx[node.own_tx_prune].end < horizon
            {
                node.own_tx_prune += 1;
            }
        }
    }
}

/// Translate a node-local op to simulation time (`+join`), clamped so a
/// cascade never schedules into the past.
fn shift_op(op: Op, join: Tick, at_least: Tick) -> Op {
    match op {
        Op::Tx { at, payload } => Op::Tx {
            at: (at + join).max(at_least),
            payload,
        },
        Op::Rx { at, duration } => Op::Rx {
            at: (at + join).max(at_least),
            duration,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_core::params::RadioParams;
    use nd_core::schedule::{BeaconSeq, ReceptionWindows, Schedule};
    use nd_sim::ScheduleBehavior;

    fn radio(omega_us: u64) -> RadioParams {
        RadioParams::ideal(Tick::from_micros(omega_us), 1.0)
    }

    fn adv(period_us: u64, phase_us: u64) -> Schedule {
        Schedule::tx_only(
            BeaconSeq::uniform(
                1,
                Tick::from_micros(period_us),
                Tick::from_micros(4),
                Tick::from_micros(phase_us),
            )
            .unwrap(),
        )
    }

    fn scan(window_us: u64, period_us: u64) -> Schedule {
        Schedule::rx_only(
            ReceptionWindows::single(
                Tick::ZERO,
                Tick::from_micros(window_us),
                Tick::from_micros(period_us),
            )
            .unwrap(),
        )
    }

    fn base_cfg(ms: u64) -> SimConfig {
        SimConfig::paper_baseline(Tick::from_millis(ms), 42).with_radio(radio(4))
    }

    fn on(sched: Schedule) -> NodeSpec {
        NodeSpec::always_on(Box::new(ScheduleBehavior::new(sched)))
    }

    #[test]
    fn always_on_pair_matches_pairwise_engine() {
        // identical setup on both engines → identical receptions
        let mut net = NetSimulator::new(base_cfg(10), Topology::full(2));
        net.add_node(on(adv(100, 10)));
        net.add_node(on(scan(50, 200)));
        let net_report = net.run();

        let mut pair = nd_sim::Simulator::new(base_cfg(10), Topology::full(2));
        pair.add_device(Box::new(ScheduleBehavior::new(adv(100, 10))));
        pair.add_device(Box::new(ScheduleBehavior::new(scan(50, 200))));
        let pair_report = pair.run();

        assert_eq!(
            net_report.discovery.one_way(1, 0),
            pair_report.discovery.one_way(1, 0)
        );
        assert_eq!(
            net_report.discovery.one_way(1, 0),
            Some(Tick::from_micros(10))
        );
        assert_eq!(net_report.packets.sent, pair_report.packets.sent);
        assert_eq!(net_report.packets.received, pair_report.packets.received);
    }

    #[test]
    fn late_joiner_hears_nothing_before_joining() {
        // scanner joins at 5 ms; the advertiser's beacons before that are
        // lost, and its schedule (window at local 0) starts at join
        let mut net = NetSimulator::new(base_cfg(10), Topology::full(2));
        net.add_node(on(adv(100, 10)));
        net.add_node(NodeSpec::windowed(
            Box::new(ScheduleBehavior::new(scan(50, 200))),
            Tick::from_millis(5),
            None,
        ));
        let report = net.run();
        let first = report.discovery.one_way(1, 0).unwrap();
        assert!(
            first >= Tick::from_millis(5),
            "heard before joining: {first:?}"
        );
        // beacons every 100 µs land in the first local window quickly
        assert!(first < Tick::from_millis(6));
    }

    #[test]
    fn leaver_hears_nothing_after_leaving() {
        // the scanner leaves at 2 ms, the advertiser only joins at 3 ms:
        // never co-present, so nothing may be discovered
        let mut net = NetSimulator::new(base_cfg(10), Topology::full(2));
        net.add_node(NodeSpec::windowed(
            Box::new(ScheduleBehavior::new(adv(100, 10))),
            Tick::from_millis(3),
            None,
        ));
        net.add_node(NodeSpec::windowed(
            Box::new(ScheduleBehavior::new(scan(200, 200))),
            Tick::ZERO,
            Some(Tick::from_millis(2)),
        ));
        let report = net.run();
        assert_eq!(report.discovery.one_way(1, 0), None);
        assert_eq!(report.copresence(0, 1), None);
        // and the scanner's listening accounting stops at departure
        assert!(report.stats[1].rx_time <= Tick::from_millis(2));
    }

    #[test]
    fn collisions_destroy_overlapping_beacons() {
        let mut net = NetSimulator::new(base_cfg(1), Topology::full(3));
        net.add_node(on(adv(100, 10)));
        net.add_node(on(adv(100, 10)));
        net.add_node(on(scan(100, 100)));
        let report = net.run();
        assert_eq!(report.discovery.one_way(2, 0), None);
        assert_eq!(report.discovery.one_way(2, 1), None);
        assert!(report.packets.lost_collision > 0);

        let mut cfg = base_cfg(1);
        cfg.collisions = false;
        let mut net = NetSimulator::new(cfg, Topology::full(3));
        net.add_node(on(adv(100, 10)));
        net.add_node(on(adv(100, 10)));
        net.add_node(on(scan(100, 100)));
        let report = net.run();
        assert!(report.discovery.one_way(2, 0).is_some());
        assert!(report.discovery.one_way(2, 1).is_some());
    }

    #[test]
    fn departed_node_no_longer_collides() {
        // two advertisers collide while both present; after node 1 leaves
        // at 0.5 ms, node 0's beacons get through
        let mut net = NetSimulator::new(base_cfg(2), Topology::full(3));
        net.add_node(on(adv(100, 10)));
        net.add_node(NodeSpec::windowed(
            Box::new(ScheduleBehavior::new(adv(100, 10))),
            Tick::ZERO,
            Some(Tick::from_micros(500)),
        ));
        net.add_node(on(scan(100, 100)));
        let report = net.run();
        let first = report.discovery.one_way(2, 0).unwrap();
        assert!(first >= Tick::from_micros(500), "{first:?}");
        assert_eq!(report.discovery.one_way(2, 1), None);
        assert!(report.packets.lost_collision > 0);
    }

    #[test]
    fn early_stop_on_cohort_completion() {
        let sched = |phase_us: u64| {
            Schedule::full(
                BeaconSeq::uniform(
                    1,
                    Tick::from_micros(300),
                    Tick::from_micros(4),
                    Tick::from_micros(phase_us),
                )
                .unwrap(),
                ReceptionWindows::single(
                    Tick::from_micros(50),
                    Tick::from_micros(200),
                    Tick::from_micros(300),
                )
                .unwrap(),
            )
        };
        let mut net = NetSimulator::new(base_cfg(1000), Topology::full(3));
        // beacon offsets inside everyone's [50, 250) µs window, spaced so
        // they neither collide nor hit the senders' own blanking
        for phase in [60u64, 120, 180] {
            net.add_node(on(sched(phase)));
        }
        net.stop_when_all_discovered(true);
        let report = net.run();
        assert!(report.discovery.complete());
        assert!(report.elapsed < Tick::from_millis(5), "stopped early");
    }

    #[test]
    fn runs_are_deterministic() {
        let build = || {
            let mut cfg = base_cfg(20);
            cfg.drop_probability = 0.3;
            cfg.seed = 99;
            let mut net = NetSimulator::new(cfg, Topology::full(5));
            for phase in [3u64, 31, 57, 83] {
                net.add_node(on(adv(97, phase)));
            }
            net.add_node(on(scan(53, 211)));
            net.run()
        };
        let a = build();
        let b = build();
        for s in 0..4 {
            assert_eq!(a.discovery.one_way(4, s), b.discovery.one_way(4, s));
        }
        assert_eq!(a.packets.received, b.packets.received);
        assert_eq!(a.packets.lost_fault, b.packets.lost_fault);
    }

    #[test]
    #[should_panic(expected = "node count must match topology")]
    fn topology_size_is_enforced() {
        let net = NetSimulator::new(base_cfg(1), Topology::full(2));
        let _ = net.run();
    }
}
