//! Cohort discovery metrics.
//!
//! Pairwise analysis reports one latency; an N-node cohort has a whole
//! distribution. The conventions here:
//!
//! * a **pair is eligible** if the two nodes' presence windows overlap
//!   *and* they share a channel neighborhood (topology cluster) — only
//!   eligible pairs can possibly discover each other;
//! * a pair's **latency is measured from co-presence start**
//!   (`max(join_a, join_b)`), so a node that churns in late is not charged
//!   for time it was absent;
//! * **first contact** of a node is the time from its own join until it
//!   first receives a beacon from *any* neighbor;
//! * the **cohort is complete** when every eligible pair has discovered
//!   (under the chosen direction metric), and the cohort latency is the
//!   worst eligible pair's latency.

use nd_core::interval::Interval;
use nd_core::params::RadioParams;
use nd_core::time::Tick;
use nd_sim::{DeviceStats, DiscoveryMatrix, PacketCounters};

/// Which direction(s) of an eligible pair must complete.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PairMetric {
    /// Every ordered pair counts separately (receiver discovers sender).
    OneWay,
    /// An unordered pair completes when both directions have (the paper's
    /// Theorem 5.5/5.7 metric, lifted to N nodes).
    TwoWay,
    /// An unordered pair completes when either direction has.
    EitherWay,
}

/// The full result of one cohort run.
#[derive(Clone, Debug)]
pub struct CohortReport {
    /// Instant the run stopped (≤ the configured horizon).
    pub elapsed: Tick,
    /// Handled events (join/leave/wake/tx-end), for throughput gauges.
    pub events: u64,
    /// First-reception instants for every ordered pair.
    pub discovery: DiscoveryMatrix,
    /// Channel-level packet counters.
    pub packets: PacketCounters,
    /// Per-node radio accounting.
    pub stats: Vec<DeviceStats>,
    /// Join instant per node.
    pub joins: Vec<Tick>,
    /// Leave instant per node (`None` = stayed to the end).
    pub leaves: Vec<Option<Tick>>,
    /// Channel-neighborhood label per node (`Topology::cluster_assignments`
    /// normal form: the smallest member id). Nodes in different clusters
    /// are never audible to each other, so their pairs are ineligible.
    pub cluster: Vec<u32>,
}

impl CohortReport {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.joins.len()
    }

    /// `true` for a nodeless run.
    pub fn is_empty(&self) -> bool {
        self.joins.is_empty()
    }

    /// The co-presence window of nodes `a` and `b` (clipped to the run),
    /// or `None` if they were never in the network together.
    pub fn copresence(&self, a: usize, b: usize) -> Option<Interval> {
        let start = self.joins[a].max(self.joins[b]);
        let end = [self.leaves[a], self.leaves[b]]
            .into_iter()
            .flatten()
            .min()
            .unwrap_or(self.elapsed)
            .min(self.elapsed);
        (start < end).then(|| Interval::new(start, end))
    }

    fn ordered_latency(&self, receiver: usize, sender: usize, start: Tick) -> Option<Tick> {
        self.discovery
            .one_way(receiver, sender)
            .map(|t| t.saturating_sub(start))
    }

    /// Latency per eligible pair under `metric`, measured from each pair's
    /// co-presence start; `None` for eligible pairs that never completed.
    /// `OneWay` yields up to `n·(n−1)` entries (ordered), the others up to
    /// `n·(n−1)/2` (unordered).
    pub fn pair_latencies(&self, metric: PairMetric) -> Vec<Option<Tick>> {
        self.pair_latency_entries(metric)
            .into_iter()
            .map(|(_, _, lat)| lat)
            .collect()
    }

    /// [`CohortReport::pair_latencies`] with the pair identity attached:
    /// `(a, b, latency)` per eligible pair. Mixed-role cohorts use this
    /// to split the distribution by pair class (cross-role vs.
    /// same-role).
    pub fn pair_latency_entries(&self, metric: PairMetric) -> Vec<(usize, usize, Option<Tick>)> {
        let n = self.len();
        let mut out = Vec::new();
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                if metric != PairMetric::OneWay && a > b {
                    continue; // unordered metrics visit each pair once
                }
                if self.cluster[a] != self.cluster[b] {
                    continue; // different channels: never audible
                }
                let Some(window) = self.copresence(a, b) else {
                    continue;
                };
                let lat = match metric {
                    PairMetric::OneWay => self.ordered_latency(a, b, window.start),
                    PairMetric::TwoWay => {
                        match (
                            self.ordered_latency(a, b, window.start),
                            self.ordered_latency(b, a, window.start),
                        ) {
                            (Some(x), Some(y)) => Some(x.max(y)),
                            _ => None,
                        }
                    }
                    PairMetric::EitherWay => {
                        match (
                            self.ordered_latency(a, b, window.start),
                            self.ordered_latency(b, a, window.start),
                        ) {
                            (Some(x), Some(y)) => Some(x.min(y)),
                            (Some(x), None) | (None, Some(x)) => Some(x),
                            (None, None) => None,
                        }
                    }
                };
                out.push((a, b, lat));
            }
        }
        out
    }

    /// Per node: the time from its join until it first received a beacon
    /// from any neighbor. Entries are `None` for nodes that never heard
    /// anyone; nodes with no eligible neighbor at all are skipped.
    pub fn first_contacts(&self) -> Vec<Option<Tick>> {
        let n = self.len();
        let mut out = Vec::new();
        for r in 0..n {
            let mut any_neighbor = false;
            let mut best: Option<Tick> = None;
            for s in 0..n {
                if r == s || self.cluster[r] != self.cluster[s] || self.copresence(r, s).is_none() {
                    continue;
                }
                any_neighbor = true;
                if let Some(t) = self.discovery.one_way(r, s) {
                    let lat = t.saturating_sub(self.joins[r]);
                    best = Some(best.map_or(lat, |b| b.min(lat)));
                }
            }
            if any_neighbor {
                out.push(best);
            }
        }
        out
    }

    /// `true` when every eligible pair completed under `metric`.
    pub fn complete(&self, metric: PairMetric) -> bool {
        self.pair_latencies(metric).iter().all(|l| l.is_some())
    }

    /// The worst eligible pair latency (the full-cohort discovery time),
    /// `None` unless the cohort is complete.
    pub fn worst_pair(&self, metric: PairMetric) -> Option<Tick> {
        let lats = self.pair_latencies(metric);
        if lats.is_empty() {
            return None;
        }
        lats.into_iter()
            .collect::<Option<Vec<_>>>()?
            .into_iter()
            .max()
    }

    /// Fraction of eligible pairs that completed (1.0 for an empty set:
    /// nothing was possible, nothing was missed).
    pub fn discovered_fraction(&self, metric: PairMetric) -> f64 {
        let lats = self.pair_latencies(metric);
        if lats.is_empty() {
            return 1.0;
        }
        lats.iter().filter(|l| l.is_some()).count() as f64 / lats.len() as f64
    }

    /// Sum of per-node measured duty cycles (each node over its own
    /// presence duration). Sharded runs add the shard sums in shard order
    /// and divide once by the cohort size, which reproduces
    /// [`CohortReport::mean_eta`] of the whole-cohort run bit for bit.
    pub fn eta_sum(&self, radio: &RadioParams) -> f64 {
        let mut acc = 0.0;
        for (i, stats) in self.stats.iter().enumerate() {
            let until = self.leaves[i].unwrap_or(self.elapsed).min(self.elapsed);
            let active = until.saturating_sub(self.joins[i]).max(Tick(1));
            acc += stats.eta_with_overheads(active, radio);
        }
        acc
    }

    /// Mean measured duty cycle over all nodes, each over its own presence
    /// duration (a churner is not charged for time outside the network).
    pub fn mean_eta(&self, radio: &RadioParams) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.eta_sum(radio) / self.stats.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built 3-node report: node 2 churns in at 100 and out at 900;
    /// run elapsed 1000.
    fn report() -> CohortReport {
        let mut discovery = DiscoveryMatrix::new(3);
        // pair (0,1): both directions, at 50 and 200
        discovery.record(0, 1, Tick(50));
        discovery.record(1, 0, Tick(200));
        // pair (0,2): only 2 hears 0, at 300
        discovery.record(2, 0, Tick(300));
        // pair (1,2): nothing
        CohortReport {
            elapsed: Tick(1000),
            events: 0,
            discovery,
            packets: PacketCounters::default(),
            stats: vec![DeviceStats::default(); 3],
            joins: vec![Tick::ZERO, Tick::ZERO, Tick(100)],
            leaves: vec![None, None, Some(Tick(900))],
            cluster: vec![0; 3],
        }
    }

    #[test]
    fn copresence_clips_to_windows_and_run() {
        let r = report();
        assert_eq!(r.copresence(0, 1), Some(Interval::new(Tick(0), Tick(1000))));
        assert_eq!(
            r.copresence(0, 2),
            Some(Interval::new(Tick(100), Tick(900)))
        );
        assert_eq!(r.copresence(2, 1), r.copresence(1, 2), "symmetric");
    }

    #[test]
    fn never_copresent_pair_is_ineligible() {
        let mut r = report();
        r.joins[2] = Tick(1500); // joins after the run ended
        r.leaves[2] = None;
        assert_eq!(r.copresence(0, 2), None);
        // only the ordered pairs among {0, 1} remain
        assert_eq!(r.pair_latencies(PairMetric::OneWay).len(), 2);
    }

    #[test]
    fn one_way_latencies_are_relative_to_copresence() {
        let r = report();
        let lats = r.pair_latencies(PairMetric::OneWay);
        // ordered eligible pairs: (0,1) (0,2) (1,0) (1,2) (2,0) (2,1)
        assert_eq!(lats.len(), 6);
        assert!(lats.contains(&Some(Tick(50)))); // 0 heard 1 at 50
        assert!(lats.contains(&Some(Tick(200)))); // 2 heard 0 at 300, copresent from 100
        assert_eq!(lats.iter().filter(|l| l.is_none()).count(), 3);
    }

    #[test]
    fn two_way_and_either_way() {
        let r = report();
        let two = r.pair_latencies(PairMetric::TwoWay);
        assert_eq!(two.len(), 3);
        assert!(two.contains(&Some(Tick(200)))); // pair {0,1}: max(50, 200)
        assert_eq!(two.iter().filter(|l| l.is_none()).count(), 2);
        let either = r.pair_latencies(PairMetric::EitherWay);
        assert!(either.contains(&Some(Tick(50)))); // pair {0,1}: min
        assert!(either.contains(&Some(Tick(200)))); // pair {0,2}: 300 − 100
        assert_eq!(either.iter().filter(|l| l.is_none()).count(), 1);
    }

    #[test]
    fn first_contacts_from_own_join() {
        let r = report();
        let firsts = r.first_contacts();
        // node 0 heard 1 at 50; node 1 heard 0 at 200; node 2: 300 − join 100
        assert_eq!(
            firsts,
            vec![Some(Tick(50)), Some(Tick(200)), Some(Tick(200))]
        );
        // a node that never hears anyone reports None
        let mut deaf = r.clone();
        deaf.discovery = DiscoveryMatrix::new(3);
        deaf.discovery.record(0, 1, Tick(50));
        assert_eq!(deaf.first_contacts()[1], None);
    }

    #[test]
    fn pair_entries_carry_identities() {
        let r = report();
        let entries = r.pair_latency_entries(PairMetric::TwoWay);
        assert_eq!(entries.len(), 3);
        assert!(entries.contains(&(0, 1, Some(Tick(200)))));
        // latencies-only view is the same data
        assert_eq!(
            entries.iter().map(|&(_, _, l)| l).collect::<Vec<_>>(),
            r.pair_latencies(PairMetric::TwoWay)
        );
    }

    #[test]
    fn completion_and_worst_pair() {
        let r = report();
        assert!(!r.complete(PairMetric::OneWay));
        assert_eq!(r.worst_pair(PairMetric::OneWay), None);
        assert!((r.discovered_fraction(PairMetric::OneWay) - 0.5).abs() < 1e-12);
        // pair {1, 2} has nothing in either direction yet
        assert!(!r.complete(PairMetric::EitherWay));
        assert!((r.discovered_fraction(PairMetric::EitherWay) - 2.0 / 3.0).abs() < 1e-12);
        // one reception on that pair completes the either-way cohort
        let mut done = r.clone();
        done.discovery.record(1, 2, Tick(400));
        assert!(done.complete(PairMetric::EitherWay));
        // worst pair: {1, 2} at 400 − copresence start 100 = 300
        assert_eq!(done.worst_pair(PairMetric::EitherWay), Some(Tick(300)));
    }
}
