//! A hierarchical timing wheel: the O(1)-amortized event queue behind the
//! netsim engine.
//!
//! A binary heap costs O(log n) per operation and scatters its comparisons
//! across the whole backing array; at millions of pending events that is
//! the simulator's dominant cost. Discrete-event network simulation has a
//! much friendlier access pattern than the general priority queue: time is
//! monotone (events are only scheduled at or after the current instant)
//! and the overwhelming majority of events land within a few schedule
//! periods of *now*. A classic hierarchical timing wheel (Varghese &
//! Lauck) exploits exactly that shape:
//!
//! * [`LEVELS`] wheels of [`SLOTS`] slots each; level 0 slots are
//!   `2^`[`W0_BITS`] ticks wide and each level above is [`SLOTS`]× wider,
//!   so the top level spans ≈ 137 simulated seconds at nanosecond ticks;
//! * a push indexes the lowest level whose window contains the event —
//!   one shift, one mask, one `Vec::push`;
//! * popping drains the earliest non-empty slot (found via a per-level
//!   occupancy bitmask and `trailing_zeros`) into a sorted *current*
//!   buffer; far-future slots **cascade** down a level when the clock
//!   reaches them;
//! * events beyond the top window (rare: far-future churn leaves) go to a
//!   binary-heap *overflow* that feeds back into the wheel as the cursors
//!   advance.
//!
//! Ordering is **identical to the heap it replaces**: entries carry a
//! `(time, seq)` key, slots sort by it on drain, and pushes that land in
//! the already-open current window insert in key order. The engine's
//! wheel-vs-heap equivalence suite pins this down event for event.
//!
//! The wheel is generic over its payload so microbenches and tests can
//! drive it directly; the engine instantiates it with its event kind.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Number of wheel levels.
pub const LEVELS: usize = 4;
/// Slots per level (fixed at 64 so occupancy fits one `u64` bitmask).
pub const SLOTS: usize = 64;
/// log₂ of the level-0 slot width in ticks (8192 ns ≈ 8 µs at nanosecond
/// resolution — a fraction of any schedule period, so same-slot sorting
/// stays cheap).
pub const W0_BITS: u32 = 13;
/// Each level's slots are `SLOTS` (2⁶) times wider than the level below.
const LEVEL_SHIFT: u32 = 6;

const fn width_bits(level: usize) -> u32 {
    W0_BITS + LEVEL_SHIFT * level as u32
}

/// One scheduled entry: the `(at, seq)` ordering key plus the payload.
#[derive(Clone, Copy, Debug)]
pub struct Entry<T> {
    /// Fire time in ticks.
    pub at: u64,
    /// Tie-break sequence number (unique per queue, assigned by pushes).
    pub seq: u64,
    /// The scheduled payload.
    pub payload: T,
}

impl<T> Entry<T> {
    fn key(&self) -> (u64, u64) {
        (self.at, self.seq)
    }
}

/// Overflow wrapper ordered by `(at, seq)` so a `BinaryHeap<Reverse<_>>`
/// yields the earliest entry first.
struct OrdEntry<T>(Entry<T>);

impl<T> PartialEq for OrdEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl<T> Eq for OrdEntry<T> {}
impl<T> PartialOrd for OrdEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for OrdEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.key().cmp(&other.0.key())
    }
}

struct Level<T> {
    /// Absolute index of the slot the cursor sits on; every occupied slot
    /// of this level lies in `[cursor, cursor + SLOTS)`.
    cursor: u64,
    /// Bit `abs_slot % SLOTS` set ⇔ that slot holds entries.
    occupied: u64,
    slots: Vec<Vec<Entry<T>>>,
}

impl<T> Level<T> {
    fn new() -> Self {
        Level {
            cursor: 0,
            occupied: 0,
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
        }
    }

    /// The earliest occupied absolute slot, if any.
    fn first_occupied(&self) -> Option<u64> {
        if self.occupied == 0 {
            return None;
        }
        let rot = self
            .occupied
            .rotate_right((self.cursor % SLOTS as u64) as u32);
        Some(self.cursor + rot.trailing_zeros() as u64)
    }
}

/// The hierarchical timing wheel. See the module docs for the design;
/// entries pop in strict `(at, seq)` order.
pub struct TimingWheel<T> {
    levels: Vec<Level<T>>,
    /// The sorted drain buffer for the slot currently being consumed.
    current: VecDeque<Entry<T>>,
    /// End (exclusive) of the drained window: pushes below this insert
    /// into `current` directly, keeping it totally ordered.
    current_end: u64,
    /// Entries beyond the top level's window.
    overflow: BinaryHeap<Reverse<OrdEntry<T>>>,
    /// Cascade scratch: swapped with a coarse slot before redistributing
    /// so slot vectors keep their capacity (no steady-state allocation).
    scratch: Vec<Entry<T>>,
    len: usize,
    // profiling counters (free to keep; surfaced as nd-obs gauges)
    depth_max: usize,
    cascades: u64,
    overflow_max: usize,
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimingWheel<T> {
    /// An empty wheel anchored at time 0.
    pub fn new() -> Self {
        TimingWheel {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            current: VecDeque::new(),
            current_end: 0,
            overflow: BinaryHeap::new(),
            scratch: Vec::new(),
            len: 0,
            depth_max: 0,
            cascades: 0,
            overflow_max: 0,
        }
    }

    /// Pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// High-water mark of pending entries over the wheel's lifetime.
    pub fn depth_max(&self) -> usize {
        self.depth_max
    }

    /// Number of slot cascades performed (a far-future slot redistributed
    /// into finer levels as the clock reached it).
    pub fn cascades(&self) -> u64 {
        self.cascades
    }

    /// High-water mark of the far-future overflow heap.
    pub fn overflow_max(&self) -> usize {
        self.overflow_max
    }

    /// Schedule `payload` at `(at, seq)`. `seq` must be unique per wheel
    /// (the caller's push counter); `(at, seq)` is the pop order. Pushing
    /// before an already-drained window is a logic error — the engine's
    /// monotone clock guarantees it never happens — and debug-asserts.
    pub fn push(&mut self, at: u64, seq: u64, payload: T) {
        let e = Entry { at, seq, payload };
        if at < self.current_end {
            // lands inside the already-open window: insert sorted
            let pos = self.current.partition_point(|x| x.key() <= e.key());
            debug_assert!(
                pos > 0 || self.current.front().is_none_or(|f| f.key() > e.key()),
                "push into a drained window"
            );
            self.current.insert(pos, e);
        } else {
            self.place(e);
        }
        self.len += 1;
        self.depth_max = self.depth_max.max(self.len);
    }

    /// File an entry into the lowest level whose window covers it, or the
    /// overflow heap beyond the top window.
    fn place(&mut self, e: Entry<T>) {
        for (l, level) in self.levels.iter_mut().enumerate() {
            let slot = e.at >> width_bits(l);
            if slot < level.cursor + SLOTS as u64 {
                debug_assert!(slot >= level.cursor, "entry behind the level cursor");
                level.slots[(slot % SLOTS as u64) as usize].push(e);
                level.occupied |= 1 << (slot % SLOTS as u64);
                return;
            }
        }
        self.overflow.push(Reverse(OrdEntry(e)));
        self.overflow_max = self.overflow_max.max(self.overflow.len());
    }

    /// Move overflow entries that now fit the top window into the wheel.
    fn pull_overflow(&mut self) {
        let top_end = (self.levels[LEVELS - 1].cursor + SLOTS as u64) << width_bits(LEVELS - 1);
        while let Some(Reverse(head)) = self.overflow.peek() {
            if head.0.at >= top_end {
                break;
            }
            let Reverse(OrdEntry(e)) = self.overflow.pop().expect("peeked");
            self.place(e);
        }
    }

    /// Refill `current` from the earliest pending slot, cascading coarser
    /// levels as needed. Returns `false` when the wheel is empty.
    fn refill(&mut self) -> bool {
        loop {
            self.pull_overflow();
            let mut best: Option<(usize, u64, u64)> = None; // (level, abs_slot, start)
            for l in 0..LEVELS {
                if let Some(slot) = self.levels[l].first_occupied() {
                    let start = slot << width_bits(l);
                    if best.is_none_or(|(_, _, s)| start <= s) {
                        best = Some((l, slot, start));
                    }
                }
            }
            let Some((l, slot, start)) = best else {
                if let Some(Reverse(head)) = self.overflow.peek() {
                    let at = head.0.at;
                    for (j, level) in self.levels.iter_mut().enumerate() {
                        level.cursor = level.cursor.max(at >> width_bits(j));
                    }
                    continue;
                }
                return false;
            };
            let level = &mut self.levels[l];
            let entries = &mut level.slots[(slot % SLOTS as u64) as usize];
            level.occupied &= !(1 << (slot % SLOTS as u64));
            level.cursor = slot;
            if l == 0 {
                entries.sort_unstable_by_key(Entry::key);
                self.current.extend(entries.drain(..));
                self.current_end = (slot + 1) << W0_BITS;
                return true;
            }
            let mut entries = std::mem::replace(entries, std::mem::take(&mut self.scratch));
            for (j, finer) in self.levels.iter_mut().enumerate().take(l) {
                finer.cursor = finer.cursor.max(start >> width_bits(j));
            }
            self.cascades += 1;
            for e in entries.drain(..) {
                self.place(e);
            }
            self.scratch = entries;
        }
    }

    /// Pop the earliest entry in `(at, seq)` order.
    pub fn pop(&mut self) -> Option<Entry<T>> {
        if self.current.is_empty() && !self.refill() {
            return None;
        }
        let e = self.current.pop_front().expect("refill filled current");
        self.len -= 1;
        Some(e)
    }

    /// The `(at, seq)` key the next [`TimingWheel::pop`] will return,
    /// without consuming it. `&mut` because peeking may have to drain a
    /// slot into the current buffer first.
    pub fn peek_key(&mut self) -> Option<(u64, u64)> {
        if self.current.is_empty() && !self.refill() {
            return None;
        }
        self.current.front().map(Entry::key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pop everything, asserting internal `len` bookkeeping.
    fn drain(w: &mut TimingWheel<u32>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = w.pop() {
            out.push((e.at, e.seq));
        }
        assert_eq!(w.len(), 0);
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimingWheel::new();
        for (seq, at) in [900u64, 5, 5, 100_000, 77, 5].into_iter().enumerate() {
            w.push(at, seq as u64, 0);
        }
        assert_eq!(w.len(), 6);
        assert_eq!(
            drain(&mut w),
            vec![(5, 1), (5, 2), (5, 5), (77, 4), (900, 0), (100_000, 3)]
        );
    }

    #[test]
    fn far_future_entries_cascade_back_down() {
        let mut w = TimingWheel::new();
        // one entry per level scale plus one beyond the top window
        let ats = [
            1u64,
            1 << (W0_BITS + 2),
            1 << (W0_BITS + 10),
            1 << (W0_BITS + 16),
            1 << (W0_BITS + 22),
            1 << 40, // beyond the top window → overflow
        ];
        for (seq, &at) in ats.iter().enumerate() {
            w.push(at, seq as u64, 0);
        }
        assert!(w.overflow_max() >= 1, "deep future goes to overflow");
        let popped = drain(&mut w);
        let times: Vec<u64> = popped.iter().map(|&(at, _)| at).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        assert!(w.cascades() > 0, "coarse slots cascaded");
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        // emulate the engine: after popping t, push new entries ≥ t
        let mut w = TimingWheel::new();
        let mut seq = 0u64;
        let push = |w: &mut TimingWheel<u32>, at: u64, seq: &mut u64| {
            w.push(at, *seq, 0);
            *seq += 1;
        };
        push(&mut w, 10, &mut seq);
        push(&mut w, 50_000, &mut seq);
        let e = w.pop().unwrap();
        assert_eq!(e.at, 10);
        // same-instant cascade lands in the open window, ahead of 50 000
        push(&mut w, 10, &mut seq);
        push(&mut w, 12, &mut seq);
        assert_eq!(w.pop().unwrap().at, 10);
        assert_eq!(w.pop().unwrap().at, 12);
        assert_eq!(w.pop().unwrap().at, 50_000);
        assert!(w.pop().is_none());
    }

    #[test]
    fn matches_reference_heap_on_dense_mix() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        // deterministic pseudo-random workload, no external RNG needed
        let mut state = 0x9e37_79b9_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut wheel = TimingWheel::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        for _ in 0..5_000 {
            // 2 pushes per pop keeps the queue growing then draining
            for _ in 0..2 {
                let horizon = match next() % 4 {
                    0 => 1 << 6,     // same-slot
                    1 => 1 << 14,    // next level-0 slots
                    2 => 1 << 22,    // mid levels
                    _ => 1u64 << 36, // overflow territory
                };
                let at = now + next() % horizon;
                wheel.push(at, seq, 0);
                heap.push(Reverse((at, seq)));
                seq += 1;
            }
            let e = wheel.pop().expect("non-empty");
            let Reverse(expect) = heap.pop().expect("non-empty");
            assert_eq!((e.at, e.seq), expect);
            now = e.at;
        }
        // full drain must agree too
        while let Some(e) = wheel.pop() {
            let Reverse(expect) = heap.pop().expect("heap drains in lockstep");
            assert_eq!((e.at, e.seq), expect);
        }
        assert!(heap.is_empty());
        assert!(wheel.depth_max() > 0);
    }
}
