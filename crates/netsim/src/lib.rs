//! # nd-netsim — the multi-node discrete-event network simulator
//!
//! The paper analyzes *pairwise* discovery; its collision model (Eq. 12)
//! only bites once many nodes contend for one channel. This crate
//! simulates an **N-node cohort**: a discrete-event core (hierarchical
//! timing-wheel event queue + logical clock) advances nodes ([`node`]) whose
//! radios share the paper's channel model — overlap geometry, half-duplex
//! blanking, ALOHA collisions, fault injection — exactly as the pairwise
//! `nd_sim::Simulator` does, so a two-node always-on run is the pairwise
//! engine as a special case (the cross-validation tests assert this).
//!
//! What the cohort adds on top:
//!
//! * **churn** ([`churn`]) — nodes join and leave mid-run on declarative
//!   [`ChurnPlan`]s;
//! * **per-node clock drift** — compose [`nd_sim::Drifting`] under any
//!   behaviour, per node;
//! * **per-node RNG streams** — every node draws from its own
//!   SplitMix64-derived stream rooted in the run seed, so sweeps can
//!   derive the whole cohort's randomness from a job content hash;
//! * **cohort metrics** ([`metrics`]) — first-contact, median-pair and
//!   full-cohort discovery latencies measured from each pair's
//!   co-presence start.
//!
//! The `nd-sweep` crate exposes all of this as the `netsim` sweep backend
//! (`backend = "netsim"` with `nodes`, `churn` and `collision` grid axes).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod churn;
pub mod engine;
pub(crate) mod event;
pub mod metrics;
pub mod node;
pub mod shard;
pub mod wheel;

pub use churn::ChurnPlan;
pub use engine::NetSimulator;
pub use metrics::{CohortReport, PairMetric};
pub use node::NodeSpec;
pub use shard::{run_sharded, run_sharded_collect, ShardedReport};
