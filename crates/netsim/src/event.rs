//! The event core: a binary-heap priority queue and the logical clock.
//!
//! Every state change of the network simulation is an [`Event`] popped off
//! the [`EventQueue`] in `(time, sequence)` order. The sequence number
//! breaks ties deterministically — two events scheduled for the same
//! instant fire in the order they were pushed — which is what makes whole
//! runs reproducible byte for byte regardless of the host or of how many
//! sweeps run in sibling threads.

use nd_core::time::Tick;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What an event does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum EventKind {
    /// Node `.0` joins the network (becomes audible and starts its
    /// protocol).
    Join(usize),
    /// Node `.0` leaves the network (stops transmitting and listening).
    Leave(usize),
    /// Pull due operations from node `.0`'s buffer.
    Wake(usize),
    /// Transmission record `.0` has just ended; decide receptions.
    TxEnd(usize),
}

/// A scheduled event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Event {
    /// Fire instant.
    pub at: Tick,
    /// Push order; the deterministic tie-break at equal instants.
    pub seq: u64,
    /// The action.
    pub kind: EventKind,
}

/// Min-ordered event queue plus the simulation's logical clock.
///
/// The clock only advances in [`EventQueue::pop`]; pushing an event in the
/// past is a logic error (debug-asserted), so time is monotone by
/// construction.
pub(crate) struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
    now: Tick,
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: Tick::ZERO,
        }
    }

    /// Schedule `kind` at `at` (≥ the current logical time).
    pub fn push(&mut self, at: Tick, kind: EventKind) {
        debug_assert!(at >= self.now, "event scheduled in the past");
        self.heap.push(Reverse(Event {
            at,
            seq: self.seq,
            kind,
        }));
        self.seq += 1;
    }

    /// Pop the next event and advance the logical clock to it.
    pub fn pop(&mut self) -> Option<Event> {
        let Reverse(ev) = self.heap.pop()?;
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        Some(ev)
    }

    /// The logical clock: the instant of the last popped event.
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Pending events (the heap depth the profiling gauge reports).
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Tick(30), EventKind::Wake(0));
        q.push(Tick(10), EventKind::Wake(1));
        q.push(Tick(20), EventKind::Wake(2));
        let order: Vec<Tick> = std::iter::from_fn(|| q.pop()).map(|e| e.at).collect();
        assert_eq!(order, vec![Tick(10), Tick(20), Tick(30)]);
    }

    #[test]
    fn equal_instants_fire_in_push_order() {
        let mut q = EventQueue::new();
        q.push(Tick(5), EventKind::Wake(9));
        q.push(Tick(5), EventKind::TxEnd(1));
        q.push(Tick(5), EventKind::Leave(2));
        let kinds: Vec<EventKind> = std::iter::from_fn(|| q.pop()).map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![EventKind::Wake(9), EventKind::TxEnd(1), EventKind::Leave(2)]
        );
    }

    #[test]
    fn clock_is_monotone() {
        let mut q = EventQueue::new();
        q.push(Tick(10), EventKind::Wake(0));
        q.push(Tick(10), EventKind::Wake(1));
        q.push(Tick(40), EventKind::Wake(2));
        assert_eq!(q.now(), Tick::ZERO);
        q.pop();
        assert_eq!(q.now(), Tick(10));
        // pushing at the current instant is allowed (same-time cascades)
        q.push(Tick(10), EventKind::Wake(3));
        q.pop();
        q.pop();
        q.pop();
        assert_eq!(q.now(), Tick(40));
        assert!(q.pop().is_none());
    }
}
