//! The event core: the timing-wheel queue and the logical clock.
//!
//! Every state change of the network simulation is an [`Event`] popped off
//! the [`EventQueue`] in `(time, sequence)` order. The sequence number
//! breaks ties deterministically — two events scheduled for the same
//! instant fire in the order they were pushed — which is what makes whole
//! runs reproducible byte for byte regardless of the host or of how many
//! sweeps run in sibling threads.
//!
//! The queue is backed by the hierarchical [`crate::wheel::TimingWheel`]
//! (O(1) amortized at netsim's dense, short-horizon event mix). The
//! binary heap it replaced survives as [`EventQueue::new_heap`], the
//! reference implementation the equivalence suite replays whole cohorts
//! against — the two must produce byte-identical event sequences.
//!
//! Popping no longer advances the clock implicitly: the engine calls
//! [`EventQueue::advance`] for events it *handles*, so events it discards
//! (a completed cluster's tail) leave the clock — and therefore the
//! reported elapsed time — exactly where the per-shard runs put it.

use crate::wheel::TimingWheel;
use nd_core::time::Tick;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What an event does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum EventKind {
    /// Node `.0` joins the network (becomes audible and starts its
    /// protocol).
    Join(usize),
    /// Node `.0` leaves the network (stops transmitting and listening).
    Leave(usize),
    /// Refill node `.0`'s proactive schedule (a once-per-batch tick).
    Wake(usize),
    /// Node `node` starts transmitting one beacon at the event instant
    /// (airtime is the radio's ω). Like [`EventKind::RxStart`], buffered
    /// nowhere: the behaviour's ops become events directly, and the wake
    /// that used to shepherd each op through the node's buffer survives
    /// only as a once-per-batch refill tick.
    TxStart {
        /// The transmitting node.
        node: u32,
        /// Beacon payload.
        payload: u64,
    },
    /// Node `node`'s scheduled listening window `[event instant, end)`
    /// opens. Listening needs no per-node bookkeeping at its start — only
    /// membership in the cluster timeline by the time a packet asks — so
    /// windows ride the queue directly instead of passing through the
    /// node's op buffer and a wake dispatch.
    RxStart {
        /// The listening node.
        node: u32,
        /// Window close instant.
        end: Tick,
    },
}

/// A scheduled event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Event {
    /// Fire instant.
    pub at: Tick,
    /// Push order; the deterministic tie-break at equal instants.
    pub seq: u64,
    /// The action.
    pub kind: EventKind,
}

enum QueueImpl {
    Wheel(TimingWheel<EventKind>),
    Heap(BinaryHeap<Reverse<Event>>),
}

/// Min-ordered event queue plus the simulation's logical clock.
///
/// The clock advances via [`EventQueue::advance`] as the engine handles
/// events; pushing an event in the past is a logic error
/// (debug-asserted), so time is monotone by construction.
pub(crate) struct EventQueue {
    q: QueueImpl,
    seq: u64,
    now: Tick,
}

impl EventQueue {
    /// The production queue: hierarchical timing wheel.
    pub fn new() -> Self {
        EventQueue {
            q: QueueImpl::Wheel(TimingWheel::new()),
            seq: 0,
            now: Tick::ZERO,
        }
    }

    /// The reference queue: the binary heap the wheel replaced. Kept for
    /// the wheel-vs-heap equivalence suite (and as a bisection tool).
    pub fn new_heap() -> Self {
        EventQueue {
            q: QueueImpl::Heap(BinaryHeap::new()),
            seq: 0,
            now: Tick::ZERO,
        }
    }

    /// Schedule `kind` at `at` (≥ the current logical time).
    pub fn push(&mut self, at: Tick, kind: EventKind) {
        debug_assert!(at >= self.now, "event scheduled in the past");
        match &mut self.q {
            QueueImpl::Wheel(w) => w.push(at.0, self.seq, kind),
            QueueImpl::Heap(h) => h.push(Reverse(Event {
                at,
                seq: self.seq,
                kind,
            })),
        }
        self.seq += 1;
    }

    /// Consume the next sequence number without scheduling anything.
    ///
    /// The engine keeps constant-airtime transmission ends in a FIFO
    /// beside the queue instead of scheduling each one; reserving a
    /// sequence number here keeps their tie-break order — and every
    /// later push's — exactly what scheduling them would have produced.
    pub fn alloc_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// The `(at, seq)` key of the next event, without consuming it.
    pub fn peek_key(&mut self) -> Option<(Tick, u64)> {
        match &mut self.q {
            QueueImpl::Wheel(w) => w.peek_key().map(|(at, seq)| (Tick(at), seq)),
            QueueImpl::Heap(h) => h.peek().map(|Reverse(ev)| (ev.at, ev.seq)),
        }
    }

    /// Pop the next event. Does **not** move the logical clock — the
    /// engine advances it only for events it actually handles.
    pub fn pop(&mut self) -> Option<Event> {
        match &mut self.q {
            QueueImpl::Wheel(w) => w.pop().map(|e| Event {
                at: Tick(e.at),
                seq: e.seq,
                kind: e.payload,
            }),
            QueueImpl::Heap(h) => h.pop().map(|Reverse(ev)| ev),
        }
    }

    /// Advance the logical clock to `at` (monotone).
    pub fn advance(&mut self, at: Tick) {
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
    }

    /// The logical clock: the instant of the last handled event.
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Pending events (the depth the profiling gauge reports).
    pub fn len(&self) -> usize {
        match &self.q {
            QueueImpl::Wheel(w) => w.len(),
            QueueImpl::Heap(h) => h.len(),
        }
    }

    /// Wheel profiling counters `(depth_max, cascades, overflow_max)`;
    /// `None` on the heap path.
    pub fn wheel_stats(&self) -> Option<(usize, u64, usize)> {
        match &self.q {
            QueueImpl::Wheel(w) => Some((w.depth_max(), w.cascades(), w.overflow_max())),
            QueueImpl::Heap(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Tick(30), EventKind::Wake(0));
        q.push(Tick(10), EventKind::Wake(1));
        q.push(Tick(20), EventKind::Wake(2));
        let order: Vec<Tick> = std::iter::from_fn(|| q.pop()).map(|e| e.at).collect();
        assert_eq!(order, vec![Tick(10), Tick(20), Tick(30)]);
    }

    #[test]
    fn equal_instants_fire_in_push_order() {
        let mut q = EventQueue::new();
        q.push(Tick(5), EventKind::Wake(9));
        q.push(Tick(5), EventKind::Join(1));
        q.push(Tick(5), EventKind::Leave(2));
        let kinds: Vec<EventKind> = std::iter::from_fn(|| q.pop()).map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![EventKind::Wake(9), EventKind::Join(1), EventKind::Leave(2)]
        );
    }

    #[test]
    fn clock_is_monotone() {
        let mut q = EventQueue::new();
        q.push(Tick(10), EventKind::Wake(0));
        q.push(Tick(10), EventKind::Wake(1));
        q.push(Tick(40), EventKind::Wake(2));
        assert_eq!(q.now(), Tick::ZERO);
        let ev = q.pop().unwrap();
        q.advance(ev.at);
        assert_eq!(q.now(), Tick(10));
        // pushing at the current instant is allowed (same-time cascades)
        q.push(Tick(10), EventKind::Wake(3));
        q.pop();
        q.pop();
        let ev = q.pop().unwrap();
        q.advance(ev.at);
        assert_eq!(q.now(), Tick(40));
        assert!(q.pop().is_none());
    }

    /// Identical push sequences → byte-identical pop sequences on both
    /// queue implementations, across every slot scale.
    #[test]
    fn wheel_and_heap_pop_identically() {
        let mut wheel = EventQueue::new();
        let mut heap = EventQueue::new_heap();
        let mut state = 42u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut now = 0u64;
        let mut pending = 0usize;
        for round in 0..4_000 {
            let at = Tick(now + next() % (1 << (10 + (round % 4) * 8)));
            let kind = match next() % 4 {
                0 => EventKind::Join(round),
                1 => EventKind::Leave(round),
                2 => EventKind::Wake(round),
                _ => EventKind::RxStart {
                    node: round as u32,
                    end: Tick(round as u64),
                },
            };
            wheel.push(at, kind);
            heap.push(at, kind);
            pending += 1;
            if next() % 3 == 0 && pending > 1 {
                let a = wheel.pop().unwrap();
                let b = heap.pop().unwrap();
                assert_eq!(a, b);
                wheel.advance(a.at);
                heap.advance(b.at);
                now = a.at.0;
                pending -= 1;
            }
        }
        loop {
            match (wheel.pop(), heap.pop()) {
                (None, None) => break,
                (a, b) => assert_eq!(a, b),
            }
        }
        assert!(wheel.wheel_stats().is_some());
        assert!(heap.wheel_stats().is_none());
    }
}
