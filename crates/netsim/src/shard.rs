//! Sharded cohort execution: simulate each channel neighborhood on its
//! own, deterministically.
//!
//! A topology that splits into disconnected clusters — per-channel
//! neighborhoods from [`Topology::clusters`], or any audibility matrix
//! with several weak components — factors the simulation: no packet,
//! collision, blanking decision or RNG draw ever crosses a cluster
//! boundary. [`run_sharded`] exploits that by running one
//! [`NetSimulator`] per cluster (optionally across worker threads) and
//! delivering the per-shard reports **in shard order**, so any
//! aggregation is a deterministic fold no matter how the OS schedules
//! the workers.
//!
//! ## Determinism contract
//!
//! The merged result is bit-identical to a whole-cohort
//! [`NetSimulator::run`] over the same topology because:
//!
//! * **RNG streams** are keyed by *global* node id
//!   ([`NodeSpec::with_stream`]), not by the node's index inside its
//!   shard, so every node draws the same private stream either way;
//! * **event order** within a cluster is preserved: the global queue
//!   pops in `(time, seq)` order and same-cluster events keep their
//!   relative sequence, while cross-cluster interleaving only reorders
//!   events that share no state;
//! * **early stop** is per cluster in both modes: the whole-cohort
//!   engine drops a completed cluster's tail events without advancing
//!   the clock, exactly where a shard run stops;
//! * **aggregation order** is pinned: shard reports are visited in
//!   ascending shard index (ascending smallest member id), so even
//!   floating-point folds reproduce.
//!
//! The `netsim_sharding` cross-validation suite asserts the merged
//! report equals the unsharded one field for field.

use crate::engine::NetSimulator;
use crate::metrics::CohortReport;
use crate::node::NodeSpec;
use nd_obs::Progress;
use nd_sim::{DeviceStats, DiscoveryMatrix, SimConfig, Topology};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Simulate `topo` one channel neighborhood at a time.
///
/// `make_node` is called once per *global* node id — possibly from a
/// worker thread — and must return that node's spec; behaviours are
/// built inside the worker, so they don't need to be `Send`. Unless the
/// spec pins one, the node's RNG stream id is its global id. `visit` is
/// called on the calling thread, in ascending shard index, with
/// `(shard index, members (ascending global ids), shard report)`; node
/// indices inside the report are shard-local (`members[local] = global`).
///
/// `threads ≤ 1` runs shards sequentially; more spread them over that
/// many scoped worker threads (reports are still visited in order).
/// Progress is surfaced per shard through the `ND_PROGRESS` hook as
/// `netsim.shards`, and an aggregate `netsim.cohort_events_per_sec`
/// gauge is recorded when metrics are on.
pub fn run_sharded<F, V>(
    cfg: &SimConfig,
    topo: &Topology,
    stop_when_complete: bool,
    threads: usize,
    make_node: F,
    mut visit: V,
) where
    F: Fn(usize) -> NodeSpec + Sync,
    V: FnMut(usize, &[usize], CohortReport),
{
    let shards = topo.shards();
    let progress = Progress::new("netsim.shards", shards.len() as u64);
    let observing = nd_obs::metrics::enabled();
    let wall_start = observing.then(std::time::Instant::now);
    let mut total_events: u64 = 0;
    let run_one = |members: &[usize]| -> CohortReport {
        let mut sim = NetSimulator::new(cfg.clone(), topo.subtopology(members));
        sim.stop_when_all_discovered(stop_when_complete);
        for &g in members {
            let spec = make_node(g);
            let spec = if spec.stream.is_none() {
                spec.with_stream(g as u64)
            } else {
                spec
            };
            sim.add_node(spec);
        }
        sim.run()
    };
    if threads <= 1 || shards.len() <= 1 {
        for (s, members) in shards.iter().enumerate() {
            let report = run_one(members);
            progress.update(s as u64 + 1);
            total_events += report.events;
            visit(s, members, report);
        }
    } else {
        let next = AtomicUsize::new(0);
        let (out_tx, out_rx) = mpsc::channel::<(usize, CohortReport)>();
        std::thread::scope(|scope| {
            for _ in 0..threads.min(shards.len()) {
                let out_tx = out_tx.clone();
                let next = &next;
                let shards = &shards;
                let run_one = &run_one;
                scope.spawn(move || loop {
                    let s = next.fetch_add(1, Ordering::Relaxed);
                    if s >= shards.len() {
                        break;
                    }
                    if out_tx.send((s, run_one(&shards[s]))).is_err() {
                        break;
                    }
                });
            }
            drop(out_tx);
            // reorder buffer: workers finish in any order, the visitor
            // must still see shards in ascending index
            let mut pending: BTreeMap<usize, CohortReport> = BTreeMap::new();
            let mut next_deliver = 0usize;
            let mut done: u64 = 0;
            for (s, report) in out_rx {
                done += 1;
                progress.update(done);
                pending.insert(s, report);
                while let Some(report) = pending.remove(&next_deliver) {
                    total_events += report.events;
                    visit(next_deliver, &shards[next_deliver], report);
                    next_deliver += 1;
                }
            }
        });
    }
    if let Some(start) = wall_start {
        let secs = start.elapsed().as_secs_f64();
        if secs > 0.0 {
            nd_obs::metrics::gauge_max("netsim.cohort_events_per_sec", total_events as f64 / secs);
        }
    }
    progress.finish();
}

/// Per-shard reports plus the member lists that map shard-local node
/// indices back to global ids.
pub struct ShardedReport {
    /// Global node ids per shard, ascending; `shards[s][local] = global`.
    pub shards: Vec<Vec<usize>>,
    /// One report per shard, same order.
    pub reports: Vec<CohortReport>,
}

impl ShardedReport {
    /// Stitch the shard reports back into one whole-cohort
    /// [`CohortReport`] over `topo` (the topology the shards were cut
    /// from). Materializes the dense `n × n` discovery matrix — meant
    /// for validation at moderate N, not for million-node runs (stream
    /// those through [`run_sharded`]'s visitor instead).
    pub fn merge(&self, topo: &Topology) -> CohortReport {
        let n = topo.len();
        let mut discovery = DiscoveryMatrix::new(n);
        let mut packets = nd_sim::PacketCounters::default();
        let mut stats = vec![DeviceStats::default(); n];
        let mut joins = vec![nd_core::time::Tick::ZERO; n];
        let mut leaves = vec![None; n];
        let mut elapsed = nd_core::time::Tick::ZERO;
        let mut events: u64 = 0;
        for (members, report) in self.shards.iter().zip(&self.reports) {
            elapsed = elapsed.max(report.elapsed);
            events += report.events;
            packets.sent += report.packets.sent;
            packets.received += report.packets.received;
            packets.lost_collision += report.packets.lost_collision;
            packets.lost_self_blocking += report.packets.lost_self_blocking;
            packets.lost_fault += report.packets.lost_fault;
            for (local_rx, &rx) in members.iter().enumerate() {
                stats[rx] = report.stats[local_rx].clone();
                joins[rx] = report.joins[local_rx];
                leaves[rx] = report.leaves[local_rx];
                for (local_tx, &tx) in members.iter().enumerate() {
                    if let Some(t) = report.discovery.one_way(local_rx, local_tx) {
                        discovery.record(rx, tx, t);
                    }
                }
            }
        }
        CohortReport {
            elapsed,
            events,
            discovery,
            packets,
            stats,
            joins,
            leaves,
            cluster: topo.cluster_assignments(),
        }
    }
}

/// [`run_sharded`], collecting every shard report. Convenient for tests
/// and moderate cohorts; million-node runs should stream through the
/// visitor to avoid holding all reports at once.
pub fn run_sharded_collect<F>(
    cfg: &SimConfig,
    topo: &Topology,
    stop_when_complete: bool,
    threads: usize,
    make_node: F,
) -> ShardedReport
where
    F: Fn(usize) -> NodeSpec + Sync,
{
    let mut out = ShardedReport {
        shards: Vec::new(),
        reports: Vec::new(),
    };
    run_sharded(
        cfg,
        topo,
        stop_when_complete,
        threads,
        make_node,
        |s, members, report| {
            debug_assert_eq!(s, out.reports.len());
            out.shards.push(members.to_vec());
            out.reports.push(report);
        },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_core::schedule::{BeaconSeq, ReceptionWindows, Schedule};
    use nd_core::time::Tick;
    use nd_sim::ScheduleBehavior;

    fn sched(phase_us: u64) -> Schedule {
        Schedule::full(
            BeaconSeq::uniform(
                1,
                Tick::from_micros(300),
                Tick::from_micros(4),
                Tick::from_micros(phase_us),
            )
            .unwrap(),
            ReceptionWindows::single(
                Tick::from_micros(50),
                Tick::from_micros(200),
                Tick::from_micros(300),
            )
            .unwrap(),
        )
    }

    fn cfg(ms: u64) -> SimConfig {
        let radio = nd_core::params::RadioParams::ideal(Tick::from_micros(4), 1.0);
        SimConfig::paper_baseline(Tick::from_millis(ms), 42).with_radio(radio)
    }

    fn spec(i: usize) -> NodeSpec {
        let phase = Tick::from_micros(11 + 37 * (i as u64 % 7));
        NodeSpec::always_on(Box::new(ScheduleBehavior::with_phase(sched(0), phase)))
    }

    fn unsharded(cfg: &SimConfig, topo: &Topology, n: usize) -> CohortReport {
        let mut sim = NetSimulator::new(cfg.clone(), topo.clone());
        sim.stop_when_all_discovered(true);
        for i in 0..n {
            sim.add_node(spec(i));
        }
        sim.run()
    }

    fn assert_reports_equal(a: &CohortReport, b: &CohortReport) {
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.events, b.events);
        assert_eq!(a.discovery, b.discovery);
        assert_eq!(a.packets, b.packets);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.joins, b.joins);
        assert_eq!(a.leaves, b.leaves);
        assert_eq!(a.cluster, b.cluster);
    }

    #[test]
    fn sharded_merge_matches_unsharded_run() {
        let n = 12;
        let topo = Topology::clusters((0..n as u32).map(|i| i % 3).collect());
        let cfg = cfg(50);
        let whole = unsharded(&cfg, &topo, n);
        for threads in [1, 4] {
            let sharded = run_sharded_collect(&cfg, &topo, true, threads, spec);
            assert_eq!(sharded.shards.len(), 3);
            assert_reports_equal(&sharded.merge(&topo), &whole);
        }
    }

    #[test]
    fn single_cluster_shard_is_the_plain_run() {
        let n = 5;
        let topo = Topology::full(n);
        let cfg = cfg(20);
        let whole = unsharded(&cfg, &topo, n);
        let sharded = run_sharded_collect(&cfg, &topo, true, 4, spec);
        assert_eq!(sharded.shards.len(), 1);
        assert_reports_equal(&sharded.reports[0], &whole);
        assert_reports_equal(&sharded.merge(&topo), &whole);
    }

    #[test]
    fn visitor_sees_shards_in_order_even_multithreaded() {
        let n = 40;
        let topo = Topology::clusters((0..n as u32).map(|i| i % 8).collect());
        let mut seen = Vec::new();
        run_sharded(&cfg(10), &topo, true, 4, spec, |s, members, _| {
            seen.push((s, members[0]));
        });
        assert_eq!(seen.len(), 8);
        for (i, &(s, first)) in seen.iter().enumerate() {
            assert_eq!(s, i);
            assert_eq!(first, i, "shard {i} starts at its smallest member");
        }
    }
}
