//! Node state: behaviour, presence window, radio bookkeeping, and the
//! node's private RNG stream.
//!
//! A node's protocol runs on a *local* timeline that starts at 0 the
//! instant the node joins; the engine shifts local operations by the join
//! instant, so the same behaviour object describes a node that has been on
//! since the start and one that churns in an hour late. Clock drift
//! composes underneath via [`nd_sim::Drifting`], which skews the local
//! timeline itself.

use nd_core::interval::Interval;
use nd_core::time::Tick;
use nd_sim::{Behavior, DeviceStats, Op};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// A node to be added to the simulation: its protocol plus its presence
/// window.
pub struct NodeSpec {
    /// The protocol driving the node's radio (local timeline: 0 = join).
    pub behavior: Box<dyn Behavior>,
    /// When the node joins the network.
    pub join: Tick,
    /// When the node leaves again; `None` = stays to the end.
    pub leave: Option<Tick>,
}

impl NodeSpec {
    /// A node present for the whole simulation.
    pub fn always_on(behavior: Box<dyn Behavior>) -> Self {
        NodeSpec {
            behavior,
            join: Tick::ZERO,
            leave: None,
        }
    }

    /// A node present during `[join, leave)`.
    pub fn windowed(behavior: Box<dyn Behavior>, join: Tick, leave: Option<Tick>) -> Self {
        if let Some(l) = leave {
            assert!(l > join, "leave must come after join");
        }
        NodeSpec {
            behavior,
            join,
            leave,
        }
    }
}

/// Live per-node engine state.
pub(crate) struct Node {
    pub behavior: Box<dyn Behavior>,
    pub join: Tick,
    pub leave: Option<Tick>,
    /// Currently in the network.
    pub present: bool,
    /// The behaviour returned an empty batch → nothing more proactive.
    pub proactive_done: bool,
    /// Buffered upcoming ops in *simulation* time, sorted by start.
    pub buffer: VecDeque<Op>,
    /// Scheduled listening windows in start order (pruned lazily).
    pub listen: Vec<Interval>,
    pub listen_prune: usize,
    /// Own transmissions in start order (pruned lazily; half-duplex
    /// blanking).
    pub own_tx: Vec<Interval>,
    pub own_tx_prune: usize,
    pub stats: DeviceStats,
    /// The node's private RNG stream, derived from the run seed and the
    /// node id — behaviours and fault rolls for this node never perturb
    /// any other node's stream.
    pub rng: StdRng,
}

impl Node {
    pub fn new(spec: NodeSpec, id: usize, run_seed: u64) -> Self {
        let label = spec.behavior.label();
        Node {
            behavior: spec.behavior,
            join: spec.join,
            leave: spec.leave,
            present: false,
            proactive_done: false,
            buffer: VecDeque::new(),
            listen: Vec::new(),
            listen_prune: 0,
            own_tx: Vec::new(),
            own_tx_prune: 0,
            stats: DeviceStats {
                label,
                ..DeviceStats::default()
            },
            rng: StdRng::seed_from_u64(nd_core::seed::stream_seed(run_seed, id as u64)),
        }
    }

    /// Whether the node is in the network for the whole of `iv` (it must
    /// have joined by the start and not leave before the end).
    pub fn present_during(&self, iv: Interval) -> bool {
        self.join <= iv.start && self.leave.is_none_or(|l| iv.end <= l)
    }

    /// Insert an op keeping the buffer sorted by start time.
    pub fn insert_op(&mut self, op: Op) {
        if self.buffer.back().is_none_or(|last| last.at() <= op.at()) {
            self.buffer.push_back(op);
        } else {
            let pos = self.buffer.partition_point(|o| o.at() <= op.at());
            self.buffer.insert(pos, op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_sim::IdleBehavior;

    #[test]
    fn presence_window() {
        let spec = NodeSpec::windowed(Box::new(IdleBehavior), Tick(100), Some(Tick(500)));
        let node = Node::new(spec, 0, 7);
        assert!(node.present_during(Interval::new(Tick(100), Tick(500))));
        assert!(!node.present_during(Interval::new(Tick(99), Tick(200))));
        assert!(!node.present_during(Interval::new(Tick(400), Tick(501))));

        let forever = Node::new(NodeSpec::always_on(Box::new(IdleBehavior)), 1, 7);
        assert!(forever.present_during(Interval::new(Tick::ZERO, Tick(u64::MAX))));
    }

    #[test]
    #[should_panic(expected = "leave must come after join")]
    fn rejects_inverted_window() {
        let _ = NodeSpec::windowed(Box::new(IdleBehavior), Tick(10), Some(Tick(10)));
    }

    #[test]
    fn node_streams_are_distinct_and_deterministic() {
        use rand::Rng;
        let mut a0 = Node::new(NodeSpec::always_on(Box::new(IdleBehavior)), 0, 42).rng;
        let mut a0_again = Node::new(NodeSpec::always_on(Box::new(IdleBehavior)), 0, 42).rng;
        let mut a1 = Node::new(NodeSpec::always_on(Box::new(IdleBehavior)), 1, 42).rng;
        let x: u64 = a0.gen();
        assert_eq!(x, a0_again.gen::<u64>(), "same (seed, id) → same stream");
        assert_ne!(x, a1.gen::<u64>(), "different id → different stream");
    }

    #[test]
    fn insert_op_keeps_order() {
        let mut node = Node::new(NodeSpec::always_on(Box::new(IdleBehavior)), 0, 1);
        for at in [30u64, 10, 20, 25, 5] {
            node.insert_op(Op::Tx {
                at: Tick(at),
                payload: 0,
            });
        }
        let starts: Vec<u64> = node.buffer.iter().map(|o| o.at().as_nanos()).collect();
        assert_eq!(starts, vec![5, 10, 20, 25, 30]);
    }
}
