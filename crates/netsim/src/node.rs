//! Node state: behaviour, presence window, radio bookkeeping, and the
//! node's private RNG stream.
//!
//! A node's protocol runs on a *local* timeline that starts at 0 the
//! instant the node joins; the engine shifts local operations by the join
//! instant, so the same behaviour object describes a node that has been on
//! since the start and one that churns in an hour late. Clock drift
//! composes underneath via [`nd_sim::Drifting`], which skews the local
//! timeline itself.
//!
//! Live state lives in a `NodeArena` — structure-of-arrays vectors
//! indexed by node id — rather than one boxed struct per node. The hot
//! loop (presence checks, buffer fronts, stats bumps) then walks flat,
//! homogeneous vectors: cache-friendly and allocation-free per event at
//! large N.

use nd_core::interval::Interval;
use nd_core::time::Tick;
use nd_sim::{Behavior, DeviceStats};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A node to be added to the simulation: its protocol plus its presence
/// window.
pub struct NodeSpec {
    /// The protocol driving the node's radio (local timeline: 0 = join).
    pub behavior: Box<dyn Behavior>,
    /// When the node joins the network.
    pub join: Tick,
    /// When the node leaves again; `None` = stays to the end.
    pub leave: Option<Tick>,
    /// RNG stream id; `None` derives it from the node's engine-local id.
    /// Sharded runs pin this to the node's *global* id so a node draws the
    /// same private stream whether its shard is simulated alone or as
    /// part of the full cohort.
    pub stream: Option<u64>,
}

impl NodeSpec {
    /// A node present for the whole simulation.
    pub fn always_on(behavior: Box<dyn Behavior>) -> Self {
        NodeSpec {
            behavior,
            join: Tick::ZERO,
            leave: None,
            stream: None,
        }
    }

    /// A node present during `[join, leave)`.
    pub fn windowed(behavior: Box<dyn Behavior>, join: Tick, leave: Option<Tick>) -> Self {
        if let Some(l) = leave {
            assert!(l > join, "leave must come after join");
        }
        NodeSpec {
            behavior,
            join,
            leave,
            stream: None,
        }
    }

    /// Pin the node's RNG stream id (see [`NodeSpec::stream`]).
    pub fn with_stream(mut self, stream: u64) -> Self {
        self.stream = Some(stream);
        self
    }
}

/// `leave` sentinel for "stays to the end" inside the arena (a real leave
/// instant can never be `u64::MAX`: events beyond the horizon never fire).
const STAYS: Tick = Tick(u64::MAX);

/// Live per-node engine state, packed as structure-of-arrays.
///
/// Every vector has one slot per node, indexed by the engine-local node
/// id. The scalar per-node fields the event loop touches on every event
/// (`present`, `join`, `leave`, buffer fronts) sit in their own dense
/// vectors instead of being spread across boxed per-node structs.
pub(crate) struct NodeArena {
    pub behavior: Vec<Box<dyn Behavior>>,
    pub join: Vec<Tick>,
    /// Leave instant, `STAYS` (= `u64::MAX`) for nodes that never leave.
    leave: Vec<Tick>,
    /// Currently in the network.
    pub present: Vec<bool>,
    /// The behaviour returned an empty batch → nothing more proactive.
    pub proactive_done: Vec<bool>,
    /// Own transmissions in start order (pruned lazily; half-duplex
    /// blanking). Scheduled *listening* windows live in the engine's
    /// per-cluster timeline, not here: reception geometry queries them
    /// by time across the whole neighborhood.
    pub own_tx: Vec<Vec<Interval>>,
    pub own_tx_prune: Vec<usize>,
    pub stats: Vec<DeviceStats>,
    /// Per-node private RNG streams, derived from the run seed and the
    /// node's stream id — behaviours and fault rolls for one node never
    /// perturb any other node's stream.
    pub rng: Vec<StdRng>,
}

impl NodeArena {
    pub fn with_capacity(n: usize) -> Self {
        NodeArena {
            behavior: Vec::with_capacity(n),
            join: Vec::with_capacity(n),
            leave: Vec::with_capacity(n),
            present: Vec::with_capacity(n),
            proactive_done: Vec::with_capacity(n),
            own_tx: Vec::with_capacity(n),
            own_tx_prune: Vec::with_capacity(n),
            stats: Vec::with_capacity(n),
            rng: Vec::with_capacity(n),
        }
    }

    pub fn len(&self) -> usize {
        self.join.len()
    }

    /// Append a node; its id is its insertion index. `run_seed` roots the
    /// private stream (stream id = `spec.stream`, defaulting to the id).
    pub fn push(&mut self, spec: NodeSpec, run_seed: u64) -> usize {
        let id = self.len();
        let stream = spec.stream.unwrap_or(id as u64);
        self.behavior.push(spec.behavior);
        self.join.push(spec.join);
        self.leave.push(spec.leave.unwrap_or(STAYS));
        self.present.push(false);
        self.proactive_done.push(false);
        self.own_tx.push(Vec::new());
        self.own_tx_prune.push(0);
        self.stats.push(DeviceStats {
            label: self.behavior[id].label(),
            ..DeviceStats::default()
        });
        self.rng
            .push(StdRng::seed_from_u64(nd_core::seed::stream_seed(
                run_seed, stream,
            )));
        id
    }

    /// Node `i`'s leave instant (`None` = stays to the end).
    pub fn leave_of(&self, i: usize) -> Option<Tick> {
        (self.leave[i] != STAYS).then(|| self.leave[i])
    }

    /// Whether node `i` is in the network for the whole of `iv` (it must
    /// have joined by the start and not leave before the end).
    pub fn present_during(&self, i: usize, iv: Interval) -> bool {
        self.join[i] <= iv.start && iv.end <= self.leave[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_sim::IdleBehavior;

    fn arena_with(spec: NodeSpec, run_seed: u64) -> NodeArena {
        let mut arena = NodeArena::with_capacity(1);
        arena.push(spec, run_seed);
        arena
    }

    #[test]
    fn presence_window() {
        let spec = NodeSpec::windowed(Box::new(IdleBehavior), Tick(100), Some(Tick(500)));
        let arena = arena_with(spec, 7);
        assert!(arena.present_during(0, Interval::new(Tick(100), Tick(500))));
        assert!(!arena.present_during(0, Interval::new(Tick(99), Tick(200))));
        assert!(!arena.present_during(0, Interval::new(Tick(400), Tick(501))));
        assert_eq!(arena.leave_of(0), Some(Tick(500)));

        let forever = arena_with(NodeSpec::always_on(Box::new(IdleBehavior)), 7);
        assert!(forever.present_during(0, Interval::new(Tick::ZERO, Tick(u64::MAX))));
        assert_eq!(forever.leave_of(0), None);
    }

    #[test]
    #[should_panic(expected = "leave must come after join")]
    fn rejects_inverted_window() {
        let _ = NodeSpec::windowed(Box::new(IdleBehavior), Tick(10), Some(Tick(10)));
    }

    #[test]
    fn node_streams_are_distinct_and_deterministic() {
        use rand::Rng;
        let mut arena = NodeArena::with_capacity(2);
        arena.push(NodeSpec::always_on(Box::new(IdleBehavior)), 42);
        arena.push(NodeSpec::always_on(Box::new(IdleBehavior)), 42);
        let mut again = NodeArena::with_capacity(1);
        again.push(NodeSpec::always_on(Box::new(IdleBehavior)), 42);
        let x: u64 = arena.rng[0].gen();
        assert_eq!(
            x,
            again.rng[0].gen::<u64>(),
            "same (seed, id) → same stream"
        );
        assert_ne!(
            x,
            arena.rng[1].gen::<u64>(),
            "different id → different stream"
        );
    }

    #[test]
    fn pinned_stream_overrides_local_id() {
        use rand::Rng;
        // node 0 of a shard pinned to global stream 5 draws what node 5
        // of the full cohort draws
        let mut shard = NodeArena::with_capacity(1);
        shard.push(
            NodeSpec::always_on(Box::new(IdleBehavior)).with_stream(5),
            42,
        );
        let mut full = NodeArena::with_capacity(6);
        for _ in 0..6 {
            full.push(NodeSpec::always_on(Box::new(IdleBehavior)), 42);
        }
        assert_eq!(shard.rng[0].gen::<u64>(), full.rng[5].gen::<u64>());
    }
}
