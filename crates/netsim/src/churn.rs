//! Churn plans: who is in the network when.
//!
//! A [`ChurnPlan`] assigns every node a join instant and an optional leave
//! instant before the run starts; the engine turns them into `Join`/`Leave`
//! events. Plans are data, so a sweep job can derive them deterministically
//! from its content-hash seed: the same job always simulates the same
//! arrival pattern.

use nd_core::time::Tick;
use rand::rngs::StdRng;
use rand::Rng;

/// Per-node presence windows for one run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChurnPlan {
    /// Join instant per node.
    pub joins: Vec<Tick>,
    /// Leave instant per node (`None` = stays to the end).
    pub leaves: Vec<Option<Tick>>,
}

impl ChurnPlan {
    /// No churn: everyone present from 0 to the end.
    pub fn stable(n: usize) -> Self {
        ChurnPlan {
            joins: vec![Tick::ZERO; n],
            leaves: vec![None; n],
        }
    }

    /// Staggered churn: the last `round(fraction · n)` nodes are
    /// *churners* — each joins at a random instant in the first third of
    /// the horizon and leaves at a random instant in the last third. The
    /// remaining nodes are stable. Every churner therefore co-resides with
    /// the whole cohort during the middle third, so discovery is possible
    /// (if the protocol is good enough) for every pair.
    pub fn staggered(n: usize, fraction: f64, horizon: Tick, rng: &mut StdRng) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of [0, 1]");
        assert!(!horizon.is_zero(), "churn needs a positive horizon");
        let churners = ((fraction * n as f64).round() as usize).min(n);
        let third = (horizon.as_nanos() / 3).max(1);
        let mut plan = ChurnPlan::stable(n);
        // churners are the highest ids, so node 0 is always stable when
        // fraction < 1 (a fixed anchor makes results easier to read)
        for i in (n - churners)..n {
            plan.joins[i] = Tick(rng.gen_range(0..third));
            plan.leaves[i] = Some(Tick(2 * third + rng.gen_range(0..third)));
        }
        plan
    }

    /// Number of nodes covered by the plan.
    pub fn len(&self) -> usize {
        self.joins.len()
    }

    /// `true` if the plan covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.joins.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn stable_plan_is_trivial() {
        let p = ChurnPlan::stable(4);
        assert_eq!(p.len(), 4);
        assert!(p.joins.iter().all(|j| j.is_zero()));
        assert!(p.leaves.iter().all(|l| l.is_none()));
    }

    #[test]
    fn staggered_plan_windows_are_valid_and_overlap() {
        let horizon = Tick::from_millis(300);
        let mut rng = StdRng::seed_from_u64(9);
        let p = ChurnPlan::staggered(8, 0.5, horizon, &mut rng);
        assert_eq!(p.len(), 8);
        // half the cohort is stable, half churns
        assert_eq!(p.leaves.iter().filter(|l| l.is_some()).count(), 4);
        let third = horizon.as_nanos() / 3;
        for i in 4..8 {
            let join = p.joins[i];
            let leave = p.leaves[i].unwrap();
            assert!(join.as_nanos() < third);
            assert!(leave.as_nanos() >= 2 * third && leave < horizon);
            assert!(join < leave);
        }
    }

    #[test]
    fn staggered_is_deterministic_per_seed() {
        let horizon = Tick::from_millis(100);
        let a = ChurnPlan::staggered(6, 0.5, horizon, &mut StdRng::seed_from_u64(3));
        let b = ChurnPlan::staggered(6, 0.5, horizon, &mut StdRng::seed_from_u64(3));
        let c = ChurnPlan::staggered(6, 0.5, horizon, &mut StdRng::seed_from_u64(4));
        assert_eq!(a, b);
        assert_ne!(a, c, "different seed → different arrivals");
    }

    #[test]
    fn full_churn_leaves_no_stable_node() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = ChurnPlan::staggered(3, 1.0, Tick::from_millis(30), &mut rng);
        assert!(p.leaves.iter().all(|l| l.is_some()));
    }

    #[test]
    fn zero_fraction_equals_stable() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = ChurnPlan::staggered(5, 0.0, Tick::from_millis(30), &mut rng);
        assert_eq!(p, ChurnPlan::stable(5));
    }
}
