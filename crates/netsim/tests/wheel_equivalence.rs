//! Wheel-vs-heap equivalence at cohort scale.
//!
//! The `EventQueue` unit tests prove the timing wheel and the reference
//! binary heap pop byte-identical event sequences for raw push mixes;
//! this suite closes the loop at engine level. Randomized cohorts at
//! N ∈ {2, 8, 33} — random schedules, phases and staggered churn plans —
//! must produce field-identical [`CohortReport`]s on both queue
//! implementations, and on a clustered topology the sharded merge must
//! match the whole-cohort run too. Any divergence in event *order*
//! (collision outcomes, half-duplex blanking, RNG draw order, early-stop
//! instants) would surface as a report difference.

use nd_core::schedule::{BeaconSeq, ReceptionWindows, Schedule};
use nd_core::time::Tick;
use nd_netsim::{run_sharded_collect, ChurnPlan, CohortReport, NetSimulator, NodeSpec};
use nd_sim::{ScheduleBehavior, SimConfig, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const COHORTS: [usize; 3] = [2, 8, 33];

fn cfg(horizon: Tick, seed: u64) -> SimConfig {
    let mut radio = nd_core::RadioParams::paper_default();
    radio.omega = Tick::from_micros(4);
    SimConfig::paper_baseline(horizon, seed).with_radio(radio)
}

/// A randomized symmetric schedule: one beacon per period plus one
/// listening window, dimensions drawn from the case's parameters.
fn sched(period_us: u64, duty_pm: u64) -> Schedule {
    let period = Tick::from_micros(period_us);
    let omega = Tick::from_micros(4);
    let window = Tick(
        (period.as_nanos() * duty_pm / 1000).clamp(omega.as_nanos() * 2, period.as_nanos() / 2),
    );
    Schedule::full(
        BeaconSeq::uniform(1, period, omega, Tick::ZERO).unwrap(),
        ReceptionWindows::single(Tick(period.as_nanos() / 2), window, period).unwrap(),
    )
}

fn spec(i: usize, period_us: u64, duty_pm: u64, plan: &ChurnPlan) -> NodeSpec {
    let phase = Tick(((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) % (period_us * 1000));
    NodeSpec::windowed(
        Box::new(ScheduleBehavior::with_phase(
            sched(period_us, duty_pm),
            phase,
        )),
        plan.joins[i],
        plan.leaves[i],
    )
}

#[allow(clippy::too_many_arguments)]
fn run_cohort(
    n: usize,
    topo: &Topology,
    seed: u64,
    period_us: u64,
    duty_pm: u64,
    plan: &ChurnPlan,
    horizon: Tick,
    heap: bool,
) -> CohortReport {
    let mut sim = NetSimulator::new(cfg(horizon, seed), topo.clone());
    if heap {
        sim.use_heap_queue();
    }
    sim.stop_when_all_discovered(true);
    for i in 0..n {
        sim.add_node(spec(i, period_us, duty_pm, plan));
    }
    sim.run()
}

fn assert_reports_equal(a: &CohortReport, b: &CohortReport, what: &str) {
    assert_eq!(a.elapsed, b.elapsed, "{what}: elapsed");
    assert_eq!(a.events, b.events, "{what}: events");
    assert_eq!(a.discovery, b.discovery, "{what}: discovery");
    assert_eq!(a.packets, b.packets, "{what}: packets");
    assert_eq!(a.stats, b.stats, "{what}: stats");
    assert_eq!(a.joins, b.joins, "{what}: joins");
    assert_eq!(a.leaves, b.leaves, "{what}: leaves");
    assert_eq!(a.cluster, b.cluster, "{what}: cluster");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Full-mesh cohorts under randomized churn: the production wheel and
    /// the reference heap must agree field for field at every N.
    #[test]
    fn wheel_and_heap_reports_agree_under_churn(
        seed in 0u64..1_000_000,
        churn_seed in 0u64..1_000_000,
        fraction in 0.0f64..0.8,
        period_us in 300u64..3000,
        duty_pm in 100u64..600,
    ) {
        let horizon = Tick::from_millis(30);
        for n in COHORTS {
            let plan = ChurnPlan::staggered(
                n, fraction, horizon, &mut StdRng::seed_from_u64(churn_seed));
            let topo = Topology::full(n);
            let wheel = run_cohort(n, &topo, seed, period_us, duty_pm, &plan, horizon, false);
            let heap = run_cohort(n, &topo, seed, period_us, duty_pm, &plan, horizon, true);
            assert_reports_equal(&wheel, &heap, &format!("n={n} wheel vs heap"));
            prop_assert!(wheel.events > 0, "n={n}: the run must do something");
        }
    }

    /// Clustered cohorts under churn: the sharded run's merged report
    /// equals the whole-cohort run on both queue implementations.
    #[test]
    fn sharded_merge_agrees_with_both_queues_under_churn(
        seed in 0u64..1_000_000,
        churn_seed in 0u64..1_000_000,
        fraction in 0.0f64..0.8,
        period_us in 300u64..3000,
        duty_pm in 100u64..600,
    ) {
        let horizon = Tick::from_millis(30);
        for n in COHORTS {
            let clusters = (n / 4).clamp(1, 4) as u32;
            let plan = ChurnPlan::staggered(
                n, fraction, horizon, &mut StdRng::seed_from_u64(churn_seed));
            let topo = Topology::clusters((0..n as u32).map(|i| i % clusters).collect());
            let wheel = run_cohort(n, &topo, seed, period_us, duty_pm, &plan, horizon, false);
            let heap = run_cohort(n, &topo, seed, period_us, duty_pm, &plan, horizon, true);
            assert_reports_equal(&wheel, &heap, &format!("n={n} wheel vs heap"));
            let config = cfg(horizon, seed);
            for threads in [1, 4] {
                let sharded = run_sharded_collect(&config, &topo, true, threads, |g| {
                    spec(g, period_us, duty_pm, &plan)
                });
                assert_reports_equal(
                    &sharded.merge(&topo), &wheel,
                    &format!("n={n} threads={threads} sharded vs unsharded"));
            }
        }
    }
}
