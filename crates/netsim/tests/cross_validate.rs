//! Cross-validation of the N-node engine.
//!
//! 1. **N = 2 is the pairwise engine**: on randomized advertiser/scanner
//!    configurations (proptest), an always-on two-node cohort must
//!    reproduce `nd_sim::Simulator`'s discovery instants *exactly* — same
//!    channel model, same semantics, packet for packet.
//! 2. **Eq. 12 collision bound**: with S beaconers contending at channel
//!    utilization β, the measured collision rate must match the paper's
//!    slotless-ALOHA model `P_c = 1 − e^{−2(S−1)β}` within Monte-Carlo
//!    tolerance.

use nd_core::schedule::{BeaconSeq, ReceptionWindows, Schedule};
use nd_core::time::Tick;
use nd_netsim::{NetSimulator, NodeSpec};
use nd_sim::{ScheduleBehavior, SimConfig, Simulator, Topology};
use proptest::prelude::*;

const OMEGA: Tick = Tick(36_000);

fn cfg(horizon: Tick, seed: u64) -> SimConfig {
    let mut radio = nd_core::RadioParams::paper_default();
    radio.omega = OMEGA;
    SimConfig::paper_baseline(horizon, seed).with_radio(radio)
}

/// Advertiser (beacon period `ta`, phase `pa`) and scanner (window `ds`
/// per `ts`, phase `ps`), the canonical asymmetric pair.
fn schedules(ta: Tick, ts: Tick, ds: Tick) -> (Schedule, Schedule) {
    let adv = Schedule::tx_only(BeaconSeq::new(vec![Tick::ZERO], ta, OMEGA).unwrap());
    let scan = Schedule::rx_only(ReceptionWindows::single(Tick::ZERO, ds, ts).unwrap());
    (adv, scan)
}

fn run_pairwise(
    ta: Tick,
    pa: Tick,
    ts: Tick,
    ds: Tick,
    ps: Tick,
    horizon: Tick,
) -> (Option<Tick>, u64) {
    let (adv, scan) = schedules(ta, ts, ds);
    let mut sim = Simulator::new(cfg(horizon, 5), Topology::full(2));
    sim.add_device(Box::new(ScheduleBehavior::with_phase(adv, pa)));
    sim.add_device(Box::new(ScheduleBehavior::with_phase(scan, ps)));
    let report = sim.run();
    (report.discovery.one_way(1, 0), report.packets.received)
}

fn run_netsim(
    ta: Tick,
    pa: Tick,
    ts: Tick,
    ds: Tick,
    ps: Tick,
    horizon: Tick,
) -> (Option<Tick>, u64) {
    let (adv, scan) = schedules(ta, ts, ds);
    let mut sim = NetSimulator::new(cfg(horizon, 5), Topology::full(2));
    sim.add_node(NodeSpec::always_on(Box::new(ScheduleBehavior::with_phase(
        adv, pa,
    ))));
    sim.add_node(NodeSpec::always_on(Box::new(ScheduleBehavior::with_phase(
        scan, ps,
    ))));
    let report = sim.run();
    (report.discovery.one_way(1, 0), report.packets.received)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// At N = 2, always-on, zero-collision (only one node transmits, so
    /// the channel is collision-free): netsim reproduces the pairwise
    /// engine's first-discovery instant and total reception count exactly.
    #[test]
    fn netsim_equals_pairwise_engine_at_n2(
        ta_us in 100u64..4000,
        pa_pm in 0u64..1000,
        ts_us in 200u64..5000,
        ds_pm in 50u64..900,
        ps_pm in 0u64..1000,
    ) {
        let ta = Tick::from_micros(ta_us);
        let ts = Tick::from_micros(ts_us);
        let ds = Tick((ts.as_nanos() * ds_pm / 1000).max(1));
        let pa = Tick(ta.as_nanos() * pa_pm / 1000);
        let ps = Tick(ts.as_nanos() * ps_pm / 1000);
        let horizon = Tick::from_millis(40);

        let pairwise = run_pairwise(ta, pa, ts, ds, ps, horizon);
        let cohort = run_netsim(ta, pa, ts, ds, ps, horizon);
        prop_assert_eq!(pairwise, cohort);
    }
}

/// Eq. 12 of the paper: S contending beaconers, each with channel
/// utilization β, lose a fraction `1 − e^{−2(S−1)β}` of their beacons to
/// collisions. Simulate S senders with near-coprime periods (so beacon
/// alignments decorrelate) plus one always-listening scanner, and compare
/// the measured collision rate at the scanner against the bound.
#[test]
fn collision_rate_matches_eq12() {
    // distinct prime-ish periods around 400ω: β ≈ 0.0025 each
    let periods_us = [3989u64, 4001, 4093, 4211, 4297, 4409];
    let s = periods_us.len() as u32;
    let omega = Tick::from_micros(4);
    let horizon = Tick::from_millis(400);

    let mut received = 0u64;
    let mut lost_collision = 0u64;
    for seed in 0..24u64 {
        let mut radio = nd_core::RadioParams::paper_default();
        radio.omega = omega;
        let mut cfg = SimConfig::paper_baseline(horizon, seed).with_radio(radio);
        cfg.half_duplex = false; // the scanner never transmits anyway
        let n = periods_us.len() + 1;
        let mut sim = NetSimulator::new(cfg, Topology::full(n));
        for (i, &period_us) in periods_us.iter().enumerate() {
            let period = Tick::from_micros(period_us);
            let adv = Schedule::tx_only(BeaconSeq::new(vec![Tick::ZERO], period, omega).unwrap());
            // deterministic per-sender phase, different every run
            let phase = Tick(
                (seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (i as u64) << 48)
                    % period.as_nanos().max(1),
            );
            sim.add_node(NodeSpec::always_on(Box::new(ScheduleBehavior::with_phase(
                adv, phase,
            ))));
        }
        // the scanner: wall-to-wall listening
        let scan = Schedule::rx_only(
            ReceptionWindows::single(Tick::ZERO, Tick::from_millis(1), Tick::from_millis(1))
                .unwrap(),
        );
        sim.add_node(NodeSpec::always_on(Box::new(ScheduleBehavior::new(scan))));
        let report = sim.run();
        received += report.packets.received;
        lost_collision += report.packets.lost_collision;
    }

    let receivable = received + lost_collision;
    assert!(receivable > 10_000, "need statistics, got {receivable}");
    let measured = lost_collision as f64 / receivable as f64;
    let beta = 4.0 / 4166.0; // ω / mean period
    let predicted = nd_core::bounds::collisions::collision_probability(s, beta);
    assert!(
        (measured - predicted).abs() < 0.01,
        "measured collision rate {measured:.4} vs Eq. 12 prediction {predicted:.4}"
    );
}
