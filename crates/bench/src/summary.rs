//! Shared throughput measurement and the stable `nd-bench-summary/v1`
//! JSON schema for the criterion benches' CI artifacts.
//!
//! Each bench (`benches/netsim.rs`, `benches/opt.rs`) records its
//! hand-measured throughput numbers into the `nd-obs` metrics registry —
//! iteration counts as counters, rates as gauges, all under a `bench.`
//! prefix — and then serializes the retained snapshot under a versioned
//! envelope:
//!
//! ```json
//! {
//!   "schema": "nd-bench-summary/v1",
//!   "suite": "netsim",
//!   "metrics": {
//!     "counters": {"bench.netsim_cohort.nodes_2.iters": 137, ...},
//!     "gauges": {"bench.netsim_cohort.nodes_2.runs_per_sec": 412.5, ...},
//!     "histograms": {}
//!   }
//! }
//! ```
//!
//! The *schema* — the envelope fields plus the set of metric names — is
//! what CI guards (see the `bench-schema` bin): values vary with the
//! machine, names must not drift silently.

use std::hint::black_box;
use std::time::Instant;

/// Version tag written into every summary envelope.
pub const SCHEMA: &str = "nd-bench-summary/v1";

/// Calibrated throughput measurement, shared by every bench summary.
///
/// Doubles the batch size until one batch takes a meaningful fraction of
/// the time budget (`ND_BENCH_MS`, default 300 ms), then runs a single
/// timed batch sized to fill the budget. Returns `(iterations, per_sec)`.
pub fn measure(mut f: impl FnMut() -> u64) -> (u64, f64) {
    let mut iters: u64 = 1;
    let target_ms: u64 = std::env::var("ND_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);
    let per_iter = loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let dt = t0.elapsed();
        if dt.as_millis() as u64 * 8 >= target_ms || iters >= 1 << 20 {
            break dt.as_secs_f64() / iters as f64;
        }
        iters *= 2;
    };
    let n = ((target_ms as f64 / 1e3) / per_iter.max(1e-9))
        .ceil()
        .clamp(1.0, 1e7) as u64;
    let t0 = Instant::now();
    for _ in 0..n {
        black_box(f());
    }
    (n, n as f64 / t0.elapsed().as_secs_f64())
}

/// One bench suite's summary, accumulating into the metrics registry.
pub struct Summary {
    suite: &'static str,
}

impl Summary {
    /// Start a summary for `suite`, enabling and resetting the registry
    /// so the snapshot holds exactly this suite's numbers.
    pub fn new(suite: &'static str) -> Self {
        nd_obs::metrics::set_enabled(true);
        nd_obs::metrics::reset();
        Summary { suite }
    }

    /// Record one measured rate: `bench.<bench>.iters` (counter) and
    /// `bench.<bench>.<unit>_per_sec` (gauge).
    pub fn record_rate(&self, bench: &str, unit: &str, iters: u64, per_sec: f64) {
        nd_obs::metrics::add(&format!("bench.{bench}.iters"), iters);
        nd_obs::metrics::gauge_set(&format!("bench.{bench}.{unit}_per_sec"), per_sec);
    }

    /// Record a free-form per-bench gauge (e.g. a job count).
    pub fn record_gauge(&self, bench: &str, key: &str, value: f64) {
        nd_obs::metrics::gauge_set(&format!("bench.{bench}.{key}"), value);
    }

    /// Render the versioned envelope around the registry snapshot
    /// (restricted to `bench.` metrics).
    pub fn to_json(&self) -> String {
        let mut snap = nd_obs::metrics::snapshot();
        snap.retain(|name| name.starts_with("bench."));
        let metrics = snap.to_json();
        let mut out = format!(
            "{{\n  \"schema\": \"{SCHEMA}\",\n  \"suite\": \"{}\",\n  \"metrics\": ",
            self.suite
        );
        // re-indent the snapshot's pretty-printed lines to nest cleanly
        for (i, line) in metrics.trim_end().lines().enumerate() {
            if i > 0 {
                out.push_str("\n  ");
            }
            out.push_str(line);
        }
        out.push_str("\n}\n");
        out
    }

    /// Write the summary to `ND_BENCH_JSON` (or `default_path`), keeping
    /// the bench alive on I/O failure — a bench run still reports to the
    /// console even if the artifact directory is read-only.
    pub fn write(&self, default_path: &str) {
        let path = std::env::var("ND_BENCH_JSON").unwrap_or_else(|_| default_path.to_string());
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => println!("wrote throughput summary to {path}"),
            Err(e) => eprintln!("cannot write {path}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_iterations() {
        let (iters, per_sec) = measure(|| 1);
        assert!(iters >= 1);
        assert!(per_sec > 0.0);
    }

    #[test]
    fn summary_envelope_is_versioned_and_nested() {
        let s = Summary::new("selftest");
        s.record_rate("alpha", "runs", 10, 123.5);
        s.record_gauge("alpha", "jobs", 4.0);
        let json = s.to_json();
        assert!(json.contains("\"schema\": \"nd-bench-summary/v1\""));
        assert!(json.contains("\"suite\": \"selftest\""));
        assert!(json.contains("\"bench.alpha.iters\": 10"));
        assert!(json.contains("\"bench.alpha.runs_per_sec\": 123.5"));
        assert!(json.contains("\"bench.alpha.jobs\": 4.0"));
        // the envelope must parse as JSON (via nd-sweep's parser)
        let v = nd_sweep::value::parse_json(&json).expect("summary must be valid JSON");
        let table = v.as_table().unwrap();
        assert_eq!(table["schema"].as_str(), Some(SCHEMA));
        assert!(table["metrics"].as_table().unwrap().contains_key("gauges"));
    }
}
