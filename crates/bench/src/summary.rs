//! Shared throughput measurement and the stable `nd-bench-summary/v1`
//! JSON schema for the criterion benches' CI artifacts.
//!
//! Each bench (`benches/netsim.rs`, `benches/opt.rs`) records its
//! hand-measured throughput numbers into the `nd-obs` metrics registry —
//! iteration counts as counters, rates as gauges, all under a `bench.`
//! prefix — and then serializes the retained snapshot under a versioned
//! envelope:
//!
//! ```json
//! {
//!   "schema": "nd-bench-summary/v1",
//!   "suite": "netsim",
//!   "metrics": {
//!     "counters": {"bench.netsim_cohort.nodes_2.iters": 137, ...},
//!     "gauges": {"bench.netsim_cohort.nodes_2.runs_per_sec": 412.5, ...},
//!     "histograms": {}
//!   }
//! }
//! ```
//!
//! The *schema* — the envelope fields plus the set of metric names — is
//! what CI guards (see the `bench-schema` bin): values vary with the
//! machine, names must not drift silently.

use std::hint::black_box;
use std::time::Instant;

/// Version tag written into every summary envelope.
pub const SCHEMA: &str = "nd-bench-summary/v1";

/// Calibrated throughput measurement, shared by every bench summary.
///
/// Doubles the batch size until one batch takes a meaningful fraction of
/// the time budget (`ND_BENCH_MS`, default 300 ms), then runs a single
/// timed batch sized to fill the budget. Returns `(iterations, per_sec)`.
pub fn measure(mut f: impl FnMut() -> u64) -> (u64, f64) {
    let mut iters: u64 = 1;
    let target_ms: u64 = std::env::var("ND_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);
    let per_iter = loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let dt = t0.elapsed();
        if dt.as_millis() as u64 * 8 >= target_ms || iters >= 1 << 20 {
            break dt.as_secs_f64() / iters as f64;
        }
        iters *= 2;
    };
    let n = ((target_ms as f64 / 1e3) / per_iter.max(1e-9))
        .ceil()
        .clamp(1.0, 1e7) as u64;
    let t0 = Instant::now();
    for _ in 0..n {
        black_box(f());
    }
    (n, n as f64 / t0.elapsed().as_secs_f64())
}

/// One bench suite's summary, accumulating into the metrics registry.
pub struct Summary {
    suite: &'static str,
}

impl Summary {
    /// Start a summary for `suite`, enabling and resetting the registry
    /// so the snapshot holds exactly this suite's numbers.
    pub fn new(suite: &'static str) -> Self {
        nd_obs::metrics::set_enabled(true);
        nd_obs::metrics::reset();
        Summary { suite }
    }

    /// Record one measured rate: `bench.<bench>.iters` (counter) and
    /// `bench.<bench>.<unit>_per_sec` (gauge).
    pub fn record_rate(&self, bench: &str, unit: &str, iters: u64, per_sec: f64) {
        nd_obs::metrics::add(&format!("bench.{bench}.iters"), iters);
        nd_obs::metrics::gauge_set(&format!("bench.{bench}.{unit}_per_sec"), per_sec);
    }

    /// Record a free-form per-bench gauge (e.g. a job count).
    pub fn record_gauge(&self, bench: &str, key: &str, value: f64) {
        nd_obs::metrics::gauge_set(&format!("bench.{bench}.{key}"), value);
    }

    /// Render the versioned envelope around the registry snapshot
    /// (restricted to `bench.` metrics).
    pub fn to_json(&self) -> String {
        let mut snap = nd_obs::metrics::snapshot();
        snap.retain(|name| name.starts_with("bench."));
        let metrics = snap.to_json();
        let mut out = format!(
            "{{\n  \"schema\": \"{SCHEMA}\",\n  \"suite\": \"{}\",\n  \"metrics\": ",
            self.suite
        );
        // re-indent the snapshot's pretty-printed lines to nest cleanly
        for (i, line) in metrics.trim_end().lines().enumerate() {
            if i > 0 {
                out.push_str("\n  ");
            }
            out.push_str(line);
        }
        out.push_str("\n}\n");
        out
    }

    /// Write the summary to `ND_BENCH_JSON` (or `default_path`), keeping
    /// the bench alive on I/O failure — a bench run still reports to the
    /// console even if the artifact directory is read-only. When
    /// `ND_BENCH_HISTORY` names a file, one compact history line is
    /// appended there too.
    pub fn write(&self, default_path: &str) {
        let path = std::env::var("ND_BENCH_JSON").unwrap_or_else(|_| default_path.to_string());
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => println!("wrote throughput summary to {path}"),
            Err(e) => eprintln!("cannot write {path}: {e}"),
        }
        self.append_history();
    }

    /// The envelope as one compact JSONL line, stamped with the wall
    /// clock (`recorded_unix_s`) and, when `ND_BENCH_LABEL` is set, a
    /// free-form label (CI passes the commit id) — the append-only
    /// history format behind `BENCH_HISTORY.jsonl`.
    pub fn to_history_line(&self) -> String {
        use nd_sweep::value::Value;
        let mut v =
            nd_sweep::value::parse_json(&self.to_json()).expect("own envelope is valid JSON");
        if let Value::Table(t) = &mut v {
            let unix = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0);
            t.insert("recorded_unix_s".to_string(), Value::Int(unix as i64));
            if let Ok(label) = std::env::var("ND_BENCH_LABEL") {
                if !label.is_empty() {
                    t.insert("label".to_string(), Value::Str(label));
                }
            }
        }
        v.to_json()
    }

    /// Append [`Summary::to_history_line`] to the file named by
    /// `ND_BENCH_HISTORY`. A no-op when the variable is unset or empty;
    /// like [`Summary::write`], I/O failure only warns.
    pub fn append_history(&self) {
        let Ok(path) = std::env::var("ND_BENCH_HISTORY") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        use std::io::Write as _;
        let line = self.to_history_line();
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| writeln!(f, "{line}"));
        match appended {
            Ok(()) => println!("appended throughput history to {path}"),
            Err(e) => eprintln!("cannot append {path}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_iterations() {
        let (iters, per_sec) = measure(|| 1);
        assert!(iters >= 1);
        assert!(per_sec > 0.0);
    }

    #[test]
    fn summary_envelope_is_versioned_and_nested() {
        let s = Summary::new("selftest");
        s.record_rate("alpha", "runs", 10, 123.5);
        s.record_gauge("alpha", "jobs", 4.0);
        let json = s.to_json();
        assert!(json.contains("\"schema\": \"nd-bench-summary/v1\""));
        assert!(json.contains("\"suite\": \"selftest\""));
        assert!(json.contains("\"bench.alpha.iters\": 10"));
        assert!(json.contains("\"bench.alpha.runs_per_sec\": 123.5"));
        assert!(json.contains("\"bench.alpha.jobs\": 4.0"));
        // the envelope must parse as JSON (via nd-sweep's parser)
        let v = nd_sweep::value::parse_json(&json).expect("summary must be valid JSON");
        let table = v.as_table().unwrap();
        assert_eq!(table["schema"].as_str(), Some(SCHEMA));
        assert!(table["metrics"].as_table().unwrap().contains_key("gauges"));

        // history lines: compact, append-only, timestamped, labelled.
        // Same test (not a sibling): the registry and the environment
        // are process-global.
        let history = std::env::temp_dir().join(format!("nd-bench-hist-{}", std::process::id()));
        let _ = std::fs::remove_file(&history);
        std::env::set_var("ND_BENCH_HISTORY", &history);
        std::env::set_var("ND_BENCH_LABEL", "deadbeef");
        s.append_history();
        s.append_history();
        std::env::remove_var("ND_BENCH_HISTORY");
        std::env::remove_var("ND_BENCH_LABEL");
        let text = std::fs::read_to_string(&history).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "append-only: one line per call");
        for line in lines {
            let v = nd_sweep::value::parse_json(line).expect("history line parses");
            let t = v.as_table().unwrap();
            assert_eq!(t["schema"].as_str(), Some(SCHEMA));
            assert_eq!(t["suite"].as_str(), Some("selftest"));
            assert_eq!(t["label"].as_str(), Some("deadbeef"));
            assert!(t.contains_key("recorded_unix_s"));
            assert!(t["metrics"].as_table().is_some());
        }
        let _ = std::fs::remove_file(&history);
    }
}
