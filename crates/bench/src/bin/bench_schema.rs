//! `bench-schema` — guard the `nd-bench-summary/v1` schema against drift.
//!
//! ```text
//! bench-schema <baseline.json> <fresh.json>
//! ```
//!
//! Compares a committed baseline summary (e.g. `BENCH_netsim.json` at the
//! repo root) against a freshly regenerated one: the `schema` version and
//! `suite` must match, and the *set of metric names* in each section
//! (counters, gauges, histograms) must be identical. Values are ignored —
//! they vary with the machine; names drifting silently is what breaks
//! downstream dashboards.

use nd_sweep::value::{parse_json, Value};
use std::collections::BTreeSet;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, fresh_path] = args.as_slice() else {
        eprintln!("usage: bench-schema <baseline.json> <fresh.json>");
        return ExitCode::FAILURE;
    };
    match check(baseline_path, fresh_path) {
        Ok(suite) => {
            println!("bench-schema: `{suite}` summaries agree ({baseline_path} vs {fresh_path})");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench-schema: {e}");
            ExitCode::FAILURE
        }
    }
}

struct Shape {
    schema: String,
    suite: String,
    /// `<section>/<metric name>` for every metric in the summary.
    names: BTreeSet<String>,
}

fn check(baseline_path: &str, fresh_path: &str) -> Result<String, String> {
    let baseline = load(baseline_path)?;
    let fresh = load(fresh_path)?;
    if baseline.schema != fresh.schema {
        return Err(format!(
            "schema version drift: baseline `{}` vs fresh `{}`",
            baseline.schema, fresh.schema
        ));
    }
    if baseline.suite != fresh.suite {
        return Err(format!(
            "suite mismatch: baseline `{}` vs fresh `{}`",
            baseline.suite, fresh.suite
        ));
    }
    let missing: Vec<&String> = baseline.names.difference(&fresh.names).collect();
    let added: Vec<&String> = fresh.names.difference(&baseline.names).collect();
    if !missing.is_empty() || !added.is_empty() {
        let mut msg = format!("metric-name drift in suite `{}`:", baseline.suite);
        for name in missing {
            msg.push_str(&format!("\n  - {name} (in baseline, not regenerated)"));
        }
        for name in added {
            msg.push_str(&format!("\n  + {name} (new; re-commit the baseline)"));
        }
        return Err(msg);
    }
    Ok(baseline.suite)
}

fn load(path: &str) -> Result<Shape, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let v = parse_json(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let table = v
        .as_table()
        .ok_or_else(|| format!("{path}: not a JSON object"))?;
    let str_field = |key: &str| -> Result<String, String> {
        table
            .get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("{path}: missing string field `{key}`"))
    };
    let schema = str_field("schema")?;
    let suite = str_field("suite")?;
    let metrics = table
        .get("metrics")
        .and_then(Value::as_table)
        .ok_or_else(|| format!("{path}: missing `metrics` object"))?;
    let mut names = BTreeSet::new();
    for section in ["counters", "gauges", "histograms"] {
        let map = metrics
            .get(section)
            .and_then(Value::as_table)
            .ok_or_else(|| format!("{path}: missing `metrics.{section}` object"))?;
        for name in map.keys() {
            names.insert(format!("{section}/{name}"));
        }
    }
    Ok(Shape {
        schema,
        suite,
        names,
    })
}
