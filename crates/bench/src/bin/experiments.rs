//! CLI entry point: regenerate any table/figure of the paper.
//!
//! ```text
//! experiments list        # what's available
//! experiments all         # run everything
//! experiments fig7 table1 # run specific experiments
//! ```

use nd_bench::{all_experiments, run_experiment};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "list" {
        println!("available experiments (run with `experiments <id>` or `experiments all`):\n");
        for e in all_experiments() {
            println!("  {:<10} {}", e.id, e.artifact);
        }
        return;
    }
    let ids: Vec<String> = if args[0] == "all" {
        all_experiments().iter().map(|e| e.id.to_string()).collect()
    } else {
        args
    };
    for id in ids {
        match run_experiment(&id) {
            Some(report) => {
                println!("==================================================================");
                println!("experiment: {id}");
                println!("==================================================================");
                println!("{report}");
            }
            None => {
                eprintln!("unknown experiment: {id} (try `experiments list`)");
                std::process::exit(1);
            }
        }
    }
}
