//! Tiny plain-text table formatter for experiment output.

use std::fmt::Write as _;

/// A right-aligned plain-text table with a header row.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>w$}", c, w = widths[i]);
                if i + 1 < ncols {
                    let _ = write!(out, "  ");
                }
            }
            let _ = writeln!(out);
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// Format seconds with an adaptive unit.
pub fn secs(s: f64) -> String {
    if !s.is_finite() {
        "inf".into()
    } else if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// Format a ratio/factor.
pub fn factor(f: f64) -> String {
    if !f.is_finite() {
        "inf".into()
    } else {
        format!("{f:.3}x")
    }
}

/// Format a probability as a percentage.
pub fn pct(p: f64) -> String {
    format!("{:.3}%", p * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "23".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name") && lines[0].contains("value"));
        assert!(lines[1].starts_with('-'));
        // right alignment: the "1" sits at the end of its column
        assert!(lines[2].ends_with('1'));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn arity_checked() {
        Table::new(&["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn unit_formats() {
        assert_eq!(secs(2.5), "2.500s");
        assert_eq!(secs(0.0576), "57.600ms");
        assert_eq!(secs(36e-6), "36.0us");
        assert_eq!(secs(f64::INFINITY), "inf");
        assert_eq!(factor(2.0), "2.000x");
        assert_eq!(pct(0.072), "7.200%");
    }
}
