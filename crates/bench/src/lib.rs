//! # nd-bench — the experiment harness
//!
//! One module per experiment; each regenerates a table or figure of *On
//! Optimal Neighbor Discovery* (SIGCOMM 2019) as a plain-text series that
//! can be compared against the paper (EXPERIMENTS.md records the
//! comparison). Run them with:
//!
//! ```text
//! cargo run -p nd-bench --release --bin experiments -- <id>|all|list
//! ```
//!
//! Criterion performance benchmarks live in `benches/`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod summary;
pub mod table;

pub use experiments::{all_experiments, run_experiment};
pub use summary::{measure, Summary};
