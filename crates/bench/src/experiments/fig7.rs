//! Figure 7 (§7.2): worst-case bounds when the collision rate is capped.
//!
//! For a tolerated collision probability `P_c = 1 %` among `S` senders,
//! Eq. 12 caps the channel utilization at `β_m = −ln(1−P_c)/(2(S−1))`,
//! which via Theorem 5.6 inflates the latency bound for duty cycles above
//! the kink `η* = 2αβ_m` (the circled points in the paper's figure). The
//! deterioration reaches two orders of magnitude for busy networks.

use crate::table::{pct, secs, Table};
use nd_core::bounds::collisions::{
    collision_constrained_bound, kink_duty_cycle, max_utilization_for,
};
use nd_core::bounds::symmetric_bound;

const OMEGA: f64 = 36e-6;
const ALPHA: f64 = 1.0;
const PC: f64 = 0.01;

/// Generate the report.
pub fn run() -> String {
    let senders = [2u32, 10, 100, 1000];
    let mut out = String::new();
    out.push_str("Figure 7 — bound on L with collision rate capped at 1 %\n");
    out.push_str("(ω = 36 µs, α = 1; 'unconstr' is Theorem 5.5)\n\n");

    // the kink points (circles in the paper's figure)
    let mut k = Table::new(&["S", "β_m (Eq.12⁻¹)", "kink η* = 2αβ_m", "L at kink"]);
    for s in senders {
        let beta_m = max_utilization_for(PC, s);
        let eta = kink_duty_cycle(ALPHA, PC, s);
        k.row(vec![
            format!("{s}"),
            pct(beta_m),
            pct(eta),
            secs(symmetric_bound(ALPHA, OMEGA, eta)),
        ]);
    }
    out.push_str(&k.render());
    out.push('\n');

    let mut headers = vec!["η".to_string(), "unconstr".to_string()];
    for s in senders {
        headers.push(format!("S={s}"));
    }
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&hdr_refs);
    for eta_pct in [0.1f64, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0] {
        let eta = eta_pct / 100.0;
        let mut row = vec![
            format!("{eta_pct}%"),
            secs(symmetric_bound(ALPHA, OMEGA, eta)),
        ];
        for s in senders {
            row.push(secs(collision_constrained_bound(ALPHA, OMEGA, eta, PC, s)));
        }
        t.row(row);
    }
    out.push_str(&t.render());

    // deterioration factors at η = 100 %
    out.push_str("\nDeterioration factor at η = 100 % (vs. unconstrained):\n\n");
    let mut d = Table::new(&["S", "factor"]);
    for s in senders {
        let f = collision_constrained_bound(ALPHA, OMEGA, 1.0, PC, s)
            / symmetric_bound(ALPHA, OMEGA, 1.0);
        d.row(vec![format!("{s}"), format!("{f:.1}x")]);
    }
    out.push_str(&d.render());
    out.push_str(
        "\nReading: below the kink the constraint is free; beyond it the bound\n\
         deteriorates up to two orders of magnitude (paper's observation) —\n\
         protocols that scale to busy networks sacrifice small-network latency.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq12_consistency_at_cap() {
        use nd_core::bounds::collisions::collision_probability;
        for s in [2u32, 10, 100, 1000] {
            let beta_m = max_utilization_for(PC, s);
            assert!((collision_probability(s, beta_m) - PC).abs() < 1e-12);
        }
    }

    #[test]
    fn two_orders_of_magnitude_for_busy_networks() {
        let f = collision_constrained_bound(ALPHA, OMEGA, 1.0, PC, 1000)
            / symmetric_bound(ALPHA, OMEGA, 1.0);
        assert!(f > 100.0, "factor {f}");
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert!(r.contains("Figure 7"));
        assert!(r.contains("kink"));
    }
}
