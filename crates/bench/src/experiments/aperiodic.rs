//! Appendix A.1: non-repetitive reception sequences.
//!
//! The bound `L = ω/(βγ)` (Eq. 23) holds for *any* reception pattern,
//! repetitive or not. This experiment puts three scanners with the same
//! γ against the same beacon train:
//!
//! * the repetitive optimal tiling — achieves the bound deterministically;
//! * a deterministic sliding (non-repetitive) scanner — also bounded,
//!   though not optimal for arbitrary strides;
//! * a uniformly random scanner — its *mean* is close to optimal but its
//!   tail is geometric: no worst case exists, which is why the paper's
//!   deterministic framing matters.

use crate::table::{pct, secs, Table};
use nd_analysis::montecarlo::LatencySummary;
use nd_core::bounds::unidirectional_bound;
use nd_core::schedule::Schedule;
use nd_core::time::Tick;
use nd_protocols::aperiodic::{RandomScanner, SlidingScanner};
use nd_protocols::optimal::{self, OptimalParams};
use nd_sim::{Behavior, ScheduleBehavior, SimConfig, Simulator, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BETA: f64 = 0.01;
const GAMMA: f64 = 0.05;

fn trial(make_scanner: &mut dyn FnMut() -> Box<dyn Behavior>, trials: usize) -> LatencySummary {
    let (tx, _rx) = optimal::unidirectional(OptimalParams::paper_default(), BETA, GAMMA)
        .expect("constructible");
    let beacons = tx.schedule.beacons.as_ref().unwrap().clone();
    let bound = unidirectional_bound(36e-6, BETA, GAMMA);
    let horizon = Tick::from_secs_f64(bound * 12.0);
    let mut rng = StdRng::seed_from_u64(0xa9e);
    let mut lat = Vec::with_capacity(trials);
    for t in 0..trials {
        let mut cfg = SimConfig::paper_baseline(horizon, 700 + t as u64);
        cfg.collisions = false;
        cfg.half_duplex = false;
        let mut sim = Simulator::new(cfg, Topology::full(2));
        let phase = Tick(rng.gen_range(0..beacons.period().as_nanos()));
        sim.add_device(Box::new(ScheduleBehavior::with_phase(
            Schedule::tx_only(beacons.clone()),
            phase,
        )));
        sim.add_device(make_scanner());
        sim.stop_when_all_discovered(false);
        let report = sim.run();
        lat.push(report.discovery.one_way(1, 0));
    }
    LatencySummary::from_latencies(&lat)
}

/// Generate the report.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("Appendix A.1 — non-repetitive reception sequences (β = 1 %, γ = 5 %)\n\n");
    let bound = unidirectional_bound(36e-6, BETA, GAMMA);
    out.push_str(&format!(
        "Eq. 23 bound for every pattern: L = ω/(βγ) = {}\n\n",
        secs(bound)
    ));

    let (_tx, rx) = optimal::unidirectional(OptimalParams::paper_default(), BETA, GAMMA)
        .expect("constructible");
    let opt_windows = rx.schedule.windows.as_ref().unwrap().clone();
    let frame = opt_windows.period();
    let window = opt_windows.sum_d();

    let trials = 80;
    let mut t = Table::new(&[
        "scanner (same γ)",
        "mean",
        "p95",
        "max observed",
        "failures",
        "vs bound (mean)",
    ]);
    let cases: Vec<(&str, LatencySummary)> = vec![
        (
            "repetitive optimal tiling",
            trial(
                &mut || {
                    Box::new(ScheduleBehavior::new(Schedule::rx_only(
                        opt_windows.clone(),
                    )))
                },
                trials,
            ),
        ),
        (
            "sliding (deterministic, non-repetitive)",
            trial(
                &mut || Box::new(SlidingScanner::new(frame, window, window / 3).expect("valid")),
                trials,
            ),
        ),
        (
            "uniform random window per frame",
            trial(
                &mut || Box::new(RandomScanner::new(frame, window).expect("valid")),
                trials,
            ),
        ),
    ];
    for (name, s) in cases {
        t.row(vec![
            name.into(),
            secs(s.mean),
            secs(s.p95),
            secs(s.max),
            format!("{}", s.failures),
            pct(s.mean / bound),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nReading: the bound applies to all three (none beats ω/(βγ) in the\n\
         worst case). The repetitive tiling *attains* it: max = bound, mean =\n\
         bound/2. The random scanner's mean is competitive but its tail runs\n\
         past the bound (geometric), and unlucky runs fail the 12x-bound\n\
         horizon entirely — determinism is what the paper's guarantees buy.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contrasts_tails() {
        let r = run();
        assert!(r.contains("Appendix A.1"));
        assert!(r.contains("repetitive optimal tiling"));
    }
}
