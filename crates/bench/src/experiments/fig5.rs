//! Figure 5 (§6.1.1): why slotted protocols need `I ≫ ω`.
//!
//! The paper's Figure 5 illustrates that with a slot length of `I = 2ω`,
//! only half of the offsets for which two active slots overlap lead to a
//! successful reception. We quantify the receivable-offset fraction as a
//! function of `I/ω` in two ways:
//!
//! 1. **closed form** for a single aligned active-slot pair (one beacon at
//!    the slot start, \[16\]-style): receivable fraction `1 − ω/I`;
//! 2. **measured** on a complete diff-code schedule with the exact
//!    coverage engine: the permanently-undiscovered offset fraction
//!    shrinks like `2ω/I` (two beacons per slot ⇒ two boundary strips).

use crate::table::{pct, Table};
#[cfg(test)]
use nd_core::time::Tick;
use nd_sweep::{run_sweep, ScenarioSpec, SweepOptions};

/// The measured column as a declarative `nd-sweep` scenario: one exact
/// coverage-analysis job per slot length (I/ω ∈ {3, 5, 10, 30, 100} at
/// ω = 36 µs; the I < 2ω + 1 points cannot host a StartEnd placement and
/// are reported closed-form only).
const SPEC: &str = r#"
name = "fig5-slot-boundary-strips"
backend = "exact"
metric = "one-way"
percentiles = false   # the report only reads undiscovered_prob

[radio]
omega_us = 36

[grid]
protocol = ["diff-code:7:1,2,4"]
slot_us = [108, 180, 360, 1080, 3600]
"#;

/// Closed form for the single-beacon-per-slot design of \[16\]: over the
/// offsets δ ∈ (−I, I) where two active slots overlap, the fraction that
/// yields a reception in either direction.
pub fn receivable_fraction_one_beacon(slot_over_omega: f64) -> f64 {
    if slot_over_omega <= 1.0 {
        0.0
    } else {
        1.0 - 1.0 / slot_over_omega
    }
}

/// Measured on a full schedule: fraction of offsets a complete diff-code
/// protocol never discovers (§3.2 strict model) — one single-point sweep
/// through the `nd-sweep` engine.
#[cfg(test)]
fn measured_undiscovered(slot: Tick, omega: Tick) -> f64 {
    let spec = ScenarioSpec::from_toml_str(&format!(
        "backend = \"exact\"\npercentiles = false\n[radio]\nomega_us = {}\n[grid]\n\
         protocol = [\"diff-code:7:1,2,4\"]\nslot_us = [{}]\n",
        omega.as_micros_f64(),
        slot.as_micros_f64(),
    ))
    .expect("valid spec");
    let out = run_sweep(&spec, &SweepOptions::uncached()).expect("sweep runs");
    out.rows[0]
        .metric("undiscovered_prob")
        .expect("analyzable schedule")
}

/// Generate the report.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("Figure 5 — fraction of receivable offsets vs. slot length I/ω\n");
    out.push_str("(paper: at I = 2ω only half of the overlapping offsets yield a reception)\n\n");
    let spec = ScenarioSpec::from_toml_str(SPEC).expect("valid spec");
    let sweep = run_sweep(&spec, &SweepOptions::uncached()).expect("sweep runs");
    // slot_us → measured undiscovered fraction
    let measured_by_slot: Vec<(f64, f64)> = sweep
        .rows
        .iter()
        .filter_map(|r| {
            Some((
                r.param("slot_us")?.as_f64()?,
                r.metric("undiscovered_prob")?,
            ))
        })
        .collect();
    let mut t = Table::new(&[
        "I/omega",
        "one-beacon design (1 - w/I)",
        "diff-code(7) uncovered (measured)",
        "boundary-strip scale w/I..2w/I",
    ]);
    for ratio in [1.0, 1.5, 2.0, 3.0, 5.0, 10.0, 30.0, 100.0] {
        let closed = receivable_fraction_one_beacon(ratio);
        let measured = measured_by_slot
            .iter()
            .find(|(slot_us, _)| (*slot_us - 36.0 * ratio).abs() < 1e-6)
            .map(|&(_, p)| p);
        t.row(vec![
            format!("{ratio:.1}"),
            pct(closed),
            measured.map_or("n/a (I < 2w)".into(), pct),
            format!("{}..{}", pct(1.0 / ratio), pct(2.0 / ratio)),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nReading: the strict reception model loses the slot-boundary strips;\n\
         real slotted deployments therefore need I at least an order of magnitude\n\
         above ω (the paper's requirement), or full-duplex radios for the\n\
         theoretical minimum I = ω used in Eq. 18.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_matches_paper_anchor() {
        // I = 2ω → exactly half the offsets are receivable
        assert!((receivable_fraction_one_beacon(2.0) - 0.5).abs() < 1e-12);
        // I = ω → nothing is receivable (no listening time left)
        assert_eq!(receivable_fraction_one_beacon(1.0), 0.0);
        // I → ∞ → everything
        assert!(receivable_fraction_one_beacon(1e6) > 0.999);
    }

    #[test]
    fn measured_gap_shrinks_with_slot_length() {
        let omega = Tick::from_micros(36);
        let a = measured_undiscovered(Tick::from_micros(36 * 4), omega);
        let b = measured_undiscovered(Tick::from_micros(36 * 20), omega);
        assert!(b < a, "larger slots leave a smaller boundary gap");
        // the boundary-strip scaling: between ω/I and 2ω/I
        assert!((0.9 / 20.0..=2.1 / 20.0).contains(&b), "gap {b}");
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert!(r.contains("Figure 5"));
        assert!(r.contains("I/omega"));
    }
}
