//! Tightness of the fundamental bounds (Theorems 5.4–5.7): the
//! constructed optimal schedules achieve them, machine-checked by the
//! exact engine and cross-validated against the simulator.

use crate::table::{factor, pct, secs, Table};
use nd_analysis::{cross_validate, two_way_worst_case, AnalysisConfig};
use nd_core::bounds::{asymmetric_bound, constrained_bound, symmetric_bound, unidirectional_bound};
use nd_protocols::optimal::{self, OptimalParams};

const OMEGA_S: f64 = 36e-6;

fn params() -> OptimalParams {
    OptimalParams::paper_default()
}

/// Generate the report.
pub fn run() -> String {
    let cfg = AnalysisConfig::paper_default();
    let mut out = String::new();
    out.push_str("Achievability — constructed optimal schedules vs. the bounds\n");
    out.push_str("(exact engine; ratio 1.000x = bound achieved; ω = 36 µs, α = 1)\n\n");

    // --- Theorem 5.4: unidirectional ---------------------------------
    out.push_str("Theorem 5.4 (unidirectional, L = ω/(βγ)):\n\n");
    let mut t = Table::new(&["β", "γ", "bound", "exact L", "ratio", "xval"]);
    for (beta, gamma) in [(0.005, 0.01), (0.01, 0.02), (0.02, 0.05), (0.01, 0.1)] {
        let (tx, rx) = optimal::unidirectional(params(), beta, gamma).expect("constructible");
        let b = tx.schedule.beacons.as_ref().unwrap();
        let c = rx.schedule.windows.as_ref().unwrap();
        let wc = nd_analysis::one_way_worst_case(b, c, &cfg).expect("deterministic");
        let bound = unidirectional_bound(OMEGA_S, tx.achieved.beta, rx.achieved.gamma);
        let v = cross_validate(&tx.schedule, &rx.schedule, &cfg, 23).expect("validates");
        t.row(vec![
            pct(beta),
            pct(gamma),
            secs(bound),
            secs(wc.latency.as_secs_f64()),
            factor(wc.latency.as_secs_f64() / bound),
            if v.consistent() {
                "ok".into()
            } else {
                format!("{} mismatches", v.mismatches)
            },
        ]);
    }
    out.push_str(&t.render());

    // --- Theorem 5.5: symmetric --------------------------------------
    out.push_str("\nTheorem 5.5 (symmetric, L = 4αω/η²):\n\n");
    let mut t = Table::new(&["η", "bound", "exact two-way L", "ratio"]);
    for eta_pct in [0.5f64, 1.0, 2.0, 5.0, 10.0] {
        let eta = eta_pct / 100.0;
        let opt = optimal::symmetric(params(), eta).expect("constructible");
        let l = two_way_worst_case(&opt.schedule, &opt.schedule, &cfg).expect("deterministic");
        let bound = symmetric_bound(1.0, OMEGA_S, eta);
        t.row(vec![
            pct(eta),
            secs(bound),
            secs(l.as_secs_f64()),
            factor(l.as_secs_f64() / bound),
        ]);
    }
    out.push_str(&t.render());

    // --- Theorem 5.6: channel-constrained -----------------------------
    out.push_str("\nTheorem 5.6 (channel-utilization-constrained):\n\n");
    let mut t = Table::new(&["η", "β_m", "bound", "exact L", "ratio"]);
    for (eta, beta_m) in [(0.05, 0.01), (0.05, 0.005), (0.1, 0.02), (0.02, 0.02)] {
        let opt = optimal::constrained(params(), eta, beta_m).expect("constructible");
        let l = two_way_worst_case(&opt.schedule, &opt.schedule, &cfg).expect("deterministic");
        let bound = constrained_bound(1.0, OMEGA_S, eta, beta_m);
        t.row(vec![
            pct(eta),
            pct(beta_m),
            secs(bound),
            secs(l.as_secs_f64()),
            factor(l.as_secs_f64() / bound),
        ]);
    }
    out.push_str(&t.render());

    // --- α sweep: the bounds hold for asymmetric TX/RX power too ------
    out.push_str("\nTheorem 5.5 across TX/RX power ratios (η = 5 %):\n\n");
    let mut t = Table::new(&["α", "β = η/2α", "bound 4αω/η²", "exact L", "ratio"]);
    for alpha in [0.5, 1.0, 2.0, 4.0] {
        let p = OptimalParams { alpha, ..params() };
        let opt = optimal::symmetric(p, 0.05).expect("constructible");
        let l = two_way_worst_case(&opt.schedule, &opt.schedule, &cfg).expect("deterministic");
        let bound = symmetric_bound(alpha, OMEGA_S, 0.05);
        t.row(vec![
            format!("{alpha:.1}"),
            pct(opt.achieved.beta),
            secs(bound),
            secs(l.as_secs_f64()),
            factor(l.as_secs_f64() / bound),
        ]);
    }
    out.push_str(&t.render());

    // --- Theorem 5.7: asymmetric --------------------------------------
    out.push_str("\nTheorem 5.7 (asymmetric, L = 4αω/(η_E·η_F)):\n\n");
    let mut t = Table::new(&["η_E", "η_F", "bound", "exact two-way L", "ratio"]);
    for (ee, ff) in [(0.08, 0.02), (0.1, 0.01), (0.05, 0.05), (0.2, 0.02)] {
        let (e, f) = optimal::asymmetric(params(), ee, ff).expect("constructible");
        let l = two_way_worst_case(&e.schedule, &f.schedule, &cfg).expect("deterministic");
        let bound = asymmetric_bound(1.0, OMEGA_S, ee, ff);
        t.row(vec![
            pct(ee),
            pct(ff),
            secs(bound),
            secs(l.as_secs_f64()),
            factor(l.as_secs_f64() / bound),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nReading: every ratio sits at 1.000x up to integer-grid rounding —\n\
         the paper's bounds are tight (achievable), its central claim.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_with_unity_ratios() {
        let r = run();
        assert!(r.contains("Theorem 5.5"));
        assert!(r.contains("1.000x"), "bounds achieved");
        assert!(!r.contains("mismatches"), "cross-validation clean");
    }
}
