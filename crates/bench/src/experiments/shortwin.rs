//! Appendix A.3 (Eqs. 28–30): the full-packet reception model.
//!
//! When packets must fit entirely inside a window, each window loses ω of
//! effective coverage (Eq. 28). Growing the period (and with it the
//! window) makes the loss negligible: Eq. 29 converges to the ideal
//! `ω/(βγ)` (Eq. 30) — the paper's bounds survive the relaxation. We
//! print the convergence and validate one point with the exact engine
//! under the `FullPacket` model.

use crate::table::{factor, secs, Table};
use nd_analysis::{one_way_worst_case, AnalysisConfig};
use nd_core::bounds::overheads::{shortened_window_bound, shortened_window_limit};
use nd_core::coverage::OverlapModel;
use nd_core::schedule::{BeaconSeq, ReceptionWindows};
use nd_core::time::Tick;

const OMEGA_S: f64 = 36e-6;
const BETA: f64 = 0.01;
const GAMMA: f64 = 0.02;

/// Generate the report.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("Appendix A.3 — full-packet reception: L(T_C) → ω/(βγ) (Eqs. 29/30)\n");
    out.push_str("(β = 1 %, γ = 2 %, ω = 36 µs)\n\n");
    let limit = shortened_window_limit(OMEGA_S, BETA, GAMMA);
    let mut t = Table::new(&["T_C", "window d₁", "Eq.29 L", "vs limit"]);
    for tc_ms in [5.0f64, 10.0, 50.0, 100.0, 1000.0] {
        let tc = tc_ms / 1e3;
        let d1 = tc * GAMMA;
        let l = shortened_window_bound(tc, OMEGA_S, BETA, GAMMA);
        t.row(vec![secs(tc), secs(d1), secs(l), factor(l / limit)]);
    }
    out.push_str(&t.render());
    out.push_str(&format!("limit ω/(βγ) = {}\n", secs(limit)));

    // --- exact-engine validation under FullPacket ----------------------
    out.push_str(
        "\nExact engine under the FullPacket model (window widened by ω, A.3 compensation):\n\n",
    );
    let omega = Tick::from_micros(36);
    let mut v = Table::new(&["T_C", "exact L", "vs limit"]);
    for k in [10u64, 50, 200] {
        // single window of d₁ = γ·T_C + ω, uniform beacons at λ = ω/β
        // tiling over the *effective* window d₁ − ω
        let d_eff = Tick::from_micros(36 * 20); // 720 µs effective window
        let tc = d_eff * k;
        let d1 = d_eff + omega;
        let lambda = Tick(tc.as_nanos() + d_eff.as_nanos());
        let windows = ReceptionWindows::single(Tick::ZERO, d1, tc).expect("valid");
        let beacons =
            BeaconSeq::uniform(k, Tick(lambda.as_nanos() * k), omega, Tick::ZERO).expect("valid");
        let mut cfg = AnalysisConfig::with_omega(omega);
        cfg.model = OverlapModel::FullPacket;
        let wc = one_way_worst_case(&beacons, &windows, &cfg).expect("deterministic");
        let beta = beacons.beta();
        let gamma_eff = d_eff.as_nanos() as f64 / tc.as_nanos() as f64;
        let ideal = OMEGA_S / (beta * gamma_eff);
        v.row(vec![
            secs(tc.as_secs_f64()),
            secs(wc.latency.as_secs_f64()),
            factor(wc.latency.as_secs_f64() / ideal),
        ]);
    }
    out.push_str(&v.render());
    out.push_str(
        "\nReading: paying one ω of extra window per period restores exact\n\
         determinism under the realistic reception model, at a duty-cycle\n\
         overhead that vanishes as T_C grows — Eq. 30's limit.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convergence_is_monotone() {
        let limit = shortened_window_limit(OMEGA_S, BETA, GAMMA);
        let mut prev = f64::INFINITY;
        for tc in [0.005, 0.01, 0.05, 0.1, 1.0] {
            let l = shortened_window_bound(tc, OMEGA_S, BETA, GAMMA);
            assert!(l >= limit && l <= prev);
            prev = l;
        }
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert!(r.contains("Appendix A.3"));
        assert!(r.contains("limit"));
    }
}
