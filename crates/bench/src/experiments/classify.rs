//! §6.2: classifying known protocols against the fundamental bounds.
//!
//! Every protocol is instantiated at (approximately) the same total duty
//! cycle and measured with the exact engine. Two comparisons matter:
//!
//! * against the **unconstrained** bound `4αω/η²` (Theorem 5.5) — here no
//!   slotted protocol can be optimal, because at `I ≫ ω` its channel
//!   utilization is far below the optimal `β = η/2α`;
//! * against the **constrained** bound at the protocol's own β
//!   (Theorem 5.6) — here diff-codes are optimal and the others carry
//!   their Table 1 constants.

use crate::table::{factor, pct, secs, Table};
use nd_analysis::{one_way_coverage, AnalysisConfig};
use nd_core::bounds::{constrained_bound, symmetric_bound};
use nd_core::time::Tick;
use nd_protocols::ProtocolKind;

const ALPHA: f64 = 1.0;
const OMEGA_S: f64 = 36e-6;

/// Generate the report.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("Protocol classification at η ≈ 10 % (slot I = 1 ms, ω = 36 µs, α = 1)\n\n");
    let slot = Tick::from_millis(1);
    let omega = Tick::from_micros(36);
    let cfg = AnalysisConfig::with_omega(omega);
    let mut t = Table::new(&[
        "protocol",
        "η meas",
        "β meas",
        "exact L (one-way)",
        "vs 4αω/η²",
        "vs Thm5.6(β)",
        "uncovered",
    ]);
    for kind in ProtocolKind::all() {
        let sched = match kind.schedule_for_eta(0.10, slot, omega) {
            Ok(s) => s,
            Err(e) => {
                t.row(vec![
                    kind.name().into(),
                    format!("error: {e}"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            }
        };
        let dc = sched.duty_cycle();
        let eta = dc.eta(ALPHA);
        let cc = one_way_coverage(
            sched.beacons.as_ref().unwrap(),
            sched.windows.as_ref().unwrap(),
            &cfg,
        )
        .expect("analyzable");
        let l = cc.worst_covered.as_secs_f64();
        let unconstrained = symmetric_bound(ALPHA, OMEGA_S, eta);
        let constrained = constrained_bound(ALPHA, OMEGA_S, eta, dc.beta.max(1e-9));
        t.row(vec![
            kind.name().into(),
            pct(eta),
            pct(dc.beta),
            secs(l),
            factor(l / unconstrained),
            factor(l / constrained),
            pct(cc.undiscovered_probability),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nReading (paper §6.2): in the unconstrained latency/duty-cycle metric\n\
         only the slotless optimal construction reaches 1x; slotted protocols\n\
         are orders of magnitude off because their slots waste channel\n\
         utilization. Normalized by their own β (Theorem 5.6), diff-codes are\n\
         optimal (≈1x) and Searchlight/Disco/U-Connect carry their Table 1\n\
         constant factors.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_has_all_protocols() {
        let r = run();
        for kind in ProtocolKind::all() {
            assert!(r.contains(kind.name()), "{} missing", kind.name());
        }
    }
}
