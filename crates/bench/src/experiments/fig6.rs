//! Figure 6 (§7.1): the energy cost of asymmetry.
//!
//! The paper plots `L · (η_E + η_F)` — the product of the Theorem 5.7
//! bound and the joint duty cycle — and concludes that the product depends
//! only on the *sum* of the duty cycles, i.e. asymmetry is free. Exact
//! evaluation shows a mild ratio dependence, factor `(1+r)²/(4r)` (1.0 at
//! r = 1, 1.125 at r = 2, 1.8 at r = 5): invisible on the paper's log
//! scale for moderate asymmetry, and growing slowly beyond it. We print
//! both the product series and the exact penalty factor.
//!
//! The whole grid — joint budget × asymmetry ratio — is one declarative
//! `nd-sweep` scenario on the closed-form `bounds` backend.

use crate::table::{secs, Table};
use nd_sweep::{run_sweep, Row, ScenarioSpec, SweepOptions};

/// The (η_E+η_F) × ratio grid as a scenario spec. The ratio axis is the
/// union of what the two report tables need.
const SPEC: &str = r#"
name = "fig6-asymmetry-cost"
backend = "bounds"

[radio]
omega_us = 36
alpha = 1.0

[grid]
eta = [0.01, 0.02, 0.05, 0.10, 0.20]
ratio = [1.0, 1.5, 2.0, 3.0, 5.0, 10.0, 20.0]
"#;

fn find(rows: &[Row], eta: f64, ratio: f64) -> &Row {
    rows.iter()
        .find(|r| {
            r.param("eta").and_then(|v| v.as_f64()) == Some(eta)
                && r.param("ratio").and_then(|v| v.as_f64()) == Some(ratio)
        })
        .expect("grid covers the requested point")
}

/// Generate the report.
pub fn run() -> String {
    let spec = ScenarioSpec::from_toml_str(SPEC).expect("valid spec");
    let sweep = run_sweep(&spec, &SweepOptions::uncached()).expect("sweep runs");
    let rows = &sweep.rows;

    let mut out = String::new();
    out.push_str("Figure 6 — L·(η_E+η_F) vs. joint duty cycle, by asymmetry ratio\n");
    out.push_str("(Theorem 5.7 with ω = 36 µs, α = 1; product in seconds·1)\n\n");
    let table_ratios = [1.0, 2.0, 5.0, 10.0];
    let mut headers = vec!["sum η_E+η_F".to_string(), "L (sym)".to_string()];
    for r in table_ratios {
        headers.push(format!("r={r:.0}"));
    }
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&hdr_refs);
    for pctsum in [1.0f64, 2.0, 5.0, 10.0, 20.0] {
        let sum = pctsum / 100.0;
        let mut row = vec![format!("{pctsum:.0}%")];
        // symmetric latency itself, for scale
        let l_sym = find(rows, sum, 1.0).metric("bound_s").expect("bounds row");
        row.push(secs(l_sym));
        for r in table_ratios {
            row.push(format!(
                "{:.4}",
                find(rows, sum, r).metric("product").expect("bounds row")
            ));
        }
        t.row(row);
    }
    out.push_str(&t.render());

    out.push_str("\nExact asymmetry penalty factor (1+r)²/(4r) relative to symmetric:\n\n");
    let mut p = Table::new(&["ratio r = η_E/η_F", "penalty"]);
    for r in [1.0, 1.5, 2.0, 3.0, 5.0, 10.0, 20.0] {
        let penalty = find(rows, 0.05, r).metric("penalty").expect("bounds row");
        p.row(vec![format!("{r:.1}"), format!("{penalty:.3}x")]);
    }
    out.push_str(&p.render());
    out.push_str(
        "\nReading: the product scales as 1/(η_E+η_F) for every ratio (the paper's\n\
         headline), with a ratio-dependent constant that stays within 13 % up to\n\
         r = 2 — 'no cost for asymmetry' holds for the moderate asymmetries\n\
         practical deployments use; extreme asymmetry (r = 10) costs 3x.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_core::bounds::asymmetric::product_vs_joint_budget;

    #[test]
    fn product_scales_inverse_in_sum() {
        let a = product_vs_joint_budget(1.0, 36e-6, 0.05, 2.0);
        let b = product_vs_joint_budget(1.0, 36e-6, 0.10, 2.0);
        assert!((a / b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sweep_rows_match_direct_evaluation() {
        let spec = ScenarioSpec::from_toml_str(SPEC).unwrap();
        let sweep = run_sweep(&spec, &SweepOptions::uncached()).unwrap();
        let row = find(&sweep.rows, 0.05, 2.0);
        let direct = product_vs_joint_budget(1.0, 36e-6, 0.05, 2.0);
        assert!((row.metric("product").unwrap() - direct).abs() < 1e-12);
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert!(r.contains("Figure 6"));
        assert!(r.contains("penalty"));
    }
}
