//! Figure 6 (§7.1): the energy cost of asymmetry.
//!
//! The paper plots `L · (η_E + η_F)` — the product of the Theorem 5.7
//! bound and the joint duty cycle — and concludes that the product depends
//! only on the *sum* of the duty cycles, i.e. asymmetry is free. Exact
//! evaluation shows a mild ratio dependence, factor `(1+r)²/(4r)` (1.0 at
//! r = 1, 1.125 at r = 2, 1.8 at r = 5): invisible on the paper's log
//! scale for moderate asymmetry, and growing slowly beyond it. We print
//! both the product series and the exact penalty factor.
//!
//! The whole grid — every (η_E, η_F) pair the report tables need — is one
//! declarative `nd-sweep` scenario on the closed-form `bounds` backend,
//! expressed through the role-typed `eta` × `eta_b` axes (η_E on role A,
//! η_F on role B). The cartesian product covers more pairs than the
//! tables read; bounds jobs are closed-form, so the surplus is free.

use crate::table::{secs, Table};
use nd_sweep::{run_sweep, Row, ScenarioSpec, SweepOptions};

/// The joint budgets (η_E + η_F) the report tabulates.
const SUMS: [f64; 5] = [0.01, 0.02, 0.05, 0.10, 0.20];
/// The asymmetry ratios r = η_E/η_F the report tabulates.
const RATIOS: [f64; 7] = [1.0, 1.5, 2.0, 3.0, 5.0, 10.0, 20.0];

/// Split a joint budget at a ratio into the explicit (η_E, η_F) pair —
/// the same arithmetic `find` uses, so lookups match bit for bit.
fn split(sum: f64, ratio: f64) -> (f64, f64) {
    let eta_f = sum / (1.0 + ratio);
    (sum - eta_f, eta_f)
}

/// The (η_E, η_F) grid as a role-typed scenario spec: role A carries η_E
/// on the `eta` axis, role B carries η_F on the `eta_b` axis.
fn spec() -> ScenarioSpec {
    let mut eta_e: Vec<f64> = Vec::new();
    let mut eta_f: Vec<f64> = Vec::new();
    for &sum in &SUMS {
        for &ratio in &RATIOS {
            let (e, f) = split(sum, ratio);
            eta_e.push(e);
            eta_f.push(f);
        }
    }
    for axis in [&mut eta_e, &mut eta_f] {
        axis.sort_by(f64::total_cmp);
        axis.dedup();
    }
    // shortest-roundtrip float rendering parses back to identical bits
    let render = |axis: &[f64]| {
        axis.iter()
            .map(|v| format!("{v}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let toml = format!(
        "name = \"fig6-asymmetry-cost\"\nbackend = \"bounds\"\n\n\
         [radio]\nomega_us = 36\nalpha = 1.0\n\n\
         [grid]\neta = [{}]\neta_b = [{}]\n",
        render(&eta_e),
        render(&eta_f),
    );
    ScenarioSpec::from_toml_str(&toml).expect("valid spec")
}

fn find(rows: &[Row], sum: f64, ratio: f64) -> &Row {
    let (eta_e, eta_f) = split(sum, ratio);
    rows.iter()
        .find(|r| {
            r.param("eta").and_then(|v| v.as_f64()) == Some(eta_e)
                && r.param("eta_b").and_then(|v| v.as_f64()) == Some(eta_f)
        })
        .expect("grid covers the requested point")
}

/// Generate the report.
pub fn run() -> String {
    let sweep = run_sweep(&spec(), &SweepOptions::uncached()).expect("sweep runs");
    let rows = &sweep.rows;

    let mut out = String::new();
    out.push_str("Figure 6 — L·(η_E+η_F) vs. joint duty cycle, by asymmetry ratio\n");
    out.push_str("(Theorem 5.7 with ω = 36 µs, α = 1; product in seconds·1)\n\n");
    let table_ratios = [1.0, 2.0, 5.0, 10.0];
    let mut headers = vec!["sum η_E+η_F".to_string(), "L (sym)".to_string()];
    for r in table_ratios {
        headers.push(format!("r={r:.0}"));
    }
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&hdr_refs);
    for pctsum in [1.0f64, 2.0, 5.0, 10.0, 20.0] {
        let sum = pctsum / 100.0;
        let mut row = vec![format!("{pctsum:.0}%")];
        // symmetric latency itself, for scale
        let l_sym = find(rows, sum, 1.0).metric("bound_s").expect("bounds row");
        row.push(secs(l_sym));
        for r in table_ratios {
            row.push(format!(
                "{:.4}",
                find(rows, sum, r).metric("product").expect("bounds row")
            ));
        }
        t.row(row);
    }
    out.push_str(&t.render());

    out.push_str("\nExact asymmetry penalty factor (1+r)²/(4r) relative to symmetric:\n\n");
    let mut p = Table::new(&["ratio r = η_E/η_F", "penalty"]);
    for r in [1.0, 1.5, 2.0, 3.0, 5.0, 10.0, 20.0] {
        let penalty = find(rows, 0.05, r).metric("penalty").expect("bounds row");
        p.row(vec![format!("{r:.1}"), format!("{penalty:.3}x")]);
    }
    out.push_str(&p.render());
    out.push_str(
        "\nReading: the product scales as 1/(η_E+η_F) for every ratio (the paper's\n\
         headline), with a ratio-dependent constant that stays within 13 % up to\n\
         r = 2 — 'no cost for asymmetry' holds for the moderate asymmetries\n\
         practical deployments use; extreme asymmetry (r = 10) costs 3x.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_core::bounds::asymmetric::product_vs_joint_budget;

    #[test]
    fn product_scales_inverse_in_sum() {
        let a = product_vs_joint_budget(1.0, 36e-6, 0.05, 2.0);
        let b = product_vs_joint_budget(1.0, 36e-6, 0.10, 2.0);
        assert!((a / b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sweep_rows_match_direct_evaluation() {
        let sweep = run_sweep(&spec(), &SweepOptions::uncached()).unwrap();
        for (sum, ratio) in [(0.05, 2.0), (0.10, 1.0), (0.01, 20.0)] {
            let row = find(&sweep.rows, sum, ratio);
            assert!(row.error.is_none(), "{:?}", row.error);
            let direct = product_vs_joint_budget(1.0, 36e-6, sum, ratio);
            assert!((row.metric("product").unwrap() - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn every_table_pair_is_on_the_grid() {
        let sweep = run_sweep(&spec(), &SweepOptions::uncached()).unwrap();
        for &sum in &SUMS {
            for &ratio in &RATIOS {
                let row = find(&sweep.rows, sum, ratio);
                // the explicit pair reports its joint budget back
                assert!((row.metric("eta_sum").unwrap() - sum).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert!(r.contains("Figure 6"));
        assert!(r.contains("penalty"));
    }
}
