//! Experiment registry: every table and figure of the paper, plus the
//! appendix results, as runnable text-report generators.

pub mod achieve;
pub mod aperiodic;
pub mod appb;
pub mod appc;
pub mod assist;
pub mod blind;
pub mod cdf;
pub mod classify;
pub mod drift;
pub mod eq18;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod overheads;
pub mod pfail;
pub mod pi;
pub mod shortwin;
pub mod table1;

/// An experiment: id, what paper artifact it regenerates, and the runner.
pub struct Experiment {
    /// CLI id.
    pub id: &'static str,
    /// Which table/figure/appendix of the paper this regenerates.
    pub artifact: &'static str,
    /// Produces the full text report.
    pub run: fn() -> String,
}

/// All experiments in presentation order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig5",
            artifact: "Figure 5 (§6.1.1): receivable offsets vs. slot length",
            run: fig5::run,
        },
        Experiment {
            id: "fig6",
            artifact: "Figure 6 (§7.1): cost of asymmetry",
            run: fig6::run,
        },
        Experiment {
            id: "fig7",
            artifact: "Figure 7 (§7.2): collision-constrained bounds",
            run: fig7::run,
        },
        Experiment {
            id: "table1",
            artifact: "Table 1 (§6.1.2): slotted protocols vs. fundamental bound",
            run: table1::run,
        },
        Experiment {
            id: "eq18",
            artifact: "Eqs. 18/19 (§6.1.1): slotted time-domain bounds vs. α",
            run: eq18::run,
        },
        Experiment {
            id: "appb",
            artifact: "Appendix B: optimal redundancy under collisions",
            run: appb::run,
        },
        Experiment {
            id: "appc",
            artifact: "Appendix C / Theorem C.1: one-way discovery at 2αω/η²",
            run: appc::run,
        },
        Experiment {
            id: "achieve",
            artifact: "Theorems 5.4–5.7: constructed schedules achieve the bounds",
            run: achieve::run,
        },
        Experiment {
            id: "classify",
            artifact: "§6.2: classification of known protocols against the bounds",
            run: classify::run,
        },
        Experiment {
            id: "overheads",
            artifact: "Appendix A.2 (Eqs. 26–27): non-ideal radios",
            run: overheads::run,
        },
        Experiment {
            id: "shortwin",
            artifact: "Appendix A.3 (Eqs. 28–30): full-packet reception model",
            run: shortwin::run,
        },
        Experiment {
            id: "pfail",
            artifact: "Appendix A.5 (Eq. 31): self-blocking failure probability",
            run: pfail::run,
        },
        Experiment {
            id: "cdf",
            artifact: "extension: exact latency distributions per protocol",
            run: cdf::run,
        },
        Experiment {
            id: "pi",
            artifact: "extension: PI (BLE-like) parametrization sensitivity [18]",
            run: pi::run,
        },
        Experiment {
            id: "drift",
            artifact: "extension: clock drift vs. slot-boundary strips",
            run: drift::run,
        },
        Experiment {
            id: "assist",
            artifact: "extension: mutual assistance (Griassdi [13]) mean speedup",
            run: assist::run,
        },
        Experiment {
            id: "blind",
            artifact: "extension: open problem #1 — unknown peer duty cycles",
            run: blind::run,
        },
        Experiment {
            id: "aperiodic",
            artifact: "Appendix A.1: non-repetitive reception sequences",
            run: aperiodic::run,
        },
    ]
}

/// Run one experiment by id; `None` if the id is unknown.
pub fn run_experiment(id: &str) -> Option<String> {
    all_experiments()
        .into_iter()
        .find(|e| e.id == id)
        .map(|e| (e.run)())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_unique() {
        let mut ids: Vec<&str> = all_experiments().iter().map(|e| e.id).collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run_experiment("nope").is_none());
    }
}
