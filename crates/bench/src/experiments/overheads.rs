//! Appendix A.2 (Eqs. 24–27): bounds for non-ideal radios with switching
//! overheads, and why a single reception window per period is optimal.

use crate::table::{factor, secs, Table};
use nd_core::bounds::overheads::unidirectional_with_overheads;
use nd_core::time::Tick;

/// Generate the report.
pub fn run() -> String {
    let omega = Tick::from_micros(36);
    let (beta, gamma) = (0.01, 0.02);
    let mut out = String::new();
    out.push_str("Appendix A.2 — unidirectional bound with radio overheads (Eq. 26)\n");
    out.push_str("(β = 1 %, γ = 2 %, ω = 36 µs; Σd = 2 ms per period split into n_C windows)\n\n");
    let sum_d = Tick::from_millis(2);
    let mut t = Table::new(&["radio", "n_C=1", "n_C=2", "n_C=4", "n_C=8", "n_C=8 / n_C=1"]);
    for (name, do_tx, do_rx) in [
        ("ideal", Tick::ZERO, Tick::ZERO),
        (
            "nRF-class (130 µs)",
            Tick::from_micros(130),
            Tick::from_micros(130),
        ),
        (
            "slow MCU (1 ms)",
            Tick::from_millis(1),
            Tick::from_millis(1),
        ),
    ] {
        let l = |n: u64| unidirectional_with_overheads(omega, do_tx, do_rx, sum_d, n, beta, gamma);
        t.row(vec![
            name.into(),
            secs(l(1)),
            secs(l(2)),
            secs(l(4)),
            secs(l(8)),
            factor(l(8) / l(1)),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nEffective duty-cycle inflation (Eqs. 24/25, nRF-class radio):\n\n");
    let mut e = Table::new(&["quantity", "ideal", "with overheads"]);
    let gap = Tick::from_micros(3600); // λ for β = 1 %
    let ideal_beta = omega.as_nanos() as f64 / gap.as_nanos() as f64;
    let oh_beta =
        nd_core::bounds::overheads::beta_with_overhead(omega, Tick::from_micros(130), gap);
    e.row(vec![
        "β at λ = 3.6 ms".into(),
        format!("{:.4}%", ideal_beta * 100.0),
        format!("{:.4}%", oh_beta * 100.0),
    ]);
    let period = Tick::from_millis(100);
    let ideal_gamma = sum_d.as_nanos() as f64 / period.as_nanos() as f64;
    let oh_gamma =
        nd_core::bounds::overheads::gamma_with_overhead(sum_d, 4, Tick::from_micros(130), period);
    e.row(vec![
        "γ at Σd = 2 ms / 100 ms, n_C = 4".into(),
        format!("{:.4}%", ideal_gamma * 100.0),
        format!("{:.4}%", oh_gamma * 100.0),
    ]);
    out.push_str(&e.render());
    out.push_str(
        "\nReading: every extra window per period costs d_oRx of dead time, so the\n\
         bound grows monotonically with n_C — single-window sequences are optimal\n\
         for non-ideal radios (paper's Eq. 27 conclusion). Our optimal\n\
         constructions use n_C = 1 accordingly.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders() {
        let r = run();
        assert!(r.contains("Appendix A.2"));
        assert!(r.contains("n_C=8"));
    }
}
