//! Extension: parametrization sensitivity of periodic-interval (BLE-like)
//! protocols — the problem that motivated the paper's reference \[18\].
//!
//! A PI protocol has three free parameters (T_a, T_s, d_s). The paper's
//! bounds say *some* parametrization reaches the Pareto optimum (our
//! `optimal` construction is one); this experiment shows how sharply the
//! worst case degrades as T_a moves off the tiling relation
//! `T_a = a·T_s ± d_s` — including rational couplings where discovery is
//! lost entirely, the failure mode BLE's advDelay jitter papers over.

use crate::table::{factor, pct, secs, Table};
use nd_analysis::{one_way_coverage, AnalysisConfig};
use nd_core::bounds::unidirectional_bound;
use nd_core::time::Tick;
use nd_protocols::PiProtocol;

/// Generate the report.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("PI-protocol parametrization sensitivity (γ = 5 %, d_s = 10 ms, ω = 36 µs)\n\n");
    let omega = Tick::from_micros(36);
    let ds = Tick::from_millis(10);
    let ts = Tick::from_millis(200); // γ = 5 %
    let cfg = AnalysisConfig::with_omega(omega);

    // the optimal advertising interval for this scan side: T_a = T_s + d_s
    let ta_opt = ts + ds;
    let cases: Vec<(String, Tick)> = vec![
        ("T_a = T_s + d_s (tiling, optimal)".into(), ta_opt),
        ("T_a = T_s − d_s (tiling, optimal)".into(), ts - ds),
        ("T_a = T_s + d_s/2".into(), ts + ds / 2),
        ("T_a = T_s + 2·d_s".into(), ts + ds * 2),
        ("T_a = T_s (resonant!)".into(), ts),
        (
            "T_a = T_s + d_s + 1 µs".into(),
            ts + ds + Tick::from_micros(1),
        ),
        ("BLE default 100 ms".into(), Tick::from_millis(100)),
    ];
    let mut t = Table::new(&[
        "parametrization",
        "T_a",
        "β",
        "worst case",
        "vs ω/(βγ)",
        "uncovered",
    ]);
    for (label, ta) in cases {
        let pi = PiProtocol::new(ta, ts, ds, omega).expect("valid");
        let sched = pi.schedule().expect("valid");
        let dc = pi.duty_cycle();
        let mut acfg = cfg;
        acfg.max_beacons = 500_000;
        let cc = one_way_coverage(
            sched.beacons.as_ref().unwrap(),
            sched.windows.as_ref().unwrap(),
            &acfg,
        );
        let bound = unidirectional_bound(omega.as_secs_f64(), dc.beta, dc.gamma);
        match cc {
            Ok(cc) => {
                let worst = if cc.undiscovered_probability > 0.0 {
                    "∞ (partial)".to_string()
                } else {
                    secs(cc.worst_covered.as_secs_f64())
                };
                let vs = if cc.undiscovered_probability > 0.0 {
                    "-".into()
                } else {
                    factor(cc.worst_covered.as_secs_f64() / bound)
                };
                t.row(vec![
                    label,
                    format!("{ta}"),
                    pct(dc.beta),
                    worst,
                    vs,
                    pct(cc.undiscovered_probability),
                ]);
            }
            Err(_) => {
                t.row(vec![
                    label,
                    format!("{ta}"),
                    pct(dc.beta),
                    "budget exceeded".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    out.push_str(&t.render());
    out.push_str(
        "\nReading: on the tiling relation the worst case sits exactly at the\n\
         Theorem 5.4 bound (1.000x). Off the relation it degrades smoothly —\n\
         until a rational coupling (T_a = T_s) makes the offsets resonate and\n\
         discovery fails for almost all of them. This is why naive (T_a, T_s)\n\
         choices in BLE-like systems show wildly different latencies [18], and\n\
         why the paper's optimal parametrizations matter in practice.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contrasts_optimal_and_resonant() {
        let r = run();
        assert!(
            r.contains("1.000x"),
            "optimal parametrization hits the bound"
        );
        assert!(r.contains("∞ (partial)") || r.contains("resonant"));
    }
}
