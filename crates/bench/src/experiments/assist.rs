//! Extension: mutual assistance (Griassdi-style, the paper's reference
//! \[13\] and the Appendix C closing discussion).
//!
//! Beacons announce the sender's next reception window; the receiver
//! schedules a reply beacon right inside it, converting one-way into
//! two-way discovery almost immediately. Mean *two-way* latency then
//! collapses from E[max(X, Y)] of two independent one-way latencies to
//! E[min-direction] + (time to the announced window).

use crate::table::{secs, Table};
use nd_analysis::montecarlo::LatencySummary;
use nd_core::time::Tick;
use nd_protocols::optimal::{symmetric, OptimalParams};
use nd_protocols::MutualAssist;
use nd_sim::{ScheduleBehavior, SimConfig, Simulator, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn trial_two_way(
    schedule: &nd_core::Schedule,
    assist: bool,
    trials: usize,
    horizon: Tick,
) -> LatencySummary {
    let mut rng = StdRng::seed_from_u64(0xa551);
    let period = schedule.windows.as_ref().unwrap().period();
    let mut lat = Vec::with_capacity(trials);
    for trial in 0..trials {
        let phase = Tick(rng.gen_range(0..period.as_nanos()));
        let mut cfg = SimConfig::paper_baseline(horizon, 400 + trial as u64);
        cfg.collisions = false;
        cfg.half_duplex = false;
        let mut sim = Simulator::new(cfg, Topology::full(2));
        if assist {
            sim.add_device(Box::new(MutualAssist::new(schedule.clone())));
            sim.add_device(Box::new(MutualAssist::with_phase(schedule.clone(), phase)));
        } else {
            sim.add_device(Box::new(ScheduleBehavior::new(schedule.clone())));
            sim.add_device(Box::new(ScheduleBehavior::with_phase(
                schedule.clone(),
                phase,
            )));
        }
        sim.stop_when_all_discovered(true);
        let report = sim.run();
        lat.push(report.discovery.two_way(0, 1));
    }
    LatencySummary::from_latencies(&lat)
}

/// Generate the report.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("Mutual assistance (Griassdi-style) — two-way latency, η = 5 %\n\n");
    let opt = symmetric(OptimalParams::paper_default(), 0.05).expect("constructible");
    let horizon = Tick(opt.predicted_latency.as_nanos() * 4);
    let trials = 120;
    let plain = trial_two_way(&opt.schedule, false, trials, horizon);
    let assisted = trial_two_way(&opt.schedule, true, trials, horizon);

    let mut t = Table::new(&["variant", "mean", "p50", "p95", "max", "failures"]);
    for (name, s) in [("plain schedules", &plain), ("with assistance", &assisted)] {
        t.row(vec![
            name.into(),
            secs(s.mean),
            secs(s.p50),
            secs(s.p95),
            secs(s.max),
            format!("{}", s.failures),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nmean speedup: {:.2}x (worst case unchanged at {} — assistance is a\n\
         synchronous shortcut after the first asynchronous contact, so it\n\
         improves the expectation, not the guarantee)\n",
        plain.mean / assisted.mean,
        opt.predicted_latency
    ));
    out.push_str(
        "\nReading: announcing the next reception window lets the second\n\
         direction complete almost immediately after the first, squeezing\n\
         E[max(X,Y)] toward E[min(X,Y)] — Griassdi's mechanism [13]. The\n\
         deterministic worst case still belongs to the first asynchronous\n\
         contact, which is what the paper's bounds govern.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assistance_improves_mean_two_way() {
        let opt = symmetric(OptimalParams::paper_default(), 0.1).unwrap();
        let horizon = Tick(opt.predicted_latency.as_nanos() * 4);
        let plain = trial_two_way(&opt.schedule, false, 25, horizon);
        let assisted = trial_two_way(&opt.schedule, true, 25, horizon);
        assert_eq!(plain.failures, 0);
        assert_eq!(assisted.failures, 0);
        assert!(
            assisted.mean < plain.mean,
            "assisted {} vs plain {}",
            assisted.mean,
            plain.mean
        );
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert!(r.contains("Mutual assistance"));
        assert!(r.contains("speedup"));
    }
}
