//! Table 1 (§6.1.2): worst-case latencies of slotted protocols in the
//! latency/duty-cycle/channel-utilization metric — formulas *and* an
//! empirical column measured with the exact engine on our from-scratch
//! protocol implementations.

use crate::table::{factor, pct, secs, Table};
use nd_analysis::{one_way_coverage, AnalysisConfig};
use nd_core::bounds::slotted::{
    table1_diffcodes, table1_disco, table1_searchlight, table1_uconnect,
};
use nd_core::time::Tick;
use nd_protocols::{DiffCode, Disco, Searchlight, UConnect};

const OMEGA_S: f64 = 36e-6;
const ALPHA: f64 = 1.0;

/// Generate the report.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("Table 1 — slotted-protocol worst cases d_m(β, η)\n");
    out.push_str(
        "(ω = 36 µs, α = 1; the fundamental Thm 5.6 bound at β ≤ η/2α equals diff-codes)\n\n",
    );

    // --- the analytical table over an (η, β) grid --------------------
    let mut t = Table::new(&[
        "η",
        "β",
        "diffcodes",
        "searchlight",
        "disco",
        "u-connect",
        "sl/dc",
        "disco/dc",
    ]);
    for (eta, beta) in [
        (0.02, 0.002),
        (0.02, 0.005),
        (0.05, 0.005),
        (0.05, 0.01),
        (0.10, 0.01),
        (0.10, 0.02),
    ] {
        let dc = table1_diffcodes(ALPHA, OMEGA_S, eta, beta);
        let sl = table1_searchlight(ALPHA, OMEGA_S, eta, beta);
        let di = table1_disco(ALPHA, OMEGA_S, eta, beta);
        let uc = table1_uconnect(ALPHA, OMEGA_S, eta, beta);
        t.row(vec![
            pct(eta),
            pct(beta),
            secs(dc),
            secs(sl),
            secs(di),
            secs(uc),
            factor(sl / dc),
            factor(di / dc),
        ]);
    }
    out.push_str(&t.render());

    // --- empirical validation on the implemented schedules ------------
    out.push_str(
        "\nEmpirical check: exact worst case of our implementations vs. the Table 1\n\
         formula evaluated at each protocol's own measured (η, β); slot I = 1 ms.\n\n",
    );
    let slot = Tick::from_millis(1);
    let omega = Tick::from_micros(36);
    let cfg = AnalysisConfig::with_omega(omega);
    let mut e = Table::new(&[
        "protocol",
        "config",
        "η meas",
        "β meas",
        "L measured",
        "L formula",
        "meas/formula",
        "uncovered",
    ]);

    type Table1Formula = fn(f64, f64, f64, f64) -> f64;
    let cases: Vec<(&str, String, nd_core::Schedule, Table1Formula)> = vec![
        (
            "diff-codes",
            "v=73".into(),
            DiffCode::new(73, vec![0, 1, 12, 20, 26, 30, 33, 35, 57], slot, omega)
                .unwrap()
                .schedule()
                .unwrap(),
            table1_diffcodes,
        ),
        (
            "searchlight",
            "t=18".into(),
            Searchlight::new(18, slot, omega)
                .unwrap()
                .schedule()
                .unwrap(),
            table1_searchlight,
        ),
        (
            "disco",
            "p=17,19".into(),
            Disco::new(17, 19, slot, omega).unwrap().schedule().unwrap(),
            table1_disco,
        ),
        (
            "u-connect",
            "p=13".into(),
            UConnect::new(13, slot, omega).unwrap().schedule().unwrap(),
            table1_uconnect,
        ),
    ];
    for (name, config, sched, formula) in cases {
        let dc = sched.duty_cycle();
        let eta = dc.eta(ALPHA);
        let cc = one_way_coverage(
            sched.beacons.as_ref().unwrap(),
            sched.windows.as_ref().unwrap(),
            &cfg,
        )
        .expect("analyzable");
        let l_meas = cc.worst_covered.as_secs_f64();
        let l_formula = formula(ALPHA, OMEGA_S, eta, dc.beta);
        e.row(vec![
            name.into(),
            config,
            pct(eta),
            pct(dc.beta),
            secs(l_meas),
            secs(l_formula),
            factor(l_meas / l_formula),
            pct(cc.undiscovered_probability),
        ]);
    }
    out.push_str(&e.render());

    // U-Connect's guarantee is *mutual*: its (p+1)/2-slot hyperslot covers
    // only ~half the beacon-train offsets one-way; the other half is
    // covered by the reverse direction (the same complementary-halves trick
    // as Appendix C). Check that either-way discovery is near-complete.
    let uc = UConnect::new(13, slot, omega).unwrap().schedule().unwrap();
    let (frac, worst) = nd_protocols::correlated::oneway_coverage_fraction(&uc, slot / 4 + Tick(1));
    out.push_str(&format!(
        "\nU-Connect either-way phase sweep (p = 13): {} of phases covered{}\n",
        pct(frac),
        match worst {
            Some(w) => format!(
                ", worst {} ({} slots; published bound p² = 169)",
                crate::table::secs(w.as_secs_f64()),
                w.as_nanos() / slot.as_nanos()
            ),
            None => String::new(),
        }
    ));
    out.push_str(
        "\nReading: the ordering of the paper's Table 1 holds — diff-codes sit at\n\
         the constrained fundamental bound, Searchlight at 2x, Disco at 8x,\n\
         U-Connect in between. Measured/formula ratios carry the\n\
         packets-per-slot convention: our diff-code/Searchlight schedules send\n\
         two beacons per active slot (the formulas assume one, so measured β is\n\
         2x and the ratio lands near 2), while Disco's published constant 8\n\
         already accounts for two. U-Connect's one-way coverage is ~61 % by\n\
         design — its hyperslot guarantees *mutual* discovery via complementary\n\
         halves, which the phase sweep above confirms. 'uncovered' is the\n\
         Figure 5 slot-boundary effect of the strict reception model; it\n\
         vanishes as I/ω grows.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ordering_holds_on_formula_grid() {
        let (eta, beta) = (0.05, 0.01);
        let dc = table1_diffcodes(ALPHA, OMEGA_S, eta, beta);
        assert!(table1_searchlight(ALPHA, OMEGA_S, eta, beta) > dc);
        assert!(
            table1_disco(ALPHA, OMEGA_S, eta, beta) > table1_searchlight(ALPHA, OMEGA_S, eta, beta)
        );
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert!(r.contains("Table 1"));
        assert!(r.contains("diff-codes"));
        assert!(r.contains("u-connect"));
    }
}
