//! Appendix B: optimal redundancy against collisions.
//!
//! Reproduces the worked example (ω = 36 µs, α = 1, η = 5 %, P_f = 0.05 %,
//! S = 3 → Q* = 3, β ≈ 2.07 %, P_c ≈ 7.9 %), sweeps the redundancy degree
//! Q, and validates the failure-rate model by simulation — with plain
//! repetitive sequences (correlated collisions, the open problem the paper
//! names) and with jittered beacons (the decorrelation idealization
//! behind Eq. 32).

use crate::table::{pct, secs, Table};
use nd_analysis::montecarlo::{group_success_rate, group_success_rate_factory};
use nd_core::bounds::redundancy::{plan_for_q, CollisionExponent};
use nd_core::time::Tick;
use nd_protocols::optimal::OptimalParams;
use nd_protocols::redundant::redundant_symmetric;
use nd_protocols::RoundJittered;
use nd_sim::SimConfig;

const ETA: f64 = 0.05;
const PF: f64 = 0.0005;
const S: u32 = 3;
const OMEGA_S: f64 = 36e-6;

/// Generate the report.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("Appendix B — optimal redundancy (ω=36 µs, α=1, η=5 %, P_f=0.05 %, S=3)\n\n");

    for (label, exp) in [
        (
            "Eq. 12 exponent 2(S-1)β  [matches the paper's example]",
            CollisionExponent::SMinusOne,
        ),
        (
            "Appendix-B prose exponent 2(S-2)β",
            CollisionExponent::SMinusTwo,
        ),
    ] {
        out.push_str(label);
        out.push('\n');
        let mut t = Table::new(&["Q", "β", "P_c", "γ", "L' (Eq.33)", "pair L"]);
        let mut best: Option<(u32, f64)> = None;
        for q in 1..=6 {
            match plan_for_q(q, ETA, 1.0, OMEGA_S, PF, S, exp) {
                Some(p) => {
                    if best.is_none_or(|(_, l)| p.l_prime < l) {
                        best = Some((q, p.l_prime));
                    }
                    t.row(vec![
                        format!("{q}"),
                        pct(p.beta),
                        pct(p.pc),
                        pct(p.gamma),
                        secs(p.l_prime),
                        secs(p.pair_worst_case),
                    ]);
                }
                None => {
                    t.row(vec![
                        format!("{q}"),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "infeasible".into(),
                        "-".into(),
                    ]);
                }
            }
        }
        out.push_str(&t.render());
        if let Some((q, l)) = best {
            out.push_str(&format!("optimal: Q* = {q}, L' = {}\n\n", secs(l)));
        }
    }
    out.push_str(
        "Paper's example values: Q* = 3, β = 2.07 %, P_c = 7.9 %, L' = 0.1583 s,\n\
         pair L = 0.05 s. Our exact evaluation reproduces Q*, β and P_c under the\n\
         Eq. 12 exponent; L' computes to ≈0.178 s (see EXPERIMENTS.md for the\n\
         reconciliation notes — the paper's own L'/pair-L appear to use rounded\n\
         intermediates).\n\n",
    );

    // --- Monte-Carlo validation --------------------------------------
    out.push_str("Simulation: success rate within L' among S = 3 devices (500 ms runs)\n\n");
    let params = OptimalParams::paper_default();
    let proto =
        redundant_symmetric(params, ETA, PF, S, CollisionExponent::SMinusOne).expect("feasible");
    let deadline = proto.predicted_l_prime;
    let mut cfg = SimConfig::paper_baseline(Tick(deadline.as_nanos() * 2), 99);
    cfg.collisions = true;
    // isolate the collision effect: Appendix B (like all of Section 5)
    // assumes the A.5 self-blocking away — with it on, blanking dominates
    // the failure budget (≈ω/(M·Σd) ≈ 2 % here, vs the 0.05 % target)
    cfg.half_duplex = false;
    let lambda = proto
        .schedule
        .beacons
        .as_ref()
        .map(|b| b.mean_gap())
        .unwrap_or(Tick(1));
    let trials = 25;
    let plain = group_success_rate(&proto.schedule, S as usize, deadline, &cfg, trials, None);
    let jittered = group_success_rate(
        &proto.schedule,
        S as usize,
        deadline,
        &cfg,
        trials,
        Some(lambda / 2),
    );
    // round-coherent jitter: the decorrelation that *preserves* coverage
    let sched = proto.schedule.clone();
    let round = group_success_rate_factory(
        &mut |_trial, _dev| Box::new(RoundJittered::new(sched.clone())),
        S as usize,
        // one extra λ of slack: round shifts can delay a covering beacon
        // by up to λ − ω
        Tick(deadline.as_nanos() + lambda.as_nanos()),
        &cfg,
        trials,
    );
    let mut m = Table::new(&["schedule", "failure rate within L'", "Eq.32 target"]);
    m.row(vec![
        "repetitive (correlated collisions)".into(),
        pct(1.0 - plain),
        pct(PF),
    ]);
    m.row(vec![
        "per-beacon jitter λ/2 (breaks the tiling)".into(),
        pct(1.0 - jittered),
        pct(PF),
    ]);
    m.row(vec![
        "round-coherent jitter (decorrelated, coverage kept)".into(),
        pct(1.0 - round),
        pct(PF),
    ]);
    out.push_str(&m.render());
    out.push_str(
        "\nReading: Eq. 32 assumes independent collisions. Plain repetitive\n\
         sequences violate it — two devices whose uniform-gap trains collide\n\
         once collide in every round, so the failure rate is set by the phase\n\
         measure 2·(S−1)·β, orders above the target. Naive per-beacon jitter\n\
         decorrelates but destroys the Q-fold coverage guarantee. Shifting each\n\
         *round* coherently keeps every round a perfect tiling while making\n\
         rounds collide independently — realizing the Appendix B idealization\n\
         (the decorrelation mechanism the paper's conclusion asks for).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_in_report() {
        let r = run();
        assert!(r.contains("Q* = 3"), "optimal Q is 3 as in the paper");
        assert!(r.contains("Appendix B"));
    }
}
