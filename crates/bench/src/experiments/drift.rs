//! Extension: clock drift rescues the slot-boundary alignment slivers.
//!
//! Under the paper's strict reception model, slotted protocols leave
//! offsets near exact slot alignment permanently undiscovered (the
//! Figure 5 strips, `fig5`/`table1` experiments). Real crystals drift by
//! tens of ppm, so two devices *slide* through any unlucky alignment at
//! Δ·10⁻⁶ s/s — discovery happens, but only after the relative clocks
//! slip past the ω-wide strip, which can take orders of magnitude longer
//! than the protocol's nominal worst case. This experiment measures that
//! rescue time and checks it against the slip-rate prediction ω/(Δppm·1e-6).
//!
//! The measurement is a declarative `nd-sweep` scenario: the receiver is
//! parked mid-strip (fixed phase ω/2) and the drift axis is swept; each
//! grid point is one deterministic simulation.

use crate::table::{secs, Table};
use nd_core::time::Tick;
use nd_sweep::{run_sweep, ScenarioSpec, SweepOptions};

/// The drift sweep. The *one-way* undiscovered strip of the StartEnd slot
/// geometry is φ ∈ [0, ω): a receiver whose schedule leads the sender's by
/// less than one airtime never hears it (its window opens ω after the slot
/// start, exactly straddling the sender's boundary beacons). Parking the
/// receiver mid-strip (`phase_us = 18` = ω/2) makes the drift-free row
/// fail forever; any real drift slides it out at the slip rate.
const SPEC: &str = r#"
name = "drift-strip-rescue"
backend = "montecarlo"
metric = "one-way"

[radio]
omega_us = 36

[grid]
protocol = ["diff-code:7:1,2,4"]
slot_us = [1000]
drift_ppm = [0, 10, 50, 100]
phase_us = [18]

[sim]
trials = 1
seed = 77
horizon_ms = 20000
half_duplex = true
collisions = true
"#;

/// Generate the report.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("Clock drift vs. the slot-boundary strips (diff-code v=7, I = 1 ms)\n\n");
    let slot = Tick::from_millis(1);
    let omega = Tick::from_micros(36);
    let depth = omega / 2;

    let spec = ScenarioSpec::from_toml_str(SPEC).expect("valid spec");
    let sweep = run_sweep(&spec, &SweepOptions::uncached()).expect("sweep runs");

    let mut t = Table::new(&[
        "relative drift",
        "one-way discovered?",
        "discovery time",
        "nominal worst (7 slots)",
        "predicted escape (ω/2)/slip",
    ]);
    for row in &sweep.rows {
        let ppm = row
            .param("drift_ppm")
            .and_then(|v| v.as_i64())
            .expect("drift axis");
        let found = row.metric("failure_rate") == Some(0.0);
        let latency = row.metric("mean_s").filter(|l| l.is_finite());
        let predicted = if ppm == 0 {
            "never".to_string()
        } else {
            secs(depth.as_secs_f64() / (ppm as f64 * 1e-6))
        };
        t.row(vec![
            format!("{ppm} ppm"),
            if found { "yes".into() } else { "no".into() },
            latency.map_or("—".into(), secs),
            secs(7.0 * slot.as_secs_f64()),
            predicted,
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nReading: inside the strip a drift-free pair never completes this\n\
         direction; any realistic drift rescues it, but the rescue takes\n\
         (strip depth)/(slip rate) — hundreds to thousands of nominal worst\n\
         cases. Slotted deployments owe their *one-way* worst-case guarantees\n\
         near slot alignment to drift (or guard margins), not to the slot\n\
         schedule alone; slotless optimal schedules have no strips at all.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shows_drift_rescue() {
        let r = run();
        assert!(r.contains("Clock drift"));
        // the zero-drift row never discovers; some drifted row does
        assert!(r.contains("never"));
        assert!(r.contains("yes"));
    }
}
