//! Extension: clock drift rescues the slot-boundary alignment slivers.
//!
//! Under the paper's strict reception model, slotted protocols leave
//! offsets near exact slot alignment permanently undiscovered (the
//! Figure 5 strips, `fig5`/`table1` experiments). Real crystals drift by
//! tens of ppm, so two devices *slide* through any unlucky alignment at
//! Δ·10⁻⁶ s/s — discovery happens, but only after the relative clocks
//! slip past the ω-wide strip, which can take orders of magnitude longer
//! than the protocol's nominal worst case. This experiment measures that
//! rescue time and checks it against the slip-rate prediction ω/(Δppm·1e-6).

use crate::table::{secs, Table};
use nd_core::time::Tick;
use nd_protocols::DiffCode;
use nd_sim::{Drifting, ScheduleBehavior, SimConfig, Simulator, Topology};

/// Generate the report.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("Clock drift vs. the slot-boundary strips (diff-code v=7, I = 1 ms)\n\n");
    let slot = Tick::from_millis(1);
    let omega = Tick::from_micros(36);
    let d = DiffCode::new(7, vec![1, 2, 4], slot, omega).expect("valid");
    let sched = d.schedule().expect("valid");
    // The *one-way* undiscovered strip of the StartEnd slot geometry is
    // φ ∈ [0, ω): a receiver whose schedule leads the sender's by less
    // than one airtime never hears it (its window opens ω after the slot
    // start, exactly straddling the sender's boundary beacons). Park the
    // receiver mid-strip (φ = ω/2); a +ppm drift slides it out at the
    // slip rate, so discovery happens after ≈ (ω/2)/slip.
    let depth = omega / 2;
    let mut t = Table::new(&[
        "relative drift",
        "one-way discovered?",
        "discovery time",
        "nominal worst (7 slots)",
        "predicted escape (ω/2)/slip",
    ]);
    for ppm in [0i64, 10, 50, 100] {
        let horizon = Tick::from_secs(20);
        let cfg = SimConfig::paper_baseline(horizon, 77);
        let mut sim = Simulator::new(cfg, Topology::full(2));
        sim.add_device(Box::new(Drifting::ppm(
            ScheduleBehavior::new(sched.clone()),
            0,
        )));
        sim.add_device(Box::new(Drifting::ppm(
            ScheduleBehavior::with_phase(sched.clone(), depth),
            ppm,
        )));
        sim.stop_when_all_discovered(false);
        let report = sim.run();
        // the strip blocks device 1 (the leading receiver) hearing device 0
        let found = report.discovery.one_way(1, 0);
        let predicted = if ppm == 0 {
            "never".to_string()
        } else {
            secs(depth.as_secs_f64() / (ppm as f64 * 1e-6))
        };
        t.row(vec![
            format!("{ppm} ppm"),
            if found.is_some() { "yes".into() } else { "no".into() },
            found.map_or("—".into(), |f| secs(f.as_secs_f64())),
            secs(7.0 * slot.as_secs_f64()),
            predicted,
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nReading: inside the strip a drift-free pair never completes this\n\
         direction; any realistic drift rescues it, but the rescue takes\n\
         (strip depth)/(slip rate) — hundreds to thousands of nominal worst\n\
         cases. Slotted deployments owe their *one-way* worst-case guarantees\n\
         near slot alignment to drift (or guard margins), not to the slot\n\
         schedule alone; slotless optimal schedules have no strips at all.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shows_drift_rescue() {
        let r = run();
        assert!(r.contains("Clock drift"));
        // the zero-drift row never discovers; some drifted row does
        assert!(r.contains("never"));
        assert!(r.contains("yes"));
    }
}
