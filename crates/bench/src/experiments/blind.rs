//! Extension: the paper's open problem #1 — asymmetric discovery with
//! *unknown* peer duty cycles.
//!
//! Theorem 5.7 assumes each device knows the other's configuration: the
//! tiling relation couples E's beacon gap to F's window length
//! (`λ_E = d₁F·(a·k_F + 1)`). If F's actual duty cycle differs from what E
//! assumed, that coupling breaks. This experiment quantifies the damage:
//! E builds its schedule for an assumed η_F and meets devices with other
//! budgets — the worst case degrades or discovery fails outright
//! (rational resonances), motivating why the blind-asymmetric bound is a
//! genuinely open problem.

use crate::table::{factor, pct, secs, Table};
use nd_analysis::{one_way_coverage, AnalysisConfig};
use nd_core::bounds::unidirectional_bound;
use nd_protocols::optimal::{self, OptimalParams};

/// Generate the report.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("Open problem #1 — asymmetric ND with unknown duty cycles\n");
    out.push_str("(E transmits assuming η_F = 4 %; actual peers differ; ω = 36 µs)\n\n");
    let params = OptimalParams::paper_default();
    let assumed_eta_f = 0.04;
    let eta_e = 0.08;
    // E's side of the Theorem 5.7 construction against the assumed peer
    let (e, _assumed_f) = optimal::asymmetric(params, eta_e, assumed_eta_f).expect("constructible");
    let be = e.schedule.beacons.as_ref().unwrap();

    let cfg = AnalysisConfig::paper_default();
    let mut t = Table::new(&[
        "actual η_F",
        "F's window/period",
        "bound if known",
        "measured worst",
        "penalty",
        "uncovered",
    ]);
    for actual in [0.02f64, 0.03, 0.04, 0.05, 0.08] {
        // the peer optimizes for ITSELF assuming E runs the matching
        // construction for (η_E, actual) — but E actually runs the
        // (η_E, 4 %) schedule
        let (_e2, f) = optimal::asymmetric(params, eta_e, actual).expect("constructible");
        let cf = f.schedule.windows.as_ref().unwrap();
        let known_bound = unidirectional_bound(36e-6, e.achieved.beta, f.achieved.gamma);
        let cc = one_way_coverage(be, cf, &cfg).expect("analyzable");
        let (worst, penalty) = if cc.undiscovered_probability > 1e-12 {
            ("∞ (resonant)".to_string(), "-".to_string())
        } else {
            (
                secs(cc.worst_covered.as_secs_f64()),
                factor(cc.worst_covered.as_secs_f64() / known_bound),
            )
        };
        t.row(vec![
            pct(actual),
            format!("{}/{}", cf.sum_d(), cf.period()),
            secs(known_bound),
            worst,
            penalty,
            pct(cc.undiscovered_probability),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nReading: when the assumption matches (η_F = 4 %) the pair sits on the\n\
         bound; mismatched peers can still be discovered (the tiling is robust\n\
         to *some* mismatches) but lose the optimality factor, and unlucky\n\
         rational couplings lose determinism entirely. What the best\n\
         guaranteed latency is when duty cycles are chosen independently is\n\
         the problem the paper leaves open (§8).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matched_assumption_is_optimal_in_report() {
        let r = run();
        assert!(r.contains("Open problem"));
        assert!(r.contains("1.000x"), "matched row sits on the bound");
    }
}
