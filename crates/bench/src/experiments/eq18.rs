//! Eqs. 18/19 (§6.1.1): the slotted latency/duty-cycle bounds in *time*,
//! as a function of the TX/RX power ratio α.
//!
//! The paper's key observation: the \[17,16\] slotted bound, converted to
//! time at the theoretical minimum slot length `I = ω` (full-duplex),
//! reaches the fundamental bound only at α = 1; the code-based bound of
//! \[6,7\] — lower in *slots* — reaches it only at α = ½ and is otherwise
//! identical or worse in *time*.

use crate::table::{factor, Table};
use nd_core::bounds::slotted::{slotted_bound_code_based, slotted_bound_zheng};
use nd_core::bounds::symmetric_bound;

const OMEGA: f64 = 36e-6;
const ETA: f64 = 0.02;

/// Generate the report.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("Eqs. 18/19 — slotted time-domain bounds vs. the fundamental bound\n");
    out.push_str("(normalized: L·η²/ω as a function of α; fundamental = 4α)\n\n");
    let mut t = Table::new(&[
        "α",
        "fundamental 4α",
        "Eq.18 (1+α)²",
        "Eq.19 (1/2+2α+2α²)",
        "Eq.18/fund",
        "Eq.19/fund",
    ]);
    for alpha in [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0] {
        let fund = symmetric_bound(alpha, OMEGA, ETA) * ETA * ETA / OMEGA;
        let e18 = slotted_bound_zheng(alpha, OMEGA, ETA) * ETA * ETA / OMEGA;
        let e19 = slotted_bound_code_based(alpha, OMEGA, ETA) * ETA * ETA / OMEGA;
        t.row(vec![
            format!("{alpha:.2}"),
            format!("{fund:.3}"),
            format!("{e18:.3}"),
            format!("{e19:.3}"),
            factor(e18 / fund),
            factor(e19 / fund),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nReading: Eq. 18 touches the fundamental bound exactly at α = 1\n\
         (factor 1.000x) and Eq. 19 exactly at α = 0.5 — the code-based bound\n\
         [6,7] is lower in slots but never lower in time (paper's conclusion).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_points() {
        let f = |alpha: f64| symmetric_bound(alpha, OMEGA, ETA);
        assert!((slotted_bound_zheng(1.0, OMEGA, ETA) / f(1.0) - 1.0).abs() < 1e-12);
        assert!((slotted_bound_code_based(0.5, OMEGA, ETA) / f(0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert!(r.contains("Eq.18"));
        assert!(r.contains("1.000x"));
    }
}
