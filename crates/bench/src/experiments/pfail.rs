//! Appendix A.5 (Eq. 31): discovery failures caused by a device's own
//! transmissions blanking its reception windows, formula vs. simulation.
//!
//! When both devices of a pair run the *same* optimal sequences, exactly
//! one beacon per worst-case period lands inside the device's own
//! reception window; a radio cannot receive while transmitting (plus
//! turnaround times), so the offsets served by that window slice are at
//! risk: `P_fail = (d_oTxRx + d_oRxTx + d_a)/(M·Σd)`.
//!
//! The simulation column is a declarative `nd-sweep` scenario: a
//! Monte-Carlo sweep over the turnaround axis with the deadline set to the
//! schedule's predicted (exact two-way worst-case) latency.

use crate::table::{pct, Table};
use nd_core::bounds::overheads::self_blocking_failure_probability;
use nd_core::time::Tick;
use nd_protocols::optimal::{self, OptimalParams};
use nd_sweep::{run_sweep, ScenarioSpec, SweepOptions};

const ETA: f64 = 0.05;

/// The simulated column: one Monte-Carlo job per turnaround value, with
/// random phases, half-duplex radios and the horizon/deadline derived from
/// the schedule's nominal guarantee.
const SPEC: &str = r#"
name = "pfail-self-blocking"
backend = "montecarlo"
metric = "one-way"

[radio]
omega_us = 36
alpha = 1.0

[grid]
protocol = ["optimal-slotless"]
eta = [0.05]
turnaround_us = [0, 300]

[sim]
trials = 300
seed = 31
horizon_predicted_x = 2.0
deadline = "predicted"
half_duplex = true
collisions = true
"#;

/// Generate the report.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("Appendix A.5 — self-blocking failure probability (Eq. 31)\n");
    out.push_str("(same optimal sequences on both devices, η = 5 %, ω = 36 µs)\n\n");

    let opt = optimal::symmetric(OptimalParams::paper_default(), ETA).expect("constructible");
    let c = opt.schedule.windows.as_ref().unwrap();
    let b = opt.schedule.beacons.as_ref().unwrap();
    let m = c.period().div_ceil(c.sum_d());
    let sum_d = c.sum_d();
    let omega = b.omega();

    let spec = ScenarioSpec::from_toml_str(SPEC).expect("valid spec");
    let sweep = run_sweep(&spec, &SweepOptions::uncached()).expect("sweep runs");

    let mut t = Table::new(&[
        "turnarounds (TxRx+RxTx)",
        "Eq.31 P_fail",
        "sim failures > L (one-way)",
        "trials",
    ]);
    for (label, turnaround_us) in [("ideal (0)", 0u64), ("BLE-class (300 µs)", 300)] {
        let guard = Tick::from_micros(turnaround_us);
        let p_formula = self_blocking_failure_probability(guard, Tick::ZERO, omega, m, sum_d);
        let row = sweep
            .rows
            .iter()
            .find(|r| {
                r.param("turnaround_us").and_then(|v| v.as_f64()) == Some(turnaround_us as f64)
            })
            .expect("turnaround point swept");
        let over = row
            .metric("over_deadline_frac")
            .expect("deadline configured");
        let trials = row.metric("trials").expect("trial count recorded");
        t.row(vec![
            label.into(),
            pct(p_formula),
            pct(over),
            format!("{trials}"),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nReading: with an ideal radio only the packet airtime is blanked and\n\
         failures are rare; realistic turnaround times push P_fail to the Eq. 31\n\
         level. The Appendix C correlated schedules avoid the issue entirely\n\
         (their beacons never meet their own windows).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_increases_with_turnaround() {
        let p0 = self_blocking_failure_probability(
            Tick::ZERO,
            Tick::ZERO,
            Tick::from_micros(36),
            20,
            Tick::from_millis(1),
        );
        let p1 = self_blocking_failure_probability(
            Tick::from_micros(300),
            Tick::ZERO,
            Tick::from_micros(36),
            20,
            Tick::from_millis(1),
        );
        assert!(p1 > p0);
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert!(r.contains("Appendix A.5"));
        assert!(r.contains("Eq.31"));
    }
}
