//! Appendix A.5 (Eq. 31): discovery failures caused by a device's own
//! transmissions blanking its reception windows, formula vs. simulation.
//!
//! When both devices of a pair run the *same* optimal sequences, exactly
//! one beacon per worst-case period lands inside the device's own
//! reception window; a radio cannot receive while transmitting (plus
//! turnaround times), so the offsets served by that window slice are at
//! risk: `P_fail = (d_oTxRx + d_oRxTx + d_a)/(M·Σd)`.

use crate::table::{pct, Table};
use nd_analysis::montecarlo::{pair_trials, LatencySummary, PairMetric};
use nd_core::bounds::overheads::self_blocking_failure_probability;
use nd_core::time::Tick;
use nd_protocols::optimal::{self, OptimalParams};
use nd_sim::SimConfig;

const ETA: f64 = 0.05;

/// Generate the report.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("Appendix A.5 — self-blocking failure probability (Eq. 31)\n");
    out.push_str("(same optimal sequences on both devices, η = 5 %, ω = 36 µs)\n\n");

    let opt = optimal::symmetric(OptimalParams::paper_default(), ETA).expect("constructible");
    let c = opt.schedule.windows.as_ref().unwrap();
    let b = opt.schedule.beacons.as_ref().unwrap();
    let m = c.period().div_ceil(c.sum_d());
    let sum_d = c.sum_d();
    let omega = b.omega();

    let mut t = Table::new(&[
        "turnarounds (TxRx+RxTx)",
        "Eq.31 P_fail",
        "sim failures > L (one-way)",
        "trials",
    ]);
    for (label, turnaround_us) in [("ideal (0)", 0u64), ("BLE-class (300 µs)", 300)] {
        let guard = Tick::from_micros(turnaround_us);
        let p_formula = self_blocking_failure_probability(
            guard,
            Tick::ZERO,
            omega,
            m,
            sum_d,
        );
        // simulate: half-duplex on, collisions on, random phases
        let mut cfg = SimConfig::paper_baseline(Tick(opt.predicted_latency.as_nanos() * 2), 31);
        cfg.radio.do_tx_rx = guard / 2;
        cfg.radio.do_rx_tx = guard / 2;
        let trials = 300;
        let lat = pair_trials(
            &opt.schedule,
            &opt.schedule,
            PairMetric::OneWay,
            &cfg,
            trials,
        );
        let over: usize = lat
            .iter()
            .filter(|l| l.is_none_or(|t| t > opt.predicted_latency))
            .count();
        let s = LatencySummary::from_latencies(&lat);
        let _ = s;
        t.row(vec![
            label.into(),
            pct(p_formula),
            pct(over as f64 / trials as f64),
            format!("{trials}"),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nReading: with an ideal radio only the packet airtime is blanked and\n\
         failures are rare; realistic turnaround times push P_fail to the Eq. 31\n\
         level. The Appendix C correlated schedules avoid the issue entirely\n\
         (their beacons never meet their own windows).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_increases_with_turnaround() {
        let p0 = self_blocking_failure_probability(
            Tick::ZERO,
            Tick::ZERO,
            Tick::from_micros(36),
            20,
            Tick::from_millis(1),
        );
        let p1 = self_blocking_failure_probability(
            Tick::from_micros(300),
            Tick::ZERO,
            Tick::from_micros(36),
            20,
            Tick::from_millis(1),
        );
        assert!(p1 > p0);
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert!(r.contains("Appendix A.5"));
        assert!(r.contains("Eq.31"));
    }
}
