//! Extension: full latency distributions, not just worst cases.
//!
//! The paper's metric is the worst case; deployments also care about the
//! typical encounter. The exact engine yields the *entire* latency
//! distribution in closed form (uniform-arrival ⊛ first-hit profile);
//! this experiment prints mean/median/p95/p99/worst for every protocol at
//! a matched duty cycle and cross-checks one distribution against
//! simulated percentiles.

use crate::table::{pct, secs, Table};
use nd_analysis::montecarlo::{pair_trials, LatencySummary, PairMetric};
use nd_analysis::{AnalysisConfig, LatencyDistribution};
use nd_core::time::Tick;
use nd_protocols::ProtocolKind;
use nd_sim::SimConfig;

/// Generate the report.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("Exact latency distributions at η ≈ 10 % (slot 1 ms, ω = 36 µs)\n\n");
    let slot = Tick::from_millis(1);
    let omega = Tick::from_micros(36);
    let cfg = AnalysisConfig::with_omega(omega);
    let mut t = Table::new(&["protocol", "mean", "p50", "p95", "p99", "worst", "never"]);
    for kind in ProtocolKind::all() {
        let Ok(sched) = kind.schedule_for_eta(0.10, slot, omega) else {
            continue;
        };
        let dist = LatencyDistribution::build(
            sched.beacons.as_ref().unwrap(),
            sched.windows.as_ref().unwrap(),
            &cfg,
            true,
        )
        .expect("analyzable");
        t.row(vec![
            kind.name().into(),
            secs(dist.mean()),
            secs(dist.quantile(0.5)),
            secs(dist.quantile(0.95)),
            secs(dist.quantile(0.99)),
            dist.worst()
                .map_or("∞ (strips)".into(), |w| secs(w.as_secs_f64())),
            pct(dist.undiscovered_probability()),
        ]);
    }
    out.push_str(&t.render());

    // cross-check the optimal protocol's distribution against simulation
    let sched = ProtocolKind::OptimalSlotless
        .schedule_for_eta(0.10, slot, omega)
        .unwrap();
    let dist = LatencyDistribution::build(
        sched.beacons.as_ref().unwrap(),
        sched.windows.as_ref().unwrap(),
        &cfg,
        false,
    )
    .unwrap();
    let worst = dist.worst().unwrap();
    let mut sim = SimConfig::paper_baseline(Tick(worst.as_nanos() * 2), 21);
    sim.collisions = false;
    sim.half_duplex = false;
    let lat = pair_trials(&sched, &sched, PairMetric::OneWay, &sim, 400);
    let s = LatencySummary::from_latencies(&lat);
    out.push_str("\nCross-check (optimal-slotless, 400 random-phase simulations):\n\n");
    let mut v = Table::new(&["quantile", "exact", "simulated"]);
    v.row(vec!["p50".into(), secs(dist.quantile(0.5)), secs(s.p50)]);
    v.row(vec!["p95".into(), secs(dist.quantile(0.95)), secs(s.p95)]);
    v.row(vec!["p99".into(), secs(dist.quantile(0.99)), secs(s.p99)]);
    v.row(vec![
        "max/worst".into(),
        secs(worst.as_secs_f64()),
        secs(s.max),
    ]);
    out.push_str(&v.render());
    out.push_str(
        "\nReading: the optimal tiling's latency is uniform on (0, L] — its mean\n\
         is half its worst case. Slotted protocols have *better-than-uniform*\n\
         means relative to their (much larger) worst cases: their probability\n\
         mass sits early, but the tail — the metric the paper bounds — is what\n\
         separates them.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_all_protocols() {
        let r = run();
        for kind in ProtocolKind::all() {
            assert!(r.contains(kind.name()), "{}", kind.name());
        }
        assert!(r.contains("p99"));
    }
}
