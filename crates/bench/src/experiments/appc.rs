//! Appendix C / Theorem C.1: mutual-exclusive one-way discovery achieves
//! `2αω/η²` — half the direct symmetric bound, and the tightest bound for
//! all pairwise deterministic ND.

use crate::table::{factor, pct, secs, Table};
use nd_analysis::montecarlo::{pair_trials, LatencySummary, PairMetric};
use nd_core::bounds::{oneway_bound, symmetric_bound};
use nd_core::time::Tick;
use nd_protocols::correlated::{correlated_oneway, verify_oneway_determinism};
use nd_sim::SimConfig;

const OMEGA: Tick = Tick(36_000);
const ALPHA: f64 = 1.0;

/// Generate the report.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("Appendix C — one-way discovery at 2αω/η² (ω = 36 µs, α = 1)\n\n");
    let mut t = Table::new(&[
        "η",
        "Thm C.1 bound",
        "constructed L",
        "phase-sweep worst",
        "constr/bound",
        "direct sym (Thm 5.5)",
        "speedup",
    ]);
    for eta_pct in [1.0f64, 2.0, 5.0, 10.0] {
        let eta = eta_pct / 100.0;
        let bound = oneway_bound(ALPHA, OMEGA.as_secs_f64(), eta);
        let direct = symmetric_bound(ALPHA, OMEGA.as_secs_f64(), eta);
        let proto = correlated_oneway(OMEGA, ALPHA, eta).expect("constructible");
        let d1 = proto.schedule.windows.as_ref().unwrap().sum_d();
        let sweep = verify_oneway_determinism(&proto.schedule, (d1 / 9).max(Tick(1)))
            .expect("one-way deterministic");
        t.row(vec![
            pct(eta),
            secs(bound),
            secs(proto.predicted_latency.as_secs_f64()),
            secs(sweep.as_secs_f64()),
            factor(proto.predicted_latency.as_secs_f64() / bound),
            secs(direct),
            factor(direct / proto.predicted_latency.as_secs_f64()),
        ]);
    }
    out.push_str(&t.render());

    // simulation: either-way pair latency over random phases
    out.push_str("\nSimulation (either-way metric, random phases, collision-free pair):\n\n");
    let eta = 0.05;
    let proto = correlated_oneway(OMEGA, ALPHA, eta).expect("constructible");
    let mut cfg = SimConfig::paper_baseline(Tick(proto.predicted_latency.as_nanos() * 3), 5);
    cfg.collisions = false;
    cfg.half_duplex = false;
    let lat = pair_trials(
        &proto.schedule,
        &proto.schedule,
        PairMetric::EitherWay,
        &cfg,
        60,
    );
    let s = LatencySummary::from_latencies(&lat);
    let mut m = Table::new(&["trials", "failures", "p50", "p95", "max", "bound"]);
    m.row(vec![
        format!("{}", s.trials),
        format!("{}", s.failures),
        secs(s.p50),
        secs(s.p95),
        secs(s.max),
        secs(oneway_bound(ALPHA, OMEGA.as_secs_f64(), eta)),
    ]);
    out.push_str(&m.render());
    out.push_str(
        "\nReading: the ζ-correlated quadruple guarantees one of the two\n\
         directions within half the latency of direct symmetric discovery —\n\
         Theorem C.1 is achievable, so it is tight.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_within_two_percent_of_bound() {
        let proto = correlated_oneway(OMEGA, ALPHA, 0.05).unwrap();
        let bound = oneway_bound(ALPHA, OMEGA.as_secs_f64(), 0.05);
        let ratio = proto.predicted_latency.as_secs_f64() / bound;
        assert!((ratio - 1.0).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert!(r.contains("Appendix C"));
        assert!(r.contains("speedup"));
    }
}
