//! Criterion bench: N-node cohort simulation throughput (complete cohort
//! runs per second) as the cohort grows, plus a netsim-backend sweep
//! throughput case.
//!
//! Besides the criterion console report, the bench writes a small JSON
//! summary (`BENCH_netsim.json`, path overridable via `ND_BENCH_JSON`) so
//! CI can upload machine-readable throughput numbers as an artifact.

use criterion::{BenchmarkId, Criterion, Throughput};
use nd_core::time::Tick;
use nd_netsim::{NetSimulator, NodeSpec};
use nd_sim::{ScheduleBehavior, SimConfig, Topology};
use nd_sweep::{run_sweep, ScenarioSpec, SweepOptions};
use std::hint::black_box;
use std::time::Instant;

const COHORTS: [usize; 3] = [2, 8, 32];

fn cohort_run(n: usize, seed: u64) -> u64 {
    let sched = nd_protocols::schedule_for_selector(
        "optimal-slotless",
        0.10,
        Tick::from_millis(1),
        Tick::from_micros(36),
    )
    .unwrap();
    let mut radio = nd_core::RadioParams::paper_default();
    radio.omega = Tick::from_micros(36);
    let cfg = SimConfig::paper_baseline(Tick::from_millis(50), seed).with_radio(radio);
    let mut sim = NetSimulator::new(cfg, Topology::full(n));
    for i in 0..n {
        let phase = Tick(((seed ^ (i as u64)).wrapping_mul(0x9e37_79b9_7f4a_7c15)) % 14_400_000);
        sim.add_node(NodeSpec::always_on(Box::new(ScheduleBehavior::with_phase(
            sched.clone(),
            phase,
        ))));
    }
    sim.stop_when_all_discovered(true);
    let report = sim.run();
    report.packets.sent + report.packets.received
}

const NETSIM_SWEEP: &str = r#"
name = "bench-netsim-sweep"
backend = "netsim"

[grid]
protocol = ["optimal-slotless"]
eta = [0.10]
nodes = [4, 8]
collision = [true, false]

[sim]
trials = 3
horizon_ms = 50
"#;

fn bench_cohort_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim_cohort");
    for n in COHORTS {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("nodes", n), &n, |b, &n| {
            b.iter(|| black_box(cohort_run(n, 42)))
        });
    }
    group.finish();
}

fn bench_netsim_sweep(c: &mut Criterion) {
    let spec = ScenarioSpec::from_toml_str(NETSIM_SWEEP).unwrap();
    c.bench_function("netsim_sweep_4_jobs", |b| {
        b.iter(|| {
            black_box(
                run_sweep(&spec, &SweepOptions::uncached())
                    .unwrap()
                    .rows
                    .len(),
            )
        })
    });
}

/// Hand-measured throughput summary for the CI artifact: cohort runs per
/// second per cohort size, and netsim-backend sweep jobs per second.
fn write_summary() {
    let measure = |mut f: Box<dyn FnMut() -> u64>| -> (u64, f64) {
        // calibrated single batch, like the vendored criterion harness
        let mut iters: u64 = 1;
        let target_ms: u64 = std::env::var("ND_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        let per_iter = loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt.as_millis() as u64 * 8 >= target_ms || iters >= 1 << 20 {
                break dt.as_secs_f64() / iters as f64;
            }
            iters *= 2;
        };
        let n = ((target_ms as f64 / 1e3) / per_iter.max(1e-9))
            .ceil()
            .clamp(1.0, 1e7) as u64;
        let t0 = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        (n, n as f64 / t0.elapsed().as_secs_f64())
    };

    let mut entries = Vec::new();
    for n in COHORTS {
        let (iters, per_sec) = measure(Box::new(move || cohort_run(n, 42)));
        entries.push(format!(
            "    {{\"bench\": \"netsim_cohort\", \"nodes\": {n}, \"iters\": {iters}, \"runs_per_sec\": {per_sec:.2}}}"
        ));
    }
    let spec = ScenarioSpec::from_toml_str(NETSIM_SWEEP).unwrap();
    let jobs = nd_sweep::expand(&spec).len();
    let (iters, sweeps_per_sec) = measure(Box::new(move || {
        run_sweep(&spec, &SweepOptions::uncached())
            .unwrap()
            .rows
            .len() as u64
    }));
    entries.push(format!(
        "    {{\"bench\": \"netsim_sweep\", \"jobs\": {jobs}, \"iters\": {iters}, \"jobs_per_sec\": {:.2}}}",
        sweeps_per_sec * jobs as f64
    ));

    let path = std::env::var("ND_BENCH_JSON").unwrap_or_else(|_| "BENCH_netsim.json".to_string());
    let body = format!("{{\n  \"results\": [\n{}\n  ]\n}}\n", entries.join(",\n"));
    match std::fs::write(&path, body) {
        Ok(()) => println!("wrote throughput summary to {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

fn main() {
    let mut c = Criterion::default();
    bench_cohort_scaling(&mut c);
    bench_netsim_sweep(&mut c);
    write_summary();
}
