//! Criterion bench: N-node cohort simulation throughput (complete cohort
//! runs per second) as the cohort grows, plus a netsim-backend sweep
//! throughput case.
//!
//! Besides the criterion console report, the bench writes a JSON summary
//! (`BENCH_netsim.json`, path overridable via `ND_BENCH_JSON`) under the
//! stable `nd-bench-summary/v1` schema ([`nd_bench::summary`]) so CI can
//! upload machine-readable throughput numbers and fail on schema drift.

use criterion::{BenchmarkId, Criterion, Throughput};
use nd_bench::{measure, Summary};
use nd_core::time::Tick;
use nd_netsim::wheel::TimingWheel;
use nd_netsim::{run_sharded, NetSimulator, NodeSpec};
use nd_sim::{ScheduleBehavior, SimConfig, Topology};
use nd_sweep::{run_sweep, ScenarioSpec, SweepOptions};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;

const COHORTS: [usize; 3] = [2, 8, 32];

/// Sharded cohorts: `n` nodes cut into 8-node channel neighborhoods,
/// run through [`run_sharded`] — the scaling path the million-node run
/// uses. One timed run each (a 100k-node cohort is seconds, not the
/// `measure` window).
const LARGE_COHORTS: [usize; 3] = [1_000, 10_000, 100_000];
const NEIGHBORHOOD: u32 = 8;

fn cohort_run(n: usize, seed: u64) -> u64 {
    let sched = nd_protocols::schedule_for_selector(
        "optimal-slotless",
        0.10,
        Tick::from_millis(1),
        Tick::from_micros(36),
    )
    .unwrap();
    let mut radio = nd_core::RadioParams::paper_default();
    radio.omega = Tick::from_micros(36);
    let cfg = SimConfig::paper_baseline(Tick::from_millis(50), seed).with_radio(radio);
    let mut sim = NetSimulator::new(cfg, Topology::full(n));
    for i in 0..n {
        let phase = Tick(((seed ^ (i as u64)).wrapping_mul(0x9e37_79b9_7f4a_7c15)) % 14_400_000);
        sim.add_node(NodeSpec::always_on(Box::new(ScheduleBehavior::with_phase(
            sched.clone(),
            phase,
        ))));
    }
    sim.stop_when_all_discovered(true);
    let report = sim.run();
    report.packets.sent + report.packets.received
}

/// One sharded large-cohort run; returns `(events, wall seconds)`.
fn large_cohort_run(n: usize, seed: u64) -> (u64, f64) {
    let sched = nd_protocols::schedule_for_selector(
        "optimal-slotless",
        0.10,
        Tick::from_millis(1),
        Tick::from_micros(36),
    )
    .unwrap();
    let mut radio = nd_core::RadioParams::paper_default();
    radio.omega = Tick::from_micros(36);
    let cfg = SimConfig::paper_baseline(Tick::from_millis(50), seed).with_radio(radio);
    let topo = Topology::clusters((0..n as u32).map(|i| i / NEIGHBORHOOD).collect());
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut events: u64 = 0;
    let t0 = std::time::Instant::now();
    run_sharded(
        &cfg,
        &topo,
        true,
        threads,
        |g| {
            let phase =
                Tick(((seed ^ (g as u64)).wrapping_mul(0x9e37_79b9_7f4a_7c15)) % 14_400_000);
            NodeSpec::always_on(Box::new(ScheduleBehavior::with_phase(sched.clone(), phase)))
        },
        |_, _, report| events += report.events,
    );
    (events, t0.elapsed().as_secs_f64())
}

/// Steady-state queue ops at netsim-like depth and spacing: pop the
/// earliest entry, push a new one a pseudo-random stride ahead.
const QUEUE_DEPTH: usize = 35;
const QUEUE_BATCH: u64 = 10_000;

fn queue_stride(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    1 + *state % 20_000
}

fn wheel_ops_batch() -> u64 {
    let mut w: TimingWheel<u32> = TimingWheel::new();
    let (mut state, mut at, mut seq) = (7_001u64, 0u64, 0u64);
    for _ in 0..QUEUE_DEPTH {
        at += queue_stride(&mut state);
        w.push(at, seq, 0);
        seq += 1;
    }
    for _ in 0..QUEUE_BATCH {
        let e = w.pop().unwrap();
        at = e.at + queue_stride(&mut state);
        w.push(at, seq, 0);
        seq += 1;
    }
    QUEUE_BATCH
}

fn heap_ops_batch() -> u64 {
    let mut h: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
    let (mut state, mut at, mut seq) = (7_001u64, 0u64, 0u64);
    for _ in 0..QUEUE_DEPTH {
        at += queue_stride(&mut state);
        h.push(Reverse((at, seq, 0)));
        seq += 1;
    }
    for _ in 0..QUEUE_BATCH {
        let Reverse((eat, _, _)) = h.pop().unwrap();
        at = eat + queue_stride(&mut state);
        h.push(Reverse((at, seq, 0)));
        seq += 1;
    }
    QUEUE_BATCH
}

const NETSIM_SWEEP: &str = r#"
name = "bench-netsim-sweep"
backend = "netsim"

[grid]
protocol = ["optimal-slotless"]
eta = [0.10]
nodes = [4, 8]
collision = [true, false]

[sim]
trials = 3
horizon_ms = 50
"#;

fn bench_cohort_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim_cohort");
    for n in COHORTS {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("nodes", n), &n, |b, &n| {
            b.iter(|| black_box(cohort_run(n, 42)))
        });
    }
    group.finish();
}

fn bench_wheel_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_ops");
    group.throughput(Throughput::Elements(QUEUE_BATCH));
    group.bench_with_input(BenchmarkId::new("queue", "wheel"), &(), |b, ()| {
        b.iter(|| black_box(wheel_ops_batch()))
    });
    group.bench_with_input(BenchmarkId::new("queue", "heap"), &(), |b, ()| {
        b.iter(|| black_box(heap_ops_batch()))
    });
    group.finish();
}

fn bench_netsim_sweep(c: &mut Criterion) {
    let spec = ScenarioSpec::from_toml_str(NETSIM_SWEEP).unwrap();
    c.bench_function("netsim_sweep_4_jobs", |b| {
        b.iter(|| {
            black_box(
                run_sweep(&spec, &SweepOptions::uncached())
                    .unwrap()
                    .rows
                    .len(),
            )
        })
    });
}

/// Hand-measured throughput summary for the CI artifact: cohort runs per
/// second per cohort size, and netsim-backend sweep jobs per second, all
/// recorded through the `nd-obs` registry under `nd-bench-summary/v1`.
fn write_summary() {
    let summary = Summary::new("netsim");
    for n in COHORTS {
        let (iters, per_sec) = measure(|| cohort_run(n, 42));
        summary.record_rate(&format!("netsim_cohort.nodes_{n}"), "runs", iters, per_sec);
    }
    for n in LARGE_COHORTS {
        let (events, secs) = large_cohort_run(n, 42);
        summary.record_rate(&format!("netsim_cohort.nodes_{n}"), "runs", 1, 1.0 / secs);
        summary.record_gauge(
            &format!("netsim_cohort.nodes_{n}"),
            "events_per_sec",
            events as f64 / secs,
        );
    }
    for (name, batch) in [
        ("queue_ops.wheel", wheel_ops_batch as fn() -> u64),
        ("queue_ops.heap", heap_ops_batch),
    ] {
        let (iters, per_sec) = measure(batch);
        summary.record_rate(
            name,
            "ops",
            iters * QUEUE_BATCH,
            per_sec * QUEUE_BATCH as f64,
        );
    }
    let spec = ScenarioSpec::from_toml_str(NETSIM_SWEEP).unwrap();
    let jobs = nd_sweep::expand(&spec).len();
    let (iters, sweeps_per_sec) = measure(|| {
        run_sweep(&spec, &SweepOptions::uncached())
            .unwrap()
            .rows
            .len() as u64
    });
    summary.record_gauge("netsim_sweep", "jobs", jobs as f64);
    summary.record_rate("netsim_sweep", "jobs", iters, sweeps_per_sec * jobs as f64);
    summary.write("BENCH_netsim.json");
}

fn main() {
    let mut c = Criterion::default();
    bench_cohort_scaling(&mut c);
    bench_wheel_ops(&mut c);
    bench_netsim_sweep(&mut c);
    write_summary();
}
