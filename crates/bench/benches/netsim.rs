//! Criterion bench: N-node cohort simulation throughput (complete cohort
//! runs per second) as the cohort grows, plus a netsim-backend sweep
//! throughput case.
//!
//! Besides the criterion console report, the bench writes a JSON summary
//! (`BENCH_netsim.json`, path overridable via `ND_BENCH_JSON`) under the
//! stable `nd-bench-summary/v1` schema ([`nd_bench::summary`]) so CI can
//! upload machine-readable throughput numbers and fail on schema drift.

use criterion::{BenchmarkId, Criterion, Throughput};
use nd_bench::{measure, Summary};
use nd_core::time::Tick;
use nd_netsim::{NetSimulator, NodeSpec};
use nd_sim::{ScheduleBehavior, SimConfig, Topology};
use nd_sweep::{run_sweep, ScenarioSpec, SweepOptions};
use std::hint::black_box;

const COHORTS: [usize; 3] = [2, 8, 32];

fn cohort_run(n: usize, seed: u64) -> u64 {
    let sched = nd_protocols::schedule_for_selector(
        "optimal-slotless",
        0.10,
        Tick::from_millis(1),
        Tick::from_micros(36),
    )
    .unwrap();
    let mut radio = nd_core::RadioParams::paper_default();
    radio.omega = Tick::from_micros(36);
    let cfg = SimConfig::paper_baseline(Tick::from_millis(50), seed).with_radio(radio);
    let mut sim = NetSimulator::new(cfg, Topology::full(n));
    for i in 0..n {
        let phase = Tick(((seed ^ (i as u64)).wrapping_mul(0x9e37_79b9_7f4a_7c15)) % 14_400_000);
        sim.add_node(NodeSpec::always_on(Box::new(ScheduleBehavior::with_phase(
            sched.clone(),
            phase,
        ))));
    }
    sim.stop_when_all_discovered(true);
    let report = sim.run();
    report.packets.sent + report.packets.received
}

const NETSIM_SWEEP: &str = r#"
name = "bench-netsim-sweep"
backend = "netsim"

[grid]
protocol = ["optimal-slotless"]
eta = [0.10]
nodes = [4, 8]
collision = [true, false]

[sim]
trials = 3
horizon_ms = 50
"#;

fn bench_cohort_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim_cohort");
    for n in COHORTS {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("nodes", n), &n, |b, &n| {
            b.iter(|| black_box(cohort_run(n, 42)))
        });
    }
    group.finish();
}

fn bench_netsim_sweep(c: &mut Criterion) {
    let spec = ScenarioSpec::from_toml_str(NETSIM_SWEEP).unwrap();
    c.bench_function("netsim_sweep_4_jobs", |b| {
        b.iter(|| {
            black_box(
                run_sweep(&spec, &SweepOptions::uncached())
                    .unwrap()
                    .rows
                    .len(),
            )
        })
    });
}

/// Hand-measured throughput summary for the CI artifact: cohort runs per
/// second per cohort size, and netsim-backend sweep jobs per second, all
/// recorded through the `nd-obs` registry under `nd-bench-summary/v1`.
fn write_summary() {
    let summary = Summary::new("netsim");
    for n in COHORTS {
        let (iters, per_sec) = measure(|| cohort_run(n, 42));
        summary.record_rate(&format!("netsim_cohort.nodes_{n}"), "runs", iters, per_sec);
    }
    let spec = ScenarioSpec::from_toml_str(NETSIM_SWEEP).unwrap();
    let jobs = nd_sweep::expand(&spec).len();
    let (iters, sweeps_per_sec) = measure(|| {
        run_sweep(&spec, &SweepOptions::uncached())
            .unwrap()
            .rows
            .len() as u64
    });
    summary.record_gauge("netsim_sweep", "jobs", jobs as f64);
    summary.record_rate("netsim_sweep", "jobs", iters, sweeps_per_sec * jobs as f64);
    summary.write("BENCH_netsim.json");
}

fn main() {
    let mut c = Criterion::default();
    bench_cohort_scaling(&mut c);
    bench_netsim_sweep(&mut c);
    write_summary();
}
