//! Criterion bench: the exact worst-case engine on representative
//! protocols (the workhorse behind `table1`, `classify` and `achieve`).

use criterion::{criterion_group, criterion_main, Criterion};
use nd_analysis::{one_way_coverage, one_way_worst_case, AnalysisConfig};
use nd_core::time::Tick;
use nd_protocols::optimal::{self, OptimalParams};
use nd_protocols::{DiffCode, Disco, Searchlight};
use std::hint::black_box;

fn cfg() -> AnalysisConfig {
    AnalysisConfig::paper_default()
}

fn bench_optimal(c: &mut Criterion) {
    let opt = optimal::symmetric(OptimalParams::paper_default(), 0.02).unwrap();
    let b = opt.schedule.beacons.clone().unwrap();
    let w = opt.schedule.windows.clone().unwrap();
    c.bench_function("exact_optimal_eta2pct", |bench| {
        bench.iter(|| black_box(one_way_worst_case(&b, &w, &cfg()).unwrap().latency))
    });
}

fn bench_diffcode(c: &mut Criterion) {
    let d = DiffCode::new(
        73,
        vec![0, 1, 12, 20, 26, 30, 33, 35, 57],
        Tick::from_millis(1),
        Tick::from_micros(36),
    )
    .unwrap();
    let sched = d.schedule().unwrap();
    let b = sched.beacons.clone().unwrap();
    let w = sched.windows.clone().unwrap();
    c.bench_function("exact_diffcode_v73", |bench| {
        bench.iter(|| black_box(one_way_coverage(&b, &w, &cfg()).unwrap().worst_covered))
    });
}

fn bench_searchlight(c: &mut Criterion) {
    let s = Searchlight::new(10, Tick::from_millis(1), Tick::from_micros(36)).unwrap();
    let sched = s.schedule().unwrap();
    let b = sched.beacons.clone().unwrap();
    let w = sched.windows.clone().unwrap();
    c.bench_function("exact_searchlight_t10", |bench| {
        bench.iter(|| black_box(one_way_coverage(&b, &w, &cfg()).unwrap().worst_covered))
    });
}

fn bench_disco(c: &mut Criterion) {
    let d = Disco::new(11, 13, Tick::from_millis(1), Tick::from_micros(36)).unwrap();
    let sched = d.schedule().unwrap();
    let b = sched.beacons.clone().unwrap();
    let w = sched.windows.clone().unwrap();
    c.bench_function("exact_disco_11x13", |bench| {
        bench.iter(|| black_box(one_way_coverage(&b, &w, &cfg()).unwrap().worst_covered))
    });
}

criterion_group!(
    benches,
    bench_optimal,
    bench_diffcode,
    bench_searchlight,
    bench_disco
);
criterion_main!(benches);
