//! Criterion bench: nd-sweep orchestration throughput (jobs/sec) on a
//! 24-point exact-analysis grid, single-threaded vs. all cores, plus the
//! per-sweep fixed overhead (expansion + hashing) on its own.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nd_sweep::{expand, run_sweep, ScenarioSpec, SweepOptions};
use std::hint::black_box;

const GRID_SPEC: &str = r#"
name = "bench-grid"
backend = "exact"
metric = "one-way"
percentiles = false

[grid]
protocol = ["optimal-slotless", "disco", "u-connect", "searchlight"]
eta = [0.05, 0.10, 0.20]
slot_us = [500, 1000]
"#;

fn bench_sweep_throughput(c: &mut Criterion) {
    let spec = ScenarioSpec::from_toml_str(GRID_SPEC).unwrap();
    let jobs = expand(&spec).len() as u64;
    let all_cores = nd_sweep::pool::default_threads();

    let mut group = c.benchmark_group("sweep_jobs");
    group.throughput(Throughput::Elements(jobs));
    let mut thread_counts = vec![1];
    if all_cores > 1 {
        thread_counts.push(all_cores);
    }
    for threads in thread_counts {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                let opts = SweepOptions {
                    threads: Some(threads),
                    ..SweepOptions::uncached()
                };
                b.iter(|| black_box(run_sweep(&spec, &opts).unwrap().rows.len()))
            },
        );
    }
    group.finish();
}

fn bench_expansion_and_hashing(c: &mut Criterion) {
    let spec = ScenarioSpec::from_toml_str(GRID_SPEC).unwrap();
    c.bench_function("sweep_expand_and_hash_24", |b| {
        b.iter(|| {
            let jobs = expand(&spec);
            let mut acc = 0u64;
            for job in &jobs {
                acc ^= job.seed(&spec);
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_sweep_throughput, bench_expansion_and_hashing);
criterion_main!(benches);
