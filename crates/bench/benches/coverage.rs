//! Criterion bench: coverage-map construction and determinism checking
//! (the inner loop of every analysis in this repository).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nd_core::coverage::{CoverageMap, OverlapModel};
use nd_core::schedule::ReceptionWindows;
use nd_core::time::Tick;
use std::hint::black_box;

fn bench_coverage_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("coverage_map_build");
    for &n_beacons in &[16u64, 64, 256, 1024] {
        let windows =
            ReceptionWindows::single(Tick::ZERO, Tick::from_micros(500), Tick::from_millis(10))
                .unwrap();
        // irregular-ish gaps exercising the modular shifts
        let rel: Vec<Tick> = (0..n_beacons)
            .map(|i| Tick::from_micros(i * 10_500 + (i % 7) * 131))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n_beacons), &rel, |b, rel| {
            b.iter(|| {
                let map = CoverageMap::build(
                    black_box(rel),
                    black_box(&windows),
                    Tick::from_micros(36),
                    OverlapModel::Start,
                );
                black_box(map.is_deterministic())
            })
        });
    }
    group.finish();
}

fn bench_first_hit_profile(c: &mut Criterion) {
    let mut group = c.benchmark_group("first_hit_profile");
    for &n_beacons in &[64u64, 512] {
        let windows =
            ReceptionWindows::single(Tick::ZERO, Tick::from_micros(500), Tick::from_millis(10))
                .unwrap();
        let rel: Vec<Tick> = (0..n_beacons)
            .map(|i| Tick::from_micros(i * 10_500))
            .collect();
        let map = CoverageMap::build(&rel, &windows, Tick::from_micros(36), OverlapModel::Start);
        group.bench_with_input(BenchmarkId::from_parameter(n_beacons), &map, |b, map| {
            b.iter(|| black_box(map.first_hit_profile().worst()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_coverage_build, bench_first_hit_profile);
criterion_main!(benches);
