//! Criterion bench: the numeric solvers — Appendix B optimal redundancy
//! and the difference-set searcher.

use criterion::{criterion_group, criterion_main, Criterion};
use nd_core::bounds::redundancy::{optimal_redundancy, CollisionExponent};
use nd_protocols::diffcodes::find_difference_set;
use std::hint::black_box;

fn bench_redundancy_solver(c: &mut Criterion) {
    c.bench_function("appb_optimal_redundancy", |b| {
        b.iter(|| {
            black_box(optimal_redundancy(
                0.05,
                1.0,
                36e-6,
                0.0005,
                3,
                CollisionExponent::SMinusOne,
                16,
            ))
        })
    });
}

fn bench_diffset_search(c: &mut Criterion) {
    c.bench_function("diffset_search_v31_k6", |b| {
        b.iter(|| black_box(find_difference_set(31, 6)))
    });
    c.bench_function("diffset_search_v57_k8", |b| {
        b.iter(|| black_box(find_difference_set(57, 8)))
    });
}

fn bench_schedule_construction(c: &mut Criterion) {
    use nd_protocols::optimal::{symmetric, OptimalParams};
    c.bench_function("optimal_symmetric_construction", |b| {
        b.iter(|| black_box(symmetric(OptimalParams::paper_default(), 0.02).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_redundancy_solver,
    bench_diffset_search,
    bench_schedule_construction
);
criterion_main!(benches);
