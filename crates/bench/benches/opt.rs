//! Criterion bench: Pareto-front optimizer throughput — full searches
//! per second on the exact evaluator (uncached, 1 thread vs. all cores)
//! and raw candidate-evaluation throughput.
//!
//! Besides the criterion console report, the bench writes a JSON summary
//! (`BENCH_opt.json`, path overridable via `ND_BENCH_JSON`) under the
//! stable `nd-bench-summary/v1` schema ([`nd_bench::summary`]) so CI can
//! upload machine-readable throughput numbers and fail on schema drift.

use criterion::Criterion;
use nd_bench::{measure, Summary};
use nd_opt::{evaluator_for, run_opt, Candidate, OptOptions, OptSpec};
use std::hint::black_box;

const FRONT_SPEC: &str = r#"
name = "bench-opt-front"
backend = "exact"
metric = "two-way"

[opt]
protocols = ["optimal"]
seeds_per_axis = 6
rounds = 2
"#;

fn spec() -> OptSpec {
    OptSpec::from_toml_str(FRONT_SPEC).unwrap()
}

fn front_run(threads: Option<usize>) -> usize {
    let opts = OptOptions {
        threads,
        ..OptOptions::uncached()
    };
    run_opt(&spec(), &opts).unwrap().fronts[0].front.len()
}

fn bench_front(c: &mut Criterion) {
    c.bench_function("opt_front_serial", |b| {
        b.iter(|| black_box(front_run(Some(1))))
    });
    c.bench_function("opt_front_parallel", |b| {
        b.iter(|| black_box(front_run(None)))
    });
}

fn bench_evaluations(c: &mut Criterion) {
    let s = spec();
    let ev = evaluator_for(&s).unwrap();
    let cand = Candidate::symmetric("optimal-slotless", 0.05, None);
    c.bench_function("opt_eval_exact", |b| {
        b.iter(|| black_box(ev.run(&cand).unwrap().len()))
    });
}

/// Hand-measured throughput summary for the CI artifact: whole searches
/// per second (serial and parallel) and single exact evaluations per
/// second, recorded through the `nd-obs` registry under
/// `nd-bench-summary/v1`.
fn write_summary() {
    let summary = Summary::new("opt");
    for (name, threads) in [("opt_front_serial", Some(1)), ("opt_front_parallel", None)] {
        let (iters, per_sec) = measure(|| front_run(threads) as u64);
        summary.record_rate(name, "fronts", iters, per_sec);
    }
    let s = spec();
    let ev = evaluator_for(&s).unwrap();
    let cand = Candidate::symmetric("optimal-slotless", 0.05, None);
    let (iters, per_sec) = measure(|| ev.run(&cand).unwrap().len() as u64);
    summary.record_rate("opt_eval_exact", "evals", iters, per_sec);
    summary.write("BENCH_opt.json");
}

fn main() {
    let mut c = Criterion::default();
    bench_front(&mut c);
    bench_evaluations(&mut c);
    write_summary();
}
