//! Criterion bench: Pareto-front optimizer throughput — full searches
//! per second on the exact evaluator (uncached, 1 thread vs. all cores),
//! raw candidate-evaluation throughput, and the adaptive trial-allocation
//! speedup on a netsim-backed 33-node cohort search (fixed budget vs.
//! screen-and-promote at an identical front).
//!
//! Besides the criterion console report, the bench writes a JSON summary
//! (`BENCH_opt.json`, path overridable via `ND_BENCH_JSON`) under the
//! stable `nd-bench-summary/v1` schema ([`nd_bench::summary`]) so CI can
//! upload machine-readable throughput numbers and fail on schema drift.

use criterion::Criterion;
use nd_bench::{measure, Summary};
use nd_opt::{evaluator_for, run_opt, Candidate, OptOptions, OptSpec};
use std::hint::black_box;

const FRONT_SPEC: &str = r#"
name = "bench-opt-front"
backend = "exact"
metric = "two-way"

[opt]
protocols = ["optimal"]
seeds_per_axis = 6
rounds = 2
"#;

fn spec() -> OptSpec {
    OptSpec::from_toml_str(FRONT_SPEC).unwrap()
}

/// A 33-node netsim cohort search, the dense-grid sibling of the spec in
/// `crates/opt/tests/adaptive.rs` (which pins the adaptive-vs-fixed front
/// equality contract). Searchlight's duty cycle depends only on η, so
/// each η class keeps exactly one competitive slot column and screening
/// settles the rest; the 16-point slot axis keeps the front candidates —
/// which must run the full budget either way — a small share of the
/// total trial cost, which is what the adaptive speedup is made of.
const ADAPTIVE_SPEC: &str = r#"
name = "bench-opt-adaptive"
backend = "netsim"
metric = "two-way"

[radio]
omega_us = 2

[sim]
trials = 16
seed = 7
half_duplex = false
collisions = false
horizon_ms = 1200

[opt]
protocols = ["searchlight"]
objective = "p95"
nodes = 33
seeds_per_axis = 16
rounds = 1
max_evals = 256
eta_min = 0.15
eta_max = 0.3
"#;

const ADAPTIVE_KNOBS: &str = "
[opt.adaptive]
screen_trials = 1
confidence = 0.07
";

/// One uncached cohort search; returns the front as exact bit patterns
/// so the fixed and adaptive runs can be compared for identity.
fn adaptive_run(adaptive: bool) -> Vec<(u64, u64)> {
    let toml = if adaptive {
        format!("{ADAPTIVE_SPEC}{ADAPTIVE_KNOBS}")
    } else {
        ADAPTIVE_SPEC.to_string()
    };
    let s = OptSpec::from_toml_str(&toml).unwrap();
    let out = run_opt(&s, &OptOptions::uncached()).unwrap();
    out.fronts[0]
        .front
        .iter()
        .map(|p| (p.duty_cycle.to_bits(), p.latency_s.to_bits()))
        .collect()
}

fn front_run(threads: Option<usize>) -> usize {
    let opts = OptOptions {
        threads,
        ..OptOptions::uncached()
    };
    run_opt(&spec(), &opts).unwrap().fronts[0].front.len()
}

fn bench_front(c: &mut Criterion) {
    c.bench_function("opt_front_serial", |b| {
        b.iter(|| black_box(front_run(Some(1))))
    });
    c.bench_function("opt_front_parallel", |b| {
        b.iter(|| black_box(front_run(None)))
    });
}

fn bench_evaluations(c: &mut Criterion) {
    let s = spec();
    let ev = evaluator_for(&s).unwrap();
    let cand = Candidate::symmetric("optimal-slotless", 0.05, None);
    c.bench_function("opt_eval_exact", |b| {
        b.iter(|| black_box(ev.run(&cand).unwrap().len()))
    });
}

/// Hand-measured throughput summary for the CI artifact: whole searches
/// per second (serial and parallel) and single exact evaluations per
/// second, recorded through the `nd-obs` registry under
/// `nd-bench-summary/v1`.
fn write_summary() {
    let summary = Summary::new("opt");
    for (name, threads) in [("opt_front_serial", Some(1)), ("opt_front_parallel", None)] {
        let (iters, per_sec) = measure(|| front_run(threads) as u64);
        summary.record_rate(name, "fronts", iters, per_sec);
    }
    let s = spec();
    let ev = evaluator_for(&s).unwrap();
    let cand = Candidate::symmetric("optimal-slotless", 0.05, None);
    let (iters, per_sec) = measure(|| ev.run(&cand).unwrap().len() as u64);
    summary.record_rate("opt_eval_exact", "evals", iters, per_sec);
    // netsim 33-node cohort: fixed budget vs. adaptive screen-and-promote.
    // One timed run each (these are multi-second searches; the adaptive
    // trial cost is deterministic, so a single run is representative),
    // and the two fronts are asserted identical — the bench doubles as
    // the front-equality check on the dense grid.
    let t0 = std::time::Instant::now();
    let fixed_front = adaptive_run(false);
    let fixed_per_sec = 1.0 / t0.elapsed().as_secs_f64();
    summary.record_rate("adaptive_front_fixed", "fronts", 1, fixed_per_sec);
    let t0 = std::time::Instant::now();
    let adaptive_front = adaptive_run(true);
    let adaptive_per_sec = 1.0 / t0.elapsed().as_secs_f64();
    assert_eq!(
        fixed_front, adaptive_front,
        "adaptive screening must reproduce the fixed-budget front bit for bit"
    );
    summary.record_rate("adaptive_front", "fronts", 1, adaptive_per_sec);
    summary.record_gauge("adaptive_front", "speedup_x", adaptive_per_sec / fixed_per_sec);
    summary.write("BENCH_opt.json");
}

fn main() {
    let mut c = Criterion::default();
    bench_front(&mut c);
    bench_evaluations(&mut c);
    write_summary();
}
