//! Criterion bench: Pareto-front optimizer throughput — full searches
//! per second on the exact evaluator (uncached, 1 thread vs. all cores)
//! and raw candidate-evaluation throughput.
//!
//! Besides the criterion console report, the bench writes a small JSON
//! summary (`BENCH_opt.json`, path overridable via `ND_BENCH_JSON`) so CI
//! can upload machine-readable throughput numbers as an artifact.

use criterion::Criterion;
use nd_opt::{evaluator_for, run_opt, Candidate, OptOptions, OptSpec};
use std::hint::black_box;
use std::time::Instant;

const FRONT_SPEC: &str = r#"
name = "bench-opt-front"
backend = "exact"
metric = "two-way"

[opt]
protocols = ["optimal"]
seeds_per_axis = 6
rounds = 2
"#;

fn spec() -> OptSpec {
    OptSpec::from_toml_str(FRONT_SPEC).unwrap()
}

fn front_run(threads: Option<usize>) -> usize {
    let opts = OptOptions {
        threads,
        ..OptOptions::uncached()
    };
    run_opt(&spec(), &opts).unwrap().fronts[0].front.len()
}

fn bench_front(c: &mut Criterion) {
    c.bench_function("opt_front_serial", |b| {
        b.iter(|| black_box(front_run(Some(1))))
    });
    c.bench_function("opt_front_parallel", |b| {
        b.iter(|| black_box(front_run(None)))
    });
}

fn bench_evaluations(c: &mut Criterion) {
    let s = spec();
    let ev = evaluator_for(&s).unwrap();
    let cand = Candidate::symmetric("optimal-slotless", 0.05, None);
    c.bench_function("opt_eval_exact", |b| {
        b.iter(|| black_box(ev.run(&cand).unwrap().len()))
    });
}

/// Hand-measured throughput summary for the CI artifact: whole searches
/// per second (serial and parallel) and single exact evaluations per
/// second.
fn write_summary() {
    let measure = |mut f: Box<dyn FnMut() -> u64>| -> (u64, f64) {
        // calibrated single batch, like the vendored criterion harness
        let mut iters: u64 = 1;
        let target_ms: u64 = std::env::var("ND_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        let per_iter = loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt.as_millis() as u64 * 8 >= target_ms || iters >= 1 << 20 {
                break dt.as_secs_f64() / iters as f64;
            }
            iters *= 2;
        };
        let n = ((target_ms as f64 / 1e3) / per_iter.max(1e-9))
            .ceil()
            .clamp(1.0, 1e7) as u64;
        let t0 = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        (n, n as f64 / t0.elapsed().as_secs_f64())
    };

    let mut entries = Vec::new();
    for (name, threads) in [("opt_front_serial", Some(1)), ("opt_front_parallel", None)] {
        let (iters, per_sec) = measure(Box::new(move || front_run(threads) as u64));
        entries.push(format!(
            "    {{\"bench\": \"{name}\", \"iters\": {iters}, \"fronts_per_sec\": {per_sec:.2}}}"
        ));
    }
    let s = spec();
    let ev = evaluator_for(&s).unwrap();
    let cand = Candidate::symmetric("optimal-slotless", 0.05, None);
    let (iters, per_sec) = measure(Box::new(move || ev.run(&cand).unwrap().len() as u64));
    entries.push(format!(
        "    {{\"bench\": \"opt_eval_exact\", \"iters\": {iters}, \"evals_per_sec\": {per_sec:.2}}}"
    ));

    let path = std::env::var("ND_BENCH_JSON").unwrap_or_else(|_| "BENCH_opt.json".to_string());
    let body = format!("{{\n  \"results\": [\n{}\n  ]\n}}\n", entries.join(",\n"));
    match std::fs::write(&path, body) {
        Ok(()) => println!("wrote throughput summary to {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

fn main() {
    let mut c = Criterion::default();
    bench_front(&mut c);
    bench_evaluations(&mut c);
    write_summary();
}
