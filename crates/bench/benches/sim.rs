//! Criterion bench: discrete-event simulator throughput for growing
//! device counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nd_core::time::Tick;
use nd_protocols::optimal::{self, OptimalParams};
use nd_sim::{ScheduleBehavior, SimConfig, Simulator, Topology};
use std::hint::black_box;

fn bench_pair_throughput(c: &mut Criterion) {
    let opt = optimal::symmetric(OptimalParams::paper_default(), 0.05).unwrap();
    let mut group = c.benchmark_group("sim_run");
    for &n in &[2usize, 5, 10, 20] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("devices", n), &n, |b, &n| {
            b.iter(|| {
                let cfg = SimConfig::paper_baseline(Tick::from_millis(200), 7);
                let mut sim = Simulator::new(cfg, Topology::full(n));
                for i in 0..n {
                    sim.add_device(Box::new(ScheduleBehavior::with_phase(
                        opt.schedule.clone(),
                        Tick::from_micros(i as u64 * 977),
                    )));
                }
                black_box(sim.run().packets.sent)
            })
        });
    }
    group.finish();
}

fn bench_collision_heavy(c: &mut Criterion) {
    // dense schedules stress the collision scan
    let opt = optimal::symmetric(OptimalParams::paper_default(), 0.2).unwrap();
    c.bench_function("sim_dense_10dev_100ms", |b| {
        b.iter(|| {
            let cfg = SimConfig::paper_baseline(Tick::from_millis(100), 3);
            let mut sim = Simulator::new(cfg, Topology::full(10));
            for i in 0..10 {
                sim.add_device(Box::new(ScheduleBehavior::with_phase(
                    opt.schedule.clone(),
                    Tick::from_micros(i * 131),
                )));
            }
            black_box(sim.run().packets.lost_collision)
        })
    });
}

criterion_group!(benches, bench_pair_throughput, bench_collision_heavy);
criterion_main!(benches);
