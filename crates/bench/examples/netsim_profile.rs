//! Quick netsim hot-loop probe: event counts and wall time per cohort size.
use nd_core::time::Tick;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct Counting;

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: Counting = Counting;
use nd_netsim::{NetSimulator, NodeSpec};
use nd_sim::{ScheduleBehavior, SimConfig, Topology};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    let heap = std::env::args().any(|a| a == "heap");
    let reps: usize = std::env::var("REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let sched = nd_protocols::schedule_for_selector(
        "optimal-slotless",
        0.10,
        Tick::from_millis(1),
        Tick::from_micros(36),
    )
    .unwrap();
    if let (Some(b), Some(c)) = (&sched.beacons, &sched.windows) {
        eprintln!(
            "T_B={:?} omega_sched={:?} T_C={:?} d={:?}",
            b.period(),
            Tick::from_micros(36),
            c.period(),
            c.instances_in(Tick::ZERO, c.period())
                .first()
                .map(|iv| iv.measure())
        );
    }
    let mut radio = nd_core::RadioParams::paper_default();
    radio.omega = Tick::from_micros(36);
    let cfg = SimConfig::paper_baseline(Tick::from_millis(50), 42).with_radio(radio);
    let build = || {
        let mut sim = NetSimulator::new(cfg.clone(), Topology::full(n));
        if heap {
            sim.use_heap_queue();
        }
        for i in 0..n {
            let phase =
                Tick(((42u64 ^ (i as u64)).wrapping_mul(0x9e37_79b9_7f4a_7c15)) % 14_400_000);
            sim.add_node(NodeSpec::always_on(Box::new(ScheduleBehavior::with_phase(
                sched.clone(),
                phase,
            ))));
        }
        sim.stop_when_all_discovered(true);
        sim
    };
    let mut report = build().run();
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let t = std::time::Instant::now();
    for _ in 0..reps {
        report = build().run();
    }
    let wall = t.elapsed() / reps as u32;
    let allocs = (ALLOCS.load(Ordering::Relaxed) - a0) / reps as u64;
    eprintln!("allocs/run={allocs}");
    println!(
        "n={n} events={} sent={} received={} lost_coll={} lost_blank={} elapsed={:?} wall={wall:?} ev/s={:.0}",
        report.events,
        report.packets.sent,
        report.packets.received,
        report.packets.lost_collision,
        report.packets.lost_self_blocking,
        report.elapsed,
        report.events as f64 / wall.as_secs_f64()
    );
}
