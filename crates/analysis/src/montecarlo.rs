//! Monte-Carlo harness: repeated randomized-phase simulations on top of
//! `nd-sim`, for the statistics the closed-form analysis cannot give
//! (collisions among S > 2 devices, fault injection, reactive protocols).

use nd_core::schedule::Schedule;
use nd_core::time::Tick;
use nd_sim::{Behavior, ScheduleBehavior, SimConfig, Simulator, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Summary statistics over a set of per-trial latencies.
#[derive(Clone, Debug)]
pub struct LatencySummary {
    /// Number of trials.
    pub trials: usize,
    /// Trials that never discovered within the horizon.
    pub failures: usize,
    /// Mean over successful trials (seconds).
    pub mean: f64,
    /// Percentiles over successful trials (seconds): (p50, p95, p99).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum observed latency.
    pub max: f64,
}

impl LatencySummary {
    /// Aggregate a list of optional latencies (None = not discovered).
    pub fn from_latencies(latencies: &[Option<Tick>]) -> Self {
        let mut ok: Vec<f64> = latencies
            .iter()
            .filter_map(|l| l.map(|t| t.as_secs_f64()))
            .collect();
        ok.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let failures = latencies.len() - ok.len();
        let pct = |p: f64| -> f64 {
            if ok.is_empty() {
                f64::NAN
            } else {
                ok[((ok.len() as f64 - 1.0) * p).round() as usize]
            }
        };
        LatencySummary {
            trials: latencies.len(),
            failures,
            mean: if ok.is_empty() {
                f64::NAN
            } else {
                ok.iter().sum::<f64>() / ok.len() as f64
            },
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            max: ok.last().copied().unwrap_or(f64::NAN),
        }
    }

    /// Fraction of trials that failed to discover.
    pub fn failure_rate(&self) -> f64 {
        self.failures as f64 / self.trials as f64
    }
}

/// Which discovery completion a pair trial waits for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PairMetric {
    /// Device 1 discovers device 0 (unidirectional, Theorem 5.4).
    OneWay,
    /// Either direction succeeds (Appendix C metric).
    EitherWay,
    /// Both directions succeed (Theorems 5.5/5.7 metric).
    TwoWay,
}

/// Run `trials` pair simulations with independently random phases for both
/// schedules; returns per-trial latency (None if not discovered within the
/// configured horizon).
pub fn pair_trials(
    sched_a: &Schedule,
    sched_b: &Schedule,
    metric: PairMetric,
    cfg: &SimConfig,
    trials: usize,
) -> Vec<Option<Tick>> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut out = Vec::with_capacity(trials);
    for trial in 0..trials {
        let phase_a = random_phase(sched_a, &mut rng);
        let phase_b = random_phase(sched_b, &mut rng);
        let mut cfg_t = cfg.clone();
        cfg_t.seed = cfg
            .seed
            .wrapping_add(trial as u64)
            .wrapping_mul(0x5851_f42d_4c95_7f2d);
        let mut sim = Simulator::new(cfg_t, Topology::full(2));
        sim.add_device(Box::new(ScheduleBehavior::with_phase(
            sched_a.clone(),
            phase_a,
        )));
        sim.add_device(Box::new(ScheduleBehavior::with_phase(
            sched_b.clone(),
            phase_b,
        )));
        sim.stop_when_all_discovered(matches!(metric, PairMetric::TwoWay));
        let report = sim.run();
        let latency = match metric {
            PairMetric::OneWay => report.discovery.one_way(1, 0),
            PairMetric::EitherWay => report.discovery.either_way(0, 1),
            PairMetric::TwoWay => report.discovery.two_way(0, 1),
        };
        out.push(latency);
    }
    out
}

/// Run one simulation with `behaviors.len()` devices (arbitrary reactive
/// behaviours) and return the report.
pub fn run_group(behaviors: Vec<Box<dyn Behavior>>, cfg: &SimConfig) -> nd_sim::SimReport {
    let n = behaviors.len();
    let mut sim = Simulator::new(cfg.clone(), Topology::full(n));
    for b in behaviors {
        sim.add_device(b);
    }
    sim.run()
}

/// Fraction of pair discoveries (over random phases) completing within
/// `deadline`, among `s` devices all running clones of `schedule` with
/// random phases — the Appendix B failure-rate experiment.
pub fn group_success_rate(
    schedule: &Schedule,
    s: usize,
    deadline: Tick,
    cfg: &SimConfig,
    trials: usize,
    jitter: Option<Tick>,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xdead_beef);
    let mut attempts = 0u64;
    let mut successes = 0u64;
    for trial in 0..trials {
        let mut cfg_t = cfg.clone();
        cfg_t.seed = cfg.seed.wrapping_add(0x1000 + trial as u64);
        let mut sim = Simulator::new(cfg_t, Topology::full(s));
        for _ in 0..s {
            let phase = random_phase(schedule, &mut rng);
            let base = ScheduleBehavior::with_phase(schedule.clone(), phase);
            match jitter {
                Some(j) => {
                    sim.add_device(Box::new(nd_protocols::Jittered::new(base, j)));
                }
                None => {
                    sim.add_device(Box::new(base));
                }
            }
        }
        let report = sim.run();
        for a in 0..s {
            for b in 0..s {
                if a != b {
                    attempts += 1;
                    if report
                        .discovery
                        .one_way(a, b)
                        .is_some_and(|t| t <= deadline)
                    {
                        successes += 1;
                    }
                }
            }
        }
    }
    successes as f64 / attempts as f64
}

/// Like [`group_success_rate`], but with an arbitrary behaviour factory:
/// `make(trial, device)` builds each device's behaviour (drawing its own
/// randomness from construction parameters if needed).
pub fn group_success_rate_factory(
    make: &mut dyn FnMut(usize, usize) -> Box<dyn Behavior>,
    s: usize,
    deadline: Tick,
    cfg: &SimConfig,
    trials: usize,
) -> f64 {
    let mut attempts = 0u64;
    let mut successes = 0u64;
    for trial in 0..trials {
        let mut cfg_t = cfg.clone();
        cfg_t.seed = cfg.seed.wrapping_add(0x2000 + trial as u64);
        let mut sim = Simulator::new(cfg_t, Topology::full(s));
        for dev in 0..s {
            sim.add_device(make(trial, dev));
        }
        let report = sim.run();
        for a in 0..s {
            for b in 0..s {
                if a != b {
                    attempts += 1;
                    if report
                        .discovery
                        .one_way(a, b)
                        .is_some_and(|t| t <= deadline)
                    {
                        successes += 1;
                    }
                }
            }
        }
    }
    successes as f64 / attempts as f64
}

fn random_phase(schedule: &Schedule, rng: &mut StdRng) -> Tick {
    let period = schedule
        .beacons
        .as_ref()
        .map(|b| b.period())
        .into_iter()
        .chain(schedule.windows.as_ref().map(|c| c.period()))
        .max()
        .unwrap_or(Tick(1));
    Tick(rng.gen_range(0..period.as_nanos().max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_protocols::optimal::{self, OptimalParams};

    fn sim_cfg(ms: u64) -> SimConfig {
        // pair analysis under the paper's assumptions: no collisions
        // between the pair (A.5 assumption), ideal radio
        let mut cfg = SimConfig::paper_baseline(Tick::from_millis(ms), 11);
        cfg.collisions = false;
        cfg.half_duplex = false;
        cfg
    }

    #[test]
    fn summary_statistics() {
        let lat: Vec<Option<Tick>> = (1..=100)
            .map(|i| Some(Tick::from_millis(i)))
            .chain([None])
            .collect();
        let s = LatencySummary::from_latencies(&lat);
        assert_eq!(s.trials, 101);
        assert_eq!(s.failures, 1);
        assert!((s.p50 - 0.050).abs() < 2e-3);
        assert!((s.p95 - 0.095).abs() < 2e-3);
        assert!((s.max - 0.1).abs() < 1e-12);
        assert!((s.failure_rate() - 1.0 / 101.0).abs() < 1e-12);
    }

    #[test]
    fn pair_trials_stay_under_worst_case() {
        let opt = optimal::symmetric(OptimalParams::paper_default(), 0.1).unwrap();
        let horizon = Tick(opt.predicted_latency.as_nanos() * 3);
        let mut cfg = sim_cfg(1);
        cfg.t_end = horizon;
        let lat = pair_trials(&opt.schedule, &opt.schedule, PairMetric::TwoWay, &cfg, 25);
        let summary = LatencySummary::from_latencies(&lat);
        assert_eq!(summary.failures, 0, "deterministic protocol never fails");
        assert!(
            summary.max <= opt.predicted_latency.as_secs_f64() * 1.001,
            "max {} vs predicted {}",
            summary.max,
            opt.predicted_latency
        );
    }

    #[test]
    fn one_way_faster_than_two_way() {
        let opt = optimal::symmetric(OptimalParams::paper_default(), 0.1).unwrap();
        let mut cfg = sim_cfg(1);
        cfg.t_end = Tick(opt.predicted_latency.as_nanos() * 3);
        let one = LatencySummary::from_latencies(&pair_trials(
            &opt.schedule,
            &opt.schedule,
            PairMetric::EitherWay,
            &cfg,
            20,
        ));
        let two = LatencySummary::from_latencies(&pair_trials(
            &opt.schedule,
            &opt.schedule,
            PairMetric::TwoWay,
            &cfg,
            20,
        ));
        assert!(one.mean <= two.mean + 1e-12);
    }

    #[test]
    fn group_success_rate_bounds() {
        let opt = optimal::symmetric(OptimalParams::paper_default(), 0.1).unwrap();
        let mut cfg = sim_cfg(1);
        cfg.collisions = true;
        cfg.half_duplex = true;
        cfg.t_end = Tick(opt.predicted_latency.as_nanos() * 2);
        let rate = group_success_rate(&opt.schedule, 3, opt.predicted_latency, &cfg, 4, None);
        assert!((0.0..=1.0).contains(&rate));
        assert!(rate > 0.5, "most discoveries succeed, got {rate}");
    }
}
