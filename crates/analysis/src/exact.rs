//! Exact worst-case discovery-latency analysis.
//!
//! For periodic schedules this engine computes the paper's Definition 3.4
//! latency **exactly** (to the nanosecond): the worst, over
//!
//! 1. the arrival instant (when the devices come into range, relative to
//!    the beacon train — contributing up to one beacon gap of waiting), and
//! 2. the offset `Φ₁` of the first in-range beacon against the reception
//!    sequence (the coverage-map dimension of Section 4),
//!
//! of the time until the first successful beacon/window overlap. It
//! replaces the recursive computation scheme of \[18\] (which the paper
//! cites for PI protocols) with a coverage-map sweep that works for *any*
//! periodic schedule — slotted, slotless or irregular.

use nd_core::coverage::{CoverageMap, OverlapModel};
use nd_core::error::NdError;
use nd_core::interval::IntervalSet;
use nd_core::schedule::{BeaconSeq, ReceptionWindows, Schedule};
use nd_core::time::Tick;

/// Analysis options.
#[derive(Clone, Copy, Debug)]
pub struct AnalysisConfig {
    /// Packet airtime ω (must match the beacon sequence's airtime for
    /// meaningful results).
    pub omega: Tick,
    /// Overlap semantics (paper default: beacon start inside window).
    pub model: OverlapModel,
    /// Upper bound on the number of beacons expanded per starting phase
    /// before the sequence is declared non-deterministic.
    pub max_beacons: usize,
}

impl AnalysisConfig {
    /// Defaults: `Start` model, 36 µs packets, generous expansion budget.
    pub fn paper_default() -> Self {
        AnalysisConfig {
            omega: Tick::from_micros(36),
            model: OverlapModel::Start,
            max_beacons: 200_000,
        }
    }

    /// Same, with a custom airtime.
    pub fn with_omega(omega: Tick) -> Self {
        AnalysisConfig {
            omega,
            ..Self::paper_default()
        }
    }
}

/// The exact analysis result for one discovery direction.
#[derive(Clone, Debug)]
pub struct WorstCase {
    /// Worst-case latency from coming into range to the first successful
    /// beacon start (Definition 3.4, §3.2 conventions).
    pub latency: Tick,
    /// Worst packet-to-packet latency `l*` (from the first in-range beacon
    /// to the first received one) over all offsets and phases.
    pub packet_to_packet: Tick,
    /// Mean latency over a uniformly random arrival instant and offset.
    pub mean: f64,
    /// The number of beacons any offset ever needs (the observed `M`).
    pub beacons_needed: usize,
}

/// The coverage-aware analysis result: like [`WorstCase`], but for
/// schedules that may leave some offsets permanently undiscovered — which
/// is exactly what slotted protocols do under the paper's strict §3.2
/// reception model: a beacon sitting at a slot boundary misses the peer's
/// window whenever the two slot grids align within ±ω (the Figure 5
/// phenomenon, measure ≈ 2ω/I of all offsets).
#[derive(Clone, Debug)]
pub struct CoverageCase {
    /// Worst-case latency over the offsets that *are* eventually covered.
    pub worst_covered: Tick,
    /// Worst packet-to-packet latency over covered offsets.
    pub packet_to_packet: Tick,
    /// Probability (over uniform arrival instant and offset) that the
    /// receiver never discovers the sender. Zero for strictly
    /// deterministic tuples.
    pub undiscovered_probability: f64,
    /// Mean latency over covered offsets and uniform arrival.
    pub mean_covered: f64,
    /// Beacons any covered offset ever needs.
    pub beacons_needed: usize,
}

impl CoverageCase {
    /// `true` iff the tuple is strictly deterministic (Definition 4.1).
    pub fn is_deterministic(&self) -> bool {
        self.undiscovered_probability == 0.0
    }
}

/// Exact worst-case latency for a receiver running `windows` to discover a
/// sender running `beacons`.
///
/// Returns [`NdError::AnalysisFailed`] if any offset is never covered —
/// the tuple is not strictly deterministic (Definition 4.1). Use
/// [`one_way_coverage`] to analyze such schedules anyway.
pub fn one_way_worst_case(
    beacons: &BeaconSeq,
    windows: &ReceptionWindows,
    cfg: &AnalysisConfig,
) -> Result<WorstCase, NdError> {
    let c = one_way_coverage(beacons, windows, cfg)?;
    if !c.is_deterministic() {
        return Err(NdError::AnalysisFailed(format!(
            "not deterministic: {:.4} % of offsets are never covered",
            c.undiscovered_probability * 100.0
        )));
    }
    Ok(WorstCase {
        latency: c.worst_covered,
        packet_to_packet: c.packet_to_packet,
        mean: c.mean_covered,
        beacons_needed: c.beacons_needed,
    })
}

/// Exact coverage analysis for a receiver running `windows` to discover a
/// sender running `beacons`, tolerating permanently uncovered offsets.
pub fn one_way_coverage(
    beacons: &BeaconSeq,
    windows: &ReceptionWindows,
    cfg: &AnalysisConfig,
) -> Result<CoverageCase, NdError> {
    let gaps = beacons.gaps();
    let uniform = gaps.iter().all(|&g| g == gaps[0]);
    let m_b = beacons.n_beacons();
    // which starting beacons to analyze: with uniform gaps every start is
    // equivalent
    let starts: Vec<usize> = if uniform { vec![0] } else { (0..m_b).collect() };
    // the largest measure any expansion can ever cover — start-independent,
    // so compute the fold once and share it across phases
    let base = cfg.model.reception_offsets(windows, cfg.omega);
    let ultimate = if base.is_empty() {
        Tick::ZERO
    } else {
        crate::residue::ultimate_covered_measure(&base, beacons, windows.period())
    };

    let mut worst = Tick::ZERO;
    let mut worst_l_star = Tick::ZERO;
    let mut beacons_needed = 0usize;
    // Σ over phases of (λ²/2 + λ·mean_k) for the mean, and of
    // λ·uncovered_k for the failure probability; normalized by T_B
    let mut mean_acc = 0.0;
    let mut uncovered_acc = 0.0;

    for &k in &starts {
        // the gap preceding beacon k (wrap-around: gaps[i] is the gap
        // *after* beacon i)
        let prev_gap = gaps[(k + m_b - 1) % m_b];
        let profile = phase_profile(beacons, windows, k, ultimate, cfg)?;
        if let Some(l_star) = profile.worst {
            worst_l_star = worst_l_star.max(l_star);
            worst = worst.max(prev_gap + l_star);
        }
        beacons_needed = beacons_needed.max(profile.n_beacons);
        let lam = prev_gap.as_secs_f64();
        let weight = if uniform { m_b as f64 } else { 1.0 };
        mean_acc += weight * (lam * lam / 2.0 + lam * profile.mean_covered);
        uncovered_acc += weight * lam * profile.uncovered_fraction;
    }
    let t_b = beacons.period().as_secs_f64();
    Ok(CoverageCase {
        worst_covered: worst,
        packet_to_packet: worst_l_star,
        undiscovered_probability: uncovered_acc / t_b,
        mean_covered: mean_acc / t_b,
        beacons_needed,
    })
}

struct PhaseProfile {
    worst: Option<Tick>,
    mean_covered: f64,
    uncovered_fraction: f64,
    n_beacons: usize,
}

/// Build the coverage map starting from beacon `k`, expanding lazily until
/// the running union saturates at `ultimate` (the residue-fold bound on
/// what any expansion can cover — see [`crate::residue`]), the whole
/// period is covered, or the set of distinct shift images has been
/// exhausted (shifts repeat after `m_B · lcm(T_B,T_C)/T_B` beacons), and
/// extract the first-hit profile. Stopping at saturation is exact: a
/// beacon arriving after the union stops growing cannot be any offset's
/// first hit.
fn phase_profile(
    beacons: &BeaconSeq,
    windows: &ReceptionWindows,
    k: usize,
    ultimate: Tick,
    cfg: &AnalysisConfig,
) -> Result<PhaseProfile, NdError> {
    let period_c = windows.period();
    let base = cfg.model.reception_offsets(windows, cfg.omega);
    if base.is_empty() {
        return Err(NdError::AnalysisFailed(
            "reception windows admit no successful packet under this model".into(),
        ));
    }
    let m_b = beacons.n_beacons();
    let times = beacons.times();
    let t_k = times[k];
    // all distinct images are seen within one lcm(T_B, T_C) of beacons
    let distinct_budget = lcm_u64(beacons.period().as_nanos(), period_c.as_nanos())
        .map(|l| (l / beacons.period().as_nanos()).saturating_mul(m_b as u64))
        .unwrap_or(u64::MAX);

    // expand beacons from k until the union covers [0, T_C) or no new
    // coverage is possible
    let mut rel = Vec::with_capacity(64);
    let mut covered = IntervalSet::empty();
    let mut n = 0usize;
    while !covered.covers(period_c) {
        if n >= cfg.max_beacons {
            return Err(NdError::AnalysisFailed(format!(
                "coverage still growing after {} beacons — raise max_beacons",
                cfg.max_beacons
            )));
        }
        if n as u64 >= distinct_budget {
            break; // coverage can no longer grow: remaining gaps are permanent
        }
        let cycle = (k + n) / m_b;
        let idx = (k + n) % m_b;
        let abs = times[idx] + beacons.period() * cycle as u64;
        let r = abs - t_k;
        let image = base.shift_mod(-(r.as_nanos() as i128), period_c);
        covered = covered.union(&image);
        rel.push(r);
        n += 1;
        if covered.measure() >= ultimate {
            break; // saturated: the remaining gaps are permanent
        }
    }
    let map = CoverageMap::build(&rel, windows, cfg.omega, cfg.model);
    let profile = map.first_hit_profile();
    let uncovered = profile.uncovered_measure().as_nanos() as f64 / period_c.as_nanos() as f64;
    // mean over covered offsets only
    let mean_covered = if uncovered == 0.0 {
        profile.mean().unwrap_or(f64::NAN)
    } else {
        let mut acc = 0.0;
        let mut mass = 0.0;
        for (d, p) in profile.distribution() {
            acc += d.as_secs_f64() * p;
            mass += p;
        }
        if mass > 0.0 {
            acc / mass
        } else {
            f64::NAN
        }
    };
    Ok(PhaseProfile {
        worst: profile.worst().or_else(|| {
            // max over covered segments even when some are uncovered
            profile.distribution().last().map(|&(d, _)| d)
        }),
        mean_covered,
        uncovered_fraction: uncovered,
        n_beacons: n,
    })
}

fn lcm_u64(a: u64, b: u64) -> Option<u64> {
    fn gcd(mut a: u64, mut b: u64) -> u64 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }
    (a / gcd(a, b)).checked_mul(b)
}

/// Exact worst-case **two-way** latency for two full schedules: the max of
/// the two one-way worst cases (the sup over the shared phase of the max
/// of the two directions equals the max of the two sups — each direction's
/// worst phase realizes it).
pub fn two_way_worst_case(
    e: &Schedule,
    f: &Schedule,
    cfg: &AnalysisConfig,
) -> Result<Tick, NdError> {
    let be = e
        .beacons
        .as_ref()
        .ok_or_else(|| NdError::AnalysisFailed("device E never transmits".into()))?;
    let cf = f
        .windows
        .as_ref()
        .ok_or_else(|| NdError::AnalysisFailed("device F never listens".into()))?;
    let bf = f
        .beacons
        .as_ref()
        .ok_or_else(|| NdError::AnalysisFailed("device F never transmits".into()))?;
    let ce = e
        .windows
        .as_ref()
        .ok_or_else(|| NdError::AnalysisFailed("device E never listens".into()))?;
    let f_discovers_e = one_way_worst_case(be, cf, cfg)?;
    let e_discovers_f = one_way_worst_case(bf, ce, cfg)?;
    Ok(f_discovers_e.latency.max(e_discovers_f.latency))
}

/// Reference oracle: the first discovery instant for a *concrete* phase,
/// by directly walking the beacon train and testing window membership —
/// an independent implementation used to cross-validate both the coverage
/// engine and the simulator.
///
/// The sender's beacons start at absolute time 0; the receiver's window
/// pattern is shifted so that its period origin falls at `phase`. Returns
/// the start instant of the first received beacon within `horizon`.
pub fn naive_first_discovery(
    beacons: &BeaconSeq,
    windows: &ReceptionWindows,
    phase: Tick,
    horizon: Tick,
    cfg: &AnalysisConfig,
) -> Option<Tick> {
    let base = cfg.model.reception_offsets(windows, cfg.omega);
    let period_c = windows.period();
    for inst in beacons.instants_in(Tick::ZERO, horizon) {
        // position of the beacon within the receiver's period
        let pos = (inst + period_c.scaled(4))
            .checked_sub(phase)?
            .rem_euclid(period_c);
        if base.contains(pos) {
            return Some(inst);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_protocols::optimal::{self, OptimalParams};

    fn cfg() -> AnalysisConfig {
        AnalysisConfig::paper_default()
    }

    #[test]
    fn uniform_tiling_matches_closed_form() {
        // the optimal construction guarantees k·λ exactly
        let (tx, rx) = optimal::unidirectional(OptimalParams::paper_default(), 0.01, 0.02).unwrap();
        let b = tx.schedule.beacons.as_ref().unwrap();
        let c = rx.schedule.windows.as_ref().unwrap();
        let wc = one_way_worst_case(b, c, &cfg()).unwrap();
        assert_eq!(wc.latency, tx.predicted_latency);
        // l* is one gap shorter (the arrival wait)
        assert_eq!(wc.packet_to_packet + b.mean_gap(), wc.latency);
        // exactly k beacons needed — Theorem 4.3 with equality
        assert_eq!(wc.beacons_needed as u64, c.period().div_ceil(c.sum_d()));
        // the mean is roughly half the worst case for a uniform tiling
        assert!(wc.mean > 0.3 * wc.latency.as_secs_f64());
        assert!(wc.mean < 0.7 * wc.latency.as_secs_f64());
    }

    #[test]
    fn symmetric_schedule_two_way() {
        let opt = optimal::symmetric(OptimalParams::paper_default(), 0.05).unwrap();
        let l = two_way_worst_case(&opt.schedule, &opt.schedule, &cfg()).unwrap();
        assert_eq!(l, opt.predicted_latency);
        let bound = nd_core::bounds::symmetric_bound(1.0, 36e-6, 0.05);
        assert!((l.as_secs_f64() - bound).abs() / bound < 0.02);
    }

    #[test]
    fn resonant_schedule_detected_as_non_deterministic() {
        use nd_core::schedule::{BeaconSeq, ReceptionWindows};
        // T_B = T_C with a beacon that never falls into the window
        let b = BeaconSeq::new(
            vec![Tick::from_micros(500)],
            Tick::from_millis(1),
            Tick::from_micros(36),
        )
        .unwrap();
        let c = ReceptionWindows::single(Tick::ZERO, Tick::from_micros(100), Tick::from_millis(1))
            .unwrap();
        let mut cfg = cfg();
        cfg.max_beacons = 1000;
        let err = one_way_worst_case(&b, &c, &cfg).unwrap_err();
        assert!(matches!(err, NdError::AnalysisFailed(_)));
    }

    #[test]
    fn naive_oracle_agrees_with_profile() {
        let (tx, rx) = optimal::unidirectional(OptimalParams::paper_default(), 0.01, 0.05).unwrap();
        let b = tx.schedule.beacons.as_ref().unwrap();
        let c = rx.schedule.windows.as_ref().unwrap();
        let wc = one_way_worst_case(b, c, &cfg()).unwrap();
        let horizon = wc.latency * 3;
        // every phase discovers within the worst case
        let period = c.period();
        for i in 0..97 {
            let phase = Tick(period.as_nanos() * i / 97);
            let t = naive_first_discovery(b, c, phase, horizon, &cfg())
                .unwrap_or_else(|| panic!("phase {phase} undiscovered"));
            // measured from arrival at 0: the oracle's latency is t itself
            assert!(
                t <= wc.latency,
                "phase {phase}: {t} exceeds worst case {}",
                wc.latency
            );
        }
    }

    #[test]
    fn disco_worst_case_matches_slot_domain() {
        use nd_protocols::Disco;
        // small primes keep the analysis fast: worst case p1·p2 slots
        let d = Disco::new(5, 7, Tick::from_millis(1), Tick::from_micros(36)).unwrap();
        let sched = d.schedule().unwrap();
        let b = sched.beacons.as_ref().unwrap();
        let c = sched.windows.as_ref().unwrap();
        let cc = one_way_coverage(b, c, &cfg()).unwrap();
        // Under the strict §3.2 model, slot-boundary alignments (measure
        // ≈ 2ω/I) are never discovered — the Figure 5 phenomenon. The
        // published "p1·p2 slots" guarantee holds for the covered offsets.
        assert!(!cc.is_deterministic());
        let expected_gap = 2.0 * 36e-6 / 1e-3; // 2ω/I = 7.2 %
        assert!(
            (cc.undiscovered_probability - expected_gap).abs() < 0.05,
            "uncovered {:.4}",
            cc.undiscovered_probability
        );
        let slots = cc.worst_covered.as_nanos() as f64 / 1e6;
        assert!(slots <= 36.0, "measured {slots} slots vs published 35");
        assert!(slots > 20.0, "suspiciously fast: {slots} slots");
    }

    #[test]
    fn searchlight_worst_case_within_published_bound() {
        use nd_protocols::Searchlight;
        let s = Searchlight::new(8, Tick::from_millis(1), Tick::from_micros(36)).unwrap();
        let sched = s.schedule().unwrap();
        let cc = one_way_coverage(
            sched.beacons.as_ref().unwrap(),
            sched.windows.as_ref().unwrap(),
            &cfg(),
        )
        .unwrap();
        let slots = cc.worst_covered.as_nanos() as f64 / 1e6;
        assert!(
            slots <= (s.worst_case_slots() + 1) as f64,
            "measured {slots} vs published {}",
            s.worst_case_slots()
        );
        // boundary-alignment gap exists but is small for I ≫ ω
        assert!(cc.undiscovered_probability < 0.1);
    }

    #[test]
    fn larger_slots_shrink_the_boundary_gap() {
        use nd_protocols::Disco;
        // Figure 5 quantified: the undiscovered fraction scales like 2ω/I
        let omega = Tick::from_micros(36);
        let mut prev = 1.0;
        for slot_us in [200u64, 500, 2000] {
            let d = Disco::new(3, 5, Tick::from_micros(slot_us), omega).unwrap();
            let sched = d.schedule().unwrap();
            let cc = one_way_coverage(
                sched.beacons.as_ref().unwrap(),
                sched.windows.as_ref().unwrap(),
                &cfg(),
            )
            .unwrap();
            assert!(
                cc.undiscovered_probability < prev,
                "slot {slot_us} µs: {:.4} not below {prev:.4}",
                cc.undiscovered_probability
            );
            prev = cc.undiscovered_probability;
        }
    }

    #[test]
    fn two_way_requires_full_schedules() {
        use nd_core::schedule::{BeaconSeq, Schedule};
        let b =
            BeaconSeq::uniform(1, Tick::from_millis(1), Tick::from_micros(36), Tick::ZERO).unwrap();
        let tx_only = Schedule::tx_only(b);
        assert!(two_way_worst_case(&tx_only, &tx_only, &cfg()).is_err());
    }
}
