//! Exact discovery-latency distributions.
//!
//! The worst case (Definition 3.4) is one point of a richer object: the
//! full distribution of the discovery latency over a uniformly random
//! encounter (arrival instant × schedule offset). For periodic schedules
//! this distribution is computable *exactly*: conditioned on the arrival
//! falling in the gap before beacon `k`, the latency is
//! `W + l*_k(Φ)` with `W ~ U(0, λ_{k−1}]` and `Φ` uniform — a convolution
//! of a uniform with the (exactly known) discrete first-hit profile.
//! [`LatencyDistribution`] evaluates that mixture's CDF in closed form.

use crate::exact::AnalysisConfig;
use nd_core::coverage::{CoverageMap, OverlapModel};
use nd_core::error::NdError;
use nd_core::interval::IntervalSet;
use nd_core::schedule::{BeaconSeq, ReceptionWindows};
use nd_core::time::Tick;

/// One mixture component: arrival in the gap before a specific beacon.
struct Component {
    /// Probability weight of this component (gap length / T_B).
    weight: f64,
    /// The gap length (the uniform wait's support).
    gap: f64,
    /// Exact (latency, probability) pairs of the first-hit profile.
    profile: Vec<(f64, f64)>,
    /// Probability that this component never discovers.
    undiscovered: f64,
}

/// The exact distribution of the one-way discovery latency over a uniform
/// random encounter.
pub struct LatencyDistribution {
    components: Vec<Component>,
    worst: Option<Tick>,
}

impl LatencyDistribution {
    /// Build the exact distribution for `windows` discovering `beacons`.
    ///
    /// Fails when the schedule pair leaves offsets permanently uncovered
    /// *and* `allow_partial` is false; with `allow_partial` the
    /// distribution carries an atom at infinity (see
    /// [`LatencyDistribution::undiscovered_probability`]).
    pub fn build(
        beacons: &BeaconSeq,
        windows: &ReceptionWindows,
        cfg: &AnalysisConfig,
        allow_partial: bool,
    ) -> Result<Self, NdError> {
        let gaps = beacons.gaps();
        let uniform = gaps.iter().all(|&g| g == gaps[0]);
        let m_b = beacons.n_beacons();
        let starts: Vec<usize> = if uniform { vec![0] } else { (0..m_b).collect() };
        let t_b = beacons.period().as_secs_f64();
        // residue-fold saturation bound, shared across all starting phases
        let base = model_offsets(cfg.model, windows, cfg.omega)?;
        let ultimate =
            crate::residue::ultimate_covered_measure(&base, beacons, windows.period());

        let mut components = Vec::with_capacity(starts.len());
        let mut worst = Tick::ZERO;
        let mut any_uncovered = false;
        for &k in &starts {
            let gap = gaps[(k + m_b - 1) % m_b];
            let map = expand_map(beacons, windows, k, ultimate, cfg)?;
            let profile = map.first_hit_profile();
            let undiscovered =
                profile.uncovered_measure().as_nanos() as f64 / windows.period().as_nanos() as f64;
            if undiscovered > 0.0 {
                any_uncovered = true;
            }
            if let Some(w) = profile.distribution().last().map(|&(d, _)| d) {
                worst = worst.max(gap + w);
            }
            let weight = if uniform {
                1.0
            } else {
                gap.as_secs_f64() / t_b
            };
            components.push(Component {
                weight,
                gap: gap.as_secs_f64(),
                profile: profile
                    .distribution()
                    .into_iter()
                    .map(|(d, p)| (d.as_secs_f64(), p))
                    .collect(),
                undiscovered,
            });
        }
        if any_uncovered && !allow_partial {
            return Err(NdError::AnalysisFailed(
                "schedule leaves offsets permanently uncovered".into(),
            ));
        }
        Ok(LatencyDistribution {
            components,
            worst: if any_uncovered { None } else { Some(worst) },
        })
    }

    /// `P(latency ≤ t)` — exact.
    pub fn cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for c in &self.components {
            let mut comp = 0.0;
            for &(l, p) in &c.profile {
                // latency = W + l with W ~ U(0, gap]
                let frac = ((t - l) / c.gap).clamp(0.0, 1.0);
                comp += p * frac;
            }
            acc += c.weight * comp;
        }
        acc
    }

    /// Probability that discovery never happens (atom at infinity).
    pub fn undiscovered_probability(&self) -> f64 {
        self.components
            .iter()
            .map(|c| c.weight * c.undiscovered)
            .sum()
    }

    /// The exact mean latency, conditioning on discovery.
    pub fn mean(&self) -> f64 {
        let mut acc = 0.0;
        let mut mass = 0.0;
        for c in &self.components {
            for &(l, p) in &c.profile {
                acc += c.weight * p * (l + c.gap / 2.0);
                mass += c.weight * p;
            }
        }
        acc / mass
    }

    /// The exact `q`-quantile (0 < q < 1) of the latency, conditioning on
    /// discovery; computed by bisection on the closed-form CDF.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..1.0).contains(&q) && q > 0.0);
        let discovered = 1.0 - self.undiscovered_probability();
        let target = q * discovered;
        let mut lo = 0.0;
        let mut hi = self
            .worst
            .map(|w| w.as_secs_f64())
            .unwrap_or_else(|| self.mean() * 64.0);
        // expand hi if needed (partial distributions)
        while self.cdf(hi) < target {
            hi *= 2.0;
        }
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// The exact worst case (`None` if some offsets are never covered).
    pub fn worst(&self) -> Option<Tick> {
        self.worst
    }
}

/// Expand the coverage map from beacon `k` until fully covered, saturated
/// at the residue-fold bound `ultimate`, or until the distinct-image
/// budget is exhausted (same policy as the exact engine).
fn expand_map(
    beacons: &BeaconSeq,
    windows: &ReceptionWindows,
    k: usize,
    ultimate: Tick,
    cfg: &AnalysisConfig,
) -> Result<CoverageMap, NdError> {
    let period_c = windows.period();
    let base = model_offsets(cfg.model, windows, cfg.omega)?;
    let m_b = beacons.n_beacons();
    let times = beacons.times();
    let t_k = times[k];
    let distinct = lcm(beacons.period().as_nanos(), period_c.as_nanos())
        .map(|l| (l / beacons.period().as_nanos()).saturating_mul(m_b as u64))
        .unwrap_or(u64::MAX);
    let mut rel = Vec::new();
    let mut covered = IntervalSet::empty();
    let mut n = 0usize;
    while !covered.covers(period_c) {
        if n >= cfg.max_beacons {
            return Err(NdError::AnalysisFailed("beacon budget exhausted".into()));
        }
        if n as u64 >= distinct {
            break;
        }
        let cycle = (k + n) / m_b;
        let idx = (k + n) % m_b;
        let abs = times[idx] + beacons.period() * cycle as u64;
        let r = abs - t_k;
        covered = covered.union(&base.shift_mod(-(r.as_nanos() as i128), period_c));
        rel.push(r);
        n += 1;
        if covered.measure() >= ultimate {
            break; // saturated: the remaining gaps are permanent
        }
    }
    Ok(CoverageMap::build(&rel, windows, cfg.omega, cfg.model))
}

fn model_offsets(
    model: OverlapModel,
    windows: &ReceptionWindows,
    omega: Tick,
) -> Result<IntervalSet, NdError> {
    let base = model.reception_offsets(windows, omega);
    if base.is_empty() {
        return Err(NdError::AnalysisFailed(
            "windows admit no reception under this model".into(),
        ));
    }
    Ok(base)
}

fn lcm(a: u64, b: u64) -> Option<u64> {
    fn gcd(mut a: u64, mut b: u64) -> u64 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }
    (a / gcd(a, b)).checked_mul(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_protocols::optimal::{self, OptimalParams};

    fn dist_for(eta: f64) -> LatencyDistribution {
        let opt = optimal::symmetric(OptimalParams::paper_default(), eta).unwrap();
        LatencyDistribution::build(
            opt.schedule.beacons.as_ref().unwrap(),
            opt.schedule.windows.as_ref().unwrap(),
            &AnalysisConfig::paper_default(),
            false,
        )
        .unwrap()
    }

    #[test]
    fn cdf_is_a_distribution() {
        let d = dist_for(0.05);
        assert_eq!(d.cdf(0.0), 0.0);
        let worst = d.worst().unwrap().as_secs_f64();
        assert!((d.cdf(worst) - 1.0).abs() < 1e-9);
        assert!((d.cdf(worst * 2.0) - 1.0).abs() < 1e-12);
        // monotone
        let mut prev = 0.0;
        for i in 0..50 {
            let t = worst * i as f64 / 49.0;
            let c = d.cdf(t);
            assert!(c >= prev - 1e-12);
            prev = c;
        }
        assert_eq!(d.undiscovered_probability(), 0.0);
    }

    #[test]
    fn uniform_tiling_is_almost_uniform_latency() {
        // for a disjoint tiling with uniform gaps, the latency is (almost)
        // uniform on (0, worst]: mean ≈ worst/2, quantiles linear
        let d = dist_for(0.05);
        let worst = d.worst().unwrap().as_secs_f64();
        assert!((d.mean() / worst - 0.5).abs() < 0.02, "mean {}", d.mean());
        assert!((d.quantile(0.5) / worst - 0.5).abs() < 0.03);
        assert!((d.quantile(0.9) / worst - 0.9).abs() < 0.03);
        assert!((d.quantile(0.99) / worst - 0.99).abs() < 0.03);
    }

    #[test]
    fn quantiles_bracket_the_worst_case() {
        let d = dist_for(0.02);
        let worst = d.worst().unwrap().as_secs_f64();
        assert!(d.quantile(0.999) <= worst * (1.0 + 1e-6));
        assert!(d.quantile(0.5) < d.quantile(0.95));
    }

    #[test]
    fn mean_matches_exact_engine() {
        let opt = optimal::symmetric(OptimalParams::paper_default(), 0.05).unwrap();
        let wc = crate::exact::one_way_worst_case(
            opt.schedule.beacons.as_ref().unwrap(),
            opt.schedule.windows.as_ref().unwrap(),
            &AnalysisConfig::paper_default(),
        )
        .unwrap();
        let d = dist_for(0.05);
        assert!((wc.mean - d.mean()).abs() / wc.mean < 1e-9);
    }

    #[test]
    fn partial_distribution_carries_atom() {
        use nd_core::time::Tick;
        use nd_protocols::Disco;
        let sched = Disco::new(3, 5, Tick::from_millis(1), Tick::from_micros(36))
            .unwrap()
            .schedule()
            .unwrap();
        let d = LatencyDistribution::build(
            sched.beacons.as_ref().unwrap(),
            sched.windows.as_ref().unwrap(),
            &AnalysisConfig::paper_default(),
            true,
        )
        .unwrap();
        assert!(d.undiscovered_probability() > 0.0);
        assert!(d.worst().is_none());
        // strict mode rejects it
        assert!(LatencyDistribution::build(
            sched.beacons.as_ref().unwrap(),
            sched.windows.as_ref().unwrap(),
            &AnalysisConfig::paper_default(),
            false,
        )
        .is_err());
    }
}
