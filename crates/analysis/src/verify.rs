//! Cross-validation between the exact engine, the naive oracle, and the
//! discrete-event simulator.
//!
//! Three independent implementations of "when does F first hear E":
//!
//! 1. the coverage-map sweep ([`crate::exact::one_way_worst_case`]),
//! 2. the naive beacon-walk oracle
//!    ([`crate::exact::naive_first_discovery`]),
//! 3. the event-driven simulator (`nd-sim`).
//!
//! [`cross_validate`] runs all three over a grid of phases and reports any
//! disagreement — the repository's deepest correctness check, used by the
//! integration tests and the `achieve` experiment.

use crate::exact::{naive_first_discovery, one_way_coverage, AnalysisConfig};
use nd_core::error::NdError;
use nd_core::schedule::Schedule;
use nd_core::time::Tick;
use nd_sim::{ScheduleBehavior, SimConfig, Simulator, Topology};

/// The outcome of a cross-validation run.
#[derive(Clone, Debug)]
pub struct Verification {
    /// The exact engine's worst case.
    pub analytical_worst: Tick,
    /// Largest latency seen by the simulator over the phase grid.
    pub sim_max: Tick,
    /// Largest latency seen by the naive oracle over the phase grid.
    pub oracle_max: Tick,
    /// Number of phases where the simulator and the oracle disagreed.
    pub mismatches: usize,
    /// Number of phases probed.
    pub phases: usize,
}

impl Verification {
    /// `true` when all three implementations are consistent: no
    /// sim/oracle mismatch and neither exceeds the analytical worst case.
    pub fn consistent(&self) -> bool {
        self.mismatches == 0
            && self.sim_max <= self.analytical_worst
            && self.oracle_max <= self.analytical_worst
    }
}

/// Cross-validate one discovery direction (device 0 transmits with
/// `sender`'s beacons, device 1 listens with `receiver`'s windows) over
/// `n_phases` equally spaced receiver phases.
pub fn cross_validate(
    sender: &Schedule,
    receiver: &Schedule,
    cfg: &AnalysisConfig,
    n_phases: usize,
) -> Result<Verification, NdError> {
    let beacons = sender
        .beacons
        .as_ref()
        .ok_or_else(|| NdError::AnalysisFailed("sender never transmits".into()))?;
    let windows = receiver
        .windows
        .as_ref()
        .ok_or_else(|| NdError::AnalysisFailed("receiver never listens".into()))?;
    let cc = one_way_coverage(beacons, windows, cfg)?;
    let horizon = Tick(cc.worst_covered.as_nanos() * 2 + windows.period().as_nanos());

    let mut sim_max = Tick::ZERO;
    let mut oracle_max = Tick::ZERO;
    let mut mismatches = 0usize;
    let period = windows.period();
    for i in 0..n_phases {
        let phase = Tick(period.as_nanos() * i as u64 / n_phases as u64);
        // oracle: windows shifted so their origin is at `phase`
        let oracle = naive_first_discovery(beacons, windows, phase, horizon, cfg);
        // simulator: receiver with schedule phase `period − phase` begins
        // its period `phase` ticks *later*, matching the oracle convention
        let sim_phase = (period - phase).rem_euclid(period);
        let mut sim_cfg = SimConfig::paper_baseline(horizon, 17 + i as u64);
        sim_cfg.radio.omega = cfg.omega;
        sim_cfg.overlap = cfg.model;
        sim_cfg.collisions = false;
        sim_cfg.half_duplex = false;
        let mut sim = Simulator::new(sim_cfg, Topology::full(2));
        sim.add_device(Box::new(ScheduleBehavior::new(Schedule::tx_only(
            beacons.clone(),
        ))));
        sim.add_device(Box::new(ScheduleBehavior::with_phase(
            Schedule::rx_only(windows.clone()),
            sim_phase,
        )));
        sim.stop_when_all_discovered(false);
        let report = sim.run();
        let sim_t = report.discovery.one_way(1, 0);
        match (oracle, sim_t) {
            (Some(a), Some(b)) => {
                if a != b {
                    mismatches += 1;
                }
                oracle_max = oracle_max.max(a);
                sim_max = sim_max.max(b);
            }
            (None, None) => {}
            _ => mismatches += 1,
        }
    }
    Ok(Verification {
        analytical_worst: cc.worst_covered,
        sim_max,
        oracle_max,
        mismatches,
        phases: n_phases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_protocols::optimal::{self, OptimalParams};
    use nd_protocols::{DiffCode, Searchlight};

    #[test]
    fn optimal_construction_cross_validates() {
        let (tx, rx) = optimal::unidirectional(OptimalParams::paper_default(), 0.02, 0.05).unwrap();
        let v = cross_validate(
            &tx.schedule,
            &rx.schedule,
            &AnalysisConfig::paper_default(),
            53,
        )
        .unwrap();
        assert!(v.consistent(), "{v:?}");
        // the worst case is actually approached on the grid (within a gap)
        assert!(v.sim_max.as_nanos() as f64 > 0.5 * v.analytical_worst.as_nanos() as f64);
    }

    #[test]
    fn searchlight_cross_validates() {
        let s = Searchlight::new(6, Tick::from_millis(1), Tick::from_micros(36)).unwrap();
        let sched = s.schedule().unwrap();
        let v = cross_validate(&sched, &sched, &AnalysisConfig::paper_default(), 31).unwrap();
        assert!(v.consistent(), "{v:?}");
    }

    #[test]
    fn diffcode_cross_validates() {
        let d = DiffCode::new(
            7,
            vec![1, 2, 4],
            Tick::from_millis(1),
            Tick::from_micros(36),
        )
        .unwrap();
        let sched = d.schedule().unwrap();
        let v = cross_validate(&sched, &sched, &AnalysisConfig::paper_default(), 29).unwrap();
        assert!(v.consistent(), "{v:?}");
    }
}
