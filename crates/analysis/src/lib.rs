//! # nd-analysis — exact and statistical analysis of ND schedules
//!
//! Three complementary ways to evaluate a neighbor-discovery schedule from
//! the reproduction of *On Optimal Neighbor Discovery* (SIGCOMM 2019):
//!
//! * [`exact`] — the coverage-map sweep: exact (nanosecond-precise)
//!   worst-case and mean discovery latency for any pair of periodic
//!   schedules, replacing the recursive scheme of the paper's
//!   reference \[18\];
//! * [`dist`] — exact latency *distributions* (CDF, quantiles, mean), not
//!   just the worst case;
//! * [`montecarlo`] — randomized-phase simulation campaigns on top of
//!   `nd-sim`, for collisions, fault injection and reactive protocols;
//! * [`residue`] — residue-class gap folding: the ultimate coverage of an
//!   expansion, computed from one fold per beacon so prime-pair schedules
//!   with huge hyperperiods stop expanding the moment coverage saturates;
//! * [`verify`] — cross-validation of the exact engine, a naive oracle
//!   and the simulator against each other.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dist;
pub mod exact;
pub mod montecarlo;
pub mod residue;
pub mod verify;

pub use dist::LatencyDistribution;
pub use exact::{
    naive_first_discovery, one_way_coverage, one_way_worst_case, two_way_worst_case,
    AnalysisConfig, CoverageCase, WorstCase,
};
pub use montecarlo::{
    group_success_rate, group_success_rate_factory, pair_trials, LatencySummary, PairMetric,
};
pub use residue::ultimate_covered_measure;
pub use verify::{cross_validate, Verification};
