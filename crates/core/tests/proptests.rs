//! Property-based tests for the nd-core invariants.
//!
//! These check the *theorems* of the paper on randomly generated schedules:
//! interval-set algebra laws, Theorem 4.2 (coverage per beacon), Lemma 4.1
//! (periodicity of coverage), and structural invariants of the first-hit
//! profile.

use nd_core::coverage::{min_beacons, CoverageMap, OverlapModel};
use nd_core::interval::{Interval, IntervalSet};
use nd_core::schedule::{BeaconSeq, ReceptionWindows, Window};
use nd_core::time::Tick;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// generators
// ---------------------------------------------------------------------------

/// An arbitrary interval set inside [0, period).
fn interval_set(period: u64) -> impl Strategy<Value = IntervalSet> {
    prop::collection::vec((0..period, 1..period / 4 + 1), 0..8).prop_map(move |raw| {
        IntervalSet::from_intervals(raw.into_iter().map(|(s, len)| {
            let end = (s + len).min(period);
            Interval::new(Tick(s), Tick(end))
        }))
    })
}

/// A valid reception-window sequence with the given period.
fn reception_windows(period: u64) -> impl Strategy<Value = ReceptionWindows> {
    prop::collection::btree_set(0..period - 1, 1..6).prop_map(move |starts| {
        // carve non-overlapping windows out of sorted distinct starts
        let starts: Vec<u64> = starts.into_iter().collect();
        let mut windows = Vec::new();
        for (i, &s) in starts.iter().enumerate() {
            let next = if i + 1 < starts.len() {
                starts[i + 1]
            } else {
                period
            };
            let max_len = next - s;
            if max_len == 0 {
                continue;
            }
            let len = (max_len / 2).max(1).min(max_len);
            windows.push(Window::new(Tick(s), Tick(len)));
        }
        ReceptionWindows::new(windows, Tick(period)).expect("generator produces valid windows")
    })
}

/// Strictly increasing beacon delays starting at zero.
fn beacon_delays(max_count: usize, max_gap: u64) -> impl Strategy<Value = Vec<Tick>> {
    prop::collection::vec(1..max_gap, 0..max_count).prop_map(|gaps| {
        let mut out = vec![Tick::ZERO];
        let mut acc = 0u64;
        for g in gaps {
            acc += g;
            out.push(Tick(acc));
        }
        out
    })
}

// ---------------------------------------------------------------------------
// interval-set algebra laws
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn union_measure_inclusion_exclusion(a in interval_set(1000), b in interval_set(1000)) {
        let union = a.union(&b);
        let inter = a.intersect(&b);
        prop_assert_eq!(
            union.measure() + inter.measure(),
            a.measure() + b.measure(),
            "|A∪B| + |A∩B| = |A| + |B|"
        );
    }

    #[test]
    fn subtract_then_union_recovers(a in interval_set(1000), b in interval_set(1000)) {
        // (A \ B) ∪ (A ∩ B) = A
        let recovered = a.subtract(&b).union(&a.intersect(&b));
        prop_assert_eq!(recovered, a);
    }

    #[test]
    fn complement_is_involutive(a in interval_set(1000)) {
        let c = a.complement(Tick(1000));
        prop_assert_eq!(c.complement(Tick(1000)), a.intersect(&IntervalSet::single(Tick::ZERO, Tick(1000))));
        prop_assert_eq!(c.measure() + a.measure(), Tick(1000));
    }

    #[test]
    fn shift_mod_preserves_measure(a in interval_set(1000), delta in -3000i128..3000) {
        let shifted = a.shift_mod(delta, Tick(1000));
        prop_assert_eq!(shifted.measure(), a.measure());
    }

    #[test]
    fn shift_mod_composes(a in interval_set(1000), d1 in 0i128..1000, d2 in 0i128..1000) {
        let once = a.shift_mod(d1 + d2, Tick(1000));
        let twice = a.shift_mod(d1, Tick(1000)).shift_mod(d2, Tick(1000));
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn shift_mod_roundtrips(a in interval_set(1000), delta in -3000i128..3000) {
        let back = a.shift_mod(delta, Tick(1000)).shift_mod(-delta, Tick(1000));
        prop_assert_eq!(back, a);
    }

    #[test]
    fn membership_matches_interval_scan(a in interval_set(1000), t in 0u64..1000) {
        let by_method = a.contains(Tick(t));
        let by_scan = a.intervals().iter().any(|iv| iv.contains(Tick(t)));
        prop_assert_eq!(by_method, by_scan);
    }

    #[test]
    fn canonical_form_invariants(a in interval_set(1000)) {
        let ivs = a.intervals();
        for w in ivs.windows(2) {
            prop_assert!(w[0].end < w[1].start, "sorted, disjoint, non-adjacent");
        }
        for iv in ivs {
            prop_assert!(!iv.is_empty());
        }
    }
}

// ---------------------------------------------------------------------------
// coverage-map theorems
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Theorem 4.2: every beacon covers exactly Σd offsets, no matter where
    /// it sits in the sequence.
    #[test]
    fn theorem_4_2_per_beacon_coverage(
        c in reception_windows(500),
        delays in beacon_delays(12, 2000),
    ) {
        let map = CoverageMap::build(&delays, &c, Tick(4), OverlapModel::Start);
        for entry in map.entries() {
            prop_assert_eq!(entry.offsets.measure(), c.sum_d(), "beacon {}", entry.beacon);
        }
        prop_assert_eq!(map.coverage(), c.sum_d() * delays.len() as u64);
    }

    /// Theorem 4.3 necessity: a deterministic map never has fewer beacons
    /// than M = ⌈T_C/Σd⌉.
    #[test]
    fn theorem_4_3_necessity(
        c in reception_windows(500),
        delays in beacon_delays(12, 700),
    ) {
        let map = CoverageMap::build(&delays, &c, Tick(4), OverlapModel::Start);
        if map.is_deterministic() {
            prop_assert!(delays.len() as u64 >= min_beacons(c.period(), c.sum_d()));
        }
    }

    /// The first-hit profile tiles the period exactly and agrees with the
    /// pointwise first-hit query.
    #[test]
    fn profile_is_consistent(
        c in reception_windows(300),
        delays in beacon_delays(8, 900),
        sample in 0u64..300,
    ) {
        let map = CoverageMap::build(&delays, &c, Tick(4), OverlapModel::Start);
        let profile = map.first_hit_profile();
        let total: Tick = profile.segments().iter().map(|(iv, _)| iv.measure()).sum();
        prop_assert_eq!(total, c.period());
        // segments are contiguous and ordered
        let mut cursor = Tick::ZERO;
        for (iv, _) in profile.segments() {
            prop_assert_eq!(iv.start, cursor);
            cursor = iv.end;
        }
        prop_assert_eq!(cursor, c.period());
        // pointwise agreement
        let offset = Tick(sample.min(c.period().as_nanos() - 1));
        let seg = profile
            .segments()
            .iter()
            .find(|(iv, _)| iv.contains(offset))
            .map(|(_, v)| *v)
            .unwrap();
        prop_assert_eq!(seg, map.first_hit(offset));
    }

    /// Worst first hit is the max of the distribution's support, and the
    /// distribution is a probability distribution when deterministic.
    #[test]
    fn profile_distribution_consistency(
        c in reception_windows(300),
        delays in beacon_delays(10, 900),
    ) {
        let map = CoverageMap::build(&delays, &c, Tick(4), OverlapModel::Start);
        let profile = map.first_hit_profile();
        let dist = profile.distribution();
        let mass: f64 = dist.iter().map(|(_, p)| p).sum();
        let uncovered = profile.uncovered_measure().as_nanos() as f64
            / c.period().as_nanos() as f64;
        prop_assert!((mass + uncovered - 1.0).abs() < 1e-9);
        if let Some(w) = profile.worst() {
            prop_assert_eq!(w, dist.last().unwrap().0);
            prop_assert!(map.is_deterministic());
        } else {
            prop_assert!(!map.is_deterministic());
        }
    }

    /// Lemma 4.1 / Theorem 4.2 corollary: shifting the whole beacon train
    /// by a multiple of T_C leaves the coverage map unchanged.
    #[test]
    fn coverage_periodic_in_tc(
        c in reception_windows(200),
        delays in beacon_delays(6, 500),
        k in 1u64..4,
    ) {
        let period = c.period();
        let shifted: Vec<Tick> = delays.iter().map(|&d| d + period * k).collect();
        let mut with_anchor = vec![Tick::ZERO];
        with_anchor.extend(&shifted);
        // compare the common beacons: entry i+1 of the anchored map equals
        // entry i of the original, because the extra T_C·k shift is a no-op
        // mod T_C.
        let base = CoverageMap::build(&delays, &c, Tick(4), OverlapModel::Start);
        let anchored = CoverageMap::build(&with_anchor, &c, Tick(4), OverlapModel::Start);
        for (i, e) in base.entries().iter().enumerate() {
            prop_assert_eq!(&anchored.entries()[i + 1].offsets, &e.offsets);
        }
    }
}

// ---------------------------------------------------------------------------
// schedule invariants
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn beacon_gaps_sum_to_period(
        times in prop::collection::btree_set(0u64..1000, 1..10),
    ) {
        let times: Vec<Tick> = times.into_iter().map(Tick).collect();
        // space beacons at least ω apart by scaling positions
        let spaced: Vec<Tick> = times.iter().enumerate().map(|(i, &t)| t * 10 + Tick(i as u64)).collect();
        if let Ok(b) = BeaconSeq::new(spaced, Tick(20_000), Tick(2)) {
            let gaps = b.gaps();
            prop_assert_eq!(gaps.len(), b.n_beacons());
            prop_assert_eq!(gaps.into_iter().sum::<Tick>(), b.period());
        }
    }

    #[test]
    fn rotation_preserves_duty_cycles(
        c in reception_windows(400),
        delta in 0u64..400,
    ) {
        let r = c.rotated(Tick(delta));
        prop_assert!((r.gamma() - c.gamma()).abs() < 1e-12);
        prop_assert_eq!(r.sum_d(), c.sum_d());
        prop_assert_eq!(r.period(), c.period());
    }

    #[test]
    fn instances_in_matches_contains_instant(
        c in reception_windows(100),
        t in 0u64..1000,
    ) {
        let t = Tick(t);
        let inside = c.contains_instant(t);
        let ivs = c.instances_in(t, t + Tick(1));
        prop_assert_eq!(inside, !ivs.is_empty());
    }
}

// ---------------------------------------------------------------------------
// Theorem 5.7 (asymmetric bound) invariants
// ---------------------------------------------------------------------------

proptest! {
    /// Equal per-device budgets collapse Theorem 5.7 onto the symmetric
    /// Theorem 5.5 bound for every (α, ω, η).
    #[test]
    fn asymmetric_bound_coincides_with_symmetric_at_equal_budgets(
        alpha in 0.1f64..8.0,
        omega_us in 1.0f64..500.0,
        eta in 0.001f64..0.5,
    ) {
        let omega = omega_us * 1e-6;
        let asym = nd_core::bounds::asymmetric_bound(alpha, omega, eta, eta);
        let sym = nd_core::bounds::symmetric::symmetric_bound(alpha, omega, eta);
        prop_assert!((asym - sym).abs() <= 1e-9 * sym.abs(),
            "asym {asym} vs sym {sym}");
    }

    /// The proof's per-device optimal splits spend exactly the budget on
    /// each device (η_X = α·β_X + γ_X) and balance the two directions
    /// (β_E·γ_F = β_F·γ_E), for random (η_E, η_F) pairs and α.
    #[test]
    fn optimal_asymmetric_splits_spend_the_budgets_and_balance(
        alpha in 0.1f64..8.0,
        eta_e in 0.001f64..0.5,
        eta_f in 0.001f64..0.5,
    ) {
        let (dc_e, dc_f) = nd_core::bounds::optimal_asymmetric_splits(eta_e, eta_f, alpha);
        prop_assert!((dc_e.eta(alpha) - eta_e).abs() <= 1e-12 + 1e-9 * eta_e);
        prop_assert!((dc_f.eta(alpha) - eta_f).abs() <= 1e-12 + 1e-9 * eta_f);
        // the balanced-latency condition L_E = L_F of the Theorem 5.7 proof
        let p_ef = dc_e.beta * dc_f.gamma;
        let p_fe = dc_f.beta * dc_e.gamma;
        prop_assert!((p_ef - p_fe).abs() <= 1e-9 * p_ef.abs().max(p_fe.abs()),
            "β_E·γ_F {p_ef} vs β_F·γ_E {p_fe}");
    }
}
